//! Trace one serving request end to end through the whole simulated
//! stack: host admission → per-shard sub-batches → NVMe device ops →
//! firmware execution → flash reads → merge — all as causally-linked
//! spans on the *virtual* timeline.
//!
//! The run enables sim-time tracing and wall-clock self-profiling on a
//! two-shard runtime, pushes a handful of NDP requests through it,
//! validates the span invariants (parents resolve, children nest, the
//! direct children of each request span cover ≥ 99 % of its latency),
//! pretty-prints the span tree of the first request, and writes the
//! whole trace as Chrome-trace JSON — load it at `chrome://tracing` or
//! <https://ui.perfetto.dev> to scrub through the request visually.
//!
//! ```text
//! cargo run --release --example trace_a_request
//! ```

use recssd_suite::prelude::*;
use std::collections::BTreeMap;

fn main() {
    // A small two-shard serving fleet with micro-batching and operator
    // pipelining, tracing and self-profiling switched on *before* any
    // traffic so every span is captured.
    let cfg = ServingConfig::small_wide(2, SchedulePolicy::micro_batch(8)).with_depth(2);
    let mut rt = ServingRuntime::new(&cfg);
    rt.enable_tracing();
    rt.enable_self_profiling();

    let table = rt.add_table(EmbeddingTable::procedural(
        TableSpec::new(2048, 16, Quantization::F32),
        42,
    ));

    // Six pooled-lookup requests on the NDP path, 1 µs apart.
    let mut rng = recssd_sim::rng::Xoshiro256::seed_from(7);
    for i in 0..6u64 {
        let batch = LookupBatch::new(
            (0..4)
                .map(|_| (0..8).map(|_| rng.gen_range(0..2048)).collect())
                .collect(),
        );
        rt.submit_at(
            SimTime::from_us(i),
            i,
            table,
            batch,
            SlsPath::Ndp(SlsOptions::default()),
        );
    }
    let done = rt.run_until_idle();
    println!("served {} requests on the NDP path\n", done.len());

    // Drain the trace and check its invariants before trusting it.
    let spans = rt.take_trace();
    let check = validate_spans(&spans).expect("span invariants hold");
    println!(
        "trace: {} spans, {} request spans, min e2e coverage {:.1}%\n",
        check.spans,
        check.requests,
        check.min_coverage * 100.0
    );

    // Pretty-print the causal tree of the first request.
    let root = spans
        .iter()
        .filter(|s| s.name == "request")
        .min_by_key(|s| s.start_ns)
        .expect("at least one request span");
    let mut children: BTreeMap<u64, Vec<&SpanRec>> = BTreeMap::new();
    for s in &spans {
        if s.parent != 0 {
            children.entry(s.parent).or_default().push(s);
        }
    }
    for kids in children.values_mut() {
        kids.sort_by_key(|s| (s.start_ns, s.id));
    }
    println!("span tree of request #{} (times in virtual ns):", root.id);
    print_tree(root, &children, 0);

    // Extracted critical path of the same request: every nanosecond of
    // its e2e latency charged to the resource it was blocked on.
    let profiles = request_critical_paths(&spans);
    let prof = profiles
        .iter()
        .find(|p| p.request == root.id)
        .expect("profile for the printed request");
    println!(
        "\ncritical path of request #{} ({} ns e2e, {:.1}% attributed):",
        prof.request,
        prof.e2e_ns,
        prof.conservation() * 100.0
    );
    for (phase, ns) in prof.segments() {
        println!(
            "  {:<14} {:>7} ns  {:>5.1}% of e2e",
            phase.name(),
            ns,
            ns as f64 * 100.0 / prof.e2e_ns as f64
        );
    }

    // Per-path latency attribution and the simulator's own wall profile
    // come from the same run — no second pass needed.
    println!("\nlatency attribution:");
    for a in rt.attribution() {
        println!(
            "  {:<9} {:>3} requests  e2e p50 {:>7} ns  p99 {:>7} ns",
            a.path, a.requests, a.e2e.p50, a.e2e.p99
        );
    }
    println!("\nsimulator wall-clock profile:");
    for p in rt.wall_profile() {
        println!(
            "  {:<15} {:>8.2} ms over {} sections",
            p.phase,
            p.nanos as f64 / 1e6,
            p.count
        );
    }

    // Export for chrome://tracing or ui.perfetto.dev.
    let out = "trace_a_request.json";
    std::fs::write(out, chrome_trace_json(&spans)).expect("write trace");
    println!("\nwrote {out} — open it at https://ui.perfetto.dev");
}

fn print_tree(span: &SpanRec, children: &BTreeMap<u64, Vec<&SpanRec>>, depth: usize) {
    let dur = span.end_ns - span.start_ns;
    let mut note = String::new();
    if !span.label.is_empty() {
        note.push_str(&format!("  path={}", span.label));
    }
    if !span.arg_key.is_empty() {
        note.push_str(&format!("  {}={}", span.arg_key, span.arg_val));
    }
    println!(
        "{:indent$}{:<10} [{:>7} .. {:>7}]  {:>6} ns  (track pid={} tid={}){}",
        "",
        span.name,
        span.start_ns,
        span.end_ns,
        dur,
        span.pid,
        span.tid,
        note,
        indent = depth * 2
    );
    for kid in children.get(&span.id).into_iter().flatten() {
        print_tree(kid, children, depth + 1);
    }
}
