//! Quickstart: offload one SparseLengthsSum to the simulated RecSSD and
//! compare it against the host-DRAM reference and the COTS-SSD baseline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use recssd_suite::prelude::*;

fn main() {
    // A small simulated device (Cosmos+ timing, 8 channels) and host.
    let mut sys = System::new(RecSsdConfig::small_wide());

    // One embedding table: 2000 rows of 32 features, one vector per 16 KB
    // flash page (the paper's model-evaluation layout).
    let spec = TableSpec::new(2000, 32, Quantization::F32);
    let image = TableImage::new(
        EmbeddingTable::procedural(spec, 42),
        PageLayout::Spread,
        16 * 1024,
    );
    let table = sys.add_table(image);

    // A batch of 8 pooled lookups, 20 random rows each.
    let mut rng = recssd_sim::rng::Xoshiro256::seed_from(7);
    let batch = LookupBatch::new(
        (0..8)
            .map(|_| (0..20).map(|_| rng.gen_range(0..2000)).collect())
            .collect(),
    );

    // Run the same batch three ways.
    let dram = sys.submit(OpKind::dram_sls(table, batch.clone()));
    let baseline = sys.submit(OpKind::baseline_sls(
        table,
        batch.clone(),
        SlsOptions::default(),
    ));
    let ndp = sys.submit(OpKind::ndp_sls(table, batch, SlsOptions::default()));
    sys.run_until_idle();

    // All three agree bit-exactly.
    assert_eq!(sys.result(ndp).outputs, sys.result(dram).outputs);
    assert_eq!(sys.result(baseline).outputs, sys.result(dram).outputs);

    println!("SparseLengthsSum over 160 lookups (simulated time):");
    println!("  DRAM reference : {}", sys.result(dram).service_time());
    println!("  COTS SSD       : {}", sys.result(baseline).service_time());
    println!("  RecSSD (NDP)   : {}", sys.result(ndp).service_time());
    let speedup = sys.result(baseline).service_time().as_ns() as f64
        / sys.result(ndp).service_time().as_ns() as f64;
    println!("  NDP speedup over COTS SSD: {speedup:.2}x");

    let report = sys.device().engine().stats().mean_report();
    println!("\nInside the FTL (per request):");
    println!("  config write   : {}", report.config_write);
    println!("  config process : {}", report.config_process);
    println!("  translation    : {}", report.translation);
    println!("  flash read     : {}", report.flash_read);
    println!("  pages touched  : {}", report.pages);
}
