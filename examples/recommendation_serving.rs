//! End-to-end recommendation *serving* on the sharded runtime: embedding
//! tables row-range-sharded across four simulated SSDs, closed-loop
//! Zipf-skewed traffic from a population of clients, micro-batched
//! scheduling, and tail-latency telemetry — with every merged output
//! verified bit-identical to the unsharded `sls_reference`.
//!
//! ```text
//! cargo run --release --example recommendation_serving
//! ```

use recssd_suite::prelude::*;

fn main() {
    let shards = 4;
    let tables = 3;
    let rows_per_table = 4096;
    let spec = TrafficSpec {
        outputs: 4,
        lookups_per_output: 10,
        zipf_exponent: 1.2,
    };
    let clients = 12;
    let requests = 120;

    println!(
        "serving {tables} tables x {rows_per_table} rows over {shards} SSD shards, \
         {clients} closed-loop clients, {} lookups/request\n",
        spec.lookups_per_request()
    );

    for (name, policy) in [
        ("FIFO          ", SchedulePolicy::Fifo),
        ("micro-batching", SchedulePolicy::micro_batch(16)),
    ] {
        println!("--- {name} scheduler ---");
        for path in [
            SlsPath::Dram,
            SlsPath::Baseline(Default::default()),
            SlsPath::Ndp(Default::default()),
        ] {
            let cfg = ServingConfig::small_wide(shards, policy);
            let mut rt = ServingRuntime::new(&cfg);
            let ids: Vec<_> = (0..tables)
                .map(|t| {
                    rt.add_table(EmbeddingTable::procedural(
                        TableSpec::new(rows_per_table, 32, Quantization::F32),
                        t as u64,
                    ))
                })
                .collect();
            // Mixed Zipf traffic over all tables; verify EVERY merged
            // output against the unsharded reference.
            let mut gen = LoadGen::new(
                &rt,
                ids,
                spec,
                LoadMode::Closed {
                    clients,
                    think: SimDuration::ZERO,
                },
                7,
            )
            .with_verify_every(1);
            let r = gen.run(&mut rt, path, requests);
            assert_eq!(
                r.verified, r.requests,
                "every sharded output must bit-match sls_reference"
            );
            println!(
                "{:>9}: {:>10.0} lookups/s  p50 {:>8.1}us  p95 {:>8.1}us  p99 {:>8.1}us  \
                 (queue p99 {:>8.1}us, batching {:.2}x, {} outputs verified)",
                path.name(),
                r.lookups_per_sim_sec,
                r.e2e.p50 as f64 / 1e3,
                r.e2e.p95 as f64 / 1e3,
                r.e2e.p99 as f64 / 1e3,
                r.queue.p99 as f64 / 1e3,
                r.batching_factor,
                r.verified,
            );
        }
        println!();
    }
    println!("RecSSD's NDP offload compounds with shard parallelism and request");
    println!("micro-batching — and the sharded, merged outputs stay bit-identical");
    println!("to the single-device reference.");
}
