//! End-to-end recommendation serving: run a DLRM-RMC1-class model with
//! its embeddings in DRAM, on a COTS SSD, and on RecSSD, with the
//! locality-controlled traces of the paper.
//!
//! ```text
//! cargo run --release --example recommendation_serving
//! ```

use recssd_suite::prelude::*;

fn main() {
    let batch = 16;
    // Scaled-down RM1 (access patterns, not absolute table size, drive
    // the behaviour — §6.4 of the paper).
    let cfg = ModelConfig::dlrm_rmc1().scaled_tables(50_000);
    println!(
        "model {}: {} tables x {} rows, {} lookups/table, dim {}",
        cfg.name, cfg.tables, cfg.rows_per_table, cfg.lookups_per_table, cfg.dim
    );

    for k in LocalityK::all() {
        // Full-scale Cosmos+ device: 2 TiB, 8 channels.
        let mut sys = System::new(RecSsdConfig::cosmos());
        let model = ModelInstance::build(&mut sys, cfg.clone(), PageLayout::Spread, 1);
        // Baseline gets the paper's 2K-entry host LRU cache per table.
        for &t in model.tables() {
            sys.enable_host_cache(t, 2048);
        }
        let base_opts = SlsOptions {
            io_concurrency: 32,
            use_host_cache: true,
            ..SlsOptions::default()
        };

        let run = |sys: &mut System, model: &ModelInstance, mode: &EmbeddingMode, seed: u64| {
            let mut gen = BatchGen::locality(cfg.rows_per_table, k, cfg.tables, seed);
            // One warm-up inference, then measure two.
            model.run_inference(sys, batch, mode, &mut gen);
            let a = model.run_inference(sys, batch, mode, &mut gen).latency;
            let b = model.run_inference(sys, batch, mode, &mut gen).latency;
            (a + b) / 2
        };

        let t_dram = run(&mut sys, &model, &EmbeddingMode::Dram, 5);
        let t_base = run(&mut sys, &model, &EmbeddingMode::BaselineSsd(base_opts), 5);
        let t_ndp = run(
            &mut sys,
            &model,
            &EmbeddingMode::Ndp(SlsOptions::default()),
            5,
        );

        println!(
            "\n{k}: DRAM {}  |  COTS SSD {}  |  RecSSD {}",
            t_dram, t_base, t_ndp
        );
        println!(
            "    RecSSD vs COTS SSD: {:.2}x  (host LRU hit rate {:.0}%)",
            t_base.as_ns() as f64 / t_ndp.as_ns() as f64,
            sys.host_cache_stats(model.tables()[0])
                .map(|s| s.hit_rate() * 100.0)
                .unwrap_or(0.0),
        );
    }
    println!("\nAs in Fig. 10 of the paper: the lower the trace locality, the");
    println!("bigger RecSSD's advantage over the cached conventional baseline.");
}
