//! End-to-end recommendation *serving* on the sharded runtime, with
//! frequency-profiled hybrid placement: Zipf traffic is profiled into a
//! [`PlacementPlan`], the hottest rows of every table are pinned into
//! the runtime's host DRAM tier, the cold tail is packed onto flash in
//! heat order, and each request splits into a DRAM-tier partial plus
//! per-shard device sub-batches — with every merged output verified
//! bit-identical to the unsharded, unplaced `sls_reference`.
//!
//! The tier budget is swept (all-device baseline → 5% → 20% of rows) so
//! the run shows how much serving capacity each megabyte of pinned DRAM
//! buys on skewed traffic, per execution path.
//!
//! ```text
//! cargo run --release --example recommendation_serving
//! ```

use recssd_suite::prelude::*;

fn main() {
    let shards = 4;
    let tables = 3;
    let rows_per_table = 4096u64;
    let skew = 1.2;
    let spec = TrafficSpec {
        outputs: 4,
        lookups_per_output: 10,
        zipf_exponent: skew,
    };
    let clients = 12;
    let requests = 120;
    let hot_fractions = [0.0, 0.05, 0.2];

    println!(
        "serving {tables} tables x {rows_per_table} rows over {shards} SSD shards \
         + a host DRAM tier,\n{clients} closed-loop clients, Zipf({skew}) traffic, \
         {} lookups/request\n",
        spec.lookups_per_request()
    );

    // Profile representative traffic (a decorrelated stream of the same
    // skew — static placement needs the distribution, not the replay).
    let mut profiler = FreqProfiler::new();
    for t in 0..tables {
        let id = profiler.add_table(rows_per_table);
        let mut zipf = ZipfTrace::new(rows_per_table, skew, 1000 + t as u64);
        profiler.profile_zipf(id, &mut zipf, 100_000);
    }

    for path in [
        SlsPath::Dram,
        SlsPath::Baseline(Default::default()),
        SlsPath::Ndp(Default::default()),
    ] {
        println!("--- {} path ---", path.name());
        let mut baseline = None;
        for &hot in &hot_fractions {
            let plan = (hot > 0.0)
                .then(|| PlacementPlan::build(&profiler, &PlacementPolicy::hot_fraction(hot)));
            let cfg = ServingConfig::small_wide(shards, SchedulePolicy::micro_batch(16));
            let mut rt = ServingRuntime::new(&cfg);
            let ids: Vec<_> = (0..tables)
                .map(|t| {
                    let table = EmbeddingTable::procedural(
                        TableSpec::new(rows_per_table, 32, Quantization::F32),
                        t as u64,
                    );
                    match &plan {
                        Some(plan) => rt.add_table_placed(table, plan.table(t)),
                        None => rt.add_table(table),
                    }
                })
                .collect();
            // Mixed Zipf traffic over all tables; verify EVERY merged
            // output against the unsharded, unplaced reference.
            let mut gen = LoadGen::new(
                &rt,
                ids,
                spec,
                LoadMode::Closed {
                    clients,
                    think: SimDuration::ZERO,
                },
                7,
            )
            .with_verify_every(1);
            let r = gen.run(&mut rt, path, requests);
            assert_eq!(
                r.verified, r.requests,
                "every placed output must bit-match sls_reference"
            );
            let speedup = r.lookups_per_sim_sec / *baseline.get_or_insert(r.lookups_per_sim_sec);
            println!(
                "hot {:>4.0}%: {:>10.0} lookups/s ({speedup:>4.2}x)  \
                 tier-hit {:>5.1}%  p50 {:>7.1}us  p99 {:>8.1}us  \
                 tier-p99 {:>6.1}us  device-p99 {:>8.1}us  ({} verified)",
                hot * 100.0,
                r.lookups_per_sim_sec,
                r.tier_hit_rate * 100.0,
                r.e2e.p50 as f64 / 1e3,
                r.e2e.p99 as f64 / 1e3,
                r.tier_service.p99 as f64 / 1e3,
                r.device_service.p99 as f64 / 1e3,
                r.verified,
            );
        }
        println!();
    }
    println!("Pinning the profiled-hot head of each table in host DRAM absorbs most");
    println!("of the skewed traffic; the SSD shards serve only the cold tail, and the");
    println!("merged hybrid outputs stay bit-identical to the single-device reference.");
}
