//! Static hot/cold partitioning: profile a skewed workload, pin the hot
//! embedding rows in host DRAM, and ship only the cold lookups to the
//! SSD's NDP engine (§4.2 of the paper).
//!
//! ```text
//! cargo run --release --example hot_cold_partitioning
//! ```

use recssd_suite::prelude::*;

fn main() {
    let rows = 20_000u64;
    // Full-scale Cosmos+ device so the 20K-page table fits a slot.
    let mut sys = System::new(RecSsdConfig::cosmos());
    let spec = TableSpec::new(rows, 32, Quantization::F32);
    let table = sys.add_table(TableImage::new(
        EmbeddingTable::procedural(spec, 3),
        PageLayout::Spread,
        16 * 1024,
    ));

    // A skewed access stream: 75% of lookups hit a 512-row hot set.
    let mut rng = recssd_sim::rng::Xoshiro256::seed_from(11);
    let mut draw = move || -> u64 {
        if rng.gen_bool(0.75) {
            // hot region, scattered over the table
            recssd_sim::rng::mix64(rng.gen_range(0..512)) % 512 * 39 % 20_000
        } else {
            rng.gen_range(0..20_000)
        }
    };

    // Profile, then build a 512-entry partition.
    let mut profiler = StaticPartitionBuilder::new();
    for _ in 0..100_000 {
        profiler.observe(draw());
    }
    let partition = profiler.build(512);
    println!(
        "profiled {} distinct rows; partition pins {} ({}% of used id space)",
        profiler.distinct_ids(),
        partition.len(),
        (partition.hot_fraction() * 100.0).round(),
    );
    sys.set_partition(table, partition);

    let batch = |draw: &mut dyn FnMut() -> u64| {
        LookupBatch::new((0..16).map(|_| (0..40).map(|_| draw()).collect()).collect())
    };

    // The same batch without and with partitioning, measured one at a
    // time so the two runs don't contend for the device.
    let b = batch(&mut draw);
    let plain = sys.submit(OpKind::ndp_sls(table, b.clone(), SlsOptions::default()));
    sys.run_until_idle();
    sys.device_mut().ftl_mut().drop_caches();
    let parted = sys.submit(OpKind::ndp_sls(
        table,
        b.clone(),
        SlsOptions {
            use_partition: true,
            ..SlsOptions::default()
        },
    ));
    sys.run_until_idle();
    let dram = sys.submit(OpKind::dram_sls(table, b));
    sys.run_until_idle();

    assert_eq!(sys.result(plain).outputs, sys.result(dram).outputs);
    assert_eq!(sys.result(parted).outputs, sys.result(dram).outputs);

    let stats = sys.partition_stats(table).expect("partition used");
    println!(
        "partition absorbed {}/{} lookups ({:.0}%)",
        stats.hits(),
        stats.accesses(),
        stats.hit_rate() * 100.0
    );
    println!(
        "NDP without partition: {}",
        sys.result(plain).service_time()
    );
    println!(
        "NDP with partition   : {}",
        sys.result(parted).service_time()
    );
    println!(
        "partitioning speedup  : {:.2}x (results bit-identical to DRAM)",
        sys.result(plain).service_time().as_ns() as f64
            / sys.result(parted).service_time().as_ns() as f64
    );
}
