//! Device explorer: poke the simulated SSD directly through its NVMe
//! interface — conventional reads/writes, the firmware IOPS ceiling, and
//! a hand-rolled NDP command pair (the same bytes the RecSSD host driver
//! sends).
//!
//! ```text
//! cargo run --release --example device_explorer
//! ```

use recssd::{NdpSlsEngine, SlsConfig};
use recssd_embedding::Quantization;
use recssd_nvme::NvmeCommand;
use recssd_sim::{EventQueue, SimTime};
use recssd_ssd::{SsdConfig, SsdDevice, SsdEvent};

/// Minimal host loop around a raw device.
struct RawHost {
    dev: SsdDevice<NdpSlsEngine>,
    q: EventQueue<SsdEvent>,
}

impl RawHost {
    fn submit(&mut self, qid: u16, cmd: NvmeCommand) {
        let RawHost { dev, q } = self;
        dev.queue(qid).submit(cmd).expect("queue has room");
        dev.doorbell(q.now(), qid, &mut |d, e| q.push_after(d, e));
    }

    fn drain(&mut self) -> SimTime {
        let mut last = self.q.now();
        while let Some((now, ev)) = self.q.pop() {
            let RawHost { dev, q } = self;
            dev.handle(now, ev, &mut |d, e| q.push_after(d, e));
            last = now;
        }
        last
    }
}

fn main() {
    let cfg = SsdConfig::cosmos_small();
    let ndp = recssd::NdpConfig {
        table_align: 1 << 10,
        ..recssd::NdpConfig::cosmos()
    };
    let mut host = RawHost {
        dev: SsdDevice::with_engine(cfg, NdpSlsEngine::new(ndp)),
        q: EventQueue::new(),
    };

    // 1. Write two rows of "embedding" data as ordinary blocks.
    println!("--- conventional write/read ---");
    let mut page = vec![0u8; 16 * 1024];
    for (i, v) in [1.5f32, -0.25, 3.0].iter().enumerate() {
        page[i * 4..i * 4 + 4].copy_from_slice(&v.to_le_bytes());
    }
    host.submit(0, NvmeCommand::write(1, 5, 1, page));
    let t = host.drain();
    println!("write persisted at {t}");
    host.submit(0, NvmeCommand::read(2, 5, 1));
    host.drain();
    let completion = host.dev.queue(0).poll().expect("write done");
    assert_eq!(completion.cid, 1);
    let completion = host.dev.queue(0).poll().expect("read done");
    let data = completion.data.expect("read data");
    println!(
        "read back: {:?}",
        (0..3)
            .map(|i| f32::from_le_bytes(data[i * 4..i * 4 + 4].try_into().unwrap()))
            .collect::<Vec<_>>()
    );

    // 2. The firmware IOPS ceiling (§3.2 of the paper).
    println!("\n--- random-read IOPS ceiling ---");
    let n = 64u64;
    let t0 = host.q.now();
    for i in 0..n {
        host.submit(
            (i % 4) as u16,
            NvmeCommand::read(100 + i as u16, i * 3 % 512, 1),
        );
    }
    let t1 = host.drain();
    let iops = n as f64 / t1.saturating_since(t0).as_secs_f64();
    println!("{n} random single-block reads -> {iops:.0} IOPS (firmware-bound)");
    for qid in 0..4 {
        while host.dev.queue(qid).poll().is_some() {}
    }

    // 3. A raw NDP command pair: gather rows 0 and 1 of the "table" we
    //    wrote at block 0 onto one result vector.
    println!("\n--- raw NDP SLS command pair ---");
    host.submit(0, {
        let mut p = vec![0u8; 16 * 1024];
        p[..4].copy_from_slice(&2.0f32.to_le_bytes());
        NvmeCommand::write(3, 0, 1, p)
    });
    host.drain();
    host.dev.queue(0).poll();
    let config = SlsConfig {
        dim: 1,
        quant: Quantization::F32,
        rows_per_page: 1,
        n_results: 1,
        pairs: vec![(0, 0), (5, 0)], // row at block 0 plus the row at block 5
    };
    let slba = NvmeCommand::ndp_slba(0, 9, 1 << 10);
    host.submit(0, NvmeCommand::ndp_write(4, slba, config.encode()));
    host.drain();
    let done = host.dev.queue(0).poll().expect("config accepted");
    println!("config-write completed: {}", done.status);
    host.submit(0, NvmeCommand::ndp_read(5, slba, 1));
    host.drain();
    let result = host.dev.queue(0).poll().expect("results ready");
    let bytes = result.data.expect("result block");
    let sum = f32::from_le_bytes(bytes[..4].try_into().unwrap());
    println!("device-accumulated sum of rows 0 and 5: {sum} (expect 3.5)");
    assert_eq!(sum, 3.5);
}
