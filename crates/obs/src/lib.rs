//! Observability for the RecSSD stack.
//!
//! Three orthogonal facilities, all designed around the discrete-event
//! simulator's virtual clock:
//!
//! * [`trace`] — causally-linked **sim-time spans** (request → sub-batch →
//!   device op → firmware charge / flash read / accumulate / merge). A
//!   [`Tracer`] is zero-cost when disabled: every emission method is an
//!   inline `None` check, no allocation, no time perturbation, so a
//!   disabled-tracing run is bit-identical to an untraced build (the
//!   alloc-free guards in `crates/core` enforce the "no allocation" half).
//! * [`registry`] — a **unified metrics registry**: counters, gauges,
//!   histograms and hit-ratio stats registered by name with labels, backed
//!   by shared handles so the serving telemetry, fault counters and cache
//!   stats all feed one source of truth with one registry-wide reset and
//!   one JSONL snapshot path.
//! * [`profile`] — **wall-clock self-profiling** of the simulator itself
//!   (event dispatch vs device stepping vs harvest/accumulate), the
//!   baseline any future parallel stepper must beat.
//!
//! [`chrome`] exports recorded spans as Chrome-trace/Perfetto JSON and
//! validates the span invariants (parent links resolve, children nest
//! within parents, request spans are covered by their children).
//!
//! On top of the raw telemetry sit two **analysis** layers — pure
//! observers over recorded spans, so they can run live or on a saved
//! trace and never perturb the simulation:
//!
//! * [`analysis`] — per-request **critical-path extraction** (e2e
//!   latency segmented into named phases with a ≥95 % conservation
//!   check) and **bottleneck ranking + headroom** estimation.
//! * [`timeline`] — per-resource busy/idle/wait
//!   [`UtilizationTimeline`]s over sim-time windows, with
//!   Little's-law-consistent queueing stats and a windowed JSONL series.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
pub mod chrome;
pub mod profile;
pub mod registry;
pub mod timeline;
pub mod trace;

pub use analysis::{
    bottleneck_report, critical_path_report, request_critical_paths, BottleneckReport,
    CriticalPathReport, LatSummary, PathHeadroom, PathProfile, Phase, RequestProfile, ResourceUse,
};
pub use chrome::{
    chrome_trace_json, coverage_report, validate_spans, CoverageGap, RequestCoverage, TraceCheck,
};
pub use profile::{WallPhase, WallPhaseReport, WallProfile, WorkerProfile};
pub use registry::{CounterH, GaugeH, HistH, HitsH, MetricValue, MetricsRegistry};
pub use timeline::{utilization_timelines, ResourceKind, UtilWindow, UtilizationTimeline};
pub use trace::{SpanId, SpanRec, TraceSink, Tracer};
