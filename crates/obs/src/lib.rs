//! Observability for the RecSSD stack.
//!
//! Three orthogonal facilities, all designed around the discrete-event
//! simulator's virtual clock:
//!
//! * [`trace`] — causally-linked **sim-time spans** (request → sub-batch →
//!   device op → firmware charge / flash read / accumulate / merge). A
//!   [`Tracer`] is zero-cost when disabled: every emission method is an
//!   inline `None` check, no allocation, no time perturbation, so a
//!   disabled-tracing run is bit-identical to an untraced build (the
//!   alloc-free guards in `crates/core` enforce the "no allocation" half).
//! * [`registry`] — a **unified metrics registry**: counters, gauges,
//!   histograms and hit-ratio stats registered by name with labels, backed
//!   by shared handles so the serving telemetry, fault counters and cache
//!   stats all feed one source of truth with one registry-wide reset and
//!   one JSONL snapshot path.
//! * [`profile`] — **wall-clock self-profiling** of the simulator itself
//!   (event dispatch vs device stepping vs harvest/accumulate), the
//!   baseline any future parallel stepper must beat.
//!
//! [`chrome`] exports recorded spans as Chrome-trace/Perfetto JSON and
//! validates the span invariants (parent links resolve, children nest
//! within parents, request spans are covered by their children).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chrome;
pub mod profile;
pub mod registry;
pub mod trace;

pub use chrome::{chrome_trace_json, validate_spans, TraceCheck};
pub use profile::{WallPhase, WallPhaseReport, WallProfile, WorkerProfile};
pub use registry::{CounterH, GaugeH, HistH, HitsH, MetricValue, MetricsRegistry};
pub use trace::{SpanId, SpanRec, TraceSink, Tracer};
