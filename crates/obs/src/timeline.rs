//! Per-resource utilization timelines and queueing decomposition.
//!
//! [`utilization_timelines`] turns a recorded span trace into one
//! [`UtilizationTimeline`] per simulated resource — the firmware core
//! and flash array of every device shard, each shard's host-side
//! operator queue, and the DRAM tier — bucketed into fixed sim-time
//! windows. Server resources report busy/idle fractions (union of
//! their busy spans); queue resources report arrival rate, time-average
//! occupancy and mean wait, which are **Little's-law-consistent** by
//! construction over the whole run (`L = λ·W`, checked in tests via two
//! independent computations: an event-sweep occupancy integral vs the
//! per-span duration sums).
//!
//! Like the [`crate::analysis`] module this is a pure observer over
//! recorded spans: the same trace always produces byte-identical
//! timelines and JSONL series, across `Sequential` and `Parallel(n)`
//! execution alike.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::trace::{track, SpanRec};

/// What kind of resource a timeline describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResourceKind {
    /// A serving resource with a busy/idle state (firmware core, flash
    /// array, DRAM tier).
    Server,
    /// A waiting room (shard operator queue): occupancy and wait are
    /// the interesting stats, "busy" is the any-waiter union.
    Queue,
}

impl ResourceKind {
    /// Stable lowercase name for the JSONL series.
    pub fn name(self) -> &'static str {
        match self {
            ResourceKind::Server => "server",
            ResourceKind::Queue => "queue",
        }
    }
}

/// One sim-time window of a resource's timeline.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct UtilWindow {
    /// Window start, ns of virtual time (inclusive).
    pub start_ns: u64,
    /// Window end, ns (exclusive).
    pub end_ns: u64,
    /// Union of busy intervals clipped to the window, ns.
    pub busy_ns: u64,
    /// Sum of per-occupant interval lengths clipped to the window, ns
    /// (equals the occupancy integral; ≥ `busy_ns` under overlap).
    pub wait_ns: u64,
    /// Intervals that *start* inside the window.
    pub arrivals: u64,
    /// Intervals that *end* inside the window.
    pub completions: u64,
    /// Time-average number of concurrently active intervals, computed
    /// by an independent event sweep (Little's `L`).
    pub occupancy: f64,
}

impl UtilWindow {
    /// Busy fraction of the window.
    pub fn utilization(&self) -> f64 {
        let len = self.end_ns.saturating_sub(self.start_ns);
        if len == 0 {
            return 0.0;
        }
        self.busy_ns as f64 / len as f64
    }
}

/// A resource's busy/idle/wait decomposition over sim-time windows.
#[derive(Debug, Clone, PartialEq)]
pub struct UtilizationTimeline {
    /// Resource name, e.g. `fw:core[shard=0]` or `queue[shard=1]`.
    pub resource: String,
    /// Server or queue semantics.
    pub kind: ResourceKind,
    /// Window length, ns.
    pub window_ns: u64,
    /// The windows, in time order, covering `[0, elapsed)`.
    pub windows: Vec<UtilWindow>,
    /// Whole-run elapsed time the totals are measured over, ns.
    pub elapsed_ns: u64,
    /// Whole-run busy union, ns.
    pub total_busy_ns: u64,
    /// Whole-run sum of interval lengths, ns (Σ per-arrival wait).
    pub total_wait_ns: u64,
    /// Whole-run interval count (arrivals).
    pub total_arrivals: u64,
}

impl UtilizationTimeline {
    /// Whole-run busy fraction.
    pub fn utilization(&self) -> f64 {
        if self.elapsed_ns == 0 {
            return 0.0;
        }
        self.total_busy_ns as f64 / self.elapsed_ns as f64
    }

    /// Whole-run arrival rate, intervals per simulated second.
    pub fn arrival_rate_per_s(&self) -> f64 {
        if self.elapsed_ns == 0 {
            return 0.0;
        }
        self.total_arrivals as f64 * 1e9 / self.elapsed_ns as f64
    }

    /// Whole-run mean wait (mean interval length), ns.
    pub fn mean_wait_ns(&self) -> f64 {
        if self.total_arrivals == 0 {
            return 0.0;
        }
        self.total_wait_ns as f64 / self.total_arrivals as f64
    }

    /// Whole-run time-average occupancy (Little's `L`), from the
    /// summed interval mass.
    pub fn occupancy(&self) -> f64 {
        if self.elapsed_ns == 0 {
            return 0.0;
        }
        self.total_wait_ns as f64 / self.elapsed_ns as f64
    }

    /// `|L − λ·W|`, which is zero (up to float rounding) whenever every
    /// interval lies inside the measured run — the Little's-law
    /// consistency this module guarantees.
    pub fn littles_law_residual(&self) -> f64 {
        let lam_w = self.arrival_rate_per_s() / 1e9 * self.mean_wait_ns();
        (self.occupancy() - lam_w).abs()
    }

    /// Windowed JSONL series in the registry snapshot style: one line
    /// per window, deterministic field order and float formatting.
    pub fn snapshot_jsonl(&self) -> String {
        let mut out = String::new();
        for (i, w) in self.windows.iter().enumerate() {
            let _ = writeln!(
                out,
                "{{\"resource\":\"{}\",\"kind\":\"{}\",\"window\":{},\"start_ns\":{},\"end_ns\":{},\"busy_ns\":{},\"util\":{:.6},\"wait_ns\":{},\"arrivals\":{},\"completions\":{},\"occupancy\":{:.6}}}",
                self.resource,
                self.kind.name(),
                i,
                w.start_ns,
                w.end_ns,
                w.busy_ns,
                w.utilization(),
                w.wait_ns,
                w.arrivals,
                w.completions,
                w.occupancy,
            );
        }
        out
    }
}

/// Builds one timeline from a resource's raw intervals.
fn build(
    resource: String,
    kind: ResourceKind,
    mut ivs: Vec<(u64, u64)>,
    window_ns: u64,
    elapsed_ns: u64,
) -> UtilizationTimeline {
    ivs.sort_unstable();
    let total_arrivals = ivs.len() as u64;
    let total_wait_ns: u64 = ivs.iter().map(|&(a, b)| b - a).sum();
    let total_busy_ns = {
        let mut u = ivs.clone();
        crate::analysis::union_len(&mut u)
    };
    let n_windows = if elapsed_ns == 0 {
        0
    } else {
        elapsed_ns.div_ceil(window_ns)
    };
    let mut windows = Vec::with_capacity(n_windows as usize);
    for k in 0..n_windows {
        let (ws, we) = (k * window_ns, ((k + 1) * window_ns).min(elapsed_ns));
        let mut busy: Vec<(u64, u64)> = Vec::new();
        let mut wait = 0u64;
        let mut arrivals = 0u64;
        let mut completions = 0u64;
        // Event sweep for the occupancy integral: an independent
        // computation that must agree with the clipped-duration sum.
        let mut events: Vec<(u64, i64)> = Vec::new();
        for &(a, b) in &ivs {
            if a >= we {
                break;
            }
            if b <= ws {
                continue;
            }
            if a >= ws {
                arrivals += 1;
            }
            if b <= we {
                completions += 1;
            }
            let (ca, cb) = (a.max(ws), b.min(we));
            if cb > ca {
                busy.push((ca, cb));
                wait += cb - ca;
                events.push((ca, 1));
                events.push((cb, -1));
            }
        }
        events.sort_unstable();
        let mut depth = 0i64;
        let mut integral = 0u128;
        let mut cur = ws;
        for (t, d) in events {
            if t > cur {
                integral += depth as u128 * (t - cur) as u128;
                cur = t;
            }
            depth += d;
        }
        let len = we - ws;
        windows.push(UtilWindow {
            start_ns: ws,
            end_ns: we,
            busy_ns: crate::analysis::union_len(&mut busy),
            wait_ns: wait,
            arrivals,
            completions,
            occupancy: if len == 0 {
                0.0
            } else {
                integral as f64 / len as f64
            },
        });
    }
    UtilizationTimeline {
        resource,
        kind,
        window_ns,
        windows,
        elapsed_ns,
        total_busy_ns,
        total_wait_ns,
        total_arrivals,
    }
}

/// Decomposes a trace into per-resource utilization timelines with
/// `window_ns`-wide buckets: firmware core and flash array per device
/// shard, host-side operator queue per shard (from `sub:wait` spans'
/// `shard` argument), and the DRAM tier when the trace has one.
/// Timelines are sorted by resource name; the list is empty for an
/// empty trace.
pub fn utilization_timelines(spans: &[SpanRec], window_ns: u64) -> Vec<UtilizationTimeline> {
    assert!(window_ns > 0, "window_ns must be positive");
    let mut elapsed = 0u64;
    let mut servers: HashMap<String, Vec<(u64, u64)>> = HashMap::new();
    let mut queues: HashMap<String, Vec<(u64, u64)>> = HashMap::new();
    for s in spans {
        elapsed = elapsed.max(s.end_ns);
        match s.name {
            "fw:exec" => servers
                .entry(format!("fw:core[shard={}]", s.pid.saturating_sub(1)))
                .or_default()
                .push((s.start_ns, s.end_ns)),
            "fw:engine" => servers
                .entry(format!("fw:engine[shard={}]", s.pid.saturating_sub(1)))
                .or_default()
                .push((s.start_ns, s.end_ns)),
            "flash:read" => servers
                .entry(format!("flash[shard={}]", s.pid.saturating_sub(1)))
                .or_default()
                .push((s.start_ns, s.end_ns)),
            "op" if s.pid == track::PID_TIER => servers
                .entry("tier:dram".to_string())
                .or_default()
                .push((s.start_ns, s.end_ns)),
            "sub:wait" if s.arg_key == "shard" => {
                let name = if s.arg_val == track::PID_TIER as u64 {
                    "queue[tier]".to_string()
                } else {
                    format!("queue[shard={}]", s.arg_val.saturating_sub(1))
                };
                queues.entry(name).or_default().push((s.start_ns, s.end_ns));
            }
            _ => {}
        }
    }
    let mut out: Vec<UtilizationTimeline> = servers
        .into_iter()
        .map(|(name, ivs)| build(name, ResourceKind::Server, ivs, window_ns, elapsed))
        .chain(
            queues
                .into_iter()
                .map(|(name, ivs)| build(name, ResourceKind::Queue, ivs, window_ns, elapsed)),
        )
        .collect();
    out.sort_by(|a, b| a.resource.cmp(&b.resource));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{SpanId, TraceSink};
    use recssd_sim::{SimDuration, SimTime};

    fn t(ns: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_ns(ns)
    }

    fn spans() -> Vec<SpanRec> {
        let sink = TraceSink::new();
        let host = sink.tracer(0, track::TID_HOST);
        let fw = sink.tracer(1, track::TID_FW);
        fw.span("fw:exec", t(0), t(40), SpanId::NONE);
        fw.span("fw:exec", t(60), t(100), SpanId::NONE);
        let s1 = host.alloc_id();
        let s2 = host.alloc_id();
        host.span_arg("sub:wait", t(0), t(30), s1, "shard", 1);
        host.span_arg("sub:wait", t(10), t(50), s2, "shard", 1);
        sink.take_spans()
    }

    #[test]
    fn windows_cover_the_run_and_split_busy_time() {
        let tls = utilization_timelines(&spans(), 50);
        assert_eq!(tls.len(), 2);
        let fw = &tls[0];
        assert_eq!(fw.resource, "fw:core[shard=0]");
        assert_eq!(fw.kind, ResourceKind::Server);
        assert_eq!(fw.windows.len(), 2);
        assert_eq!(fw.windows[0].busy_ns, 40);
        assert_eq!(fw.windows[1].busy_ns, 40);
        assert_eq!(fw.total_busy_ns, 80);
        assert!((fw.utilization() - 0.8).abs() < 1e-12);
        assert_eq!(fw.windows[0].arrivals, 1);
        assert_eq!(fw.windows[1].arrivals, 1);
    }

    #[test]
    fn queue_stats_are_littles_law_consistent() {
        let tls = utilization_timelines(&spans(), 50);
        let q = &tls[1];
        assert_eq!(q.resource, "queue[shard=0]");
        assert_eq!(q.kind, ResourceKind::Queue);
        // Two waiters: 30 ns + 40 ns over a 100 ns run.
        assert_eq!(q.total_arrivals, 2);
        assert_eq!(q.total_wait_ns, 70);
        assert!((q.occupancy() - 0.7).abs() < 1e-12);
        assert!(q.littles_law_residual() < 1e-9);
        // Overlap 10–30 shows up in the busy union but doubles in the
        // occupancy integral of window 0.
        assert_eq!(q.windows[0].busy_ns, 50);
        assert_eq!(q.windows[0].wait_ns, 70);
        assert!((q.windows[0].occupancy - 1.4).abs() < 1e-12);
        // The sweep integral and the clipped-duration sum must agree
        // in every window (two independent computations of L).
        for w in &q.windows {
            let len = (w.end_ns - w.start_ns) as f64;
            assert!((w.occupancy * len - w.wait_ns as f64).abs() < 1e-6);
        }
    }

    #[test]
    fn jsonl_series_is_deterministic_and_windowed() {
        let a = utilization_timelines(&spans(), 50);
        let b = utilization_timelines(&spans(), 50);
        assert_eq!(a, b);
        let j = a[0].snapshot_jsonl();
        assert_eq!(j, b[0].snapshot_jsonl());
        assert_eq!(j.lines().count(), 2);
        assert!(j.contains("\"resource\":\"fw:core[shard=0]\""));
        assert!(j.contains("\"kind\":\"server\""));
        assert!(j.contains("\"util\":0.800000"));
    }

    #[test]
    fn empty_trace_yields_no_timelines() {
        assert!(utilization_timelines(&[], 100).is_empty());
    }
}
