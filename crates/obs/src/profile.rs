//! Wall-clock self-profiling of the simulator.
//!
//! The ROADMAP's next tentpole — a parallel wall-clock stepper — needs
//! to know where the *simulator's own* time goes, not the simulated
//! system's. [`WallProfile`] accumulates real (`std::time::Instant`)
//! nanoseconds per coarse phase of the serving co-simulation loop. It is
//! off by default and, when disabled, every call is an inline boolean
//! check: no clock reads, no perturbation of throughput benchmarks.

use std::time::Instant;

/// The coarse phases of the serving co-simulation loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WallPhase {
    /// Admitting arrivals: request split, routing, queue insertion.
    Admit,
    /// Serving-level event dispatch (the `step()` match itself).
    EventDispatch,
    /// Stepping the device shards (`System::run_until` co-simulation) —
    /// the flash/FTL/NVMe model, the bulk of the wall time.
    DeviceStep,
    /// Harvesting completions and folding partial sums (host accumulate
    /// and merge bookkeeping).
    Harvest,
}

impl WallPhase {
    const N: usize = 4;

    fn index(self) -> usize {
        match self {
            WallPhase::Admit => 0,
            WallPhase::EventDispatch => 1,
            WallPhase::DeviceStep => 2,
            WallPhase::Harvest => 3,
        }
    }

    /// Stable snake_case name for reports.
    pub fn name(self) -> &'static str {
        match self {
            WallPhase::Admit => "admit",
            WallPhase::EventDispatch => "event_dispatch",
            WallPhase::DeviceStep => "device_step",
            WallPhase::Harvest => "harvest",
        }
    }

    /// All phases, report order.
    pub fn all() -> [WallPhase; Self::N] {
        [
            WallPhase::Admit,
            WallPhase::EventDispatch,
            WallPhase::DeviceStep,
            WallPhase::Harvest,
        ]
    }
}

/// One phase's accumulated wall time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WallPhaseReport {
    /// Phase name (snake_case).
    pub phase: &'static str,
    /// Accumulated wall nanoseconds.
    pub nanos: u64,
    /// Number of timed sections.
    pub count: u64,
}

/// Accumulated wall-clock nanoseconds per [`WallPhase`].
#[derive(Debug, Clone, Default)]
pub struct WallProfile {
    enabled: bool,
    nanos: [u64; WallPhase::N],
    counts: [u64; WallPhase::N],
}

impl WallProfile {
    /// A disabled profile (every call is a no-op).
    pub fn new() -> Self {
        WallProfile::default()
    }

    /// Turns timing on.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// `true` when sections are actually timed.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Starts a timed section; pass the token to [`WallProfile::end`].
    #[inline]
    pub fn begin(&self) -> Option<Instant> {
        if self.enabled {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Ends a timed section started by [`WallProfile::begin`].
    #[inline]
    pub fn end(&mut self, phase: WallPhase, token: Option<Instant>) {
        if let Some(t0) = token {
            let i = phase.index();
            self.nanos[i] += t0.elapsed().as_nanos() as u64;
            self.counts[i] += 1;
        }
    }

    /// Accumulated wall nanoseconds for one phase.
    pub fn nanos(&self, phase: WallPhase) -> u64 {
        self.nanos[phase.index()]
    }

    /// Per-phase report in stable order.
    pub fn report(&self) -> Vec<WallPhaseReport> {
        WallPhase::all()
            .into_iter()
            .map(|p| WallPhaseReport {
                phase: p.name(),
                nanos: self.nanos[p.index()],
                count: self.counts[p.index()],
            })
            .collect()
    }

    /// Zeros all accumulators (keeps the enabled flag).
    pub fn reset(&mut self) {
        self.nanos = [0; WallPhase::N];
        self.counts = [0; WallPhase::N];
    }
}

/// Wall-clock self-profile of one parallel-stepper worker thread:
/// how much real time it spent advancing its shards vs waiting at the
/// window barrier, and how many sync windows it executed. Barrier-wait
/// dominance on some workers and not others is the signature of shard
/// imbalance; uniform barrier dominance means the windows are too short
/// for the available parallelism.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerProfile {
    /// Worker index (0-based).
    pub worker: usize,
    /// Wall nanoseconds spent advancing shard `System`s (useful work).
    pub advance_ns: u64,
    /// Wall nanoseconds spent parked/spinning at the window barrier.
    pub barrier_ns: u64,
    /// Number of sync windows this worker participated in.
    pub windows: u64,
}

impl WorkerProfile {
    /// Fraction of this worker's measured wall time that was useful
    /// advance work (0 when nothing was measured).
    pub fn utilization(&self) -> f64 {
        let total = self.advance_ns + self.barrier_ns;
        if total == 0 {
            0.0
        } else {
            self.advance_ns as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profile_records_nothing() {
        let mut p = WallProfile::new();
        let t = p.begin();
        assert!(t.is_none());
        p.end(WallPhase::DeviceStep, t);
        assert!(p.report().iter().all(|r| r.nanos == 0 && r.count == 0));
    }

    #[test]
    fn enabled_profile_accumulates_per_phase() {
        let mut p = WallProfile::new();
        p.enable();
        let t = p.begin();
        std::hint::black_box(0u64);
        p.end(WallPhase::Harvest, t);
        let r = p.report();
        assert_eq!(r.len(), 4);
        let harvest = r.iter().find(|x| x.phase == "harvest").unwrap();
        assert_eq!(harvest.count, 1);
        assert_eq!(p.nanos(WallPhase::Admit), 0);
        p.reset();
        assert!(p.enabled());
        assert_eq!(p.report()[3].count, 0);
    }
}
