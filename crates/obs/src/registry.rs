//! The unified metrics registry.
//!
//! Every counter, gauge, histogram and hit-ratio stat of the serving
//! stack registers here by name plus `(key, value)` labels (shard, path,
//! table — tenant-ready). The registry hands out cheap shared handles
//! ([`CounterH`], [`HistH`], …) that the hot path mutates directly — the
//! registry itself is only walked for snapshots and resets, so
//! registration cost never touches steady-state serving.
//!
//! One registry gives the stack three things ad-hoc structs could not:
//! a **single reset** ([`MetricsRegistry::reset_all`]) covering every
//! metric, a **flat sample dump** ([`MetricsRegistry::samples`]) for
//! all-zeros-after-reset audits, and **JSONL time-series snapshots**
//! ([`MetricsRegistry::snapshot_jsonl`]) for drift/fault scenarios.

use std::cell::{Cell, RefCell};
use std::fmt::Write as _;
use std::rc::Rc;

use recssd_sim::stats::{HitStats, LogHistogram, Quantiles};
use recssd_sim::{SimDuration, SimTime};

/// Shared counter handle (monotonic `u64`).
#[derive(Debug, Clone, Default)]
pub struct CounterH(Rc<Cell<u64>>);

impl CounterH {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.set(self.0.get() + 1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.set(self.0.get() + n);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.get()
    }

    /// Resets to zero.
    pub fn reset(&self) {
        self.0.set(0);
    }
}

/// Shared gauge handle (`f64` last-write-wins).
#[derive(Debug, Clone, Default)]
pub struct GaugeH(Rc<Cell<f64>>);

impl GaugeH {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.set(v);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> f64 {
        self.0.get()
    }

    /// Resets to zero.
    pub fn reset(&self) {
        self.0.set(0.0);
    }
}

/// Shared HDR-histogram handle.
#[derive(Debug, Clone, Default)]
pub struct HistH(Rc<RefCell<LogHistogram>>);

impl HistH {
    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.0.borrow_mut().record(v);
    }

    /// Records a duration in nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: SimDuration) {
        self.0.borrow_mut().record_duration(d);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.0.borrow().count()
    }

    /// Quantile summary (p50/p95/p99/p999, mean, max).
    pub fn quantiles(&self) -> Quantiles {
        self.0.borrow().quantiles()
    }

    /// A detached copy of the underlying histogram (e.g. for fleet-level
    /// merging across shards via [`LogHistogram::merge`]).
    pub fn snapshot(&self) -> LogHistogram {
        self.0.borrow().clone()
    }

    /// Merges another histogram's samples into this one.
    pub fn merge(&self, other: &LogHistogram) {
        self.0.borrow_mut().merge(other);
    }

    /// Resets to empty.
    pub fn reset(&self) {
        self.0.borrow_mut().reset();
    }
}

/// Shared hit/miss stats handle.
#[derive(Debug, Clone, Default)]
pub struct HitsH(Rc<RefCell<HitStats>>);

impl HitsH {
    /// Records one hit.
    #[inline]
    pub fn hit(&self) {
        self.0.borrow_mut().hit();
    }

    /// Records one miss.
    #[inline]
    pub fn miss(&self) {
        self.0.borrow_mut().miss();
    }

    /// Records `n` hits.
    #[inline]
    pub fn add_hits(&self, n: u64) {
        self.0.borrow_mut().add_hits(n);
    }

    /// Records `n` misses.
    #[inline]
    pub fn add_misses(&self, n: u64) {
        self.0.borrow_mut().add_misses(n);
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.0.borrow().hits()
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.0.borrow().misses()
    }

    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.0.borrow().accesses()
    }

    /// Hit fraction in `[0, 1]` (zero when empty).
    pub fn hit_rate(&self) -> f64 {
        self.0.borrow().hit_rate()
    }

    /// A detached copy of the underlying stats.
    pub fn snapshot(&self) -> HitStats {
        *self.0.borrow()
    }

    /// Resets both counters.
    pub fn reset(&self) {
        self.0.borrow_mut().reset();
    }
}

#[derive(Debug)]
enum Slot {
    Counter(CounterH),
    Gauge(GaugeH),
    Hist(HistH),
    Hits(HitsH),
}

#[derive(Debug)]
struct Entry {
    name: &'static str,
    labels: Vec<(&'static str, String)>,
    slot: Slot,
}

impl Entry {
    /// `name{k=v,...}` — the flat sample key.
    fn key(&self) -> String {
        let mut s = String::from(self.name);
        if !self.labels.is_empty() {
            s.push('{');
            for (i, (k, v)) in self.labels.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(s, "{k}={v}");
            }
            s.push('}');
        }
        s
    }
}

/// A snapshot value of one registered metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram summary.
    Hist(Quantiles),
    /// Hit/miss pair.
    Hits {
        /// Hits recorded.
        hits: u64,
        /// Misses recorded.
        misses: u64,
    },
}

/// The registry: name + labels → shared metric handle.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    entries: Vec<Entry>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    fn label_vec(labels: &[(&'static str, &str)]) -> Vec<(&'static str, String)> {
        labels.iter().map(|&(k, v)| (k, v.to_string())).collect()
    }

    /// Registers (and returns a handle to) a counter.
    pub fn counter(&mut self, name: &'static str, labels: &[(&'static str, &str)]) -> CounterH {
        let h = CounterH::default();
        self.entries.push(Entry {
            name,
            labels: Self::label_vec(labels),
            slot: Slot::Counter(h.clone()),
        });
        h
    }

    /// Registers (and returns a handle to) a gauge.
    pub fn gauge(&mut self, name: &'static str, labels: &[(&'static str, &str)]) -> GaugeH {
        let h = GaugeH::default();
        self.entries.push(Entry {
            name,
            labels: Self::label_vec(labels),
            slot: Slot::Gauge(h.clone()),
        });
        h
    }

    /// Registers (and returns a handle to) an HDR histogram.
    pub fn hist(&mut self, name: &'static str, labels: &[(&'static str, &str)]) -> HistH {
        let h = HistH::default();
        self.entries.push(Entry {
            name,
            labels: Self::label_vec(labels),
            slot: Slot::Hist(h.clone()),
        });
        h
    }

    /// Registers (and returns a handle to) hit/miss stats.
    pub fn hits(&mut self, name: &'static str, labels: &[(&'static str, &str)]) -> HitsH {
        let h = HitsH::default();
        self.entries.push(Entry {
            name,
            labels: Self::label_vec(labels),
            slot: Slot::Hits(h.clone()),
        });
        h
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Resets **every** registered metric to zero/empty — the one
    /// registry-wide reset the `reset_stats` audit hangs off.
    pub fn reset_all(&self) {
        for e in &self.entries {
            match &e.slot {
                Slot::Counter(h) => h.reset(),
                Slot::Gauge(h) => h.reset(),
                Slot::Hist(h) => h.reset(),
                Slot::Hits(h) => h.reset(),
            }
        }
    }

    /// Current value of every registered metric, keyed `name{k=v,...}`.
    pub fn samples(&self) -> Vec<(String, MetricValue)> {
        self.entries
            .iter()
            .map(|e| {
                let v = match &e.slot {
                    Slot::Counter(h) => MetricValue::Counter(h.get()),
                    Slot::Gauge(h) => MetricValue::Gauge(h.get()),
                    Slot::Hist(h) => MetricValue::Hist(h.quantiles()),
                    Slot::Hits(h) => MetricValue::Hits {
                        hits: h.hits(),
                        misses: h.misses(),
                    },
                };
                (e.key(), v)
            })
            .collect()
    }

    /// One JSONL time-series line: `{"epoch":…,"sim_ns":…,"metrics":{…}}`.
    /// Histograms summarise to count/mean/p50/p95/p99; hit stats to
    /// hits/misses. Skips empty histograms and zero counters to keep
    /// drift/fault series compact.
    pub fn snapshot_jsonl(&self, epoch: u64, now: SimTime) -> String {
        let mut s = String::with_capacity(256);
        let _ = write!(
            s,
            "{{\"epoch\":{},\"sim_ns\":{},\"metrics\":{{",
            epoch,
            now.as_ns()
        );
        let mut first = true;
        for e in &self.entries {
            let mut field = String::new();
            match &e.slot {
                Slot::Counter(h) => {
                    if h.get() > 0 {
                        let _ = write!(field, "{}", h.get());
                    }
                }
                Slot::Gauge(h) => {
                    if h.get() != 0.0 {
                        let _ = write!(field, "{}", h.get());
                    }
                }
                Slot::Hist(h) => {
                    let q = h.quantiles();
                    if q.count > 0 {
                        let _ = write!(
                            field,
                            "{{\"count\":{},\"mean\":{:.1},\"p50\":{},\"p95\":{},\"p99\":{}}}",
                            q.count, q.mean, q.p50, q.p95, q.p99
                        );
                    }
                }
                Slot::Hits(h) => {
                    if h.accesses() > 0 {
                        let _ =
                            write!(field, "{{\"hits\":{},\"misses\":{}}}", h.hits(), h.misses());
                    }
                }
            }
            if !field.is_empty() {
                if !first {
                    s.push(',');
                }
                first = false;
                let _ = write!(s, "\"{}\":{}", e.key(), field);
            }
        }
        s.push_str("}}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_state_with_the_registry() {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("serving.requests", &[]);
        let h = reg.hist("serving.latency.e2e", &[("path", "ndp")]);
        let hits = reg.hits("tier.lookups", &[("shard", "0")]);
        let g = reg.gauge("shard.occupancy", &[("shard", "0")]);
        c.add(3);
        h.record(100);
        hits.add_hits(2);
        hits.add_misses(1);
        g.set(0.5);

        let samples = reg.samples();
        assert_eq!(samples.len(), 4);
        assert_eq!(samples[0].0, "serving.requests");
        assert_eq!(samples[0].1, MetricValue::Counter(3));
        assert_eq!(samples[1].0, "serving.latency.e2e{path=ndp}");
        assert_eq!(samples[2].1, MetricValue::Hits { hits: 2, misses: 1 });
        assert_eq!(samples[3].1, MetricValue::Gauge(0.5));
    }

    #[test]
    fn reset_all_zeros_every_metric() {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("c", &[]);
        let h = reg.hist("h", &[]);
        let hits = reg.hits("hits", &[]);
        let g = reg.gauge("g", &[]);
        c.inc();
        h.record(7);
        hits.hit();
        g.set(9.0);
        reg.reset_all();
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        assert_eq!(hits.accesses(), 0);
        assert_eq!(g.get(), 0.0);
    }

    #[test]
    fn snapshot_jsonl_is_compact_and_parsable_shape() {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("c", &[]);
        let _quiet = reg.counter("quiet", &[]);
        let h = reg.hist("h", &[("path", "dram")]);
        c.add(2);
        h.record(10);
        h.record(20);
        let line = reg.snapshot_jsonl(3, SimTime::ZERO + SimDuration::from_us(1));
        assert!(line.starts_with("{\"epoch\":3,\"sim_ns\":1000,"));
        assert!(line.contains("\"c\":2"));
        assert!(line.contains("\"h{path=dram}\":{\"count\":2,"));
        assert!(!line.contains("quiet"), "zero counters are skipped");
    }

    #[test]
    fn hist_snapshot_merges_for_fleet_quantiles() {
        let mut reg = MetricsRegistry::new();
        let a = reg.hist("a", &[]);
        let b = reg.hist("b", &[]);
        a.record(10);
        b.record(1000);
        let mut fleet = a.snapshot();
        fleet.merge(&b.snapshot());
        assert_eq!(fleet.count(), 2);
        assert_eq!(fleet.max(), Some(1000));
    }

    #[test]
    fn merged_window_snapshots_reconstruct_the_alltime_histogram() {
        // Windowed operation: snapshot + merge per epoch, reset between
        // windows. Merging every window snapshot must reproduce the
        // histogram an unwindowed recorder would have seen — counts,
        // mean, extrema and quantiles all match exactly.
        let mut reg = MetricsRegistry::new();
        let h = reg.hist("lat", &[("path", "ndp")]);
        let mut alltime = recssd_sim::stats::LogHistogram::new();
        let mut merged = recssd_sim::stats::LogHistogram::new();
        let mut lines = Vec::new();
        for epoch in 0..3u64 {
            for i in 0..100u64 {
                let v = 1 + epoch * 1000 + i * 7;
                h.record(v);
                alltime.record(v);
            }
            merged.merge(&h.snapshot());
            lines.push(reg.snapshot_jsonl(epoch, SimTime::ZERO + SimDuration::from_us(epoch)));
            reg.reset_all();
        }
        assert_eq!(merged, alltime, "window merge must lose nothing");
        assert_eq!(merged.count(), 300);
        assert_eq!(merged.quantiles(), alltime.quantiles());
        // Each windowed snapshot line carried only that window's count,
        // and the post-reset registry reports the histogram as empty.
        for line in &lines {
            assert!(line.contains("\"count\":100"), "{line}");
        }
        let empty = reg.snapshot_jsonl(3, SimTime::ZERO);
        assert!(!empty.contains("lat"), "reset hist is skipped: {empty}");
    }
}
