//! Sim-time span tracing.
//!
//! A [`TraceSink`] owns the recorded spans; [`Tracer`] handles (cheap
//! `Arc` clones, one per component/track) write into it. A disabled
//! tracer holds no sink: every method is an inline `None` check that
//! performs no work and no allocation, so leaving tracing off cannot
//! perturb the simulation (bit-identity is CI-tested in
//! `crates/serving`).
//!
//! Spans are **complete** at emission: the emitter supplies both
//! endpoints on the virtual timeline. Parents may be emitted *after*
//! their children — allocate the parent's [`SpanId`] up front with
//! [`Tracer::alloc_id`] and emit the span once its end time is known
//! (e.g. a request span is allocated at admission and emitted at
//! completion, after every sub-batch span already referenced it).
//!
//! # Threading and id namespaces
//!
//! Sinks are `Send + Sync` (`Arc<Mutex<_>>` inside), so a simulated
//! component can be stepped on a worker thread while it traces. For
//! deterministic ids under parallel execution, each sink carries an **id
//! namespace** ([`TraceSink::namespaced`]): allocated ids are
//! `(namespace << 40) | counter`, so ids from different sinks never
//! collide and a span in one sink may reference a parent allocated in
//! another. Namespace 0 ([`TraceSink::new`]) yields the plain ids
//! `1, 2, 3, …`. Per-component sinks + namespaced ids are what make a
//! multi-threaded trace bit-identical to its sequential counterpart:
//! each component's allocation sequence depends only on that component's
//! own event order, never on cross-thread interleaving.

use std::sync::{Arc, Mutex};

use recssd_sim::SimTime;

/// Conventional track ids, so every layer of the stack lands on a stable
/// row in the trace viewer. `pid` groups by shard (0 = serving-global,
/// `i + 1` = device shard `i`, [`track::PID_TIER`] = the host DRAM
/// tier); `tid` is the component within the pid.
pub mod track {
    /// pid of the host DRAM tier track.
    pub const PID_TIER: u32 = 10_000;
    /// tid of serving/host-level spans (requests, subs, queueing).
    pub const TID_HOST: u32 = 0;
    /// tid of device-op spans (NVMe op lifetime, host-side phases).
    pub const TID_DEVICE: u32 = 1;
    /// tid of firmware-core execution spans.
    pub const TID_FW: u32 = 2;
    /// tid of flash-array spans (reads, channel transfers).
    pub const TID_FLASH: u32 = 3;
    /// First tid of the per-channel SLS engine rows: engine `i` of a
    /// device's pool lands on `TID_ENGINE_BASE + i`, so every engine gets
    /// its own track in the viewer. Analysis keys engine spans by name +
    /// `ch` argument, never by tid.
    pub const TID_ENGINE_BASE: u32 = 8;
}

/// Number of low bits reserved for the per-sink span counter; the sink's
/// namespace occupies the bits above. 2^40 spans per sink is far beyond
/// any run we record, and 2^24 namespaces is far beyond any fleet.
pub const SPAN_ID_NAMESPACE_SHIFT: u32 = 40;

/// Identifier of a span. `SpanId::NONE` (zero) means "no span": it is the
/// parent of root spans and the id carried by untraced work, and tracers
/// return it whenever they are disabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The absent span (parent of roots, id of untraced work).
    pub const NONE: SpanId = SpanId(0);

    /// `true` if this is a real (allocated) span id.
    pub fn is_some(self) -> bool {
        self.0 != 0
    }
}

/// One recorded span: a named interval on the virtual timeline, on a
/// (pid, tid) track, optionally linked to a parent span and carrying one
/// numeric argument plus one static string label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRec {
    /// This span's id (unique within a sink, never zero; unique across
    /// sinks when namespaces are distinct).
    pub id: u64,
    /// Parent span id (zero = root).
    pub parent: u64,
    /// Span name (static so emission never allocates).
    pub name: &'static str,
    /// Start, nanoseconds of virtual time.
    pub start_ns: u64,
    /// End, nanoseconds of virtual time (`>= start_ns`).
    pub end_ns: u64,
    /// Process-track id (shard / tier grouping in the viewer).
    pub pid: u32,
    /// Thread-track id (component within the pid).
    pub tid: u32,
    /// Key of the numeric argument (empty = no argument).
    pub arg_key: &'static str,
    /// Value of the numeric argument.
    pub arg_val: u64,
    /// Free-form static label (e.g. the serving path); empty = none.
    pub label: &'static str,
}

#[derive(Debug, Default)]
struct Buf {
    spans: Vec<SpanRec>,
    next_id: u64,
    namespace: u64,
}

/// Owner of recorded spans. Create one per traced run (or one per
/// independently-stepped component, with distinct namespaces), derive
/// per-track [`Tracer`]s from it, and drain it with
/// [`TraceSink::take_spans`].
#[derive(Debug, Clone, Default)]
pub struct TraceSink {
    buf: Arc<Mutex<Buf>>,
}

impl TraceSink {
    /// Creates an empty sink in namespace 0 (ids `1, 2, 3, …`).
    pub fn new() -> Self {
        TraceSink::namespaced(0)
    }

    /// Creates an empty sink whose span ids live in `namespace`: every
    /// allocated id is `(namespace << 40) | counter` with `counter`
    /// starting at 1. Sinks with distinct namespaces never collide, so
    /// their spans can be merged and may reference each other's ids.
    pub fn namespaced(namespace: u32) -> Self {
        TraceSink {
            buf: Arc::new(Mutex::new(Buf {
                spans: Vec::new(),
                next_id: 1,
                namespace: (namespace as u64) << SPAN_ID_NAMESPACE_SHIFT,
            })),
        }
    }

    /// A tracer writing into this sink on track `(pid, tid)`.
    pub fn tracer(&self, pid: u32, tid: u32) -> Tracer {
        Tracer {
            sink: Some(self.buf.clone()),
            pid,
            tid,
        }
    }

    /// Number of spans recorded so far.
    pub fn len(&self) -> usize {
        self.buf.lock().expect("trace sink poisoned").spans.len()
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drains and returns every recorded span, in emission order.
    pub fn take_spans(&self) -> Vec<SpanRec> {
        std::mem::take(&mut self.buf.lock().expect("trace sink poisoned").spans)
    }

    /// Clones every recorded span *without* draining the sink, in
    /// emission order — the read path for live analysis that must not
    /// disturb a later export.
    pub fn snapshot_spans(&self) -> Vec<SpanRec> {
        self.buf.lock().expect("trace sink poisoned").spans.clone()
    }
}

/// A handle that emits spans into a [`TraceSink`] — or, when disabled
/// (the default), does nothing at all.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    sink: Option<Arc<Mutex<Buf>>>,
    pid: u32,
    tid: u32,
}

impl Tracer {
    /// A tracer that drops everything (the zero-cost default).
    pub fn disabled() -> Self {
        Tracer::default()
    }

    /// `true` when spans are actually recorded.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// A clone of this tracer on a different thread track.
    pub fn with_tid(&self, tid: u32) -> Tracer {
        Tracer {
            sink: self.sink.clone(),
            pid: self.pid,
            tid,
        }
    }

    /// A clone of this tracer on a different process track.
    pub fn with_pid(&self, pid: u32) -> Tracer {
        Tracer {
            sink: self.sink.clone(),
            pid,
            tid: self.tid,
        }
    }

    /// Pre-allocates a span id so children can reference a parent whose
    /// span is emitted later. Returns [`SpanId::NONE`] when disabled.
    #[inline]
    pub fn alloc_id(&self) -> SpanId {
        match &self.sink {
            Some(buf) => {
                let mut b = buf.lock().expect("trace sink poisoned");
                let id = b.namespace | b.next_id;
                b.next_id += 1;
                SpanId(id)
            }
            None => SpanId::NONE,
        }
    }

    /// Emits a complete span under a fresh id and returns that id.
    #[inline]
    pub fn span(&self, name: &'static str, start: SimTime, end: SimTime, parent: SpanId) -> SpanId {
        let id = self.alloc_id();
        if id.is_some() {
            self.emit(id, name, start, end, parent, "", 0, "");
        }
        id
    }

    /// Emits a complete span under a pre-allocated id (see
    /// [`Tracer::alloc_id`]), with an optional numeric argument
    /// (`arg_key` empty = none) and static label (empty = none).
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn emit(
        &self,
        id: SpanId,
        name: &'static str,
        start: SimTime,
        end: SimTime,
        parent: SpanId,
        arg_key: &'static str,
        arg_val: u64,
        label: &'static str,
    ) {
        if let Some(buf) = &self.sink {
            debug_assert!(id.is_some(), "emit with unallocated span id");
            debug_assert!(end >= start, "span {name} ends before it starts");
            buf.lock()
                .expect("trace sink poisoned")
                .spans
                .push(SpanRec {
                    id: id.0,
                    parent: parent.0,
                    name,
                    start_ns: start.as_ns(),
                    end_ns: end.as_ns(),
                    pid: self.pid,
                    tid: self.tid,
                    arg_key,
                    arg_val,
                    label,
                });
        }
    }

    /// Emits a complete span with a numeric argument, fresh id.
    #[inline]
    pub fn span_arg(
        &self,
        name: &'static str,
        start: SimTime,
        end: SimTime,
        parent: SpanId,
        arg_key: &'static str,
        arg_val: u64,
    ) -> SpanId {
        let id = self.alloc_id();
        if id.is_some() {
            self.emit(id, name, start, end, parent, arg_key, arg_val, "");
        }
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recssd_sim::SimDuration;

    fn t(ns: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_ns(ns)
    }

    #[test]
    fn disabled_tracer_records_nothing_and_returns_none_ids() {
        let tr = Tracer::disabled();
        assert!(!tr.enabled());
        assert_eq!(tr.alloc_id(), SpanId::NONE);
        assert_eq!(tr.span("x", t(0), t(1), SpanId::NONE), SpanId::NONE);
    }

    #[test]
    fn spans_record_with_unique_ids_and_parent_links() {
        let sink = TraceSink::new();
        let tr = sink.tracer(3, 7);
        let parent = tr.alloc_id();
        let child = tr.span("child", t(10), t(20), parent);
        tr.emit(parent, "parent", t(0), t(30), SpanId::NONE, "n", 2, "ndp");
        let spans = sink.take_spans();
        assert_eq!(spans.len(), 2);
        assert_ne!(parent, child);
        assert_eq!(spans[0].name, "child");
        assert_eq!(spans[0].parent, parent.0);
        assert_eq!(spans[1].pid, 3);
        assert_eq!(spans[1].tid, 7);
        assert_eq!(spans[1].arg_key, "n");
        assert_eq!(spans[1].label, "ndp");
        assert!(sink.is_empty(), "take_spans drains the sink");
    }

    #[test]
    fn with_tid_shares_the_sink() {
        let sink = TraceSink::new();
        let a = sink.tracer(0, 0);
        let b = a.with_tid(5);
        a.span("a", t(0), t(1), SpanId::NONE);
        b.span("b", t(1), t(2), SpanId::NONE);
        let spans = sink.take_spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[1].tid, 5);
    }

    #[test]
    fn namespaced_sinks_allocate_disjoint_ids() {
        let a = TraceSink::namespaced(0);
        let b = TraceSink::namespaced(3);
        let ia = a.tracer(0, 0).alloc_id();
        let ib = b.tracer(0, 0).alloc_id();
        assert_eq!(ia.0, 1, "namespace 0 keeps plain ids");
        assert_eq!(ib.0, (3u64 << SPAN_ID_NAMESPACE_SHIFT) | 1);
    }

    #[test]
    fn sinks_and_tracers_are_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<TraceSink>();
        check::<Tracer>();
    }
}
