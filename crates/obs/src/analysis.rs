//! Critical-path extraction and automated bottleneck attribution.
//!
//! [`request_critical_paths`] walks every `request → sub → op → fw/flash`
//! span tree in a recorded trace and segments each request's end-to-end
//! latency into named [`Phase`]s (admission, shard queue wait, firmware
//! exec, flash read, PCIe transfer, DRAM-tier gather, retry backoff,
//! host merge). Each *instant* of the request's lifetime is attributed
//! to exactly one phase — the highest-priority resource active at that
//! instant — so per-request phase times always sum to at most the e2e
//! latency and a **conservation** ratio (attributed / e2e) measures how
//! much of the latency the decomposition explains. CI gates conservation
//! at ≥ 95 % on every serving path.
//!
//! [`CriticalPathReport`] aggregates the per-request profiles per
//! serving path (the `request` span label), including a p99 tail profile
//! ("p99 NDP requests spend 71 % in fw:exec"), and
//! [`bottleneck_report`] ranks the simulated resources (firmware core,
//! flash array, DRAM tier — per shard) by busy-time saturation and
//! estimates per-path capacity headroom from the measured per-request
//! resource demands.
//!
//! Everything here is a **pure observer**: the inputs are recorded
//! spans, the functions allocate only local state, and the same span
//! set always produces byte-identical reports — so reports agree across
//! `Sequential` and `Parallel(n)` execution whenever the traces do
//! (which the serving layer guarantees and tests).

use std::collections::HashMap;

use crate::trace::{track, SpanRec};

/// Number of named phases in the decomposition.
pub const PHASE_COUNT: usize = 10;

/// A named segment of a request's end-to-end latency. The discriminant
/// is the attribution priority: when several phases are active at the
/// same instant (e.g. the firmware core runs while the sub-batch also
/// sits in a queue), the instant is charged to the **highest** variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum Phase {
    /// Time inside the request span covered by no sub-batch at all
    /// (admission bookkeeping before the split is enqueued).
    Admission = 0,
    /// Exponential-backoff time between a failed attempt and its
    /// re-dispatch (the part of the gap no resource accounts for).
    RetryBackoff = 1,
    /// Sub-batch queue wait: host-side shard queue (`sub:wait`) plus
    /// device-internal operator queueing (`op:queue`).
    ShardQueue = 2,
    /// Host software: operator planning / command-block construction
    /// (`base:plan`, `ndp:plan`).
    HostSw = 3,
    /// DRAM gather: host-DRAM SLS compute, on the placement tier or the
    /// DRAM serving path (`op:compute` labelled `dram`).
    TierGather = 4,
    /// Flash array read: sense, ECC retries and die/channel queueing
    /// (`flash:read` minus the transfer tail).
    FlashRead = 5,
    /// Data movement: flash channel transfer (`flash:xfer`) and NVMe
    /// command/result block movement (`ndp:write`, `ndp:read`).
    Transfer = 6,
    /// Per-channel SLS engine execution — translation (and optionally
    /// merge) service windows on the device's engine pool (`fw:engine`).
    EngineExec = 7,
    /// Firmware-core execution — the serial embedded core charged per
    /// NVMe command and per NDP translation (`fw:exec`, `ndp:gather`).
    FwExec = 8,
    /// Host-side result folding (`ndp:merge`, `base:io` residue,
    /// `op:compute` labelled `host`).
    Merge = 9,
}

impl Phase {
    /// All phases, lowest attribution priority first.
    pub const ALL: [Phase; PHASE_COUNT] = [
        Phase::Admission,
        Phase::RetryBackoff,
        Phase::ShardQueue,
        Phase::HostSw,
        Phase::TierGather,
        Phase::FlashRead,
        Phase::Transfer,
        Phase::EngineExec,
        Phase::FwExec,
        Phase::Merge,
    ];

    /// Stable snake_case name (used in reports and the bench JSON).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Admission => "admission",
            Phase::RetryBackoff => "retry_backoff",
            Phase::ShardQueue => "shard_queue",
            Phase::HostSw => "host_sw",
            Phase::TierGather => "tier_gather",
            Phase::FlashRead => "flash_read",
            Phase::Transfer => "transfer",
            Phase::EngineExec => "engine_exec",
            Phase::FwExec => "fw_exec",
            Phase::Merge => "merge",
        }
    }

    /// Index into `phase_ns` arrays ([`Phase::ALL`] order).
    pub fn index(self) -> usize {
        self as usize
    }
}

/// One request's extracted critical path: its e2e latency split across
/// the [`Phase`]s, plus the residue the decomposition could not
/// attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestProfile {
    /// The `request` span id.
    pub request: u64,
    /// Serving path (the request span's label, e.g. `ndp`).
    pub path: String,
    /// Request arrival, ns of virtual time.
    pub start_ns: u64,
    /// End-to-end latency in ns.
    pub e2e_ns: u64,
    /// `true` when the request completed degraded (deadline expiry or
    /// retry-budget exhaustion); degraded requests are excluded from
    /// aggregate profiles and the conservation gate.
    pub degraded: bool,
    /// Nanoseconds attributed to each phase, indexed by
    /// [`Phase::ALL`] order.
    pub phase_ns: [u64; PHASE_COUNT],
    /// Nanoseconds of the e2e window no phase accounts for.
    pub unattributed_ns: u64,
}

impl RequestProfile {
    /// Fraction of the e2e latency the named phases account for
    /// (1.0 for a zero-length request).
    pub fn conservation(&self) -> f64 {
        if self.e2e_ns == 0 {
            return 1.0;
        }
        let attributed: u64 = self.phase_ns.iter().sum();
        attributed as f64 / self.e2e_ns as f64
    }

    /// Phases sorted by attributed time, largest first (ties broken by
    /// attribution priority so the order is total).
    pub fn segments(&self) -> Vec<(Phase, u64)> {
        let mut v: Vec<(Phase, u64)> = Phase::ALL
            .iter()
            .map(|&p| (p, self.phase_ns[p.index()]))
            .filter(|&(_, ns)| ns > 0)
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(b.0.cmp(&a.0)));
        v
    }
}

/// Latency summary of a set of requests (computed exactly from the
/// sorted per-request e2e values, no histogram approximation).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatSummary {
    /// Number of requests.
    pub count: u64,
    /// Arithmetic mean e2e, ns.
    pub mean_ns: f64,
    /// Median e2e, ns.
    pub p50_ns: u64,
    /// 99th-percentile e2e, ns.
    pub p99_ns: u64,
    /// Largest e2e, ns.
    pub max_ns: u64,
}

fn lat_summary(sorted_e2e: &[u64]) -> LatSummary {
    if sorted_e2e.is_empty() {
        return LatSummary::default();
    }
    let n = sorted_e2e.len();
    let rank = |q: f64| sorted_e2e[(((n - 1) as f64) * q).round() as usize];
    LatSummary {
        count: n as u64,
        mean_ns: sorted_e2e.iter().sum::<u64>() as f64 / n as f64,
        p50_ns: rank(0.50),
        p99_ns: rank(0.99),
        max_ns: sorted_e2e[n - 1],
    }
}

/// Aggregate critical-path profile of one serving path.
#[derive(Debug, Clone, PartialEq)]
pub struct PathProfile {
    /// Serving path name (`dram`, `baseline`, `ndp`, …).
    pub path: String,
    /// Non-degraded requests aggregated here.
    pub requests: u64,
    /// e2e latency summary over those requests.
    pub e2e: LatSummary,
    /// Total ns per phase, summed across requests ([`Phase::ALL`] order).
    pub phase_ns: [u64; PHASE_COUNT],
    /// Total unattributed ns across requests.
    pub unattributed_ns: u64,
    /// Sum of e2e latencies (the denominator of [`Self::conservation`]).
    pub total_e2e_ns: u64,
    /// Profile of the p99 tail: requests with e2e ≥ the path's p99.
    pub tail_requests: u64,
    /// Total ns per phase over the p99-tail requests.
    pub tail_phase_ns: [u64; PHASE_COUNT],
    /// Sum of e2e latencies over the p99-tail requests.
    pub tail_e2e_ns: u64,
}

impl PathProfile {
    /// Fraction of total e2e time the named phases account for.
    pub fn conservation(&self) -> f64 {
        if self.total_e2e_ns == 0 {
            return 1.0;
        }
        self.phase_ns.iter().sum::<u64>() as f64 / self.total_e2e_ns as f64
    }

    /// Share of total e2e time spent in `phase`.
    pub fn share(&self, phase: Phase) -> f64 {
        if self.total_e2e_ns == 0 {
            return 0.0;
        }
        self.phase_ns[phase.index()] as f64 / self.total_e2e_ns as f64
    }

    /// Share of p99-tail e2e time spent in `phase`.
    pub fn tail_share(&self, phase: Phase) -> f64 {
        if self.tail_e2e_ns == 0 {
            return 0.0;
        }
        self.tail_phase_ns[phase.index()] as f64 / self.tail_e2e_ns as f64
    }

    /// The phase with the largest attributed time (ties broken by
    /// attribution priority).
    pub fn top_phase(&self) -> Phase {
        let mut best = Phase::Admission;
        for &p in &Phase::ALL {
            if self.phase_ns[p.index()] >= self.phase_ns[best.index()] {
                best = p;
            }
        }
        best
    }
}

/// Whole-trace critical-path report: per-path aggregate profiles plus
/// the conservation floor CI gates on.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPathReport {
    /// One profile per serving path, sorted by path name.
    pub paths: Vec<PathProfile>,
    /// Total requests in the trace (degraded included).
    pub requests: u64,
    /// Degraded requests (excluded from the profiles).
    pub degraded: u64,
    /// Worst per-path conservation (1.0 when no paths).
    pub min_conservation: f64,
}

impl CriticalPathReport {
    /// Builds the report from per-request profiles.
    pub fn from_profiles(profiles: &[RequestProfile]) -> CriticalPathReport {
        let mut by_path: HashMap<&str, Vec<&RequestProfile>> = HashMap::new();
        let mut degraded = 0u64;
        for p in profiles {
            if p.degraded {
                degraded += 1;
                continue;
            }
            by_path.entry(p.path.as_str()).or_default().push(p);
        }
        let mut paths: Vec<PathProfile> = by_path
            .into_iter()
            .map(|(path, reqs)| {
                let mut e2e: Vec<u64> = reqs.iter().map(|r| r.e2e_ns).collect();
                e2e.sort_unstable();
                let lat = lat_summary(&e2e);
                let mut phase_ns = [0u64; PHASE_COUNT];
                let mut unattributed = 0u64;
                let mut total = 0u64;
                let mut tail_phase = [0u64; PHASE_COUNT];
                let mut tail_e2e = 0u64;
                let mut tail_n = 0u64;
                for r in &reqs {
                    for (acc, &ns) in phase_ns.iter_mut().zip(&r.phase_ns) {
                        *acc += ns;
                    }
                    unattributed += r.unattributed_ns;
                    total += r.e2e_ns;
                    if r.e2e_ns >= lat.p99_ns {
                        tail_n += 1;
                        tail_e2e += r.e2e_ns;
                        for (acc, &ns) in tail_phase.iter_mut().zip(&r.phase_ns) {
                            *acc += ns;
                        }
                    }
                }
                PathProfile {
                    path: path.to_string(),
                    requests: reqs.len() as u64,
                    e2e: lat,
                    phase_ns,
                    unattributed_ns: unattributed,
                    total_e2e_ns: total,
                    tail_requests: tail_n,
                    tail_phase_ns: tail_phase,
                    tail_e2e_ns: tail_e2e,
                }
            })
            .collect();
        paths.sort_by(|a, b| a.path.cmp(&b.path));
        let min_conservation = paths
            .iter()
            .map(|p| p.conservation())
            .fold(1.0f64, f64::min);
        CriticalPathReport {
            paths,
            requests: profiles.len() as u64,
            degraded,
            min_conservation,
        }
    }

    /// Deterministic plain-text rendering of the report.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "critical-path report: {} requests ({} degraded), min conservation {:.1}%",
            self.requests,
            self.degraded,
            self.min_conservation * 100.0
        );
        for p in &self.paths {
            let _ = writeln!(
                out,
                "  path {:<9} {:>4} reqs  e2e mean {:>10.0} ns  p99 {:>8} ns  conservation {:.1}%",
                p.path,
                p.requests,
                p.e2e.mean_ns,
                p.e2e.p99_ns,
                p.conservation() * 100.0
            );
            for &ph in Phase::ALL.iter().rev() {
                let ns = p.phase_ns[ph.index()];
                if ns == 0 {
                    continue;
                }
                let _ = writeln!(
                    out,
                    "    {:<14} {:>5.1}%  {:>12} ns  (p99 tail {:>5.1}%)",
                    ph.name(),
                    p.share(ph) * 100.0,
                    ns,
                    p.tail_share(ph) * 100.0
                );
            }
            if p.unattributed_ns > 0 {
                let _ = writeln!(
                    out,
                    "    {:<14} {:>5.1}%  {:>12} ns",
                    "unattributed",
                    (1.0 - p.conservation()) * 100.0,
                    p.unattributed_ns
                );
            }
        }
        out
    }
}

/// Total length of the union of half-open intervals (sorts in place).
pub(crate) fn union_len(ivs: &mut [(u64, u64)]) -> u64 {
    ivs.sort_unstable();
    let mut covered = 0u64;
    let mut cur = 0u64;
    for &(a, b) in ivs.iter() {
        let a = a.max(cur);
        if b > a {
            covered += b - a;
            cur = b;
        }
    }
    covered
}

/// Event-sweep over service intervals: (union busy, concurrency
/// integral, peak concurrency). Back-to-back intervals do not count as
/// concurrent — ends sort before starts at the same instant.
fn sweep_use(ivs: Vec<(u64, u64)>) -> (u64, u64, u32) {
    let mut ev: Vec<(u64, i32)> = Vec::with_capacity(ivs.len() * 2);
    for (a, b) in ivs {
        if b > a {
            ev.push((a, 1));
            ev.push((b, -1));
        }
    }
    ev.sort_unstable();
    let (mut cur, mut peak) = (0i64, 0i64);
    let (mut union, mut integral) = (0u64, 0u128);
    let mut last = 0u64;
    for (t, d) in ev {
        if cur > 0 {
            union += t - last;
            integral += (t - last) as u128 * cur as u128;
        }
        cur += d as i64;
        peak = peak.max(cur);
        last = t;
    }
    (union, integral as u64, peak as u32)
}

/// Per-pid index of the resource spans attribution overlaps against.
#[derive(Default)]
struct PidResources {
    /// (start, end) of `fw:exec` spans on this pid.
    fw: Vec<(u64, u64)>,
    /// (start, end) of `fw:engine` spans (the per-channel engine pool).
    eng: Vec<(u64, u64)>,
    /// (start, end) of `flash:read` spans.
    flash_read: Vec<(u64, u64)>,
    /// (start, end) of `flash:xfer` spans.
    flash_xfer: Vec<(u64, u64)>,
}

/// Maps an op-phase span name (+ label) to its phase.
fn op_phase(name: &str, label: &str) -> Option<Phase> {
    Some(match name {
        "op:queue" => Phase::ShardQueue,
        "base:plan" | "ndp:plan" => Phase::HostSw,
        "ndp:write" | "ndp:read" => Phase::Transfer,
        "ndp:gather" => Phase::FwExec,
        "ndp:merge" => Phase::Merge,
        "base:io" => Phase::Merge,
        "op:compute" => {
            if label == "dram" {
                Phase::TierGather
            } else {
                Phase::Merge
            }
        }
        _ => return None,
    })
}

/// Extracts one [`RequestProfile`] per `request` span in the trace.
///
/// The walk uses only recorded spans, so it works identically on a live
/// [`crate::TraceSink`] drain and on a re-parsed Chrome-trace export,
/// and it never touches the simulation (pure observer).
pub fn request_critical_paths(spans: &[SpanRec]) -> Vec<RequestProfile> {
    // Indexes: children by parent id, resource spans by pid, ops by
    // (pid, start) for matching a sub-batch's serving operator even when
    // micro-batching parented the op under a different request's sub.
    let mut children: HashMap<u64, Vec<usize>> = HashMap::new();
    let mut resources: HashMap<u32, PidResources> = HashMap::new();
    let mut ops_at: HashMap<(u32, u64), Vec<usize>> = HashMap::new();
    for (i, s) in spans.iter().enumerate() {
        if s.parent != 0 {
            children.entry(s.parent).or_default().push(i);
        }
        match s.name {
            "fw:exec" => resources
                .entry(s.pid)
                .or_default()
                .fw
                .push((s.start_ns, s.end_ns)),
            "fw:engine" => resources
                .entry(s.pid)
                .or_default()
                .eng
                .push((s.start_ns, s.end_ns)),
            "flash:read" => resources
                .entry(s.pid)
                .or_default()
                .flash_read
                .push((s.start_ns, s.end_ns)),
            "flash:xfer" => resources
                .entry(s.pid)
                .or_default()
                .flash_xfer
                .push((s.start_ns, s.end_ns)),
            "op" => ops_at.entry((s.pid, s.start_ns)).or_default().push(i),
            _ => {}
        }
    }
    for r in resources.values_mut() {
        r.fw.sort_unstable();
        r.eng.sort_unstable();
        r.flash_read.sort_unstable();
        r.flash_xfer.sort_unstable();
    }

    let mut out = Vec::new();
    // Evidence intervals for the request currently being segmented.
    let mut evidence: Vec<(u64, u64, Phase)> = Vec::new();
    for req in spans.iter().filter(|s| s.name == "request") {
        let (rs, re) = (req.start_ns, req.end_ns);
        let degraded = req.arg_key == "degraded" && req.arg_val != 0;
        evidence.clear();

        let subs: Vec<&SpanRec> = children
            .get(&req.id)
            .map(|kids| {
                kids.iter()
                    .map(|&i| &spans[i])
                    .filter(|s| s.name == "sub")
                    .collect()
            })
            .unwrap_or_default();

        // Admission: request time before the first sub-batch exists.
        if let Some(first_sub) = subs.iter().map(|s| s.start_ns).min() {
            if first_sub > rs {
                evidence.push((rs, first_sub, Phase::Admission));
            }
        }

        for sub in &subs {
            // Queue-wait spans carry the shard's resource pid in their
            // `shard` argument; one wait per dispatch attempt.
            let mut waits: Vec<&SpanRec> = children
                .get(&sub.id)
                .map(|kids| {
                    kids.iter()
                        .map(|&i| &spans[i])
                        .filter(|s| s.name == "sub:wait")
                        .collect()
                })
                .unwrap_or_default();
            waits.sort_by_key(|w| (w.start_ns, w.end_ns, w.id));
            for w in &waits {
                evidence.push((w.start_ns, w.end_ns, Phase::ShardQueue));
            }
            for (j, w) in waits.iter().enumerate() {
                let pid = if w.arg_key == "shard" {
                    w.arg_val as u32
                } else {
                    continue;
                };
                // Attempt window: dispatch → next re-queue (or the sub's
                // completion, for the final attempt). Gaps the resources
                // below don't claim are retry backoff.
                let wend = waits
                    .get(j + 1)
                    .map(|n| n.start_ns)
                    .unwrap_or(sub.end_ns)
                    .max(w.end_ns);
                let (ws, we) = (w.end_ns, wend);
                if we <= ws {
                    continue;
                }
                if j + 1 < waits.len() {
                    evidence.push((ws, we, Phase::RetryBackoff));
                }
                // Device-resource overlap within the attempt window: the
                // firmware core and flash array are shared, so any busy
                // time there is what this sub-batch is blocked on,
                // whether it is being served or queued behind others.
                if let Some(r) = resources.get(&pid) {
                    clip_into(&r.fw, ws, we, Phase::FwExec, &mut evidence);
                    clip_into(&r.eng, ws, we, Phase::EngineExec, &mut evidence);
                    clip_into(&r.flash_xfer, ws, we, Phase::Transfer, &mut evidence);
                    clip_into(&r.flash_read, ws, we, Phase::FlashRead, &mut evidence);
                }
                // The serving operator's own host-side phase spans
                // (matched by dispatch instant even across micro-batch
                // merges, where the op parents under a different sub).
                if let Some(opix) = ops_at.get(&(pid, ws)) {
                    for &oi in opix {
                        let op = &spans[oi];
                        if op.end_ns > we {
                            continue;
                        }
                        if let Some(kids) = children.get(&op.id) {
                            for &ki in kids {
                                let k = &spans[ki];
                                if let Some(ph) = op_phase(k.name, k.label) {
                                    let (a, b) = (k.start_ns.max(ws), k.end_ns.min(we));
                                    if b > a {
                                        evidence.push((a, b, ph));
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }

        out.push(segment(req, rs, re, degraded, &evidence));
    }
    out
}

/// Clips sorted intervals to `[ws, we)` and appends them as evidence.
fn clip_into(
    ivs: &[(u64, u64)],
    ws: u64,
    we: u64,
    phase: Phase,
    evidence: &mut Vec<(u64, u64, Phase)>,
) {
    // First interval that can overlap: intervals are sorted by start,
    // so stop once starts pass the window end.
    let from = ivs.partition_point(|&(_, e)| e <= ws);
    for &(a, b) in &ivs[from..] {
        if a >= we {
            break;
        }
        let (a, b) = (a.max(ws), b.min(we));
        if b > a {
            evidence.push((a, b, phase));
        }
    }
}

/// Sweeps the evidence intervals over `[rs, re)`, charging each
/// elementary segment to the highest-priority active phase.
fn segment(
    req: &SpanRec,
    rs: u64,
    re: u64,
    degraded: bool,
    evidence: &[(u64, u64, Phase)],
) -> RequestProfile {
    // Boundary events: +1/-1 per phase, clipped to the request window.
    let mut events: Vec<(u64, bool, usize)> = Vec::with_capacity(evidence.len() * 2);
    for &(a, b, ph) in evidence {
        let (a, b) = (a.max(rs), b.min(re));
        if b > a {
            events.push((a, false, ph.index()));
            events.push((b, true, ph.index()));
        }
    }
    events.sort_unstable();
    let mut active = [0i64; PHASE_COUNT];
    let mut phase_ns = [0u64; PHASE_COUNT];
    let mut unattributed = 0u64;
    let mut cur = rs;
    let mut i = 0;
    while i < events.len() {
        let t = events[i].0;
        if t > cur {
            match (0..PHASE_COUNT).rev().find(|&p| active[p] > 0) {
                Some(p) => phase_ns[p] += t - cur,
                None => unattributed += t - cur,
            }
            cur = t;
        }
        while i < events.len() && events[i].0 == t {
            let (_, end, p) = events[i];
            active[p] += if end { -1 } else { 1 };
            i += 1;
        }
    }
    if re > cur {
        unattributed += re - cur;
    }
    RequestProfile {
        request: req.id,
        path: req.label.to_string(),
        start_ns: rs,
        e2e_ns: re - rs,
        degraded,
        phase_ns,
        unattributed_ns: unattributed,
    }
}

/// Builds the aggregate [`CriticalPathReport`] straight from a trace.
pub fn critical_path_report(spans: &[SpanRec]) -> CriticalPathReport {
    CriticalPathReport::from_profiles(&request_critical_paths(spans))
}

/// Busy-time saturation of one simulated resource over the trace.
///
/// A resource may be internally parallel (the flash array spreads
/// transfers over several channels) without the trace naming its
/// width, so capacity is *self-calibrated*: the peak service
/// concurrency ever observed. Saturation is then the service-time
/// integral over `elapsed × capacity` — a serial firmware core at 99%
/// is provably the wall, while an 8-channel array whose union of busy
/// windows covers 99% of the run may still have idle channels.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceUse {
    /// Resource name, e.g. `fw:core[shard=0]`.
    pub resource: String,
    /// Union of the resource's busy intervals (any-server-busy), ns.
    pub busy_ns: u64,
    /// Time-integral of service concurrency (Σ span durations), ns.
    pub service_ns: u64,
    /// Peak observed service concurrency — the calibrated capacity
    /// (1 for a provably-serial resource).
    pub capacity: u32,
    /// Trace wall span the utilisation is measured over, ns.
    pub elapsed_ns: u64,
}

impl ResourceUse {
    /// Saturation: service integral over `elapsed × capacity`.
    pub fn utilization(&self) -> f64 {
        if self.elapsed_ns == 0 || self.capacity == 0 {
            return 0.0;
        }
        self.service_ns as f64 / (self.elapsed_ns as f64 * self.capacity as f64)
    }

    /// Fraction of the run with at least one server busy.
    pub fn busy_fraction(&self) -> f64 {
        if self.elapsed_ns == 0 {
            return 0.0;
        }
        self.busy_ns as f64 / self.elapsed_ns as f64
    }
}

/// Estimated capacity headroom of one serving path, from the measured
/// per-request resource demands (operational-law bound: sustainable
/// throughput ≤ 1 / max per-request demand on any single resource).
#[derive(Debug, Clone, PartialEq)]
pub struct PathHeadroom {
    /// Serving path name.
    pub path: String,
    /// Requests the estimate is based on.
    pub requests: u64,
    /// Resource class with the largest per-request demand *per server*
    /// (demand divided by the class's calibrated capacity).
    pub bottleneck: String,
    /// Mean per-request demand on that class, ns.
    pub demand_ns: u64,
    /// Calibrated server count of the bottleneck class (peak observed
    /// service concurrency; 1 for provably-serial resources). Pools —
    /// e.g. per-channel engines — report their width here, and the
    /// sustainable rate scales with it.
    pub capacity: u32,
    /// Max sustainable offered load on the bottleneck, requests/s
    /// (`capacity × 1e9 / demand_ns`).
    pub sustainable_rps: f64,
    /// Observed offered load in the trace, requests/s.
    pub observed_rps: f64,
    /// `sustainable_rps / observed_rps` (∞-free: 0 when unknown).
    pub headroom_x: f64,
    /// The observed load exceeds the sustainable bound: the path is
    /// past its operational-law capacity and queues grow without bound.
    pub saturated: bool,
}

/// Resource saturation ranking plus per-path headroom estimates.
#[derive(Debug, Clone, PartialEq)]
pub struct BottleneckReport {
    /// Trace wall span (first span start → last span end), ns.
    pub elapsed_ns: u64,
    /// Resources ranked by utilisation, most saturated first.
    pub ranked: Vec<ResourceUse>,
    /// Per-path capacity headroom, sorted by path name.
    pub headroom: Vec<PathHeadroom>,
}

impl BottleneckReport {
    /// Name of the most saturated resource, if any.
    pub fn top(&self) -> Option<&str> {
        self.ranked.first().map(|r| r.resource.as_str())
    }

    /// Deterministic plain-text rendering.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "bottleneck ranking over {} ns of simulated time:",
            self.elapsed_ns
        );
        for r in &self.ranked {
            let _ = writeln!(
                out,
                "  {:<22} {:>6.1}% utilized  (capacity {}, service {} ns, busy {} ns)",
                r.resource,
                r.utilization() * 100.0,
                r.capacity,
                r.service_ns,
                r.busy_ns
            );
        }
        for h in &self.headroom {
            let _ = writeln!(
                out,
                "  headroom[{:<8}] bottleneck {:<11} demand {:>9} ns/req  cap {:>2}  sustainable {:>9.0} rps  observed {:>9.0} rps  ({:.2}x{})",
                h.path,
                h.bottleneck,
                h.demand_ns,
                h.capacity,
                h.sustainable_rps,
                h.observed_rps,
                h.headroom_x,
                if h.saturated { ", SATURATED" } else { "" }
            );
        }
        if let Some(top) = self.top() {
            let _ = writeln!(out, "top_bottleneck: {top}");
        }
        out
    }
}

/// Ranks the simulated resources by busy-time saturation and estimates
/// per-path headroom. Resources are discovered from the trace itself:
/// one firmware core (`fw:exec` service windows) and one flash array
/// (`flash:xfer` channel-hold windows) per device shard pid, plus the
/// DRAM tier when present. Service windows only — queueing time never
/// counts toward saturation (see [`utilization_timelines`] for the
/// queueing view).
///
/// [`utilization_timelines`]: crate::timeline::utilization_timelines
pub fn bottleneck_report(spans: &[SpanRec]) -> BottleneckReport {
    let mut start = u64::MAX;
    let mut end = 0u64;
    let mut busy: HashMap<String, Vec<(u64, u64)>> = HashMap::new();
    for s in spans {
        start = start.min(s.start_ns);
        end = end.max(s.end_ns);
        match s.name {
            "fw:exec" => busy
                .entry(format!("fw:core[shard={}]", s.pid.saturating_sub(1)))
                .or_default()
                .push((s.start_ns, s.end_ns)),
            // All of a shard's per-channel engines pool into one
            // resource; `sweep_use` self-calibrates its capacity to the
            // peak engine concurrency, so an 8-engine pool ranks as an
            // 8-wide server rather than eight saturated serial ones.
            "fw:engine" => busy
                .entry(format!("fw:engine[shard={}]", s.pid.saturating_sub(1)))
                .or_default()
                .push((s.start_ns, s.end_ns)),
            // Channel-transfer windows, not `flash:read`: a read span
            // runs submit → complete and so includes die/bus *queueing*
            // — residence, not service. Ranking by residence would call
            // a backed-up flash array "busy" even while its channels
            // idle behind the serial firmware core.
            "flash:xfer" => busy
                .entry(format!("flash[shard={}]", s.pid.saturating_sub(1)))
                .or_default()
                .push((s.start_ns, s.end_ns)),
            "op" if s.pid == track::PID_TIER => busy
                .entry("tier:dram".to_string())
                .or_default()
                .push((s.start_ns, s.end_ns)),
            _ => {}
        }
    }
    let elapsed = end.saturating_sub(if start == u64::MAX { 0 } else { start });
    let mut ranked: Vec<ResourceUse> = busy
        .into_iter()
        .map(|(resource, ivs)| {
            let (busy_ns, service_ns, capacity) = sweep_use(ivs);
            ResourceUse {
                resource,
                busy_ns,
                service_ns,
                capacity,
                elapsed_ns: elapsed,
            }
        })
        .collect();
    // Most saturated first: cross-multiplied integer compare of
    // service/(elapsed*capacity) so the order never depends on float
    // rounding; name breaks exact ties.
    ranked.sort_by(|a, b| {
        let ua = a.service_ns as u128 * b.capacity as u128;
        let ub = b.service_ns as u128 * a.capacity as u128;
        ub.cmp(&ua).then_with(|| a.resource.cmp(&b.resource))
    });

    // Headroom: per-request demand per resource class, estimated from
    // the critical-path decomposition (FwExec → firmware core,
    // EngineExec → the per-channel engine pool, FlashRead/Transfer →
    // flash array, TierGather → DRAM tier, HostSw/Merge → host CPU).
    // Each class's server count comes from the calibrated capacities in
    // the ranking above (the widest shard instance), so a pooled
    // resource sustains `capacity` requests' worth of demand per unit
    // time — the binding class is the one with the largest demand *per
    // server*, not the largest raw demand.
    let cap_of = |prefix: &str| -> u32 {
        ranked
            .iter()
            .filter(|r| r.resource.starts_with(prefix))
            .map(|r| r.capacity)
            .max()
            .unwrap_or(1)
            .max(1)
    };
    let class_caps = [
        ("fw:core", cap_of("fw:core")),
        ("fw:engine", cap_of("fw:engine[")),
        ("flash", cap_of("flash[")),
        ("tier:dram", cap_of("tier:dram")),
        ("host:cpu", 1),
    ];
    let report = critical_path_report(spans);
    let mut headroom = Vec::new();
    for p in &report.paths {
        if p.requests == 0 {
            continue;
        }
        let class = |phases: &[Phase]| -> u64 {
            phases.iter().map(|ph| p.phase_ns[ph.index()]).sum::<u64>() / p.requests
        };
        let demands = [
            ("fw:core", class(&[Phase::FwExec])),
            ("fw:engine", class(&[Phase::EngineExec])),
            ("flash", class(&[Phase::FlashRead, Phase::Transfer])),
            ("tier:dram", class(&[Phase::TierGather])),
            ("host:cpu", class(&[Phase::HostSw, Phase::Merge])),
        ];
        // Binding class: max demand/capacity via cross-multiplied
        // integer compare (float-free), smallest name on exact ties.
        let &(bname, dmax) = demands
            .iter()
            .zip(&class_caps)
            .max_by(|(a, &(_, ca)), (b, &(_, cb))| {
                (a.1 as u128 * cb as u128)
                    .cmp(&(b.1 as u128 * ca as u128))
                    .then_with(|| b.0.cmp(a.0))
            })
            .map(|(d, _)| d)
            .expect("non-empty demand classes");
        let cap = class_caps
            .iter()
            .find(|&&(n, _)| n == bname)
            .map(|&(_, c)| c)
            .expect("class has a capacity");
        let sustainable = if dmax > 0 {
            cap as f64 * 1e9 / dmax as f64
        } else {
            0.0
        };
        let observed = if elapsed > 0 {
            p.requests as f64 * 1e9 / elapsed as f64
        } else {
            0.0
        };
        headroom.push(PathHeadroom {
            path: p.path.clone(),
            requests: p.requests,
            bottleneck: bname.to_string(),
            demand_ns: dmax,
            capacity: cap,
            sustainable_rps: sustainable,
            observed_rps: observed,
            headroom_x: if observed > 0.0 && sustainable > 0.0 {
                sustainable / observed
            } else {
                0.0
            },
            saturated: sustainable > 0.0 && observed > sustainable,
        });
    }
    headroom.sort_by(|a, b| a.path.cmp(&b.path));
    BottleneckReport {
        elapsed_ns: elapsed,
        ranked,
        headroom,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{track, SpanId, TraceSink};
    use recssd_sim::{SimDuration, SimTime};

    fn t(ns: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_ns(ns)
    }

    /// One NDP request on shard pid 1: queue 0–20, fw 20–60, flash
    /// 30–50 (xfer 45–50), merge 60–70.
    fn synthetic() -> Vec<SpanRec> {
        let sink = TraceSink::new();
        let host = sink.tracer(0, track::TID_HOST);
        let dev = sink.tracer(1, track::TID_DEVICE);
        let fw = sink.tracer(1, track::TID_FW);
        let flash = sink.tracer(1, track::TID_FLASH);

        let req = host.alloc_id();
        let sub = host.alloc_id();
        host.span_arg("sub:wait", t(0), t(20), sub, "shard", 1);
        let op = dev.alloc_id();
        dev.span("op:queue", t(20), t(22), op);
        fw.span("fw:exec", t(22), t(60), SpanId::NONE);
        let rd = flash.span("flash:read", t(30), t(50), SpanId::NONE);
        flash.span("flash:xfer", t(45), t(50), rd);
        dev.span("ndp:merge", t(60), t(70), op);
        dev.emit(op, "op", t(20), t(70), sub, "failed", 0, "ndp");
        host.emit(sub, "sub", t(0), t(70), req, "lookups", 8, "ndp");
        host.emit(
            req,
            "request",
            t(0),
            t(70),
            SpanId::NONE,
            "degraded",
            0,
            "ndp",
        );
        let mut spans = sink.take_spans();
        spans.sort_by_key(|s| (s.start_ns, s.end_ns, s.id));
        spans
    }

    #[test]
    fn phases_partition_the_request_and_conserve_e2e() {
        let profiles = request_critical_paths(&synthetic());
        assert_eq!(profiles.len(), 1);
        let p = &profiles[0];
        assert_eq!(p.e2e_ns, 70);
        assert_eq!(p.path, "ndp");
        assert!(!p.degraded);
        // queue 0–20, op:queue 20–22, fw 22–60 (flash overlap loses to
        // fw priority), merge 60–70.
        assert_eq!(p.phase_ns[Phase::ShardQueue.index()], 22);
        assert_eq!(p.phase_ns[Phase::FwExec.index()], 38);
        assert_eq!(p.phase_ns[Phase::Merge.index()], 10);
        assert_eq!(p.unattributed_ns, 0);
        assert!((p.conservation() - 1.0).abs() < 1e-12);
        let total: u64 = p.phase_ns.iter().sum();
        assert_eq!(total + p.unattributed_ns, p.e2e_ns);
    }

    #[test]
    fn aggregate_report_ranks_fw_as_top_phase() {
        let report = critical_path_report(&synthetic());
        assert_eq!(report.requests, 1);
        assert_eq!(report.degraded, 0);
        assert_eq!(report.paths.len(), 1);
        let p = &report.paths[0];
        assert_eq!(p.top_phase(), Phase::FwExec);
        assert!(report.min_conservation >= 0.95);
        assert!(report.render().contains("fw_exec"));
    }

    #[test]
    fn bottleneck_ranking_puts_the_fw_core_first() {
        let report = bottleneck_report(&synthetic());
        assert_eq!(report.top(), Some("fw:core[shard=0]"));
        assert_eq!(report.ranked[0].busy_ns, 38);
        assert_eq!(report.headroom.len(), 1);
        assert_eq!(report.headroom[0].bottleneck, "fw:core");
        assert!(report.headroom[0].sustainable_rps > 0.0);
        assert!(report.render().contains("top_bottleneck: fw:core[shard=0]"));
    }

    #[test]
    fn reports_are_deterministic() {
        let a = critical_path_report(&synthetic()).render();
        let b = critical_path_report(&synthetic()).render();
        assert_eq!(a, b);
        assert_eq!(
            bottleneck_report(&synthetic()).render(),
            bottleneck_report(&synthetic()).render()
        );
    }

    #[test]
    fn retry_gaps_become_backoff_and_degrade_flag_propagates() {
        let sink = TraceSink::new();
        let host = sink.tracer(0, track::TID_HOST);
        let req = host.alloc_id();
        let sub = host.alloc_id();
        // Two dispatch attempts with an uncovered gap between them.
        host.span_arg("sub:wait", t(0), t(10), sub, "shard", 1);
        host.span_arg("sub:wait", t(40), t(45), sub, "shard", 1);
        host.emit(sub, "sub", t(0), t(80), req, "lookups", 4, "baseline");
        host.emit(
            req,
            "request",
            t(0),
            t(80),
            SpanId::NONE,
            "degraded",
            1,
            "baseline",
        );
        let mut spans = sink.take_spans();
        spans.sort_by_key(|s| (s.start_ns, s.end_ns, s.id));
        let profiles = request_critical_paths(&spans);
        assert_eq!(profiles.len(), 1);
        let p = &profiles[0];
        assert!(p.degraded);
        // Gap 10–40 between attempts is retry backoff (no resource
        // evidence to claim it).
        assert_eq!(p.phase_ns[Phase::RetryBackoff.index()], 30);
        assert_eq!(p.phase_ns[Phase::ShardQueue.index()], 15);
        // Degraded requests are excluded from path aggregates.
        let report = CriticalPathReport::from_profiles(&profiles);
        assert_eq!(report.degraded, 1);
        assert!(report.paths.is_empty());
    }

    /// Two overlapping per-channel engine spans pool into one
    /// `fw:engine[shard=0]` resource whose capacity self-calibrates to
    /// the peak engine concurrency, and the headroom model divides the
    /// class demand by that capacity.
    #[test]
    fn engine_pool_capacity_self_calibrates() {
        let sink = TraceSink::new();
        let host = sink.tracer(0, track::TID_HOST);
        let e0 = sink.tracer(1, track::TID_ENGINE_BASE);
        let e1 = sink.tracer(1, track::TID_ENGINE_BASE + 1);
        let req = host.alloc_id();
        let sub = host.alloc_id();
        host.span_arg("sub:wait", t(0), t(10), sub, "shard", 1);
        e0.span_arg("fw:engine", t(10), t(50), SpanId::NONE, "ch", 0);
        e1.span_arg("fw:engine", t(10), t(50), SpanId::NONE, "ch", 1);
        host.emit(sub, "sub", t(0), t(60), req, "lookups", 8, "ndp");
        host.emit(
            req,
            "request",
            t(0),
            t(60),
            SpanId::NONE,
            "degraded",
            0,
            "ndp",
        );
        let mut spans = sink.take_spans();
        spans.sort_by_key(|s| (s.start_ns, s.end_ns, s.id));

        let profiles = request_critical_paths(&spans);
        assert_eq!(profiles.len(), 1);
        assert_eq!(profiles[0].phase_ns[Phase::EngineExec.index()], 40);

        let report = bottleneck_report(&spans);
        let eng = report
            .ranked
            .iter()
            .find(|r| r.resource == "fw:engine[shard=0]")
            .expect("engine pool resource discovered");
        assert_eq!(eng.capacity, 2);
        assert_eq!(eng.service_ns, 80);
        assert_eq!(eng.busy_ns, 40);
        let h = &report.headroom[0];
        assert_eq!(h.bottleneck, "fw:engine");
        assert_eq!(h.capacity, 2);
        // 40 ns/req over 2 servers → 2e9/40 = 5e7 rps sustainable,
        // well above the observed 1 request per 60 ns window.
        assert!((h.sustainable_rps - 5e7).abs() < 1.0);
        assert!(!h.saturated);
    }

    /// A path driven past its operational-law bound reports
    /// `saturated: true`.
    #[test]
    fn overdriven_path_reports_saturated() {
        let sink = TraceSink::new();
        let host = sink.tracer(0, track::TID_HOST);
        let fw = sink.tracer(1, track::TID_FW);
        fw.span("fw:exec", t(1), t(60), SpanId::NONE);
        for _ in 0..2 {
            let req = host.alloc_id();
            let sub = host.alloc_id();
            host.span_arg("sub:wait", t(0), t(1), sub, "shard", 1);
            host.emit(sub, "sub", t(0), t(60), req, "lookups", 4, "ndp");
            host.emit(
                req,
                "request",
                t(0),
                t(60),
                SpanId::NONE,
                "degraded",
                0,
                "ndp",
            );
        }
        let mut spans = sink.take_spans();
        spans.sort_by_key(|s| (s.start_ns, s.end_ns, s.id));
        let report = bottleneck_report(&spans);
        let h = &report.headroom[0];
        // Each request demands 59 ns of the serial fw core inside a
        // 60 ns window shared by two requests: observed ≈ 2× sustainable.
        assert_eq!(h.bottleneck, "fw:core");
        assert_eq!(h.capacity, 1);
        assert!(h.observed_rps > h.sustainable_rps);
        assert!(h.saturated);
        assert!(report.render().contains("SATURATED"));
    }

    #[test]
    fn union_len_merges_overlaps() {
        let mut ivs = vec![(0u64, 60u64), (40, 100), (10, 50)];
        assert_eq!(union_len(&mut ivs), 100);
        let mut gap = vec![(0u64, 40u64), (60, 100)];
        assert_eq!(union_len(&mut gap), 80);
    }
}
