//! Chrome-trace/Perfetto JSON export and span-invariant validation.
//!
//! The exporter writes the ubiquitous `traceEvents` array-of-complete-
//! events format (`ph: "X"`, microsecond timestamps) that both
//! `chrome://tracing` and [ui.perfetto.dev](https://ui.perfetto.dev)
//! load directly. Span ids and parent links ride in `args` so the causal
//! tree survives the round trip.
//!
//! [`validate_spans`] checks the invariants every recorded trace must
//! satisfy — the same checks CI runs against the `serve --trace-out`
//! output:
//!
//! 1. ids are unique and non-zero;
//! 2. every non-zero parent link resolves to a recorded span;
//! 3. children nest temporally within their parent;
//! 4. each non-degraded `request` span is covered ≥ 99 % by the union of
//!    its direct children (the latency-reconstruction criterion).

use crate::trace::SpanRec;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Summary returned by a successful [`validate_spans`] run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceCheck {
    /// Total spans validated.
    pub spans: usize,
    /// `request` spans found (degraded ones included).
    pub requests: usize,
    /// Worst child-union coverage over non-degraded request spans
    /// (1.0 when there are none).
    pub min_coverage: f64,
    /// Id of the worst-covered non-degraded request span (0 if none).
    pub worst_request: u64,
    /// Total uncovered time across non-degraded request spans, ns.
    pub uncovered_ns: u64,
}

/// One uncovered interval inside a request span, located by the child
/// span that precedes it — so a coverage shortfall names *where* the
/// missing time sits instead of only how much is missing.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageGap {
    /// Gap start, ns of virtual time.
    pub start_ns: u64,
    /// Gap end, ns.
    pub end_ns: u64,
    /// Name of the child span whose end the gap follows, or
    /// `"request start"` when the gap opens the request.
    pub after: String,
    /// Id of that preceding child (0 at the request start).
    pub after_id: u64,
}

impl CoverageGap {
    /// Gap length, ns.
    pub fn len_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }
}

/// Child-coverage accounting of one request span.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestCoverage {
    /// The request span id.
    pub request: u64,
    /// Serving path (the request span's label).
    pub label: String,
    /// Request e2e latency, ns.
    pub e2e_ns: u64,
    /// Fraction of the request covered by the union of its direct
    /// children.
    pub coverage: f64,
    /// `true` for degraded requests (exempt from the coverage gate).
    pub degraded: bool,
    /// The uncovered intervals, longest first.
    pub gaps: Vec<CoverageGap>,
}

/// Uncovered intervals of `[start, end]` under the child union, each
/// located by the child whose end it follows. `kids` must be the
/// request's direct children.
fn gaps_of(start: u64, end: u64, kids: &[&SpanRec]) -> Vec<CoverageGap> {
    let mut ivs: Vec<(u64, u64, usize)> = kids
        .iter()
        .enumerate()
        .map(|(i, k)| (k.start_ns, k.end_ns, i))
        .collect();
    ivs.sort_unstable();
    let mut gaps = Vec::new();
    let mut cur = start;
    let mut last: Option<usize> = None;
    for &(a, b, i) in &ivs {
        let a = a.clamp(cur, end);
        if a > cur {
            let (after, after_id) = match last {
                Some(j) => (kids[j].name.to_string(), kids[j].id),
                None => ("request start".to_string(), 0),
            };
            gaps.push(CoverageGap {
                start_ns: cur,
                end_ns: a,
                after,
                after_id,
            });
        }
        if b > cur {
            cur = b.min(end);
            last = Some(i);
        }
    }
    if end > cur {
        let (after, after_id) = match last {
            Some(j) => (kids[j].name.to_string(), kids[j].id),
            None => ("request start".to_string(), 0),
        };
        gaps.push(CoverageGap {
            start_ns: cur,
            end_ns: end,
            after,
            after_id,
        });
    }
    gaps.sort_by(|a, b| {
        b.len_ns()
            .cmp(&a.len_ns())
            .then(a.start_ns.cmp(&b.start_ns))
    });
    gaps
}

/// Per-request child-coverage accounting: how much of every request
/// span its direct children cover, and exactly where the uncovered time
/// sits. Requests are returned in trace order.
pub fn coverage_report(spans: &[SpanRec]) -> Vec<RequestCoverage> {
    let mut children: HashMap<u64, Vec<&SpanRec>> = HashMap::new();
    for s in spans {
        if s.parent != 0 {
            children.entry(s.parent).or_default().push(s);
        }
    }
    spans
        .iter()
        .filter(|s| s.name == "request")
        .map(|s| {
            let kids: Vec<&SpanRec> = children.get(&s.id).cloned().unwrap_or_default();
            let gaps = gaps_of(s.start_ns, s.end_ns, &kids);
            let uncovered: u64 = gaps.iter().map(|g| g.len_ns()).sum();
            let e2e = s.end_ns - s.start_ns;
            RequestCoverage {
                request: s.id,
                label: s.label.to_string(),
                e2e_ns: e2e,
                coverage: if e2e == 0 {
                    1.0
                } else {
                    (e2e - uncovered) as f64 / e2e as f64
                },
                degraded: is_degraded(s),
                gaps,
            }
        })
        .collect()
}

/// Escapes a string for a JSON literal (names here are static Rust
/// identifiers, but stay correct for arbitrary input).
fn esc(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Nanoseconds rendered as a microsecond decimal (`123.456`), the unit
/// Chrome trace expects. Pure integer math keeps the output
/// deterministic across platforms.
fn us(ns: u64, out: &mut String) {
    let _ = write!(out, "{}.{:03}", ns / 1000, ns % 1000);
}

/// Serialises spans to a Chrome-trace JSON document.
pub fn chrome_trace_json(spans: &[SpanRec]) -> String {
    let mut out = String::with_capacity(128 + spans.len() * 160);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":\"");
        esc(s.name, &mut out);
        out.push_str("\",\"ph\":\"X\",\"ts\":");
        us(s.start_ns, &mut out);
        out.push_str(",\"dur\":");
        us(s.end_ns - s.start_ns, &mut out);
        let _ = write!(out, ",\"pid\":{},\"tid\":{}", s.pid, s.tid);
        let _ = write!(out, ",\"args\":{{\"span\":{},\"parent\":{}", s.id, s.parent);
        if !s.arg_key.is_empty() {
            out.push_str(",\"");
            esc(s.arg_key, &mut out);
            let _ = write!(out, "\":{}", s.arg_val);
        }
        if !s.label.is_empty() {
            out.push_str(",\"label\":\"");
            esc(s.label, &mut out);
            out.push('"');
        }
        out.push_str("}}");
    }
    out.push_str("]}\n");
    out
}

/// `true` for request spans flagged degraded (deadline expiry / retry
/// budget exhaustion): their children may legitimately not cover them.
fn is_degraded(s: &SpanRec) -> bool {
    s.arg_key == "degraded" && s.arg_val != 0
}

/// Fraction of `[start, end]` covered by the union of `ivs` (clamped to
/// the window). An empty window counts as fully covered.
fn coverage(start: u64, end: u64, ivs: &mut [(u64, u64)]) -> f64 {
    if end <= start {
        return 1.0;
    }
    ivs.sort_unstable();
    let mut covered = 0u64;
    let mut cur = start;
    for &(a, b) in ivs.iter() {
        let a = a.max(cur).min(end);
        let b = b.min(end);
        if b > a {
            covered += b - a;
            cur = b;
        }
    }
    covered as f64 / (end - start) as f64
}

/// Validates the span invariants (see the [module docs](self)).
///
/// # Errors
///
/// Returns a description of the first violated invariant.
pub fn validate_spans(spans: &[SpanRec]) -> Result<TraceCheck, String> {
    let mut by_id: HashMap<u64, &SpanRec> = HashMap::with_capacity(spans.len());
    for s in spans {
        if s.id == 0 {
            return Err(format!("span '{}' has id 0", s.name));
        }
        if s.end_ns < s.start_ns {
            return Err(format!(
                "span '{}' (id {}) ends before it starts",
                s.name, s.id
            ));
        }
        if by_id.insert(s.id, s).is_some() {
            return Err(format!("duplicate span id {}", s.id));
        }
    }
    let mut children: HashMap<u64, Vec<&SpanRec>> = HashMap::new();
    for s in spans {
        if s.parent != 0 {
            let p = by_id.get(&s.parent).ok_or_else(|| {
                format!(
                    "span '{}' (id {}) links to unknown parent {}",
                    s.name, s.id, s.parent
                )
            })?;
            if s.start_ns < p.start_ns || s.end_ns > p.end_ns {
                return Err(format!(
                    "span '{}' (id {}, [{}, {}]) escapes parent '{}' (id {}, [{}, {}])",
                    s.name, s.id, s.start_ns, s.end_ns, p.name, p.id, p.start_ns, p.end_ns
                ));
            }
            children.entry(s.parent).or_default().push(s);
        }
    }
    let mut requests = 0usize;
    let mut min_coverage = 1.0f64;
    let mut worst_request = 0u64;
    let mut uncovered_ns = 0u64;
    let mut ivs = Vec::new();
    for s in spans.iter().filter(|s| s.name == "request") {
        requests += 1;
        if is_degraded(s) {
            continue;
        }
        ivs.clear();
        let kids: Vec<&SpanRec> = children.get(&s.id).cloned().unwrap_or_default();
        ivs.extend(kids.iter().map(|k| (k.start_ns, k.end_ns)));
        let c = coverage(s.start_ns, s.end_ns, &mut ivs);
        if c < 0.99 {
            // Locate the missing time instead of only reporting the
            // aggregate: name the worst gap and the child it follows.
            let gaps = gaps_of(s.start_ns, s.end_ns, &kids);
            let loc = gaps
                .first()
                .map(|g| {
                    format!(
                        "; worst gap {} ns at [{}, {}] after {} (id {})",
                        g.len_ns(),
                        g.start_ns,
                        g.end_ns,
                        g.after,
                        g.after_id
                    )
                })
                .unwrap_or_default();
            return Err(format!(
                "request span id {} ('{}') covered only {:.1}% by its children{}",
                s.id,
                s.label,
                c * 100.0,
                loc
            ));
        }
        let e2e = s.end_ns - s.start_ns;
        uncovered_ns += e2e - (c * e2e as f64).round() as u64;
        if c < min_coverage {
            min_coverage = c;
            worst_request = s.id;
        }
    }
    Ok(TraceCheck {
        spans: spans.len(),
        requests,
        min_coverage,
        worst_request,
        uncovered_ns,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{SpanId, TraceSink};
    use recssd_sim::{SimDuration, SimTime};

    fn t(ns: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_ns(ns)
    }

    fn demo_spans() -> Vec<SpanRec> {
        let sink = TraceSink::new();
        let tr = sink.tracer(0, 0);
        let req = tr.alloc_id();
        let sub = tr.span("sub", t(0), t(100), req);
        tr.span("op", t(10), t(90), sub);
        tr.emit(
            req,
            "request",
            t(0),
            t(100),
            SpanId::NONE,
            "degraded",
            0,
            "ndp",
        );
        sink.take_spans()
    }

    #[test]
    fn valid_trace_passes_and_reports_coverage() {
        let check = validate_spans(&demo_spans()).expect("valid");
        assert_eq!(check.spans, 3);
        assert_eq!(check.requests, 1);
        assert!(check.min_coverage >= 0.99);
    }

    #[test]
    fn unresolved_parent_is_rejected() {
        let mut spans = demo_spans();
        spans[0].parent = 999;
        assert!(validate_spans(&spans)
            .unwrap_err()
            .contains("unknown parent"));
    }

    #[test]
    fn child_escaping_parent_is_rejected() {
        let mut spans = demo_spans();
        spans[1].end_ns = 500; // op escapes sub
        assert!(validate_spans(&spans)
            .unwrap_err()
            .contains("escapes parent"));
    }

    #[test]
    fn uncovered_request_is_rejected_unless_degraded() {
        let sink = TraceSink::new();
        let tr = sink.tracer(0, 0);
        let req = tr.alloc_id();
        tr.span("sub", t(0), t(10), req); // covers 10% of the request
        tr.emit(
            req,
            "request",
            t(0),
            t(100),
            SpanId::NONE,
            "degraded",
            0,
            "",
        );
        let spans = sink.take_spans();
        assert!(validate_spans(&spans).unwrap_err().contains("covered only"));

        let sink = TraceSink::new();
        let tr = sink.tracer(0, 0);
        let req = tr.alloc_id();
        tr.span("sub", t(0), t(10), req);
        tr.emit(
            req,
            "request",
            t(0),
            t(100),
            SpanId::NONE,
            "degraded",
            1,
            "",
        );
        validate_spans(&sink.take_spans()).expect("degraded requests skip coverage");
    }

    #[test]
    fn duplicate_ids_rejected() {
        let mut spans = demo_spans();
        spans[1].id = spans[0].id;
        assert!(validate_spans(&spans).unwrap_err().contains("duplicate"));
    }

    #[test]
    fn coverage_failure_names_the_gap_location() {
        let sink = TraceSink::new();
        let tr = sink.tracer(0, 0);
        let req = tr.alloc_id();
        tr.span("sub", t(0), t(40), req);
        tr.span("sub", t(70), t(100), req);
        tr.emit(
            req,
            "request",
            t(0),
            t(100),
            SpanId::NONE,
            "degraded",
            0,
            "ndp",
        );
        let err = validate_spans(&sink.take_spans()).unwrap_err();
        assert!(err.contains("worst gap 30 ns"), "{err}");
        assert!(err.contains("after sub"), "{err}");
        assert!(err.contains("'ndp'"), "{err}");
    }

    #[test]
    fn coverage_report_locates_uncovered_time() {
        let sink = TraceSink::new();
        let tr = sink.tracer(0, 0);
        let req = tr.alloc_id();
        let sub = tr.span("sub", t(10), t(40), req);
        tr.span("sub", t(70), t(100), req);
        tr.emit(
            req,
            "request",
            t(0),
            t(100),
            SpanId::NONE,
            "degraded",
            0,
            "ndp",
        );
        let report = coverage_report(&sink.take_spans());
        assert_eq!(report.len(), 1);
        let rc = &report[0];
        assert_eq!(rc.e2e_ns, 100);
        assert!((rc.coverage - 0.6).abs() < 1e-12);
        assert_eq!(rc.gaps.len(), 2, "{:?}", rc.gaps);
        // Longest gap first: 40–70 after the first sub.
        assert_eq!(rc.gaps[0].start_ns, 40);
        assert_eq!(rc.gaps[0].end_ns, 70);
        assert_eq!(rc.gaps[0].after, "sub");
        assert_eq!(rc.gaps[0].after_id, sub.0);
        // The opening gap is anchored at the request start.
        assert_eq!(rc.gaps[1].start_ns, 0);
        assert_eq!(rc.gaps[1].after, "request start");
        assert_eq!(rc.gaps[1].after_id, 0);
    }

    #[test]
    fn fully_covered_requests_report_no_gaps() {
        let report = coverage_report(&demo_spans());
        assert_eq!(report.len(), 1);
        assert!(report[0].gaps.is_empty());
        assert_eq!(report[0].coverage, 1.0);
        let check = validate_spans(&demo_spans()).expect("valid");
        assert_eq!(check.uncovered_ns, 0);
        assert_eq!(check.worst_request, 0, "no request fell below 1.0");
    }

    #[test]
    fn overlapping_children_do_not_double_count_coverage() {
        let mut ivs = vec![(0u64, 60u64), (40, 100), (10, 50)];
        assert_eq!(coverage(0, 100, &mut ivs), 1.0);
        let mut gap = vec![(0u64, 40u64), (60, 100)];
        assert!((coverage(0, 100, &mut gap) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn json_export_is_deterministic_and_tagged() {
        let a = chrome_trace_json(&demo_spans());
        let b = chrome_trace_json(&demo_spans());
        assert_eq!(a, b);
        assert!(a.contains("\"traceEvents\""));
        assert!(a.contains("\"ph\":\"X\""));
        assert!(a.contains("\"name\":\"request\""));
        assert!(a.contains("\"label\":\"ndp\""));
        // 100 ns request renders as 0.100 us.
        assert!(a.contains("\"dur\":0.100"));
    }
}
