//! Property tests of the Zipf sampler: the empirical frequency-rank
//! curve must match the configured skew (a power law `f(k) ∝ k^-s` is a
//! line of slope `-s` in log-log space), and streams must be
//! reproducible per seed — the contract the placement profiler and the
//! serving load generator both build on.

use proptest::prelude::*;
use recssd_trace::ZipfTrace;

/// Least-squares slope of `log f(k)` against `log k` over the top ranks.
fn rank_slope(rows: u64, s: f64, seed: u64, samples: usize, top: usize) -> f64 {
    let mut z = ZipfTrace::new(rows, s, seed).without_scatter();
    let mut freq = vec![0u64; top];
    for _ in 0..samples {
        let id = z.next_id() as usize;
        if id < top {
            freq[id] += 1;
        }
    }
    let pts: Vec<(f64, f64)> = freq
        .iter()
        .enumerate()
        .filter(|&(_, &f)| f > 0)
        .map(|(k, &f)| (((k + 1) as f64).ln(), (f as f64).ln()))
        .collect();
    assert!(pts.len() >= 3, "degenerate rank histogram");
    let n = pts.len() as f64;
    let (sx, sy): (f64, f64) = pts.iter().fold((0.0, 0.0), |(x, y), p| (x + p.0, y + p.1));
    let (sxx, sxy): (f64, f64) = pts
        .iter()
        .fold((0.0, 0.0), |(xx, xy), p| (xx + p.0 * p.0, xy + p.0 * p.1));
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The log-log frequency-rank slope over the head of the
    /// distribution recovers the configured exponent.
    #[test]
    fn frequency_rank_slope_matches_configured_skew(
        s_tenths in 11u32..20,
        seed in 0u64..1_000,
    ) {
        let s = s_tenths as f64 / 10.0;
        let slope = rank_slope(50_000, s, seed, 300_000, 16);
        prop_assert!(
            (slope + s).abs() < 0.2,
            "Zipf({s}) produced rank slope {slope:.3}, expected {:.3}",
            -s
        );
    }

    /// Same seed → identical stream; different seed → different stream
    /// (with and without rank scattering).
    #[test]
    fn streams_are_deterministic_per_seed(
        s_tenths in 11u32..25,
        seed in 0u64..10_000,
        rows in 100u64..1_000_000,
        scatter in proptest::bool::ANY,
    ) {
        let s = s_tenths as f64 / 10.0;
        let make = |seed| {
            let z = ZipfTrace::new(rows, s, seed);
            if scatter { z } else { z.without_scatter() }
        };
        let a = make(seed).take_ids(512);
        let b = make(seed).take_ids(512);
        prop_assert_eq!(&a, &b, "identical seeds must replay identically");
        prop_assert!(a.iter().all(|&id| id < rows), "ids must stay in range");
        let c = make(seed ^ 0xDEAD_BEEF).take_ids(512);
        prop_assert_ne!(&a, &c, "distinct seeds must decorrelate");
    }

    /// Steeper exponents concentrate strictly more mass on the hottest
    /// rank — monotonicity the hot-fraction sweep relies on.
    #[test]
    fn head_mass_grows_with_skew(seed in 0u64..1_000) {
        let head = |s: f64| {
            let mut z = ZipfTrace::new(10_000, s, seed).without_scatter();
            (0..50_000).filter(|_| z.next_id() == 0).count()
        };
        let mild = head(1.1);
        let steep = head(1.8);
        prop_assert!(
            steep > mild,
            "Zipf(1.8) head {steep} not above Zipf(1.1) head {mild}"
        );
    }
}
