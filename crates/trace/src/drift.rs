//! Drifting-skew traces: Zipf popularity whose *identity* mapping moves.
//!
//! Stationary Zipf traffic justifies one-shot placement: profile once, pin
//! the head, serve forever. Production recommendation traffic is not
//! stationary — items trend and fade, so the *set* of hot rows migrates
//! while the popularity *shape* stays power-law (the paper's UWS
//! motivation; RecFlash tracks frequency online for the same reason).
//! [`DriftingZipf`] models exactly that: ranks are drawn from a fixed
//! Zipf(s), but the rank→row scatter is re-randomised every `period`
//! draws (a *phase*), either wholesale (rotation) or for a configurable
//! fraction of ranks (piecewise hot-set churn).
//!
//! The mapping is a pure function of `(seed, phase, rank)`, so
//! [`DriftingZipf::pinned`] can materialise any phase's stationary
//! distribution — what an oracle profiler that "knows the future" would
//! see — without replaying the stream.

use recssd_sim::rng::mix64;

use crate::ZipfTrace;

const PHASE_SALT: u64 = 0xA24B_AED4_963E_E407;
const CHURN_SALT: u64 = 0x9E6C_63D0_985B_135B;

/// A bounded Zipf sampler whose rank→row mapping drifts over time.
///
/// # Example
///
/// ```
/// use recssd_trace::DriftingZipf;
/// let mut z = DriftingZipf::new(10_000, 1.2, 7, 1_000);
/// let before: Vec<u64> = (0..1_000).map(|_| z.next_id()).collect();
/// assert_eq!(z.phase(), 1); // one full period drawn
/// assert!(before.iter().all(|&id| id < 10_000));
/// ```
#[derive(Debug, Clone)]
pub struct DriftingZipf {
    ranks: ZipfTrace,
    rows: u64,
    seed: u64,
    /// Draws per phase (`u64::MAX` pins the generator to one phase).
    period: u64,
    /// Fraction of ranks remapped each phase (1.0 = full rotation).
    churn: f64,
    phase_base: u64,
    drawn: u64,
}

impl DriftingZipf {
    /// Creates a fully rotating drift trace: every `period` draws, the
    /// entire rank→row mapping is re-randomised.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is zero, `s <= 1`, or `period` is zero.
    pub fn new(rows: u64, s: f64, seed: u64, period: u64) -> Self {
        assert!(period > 0, "phase period must be positive");
        DriftingZipf {
            ranks: ZipfTrace::new(rows, s, seed).without_scatter(),
            rows,
            seed,
            period,
            churn: 1.0,
            phase_base: 0,
            drawn: 0,
        }
    }

    /// Sets the per-phase churn fraction: only ranks whose churn draw
    /// falls below `fraction` move when the phase advances, the rest keep
    /// the base mapping (piecewise hot-set churn).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < fraction <= 1`.
    pub fn with_churn(mut self, fraction: f64) -> Self {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "churn fraction must lie in (0, 1]"
        );
        self.churn = fraction;
        self
    }

    /// A generator frozen at `phase`: same mapping as this generator
    /// produces during that phase, but never advancing — the stationary
    /// distribution an oracle profiler would profile for the phase. The
    /// rank stream is reseeded so the clone does not replay this
    /// generator's exact draws.
    pub fn pinned(&self, phase: u64) -> Self {
        DriftingZipf {
            ranks: ZipfTrace::new(
                self.rows,
                self.ranks.exponent(),
                mix64(self.seed ^ PHASE_SALT),
            )
            .without_scatter(),
            rows: self.rows,
            seed: self.seed,
            period: u64::MAX,
            churn: self.churn,
            phase_base: phase,
            drawn: 0,
        }
    }

    /// Rows in the id space.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// The Zipf skew exponent.
    pub fn exponent(&self) -> f64 {
        self.ranks.exponent()
    }

    /// The current phase (advances every `period` draws).
    pub fn phase(&self) -> u64 {
        self.phase_base + self.drawn / self.period
    }

    /// Maps `rank` to a row id under `phase`'s scatter.
    fn map_rank(&self, rank: u64, phase: u64) -> u64 {
        let base = mix64(rank.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ self.seed);
        let churned = self.churn >= 1.0 || {
            // Per-(rank, phase) coin: a different subset of ranks moves
            // each phase.
            let coin = mix64(base ^ phase.wrapping_mul(CHURN_SALT));
            ((coin >> 11) as f64 / (1u64 << 53) as f64) < self.churn
        };
        if churned && phase > 0 {
            mix64(base ^ phase.wrapping_mul(PHASE_SALT)) % self.rows
        } else {
            base % self.rows
        }
    }

    /// The next id.
    pub fn next_id(&mut self) -> u64 {
        let phase = self.phase();
        let rank = self.ranks.next_id();
        self.drawn = self.drawn.saturating_add(1);
        self.map_rank(rank, phase)
    }

    /// Draws `n` ids.
    pub fn take_ids(&mut self, n: usize) -> Vec<u64> {
        (0..n).map(|_| self.next_id()).collect()
    }
}

/// A table's id stream for load generation: stationary Zipf or drifting.
#[derive(Debug)]
pub enum RowStream {
    /// Stationary Zipf popularity.
    Zipf(ZipfTrace),
    /// Drifting popularity ([`DriftingZipf`]).
    Drifting(DriftingZipf),
}

impl RowStream {
    /// The next id.
    pub fn next_id(&mut self) -> u64 {
        match self {
            RowStream::Zipf(z) => z.next_id(),
            RowStream::Drifting(d) => d.next_id(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn top_k(ids: &[u64], k: usize) -> Vec<u64> {
        let mut freq: HashMap<u64, u64> = HashMap::new();
        for &id in ids {
            *freq.entry(id).or_insert(0) += 1;
        }
        let mut pairs: Vec<(u64, u64)> = freq.into_iter().collect();
        pairs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        pairs.into_iter().take(k).map(|(id, _)| id).collect()
    }

    fn overlap(a: &[u64], b: &[u64]) -> usize {
        a.iter().filter(|id| b.contains(id)).count()
    }

    #[test]
    fn ids_in_range_and_deterministic() {
        let mut a = DriftingZipf::new(5_000, 1.3, 3, 500);
        let mut b = DriftingZipf::new(5_000, 1.3, 3, 500);
        let ia = a.take_ids(2_000);
        assert_eq!(ia, b.take_ids(2_000));
        assert!(ia.iter().all(|&id| id < 5_000));
    }

    #[test]
    fn rotation_replaces_the_hot_set_each_phase() {
        let mut z = DriftingZipf::new(100_000, 1.4, 9, 20_000);
        let p0 = z.take_ids(20_000);
        assert_eq!(z.phase(), 1);
        let p1 = z.take_ids(20_000);
        assert_eq!(z.phase(), 2);
        let (h0, h1) = (top_k(&p0, 20), top_k(&p1, 20));
        assert!(
            overlap(&h0, &h1) <= 2,
            "full rotation must displace the head: {h0:?} vs {h1:?}"
        );
    }

    #[test]
    fn partial_churn_preserves_most_of_the_hot_set() {
        let mut z = DriftingZipf::new(100_000, 1.4, 9, 20_000).with_churn(0.2);
        let p0 = z.take_ids(20_000);
        let p1 = z.take_ids(20_000);
        let (h0, h1) = (top_k(&p0, 20), top_k(&p1, 20));
        assert!(
            overlap(&h0, &h1) >= 12,
            "20% churn should keep most of the head: {h0:?} vs {h1:?}"
        );
    }

    #[test]
    fn pinned_matches_the_rolling_phase_distribution() {
        let mut rolling = DriftingZipf::new(50_000, 1.5, 21, 10_000);
        let _ = rolling.take_ids(10_000); // consume phase 0
        let p1 = rolling.take_ids(10_000);
        let oracle = top_k(&rolling.pinned(1).take_ids(10_000), 10);
        let seen = top_k(&p1, 10);
        assert!(
            overlap(&oracle, &seen) >= 8,
            "pinned(1) must reproduce phase 1's head: {oracle:?} vs {seen:?}"
        );
    }

    #[test]
    fn pinned_does_not_advance() {
        let mut z = DriftingZipf::new(1_000, 1.2, 5, 10).pinned(3);
        let _ = z.take_ids(1_000);
        assert_eq!(z.phase(), 3);
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_rejected() {
        DriftingZipf::new(10, 1.2, 0, 0);
    }

    #[test]
    #[should_panic(expected = "churn fraction")]
    fn zero_churn_rejected() {
        let _ = DriftingZipf::new(10, 1.2, 0, 1).with_churn(0.0);
    }
}
