//! Locality analysis: reuse CDFs (Fig. 3) and page-cache sweeps (Fig. 4).

use std::collections::HashMap;

use recssd_cache::SetAssocCache;

/// One point of a reuse CDF: after including the `pages` coldest-to-hotter
/// pages (ascending hit count, as the paper sorts them), `cum_fraction` of
/// all reuse hits are covered.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReusePoint {
    /// Number of pages included (sorted by ascending hit count).
    pub pages: usize,
    /// Cumulative fraction of hits covered, in `[0, 1]`.
    pub cum_fraction: f64,
}

/// Computes the Fig. 3 reuse distribution: accesses are mapped to pages of
/// `granularity_bytes` (each row occupying `row_bytes`), per-page *hit*
/// counts are collected (an access beyond a page's first is a hit), pages
/// are sorted by ascending hit count and the cumulative hit fraction is
/// reported at each page rank.
///
/// Returns the per-page CDF (one point per touched page, ascending).
///
/// # Example
///
/// ```
/// use recssd_trace::analysis::reuse_cdf;
/// // Two rows per 8-byte page (4-byte rows): ids 0,1 share page 0.
/// let cdf = reuse_cdf(&[0, 1, 0, 1, 2], 8, 4);
/// let last = cdf.last().unwrap();
/// assert_eq!(last.cum_fraction, 1.0);
/// ```
///
/// # Panics
///
/// Panics if `granularity_bytes < row_bytes` or either is zero.
pub fn reuse_cdf(ids: &[u64], granularity_bytes: usize, row_bytes: usize) -> Vec<ReusePoint> {
    assert!(
        row_bytes > 0 && granularity_bytes >= row_bytes,
        "bad page sizes"
    );
    let rows_per_page = (granularity_bytes / row_bytes) as u64;
    let mut hits: HashMap<u64, u64> = HashMap::new();
    let mut seen: HashMap<u64, bool> = HashMap::new();
    for &id in ids {
        let page = id / rows_per_page;
        if seen.insert(page, true).is_some() {
            *hits.entry(page).or_insert(0) += 1;
        } else {
            hits.entry(page).or_insert(0);
        }
    }
    let mut counts: Vec<u64> = hits.values().copied().collect();
    counts.sort_unstable();
    let total: u64 = counts.iter().sum();
    let mut cum = 0u64;
    counts
        .iter()
        .enumerate()
        .map(|(i, &c)| {
            cum += c;
            ReusePoint {
                pages: i + 1,
                cum_fraction: if total == 0 {
                    0.0
                } else {
                    cum as f64 / total as f64
                },
            }
        })
        .collect()
}

/// Fraction of reuse hits captured by the hottest `top_pages` pages —
/// the headline numbers of §3.1 ("a few hundred pages capture 30% of
/// reuses while caching a few thousand pages can extend reuse over 50%").
pub fn hot_page_coverage(cdf: &[ReusePoint], top_pages: usize) -> f64 {
    if cdf.is_empty() {
        return 0.0;
    }
    let n = cdf.len();
    if top_pages >= n {
        return 1.0;
    }
    // The CDF is sorted coldest-first, so the hottest `top_pages` cover
    // everything above the (n - top_pages)-th point.
    1.0 - cdf[n - top_pages - 1].cum_fraction
}

/// Runs the Fig. 4 experiment: an N-way LRU page cache of each capacity
/// over the trace, returning `(capacity_bytes, hit_rate)` pairs.
///
/// # Panics
///
/// Panics if sizes are zero or `granularity_bytes < row_bytes`.
pub fn page_cache_sweep(
    ids: &[u64],
    capacities_bytes: &[usize],
    ways: usize,
    granularity_bytes: usize,
    row_bytes: usize,
) -> Vec<(usize, f64)> {
    assert!(
        row_bytes > 0 && granularity_bytes >= row_bytes,
        "bad page sizes"
    );
    let rows_per_page = (granularity_bytes / row_bytes) as u64;
    capacities_bytes
        .iter()
        .map(|&cap| {
            let entries = (cap / granularity_bytes).max(1);
            let mut cache: SetAssocCache<()> = SetAssocCache::new(entries, ways);
            for &id in ids {
                cache.access(id / rows_per_page, || ());
            }
            (cap, cache.stats().hit_rate())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ZipfTrace;

    #[test]
    fn reuse_cdf_basics() {
        // ids on 1-row pages: page 7 hit 3 extra times, page 8 once.
        let cdf = reuse_cdf(&[7, 7, 7, 7, 8, 8, 9], 4, 4);
        assert_eq!(cdf.len(), 3);
        let total_hits = 4.0; // 3 (page 7) + 1 (page 8) + 0 (page 9)
        assert_eq!(cdf[0].cum_fraction, 0.0 / total_hits);
        assert_eq!(cdf[1].cum_fraction, 1.0 / total_hits);
        assert_eq!(cdf[2].cum_fraction, 1.0);
    }

    #[test]
    fn coarser_granularity_merges_pages() {
        let ids = [0u64, 1, 2, 3];
        let fine = reuse_cdf(&ids, 4, 4); // 4 pages, zero hits
        let coarse = reuse_cdf(&ids, 16, 4); // 1 page, 3 hits
        assert_eq!(fine.len(), 4);
        assert_eq!(coarse.len(), 1);
        assert_eq!(coarse[0].cum_fraction, 1.0);
    }

    #[test]
    fn power_law_concentrates_reuse_in_few_pages() {
        // The Fig. 3 shape: a small fraction of pages covers a large
        // fraction of reuses.
        let mut z = ZipfTrace::new(1_000_000, 1.4, 11);
        let ids = z.take_ids(100_000);
        let cdf = reuse_cdf(&ids, 4096, 128);
        let total_pages = cdf.len();
        let hot_1pct = hot_page_coverage(&cdf, total_pages / 100);
        assert!(
            hot_1pct > 0.3,
            "1% of pages should cover >30% of reuses, got {hot_1pct:.3}"
        );
        assert_eq!(hot_page_coverage(&cdf, total_pages), 1.0);
    }

    #[test]
    fn cache_sweep_hit_rate_grows_with_capacity() {
        let mut z = ZipfTrace::new(100_000, 1.2, 3);
        let ids = z.take_ids(50_000);
        let sweep = page_cache_sweep(&ids, &[64 << 10, 1 << 20, 16 << 20], 16, 4096, 128);
        assert_eq!(sweep.len(), 3);
        assert!(sweep[0].1 <= sweep[1].1 && sweep[1].1 <= sweep[2].1);
        assert!(sweep[2].1 > sweep[0].1, "capacity must matter");
    }

    #[test]
    fn skew_spread_reproduces_figure_4_range() {
        // Fig. 4: across tables, hit rate of the same cache varies "from
        // under 10% to over 90%". The coldest production tables are
        // essentially uniform-random; the hottest are steeply skewed.
        let mut rng = recssd_sim::rng::Xoshiro256::seed_from(1);
        let ids_uniform: Vec<u64> = (0..40_000).map(|_| rng.gen_range(0..10_000_000)).collect();
        let ids_steep = ZipfTrace::new(10_000_000, 2.5, 1).take_ids(40_000);
        let cap = [1 << 20];
        let cold = page_cache_sweep(&ids_uniform, &cap, 16, 4096, 128)[0].1;
        let hot = page_cache_sweep(&ids_steep, &cap, 16, 4096, 128)[0].1;
        assert!(cold < 0.10, "uniform table should miss mostly: {cold:.3}");
        assert!(hot > 0.75, "steep skew should hit mostly: {hot:.3}");
    }

    #[test]
    fn empty_trace_is_fine() {
        assert!(reuse_cdf(&[], 4096, 128).is_empty());
        let sweep = page_cache_sweep(&[], &[4096], 16, 4096, 128);
        assert_eq!(sweep[0].1, 0.0);
    }
}
