//! Bounded Zipf sampling for power-law access traces.

use recssd_sim::rng::{mix64, Xoshiro256};

/// Draws ids from a Zipf(s) distribution over `0..rows`, then scatters the
/// rank→row mapping with a hash so "hot" rows are spread across the table
/// (as they are in production, where hotness does not correlate with row
/// index).
///
/// §3.1 of the paper: "Access patterns to embedding tables follow the
/// power-law distribution." Figures 3 and 4 are built from proprietary
/// traces with exactly this shape; this sampler is their synthetic
/// stand-in (the exponent varies per table, matching the hit-rate spread
/// of Fig. 4).
///
/// Uses Devroye's rejection method, so no per-row state is kept and
/// 100 M-row tables sample in O(1).
///
/// # Example
///
/// ```
/// use recssd_trace::ZipfTrace;
/// let mut z = ZipfTrace::new(1_000_000, 1.1, 42);
/// let ids = z.take_ids(1000);
/// assert!(ids.iter().all(|&id| id < 1_000_000));
/// ```
#[derive(Debug, Clone)]
pub struct ZipfTrace {
    rows: u64,
    s: f64,
    scatter: bool,
    rng: Xoshiro256,
    // Precomputed constants of the rejection-inversion sampler
    // (Hörmann & Derflinger; the scheme behind rand_distr and Apache
    // Commons' RejectionInversionZipfSampler).
    h_x1: f64,
    h_n: f64,
    shortcut: f64,
}

impl ZipfTrace {
    /// Creates a sampler with exponent `s > 1` over `rows` ids.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is zero or `s <= 1`.
    pub fn new(rows: u64, s: f64, seed: u64) -> Self {
        assert!(rows > 0, "need at least one row");
        assert!(s > 1.0, "Zipf exponent must exceed 1 for the sampler");
        let h_integral = |x: f64| (x.powf(1.0 - s) - 1.0) / (1.0 - s);
        let h = |x: f64| x.powf(-s);
        let h_integral_inv = |y: f64| (1.0 + y * (1.0 - s)).powf(1.0 / (1.0 - s));
        ZipfTrace {
            rows,
            s,
            scatter: true,
            rng: Xoshiro256::seed_from(seed),
            h_x1: h_integral(1.5) - 1.0,
            h_n: h_integral(rows as f64 + 0.5),
            shortcut: 2.0 - h_integral_inv(h_integral(2.5) - h(2.0)),
        }
    }

    /// Disables rank scattering (rank r maps directly to row r; useful for
    /// tests that need to see the raw rank distribution).
    pub fn without_scatter(mut self) -> Self {
        self.scatter = false;
        self
    }

    /// The skew exponent.
    pub fn exponent(&self) -> f64 {
        self.s
    }

    fn h_integral(&self, x: f64) -> f64 {
        (x.powf(1.0 - self.s) - 1.0) / (1.0 - self.s)
    }

    fn h(&self, x: f64) -> f64 {
        x.powf(-self.s)
    }

    fn h_integral_inv(&self, y: f64) -> f64 {
        (1.0 + y * (1.0 - self.s)).powf(1.0 / (1.0 - self.s))
    }

    fn sample_rank(&mut self) -> u64 {
        loop {
            let u = self.h_n + self.rng.next_f64() * (self.h_x1 - self.h_n);
            let x = self.h_integral_inv(u);
            let k = (x + 0.5).floor().clamp(1.0, self.rows as f64);
            if k - x <= self.shortcut || u >= self.h_integral(k + 0.5) - self.h(k) {
                return k as u64 - 1; // zero-based rank
            }
        }
    }

    /// The next id.
    pub fn next_id(&mut self) -> u64 {
        let rank = self.sample_rank();
        if self.scatter {
            mix64(rank.wrapping_mul(0x9E37_79B9_7F4A_7C15)) % self.rows
        } else {
            rank
        }
    }

    /// Draws `n` ids.
    pub fn take_ids(&mut self, n: usize) -> Vec<u64> {
        (0..n).map(|_| self.next_id()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn rank_frequencies(rows: u64, s: f64, n: usize) -> HashMap<u64, u64> {
        let mut z = ZipfTrace::new(rows, s, 7).without_scatter();
        let mut freq = HashMap::new();
        for _ in 0..n {
            *freq.entry(z.next_id()).or_insert(0u64) += 1;
        }
        freq
    }

    #[test]
    fn frequency_ratios_follow_the_power_law() {
        let s = 1.5;
        let freq = rank_frequencies(10_000, s, 200_000);
        let f1 = freq[&0] as f64;
        let f2 = freq[&1] as f64;
        let f4 = freq[&3] as f64;
        // f(k) ∝ k^-s → f1/f2 = 2^s, f1/f4 = 4^s.
        assert!((f1 / f2 - 2f64.powf(s)).abs() < 0.5, "f1/f2 = {}", f1 / f2);
        assert!((f1 / f4 - 4f64.powf(s)).abs() < 1.5, "f1/f4 = {}", f1 / f4);
    }

    #[test]
    fn higher_exponent_concentrates_mass() {
        let mild = rank_frequencies(10_000, 1.1, 100_000);
        let steep = rank_frequencies(10_000, 2.0, 100_000);
        let top10 = |f: &HashMap<u64, u64>| -> u64 {
            (0..10).map(|k| f.get(&k).copied().unwrap_or(0)).sum()
        };
        assert!(
            top10(&steep) > top10(&mild),
            "steeper Zipf must concentrate more accesses in the head"
        );
    }

    #[test]
    fn ids_in_range_and_deterministic() {
        let rows = 5_000;
        let mut a = ZipfTrace::new(rows, 1.3, 3);
        let mut b = ZipfTrace::new(rows, 1.3, 3);
        let ia = a.take_ids(2_000);
        assert_eq!(ia, b.take_ids(2_000));
        assert!(ia.iter().all(|&id| id < rows));
    }

    #[test]
    fn scatter_decorrelates_rank_from_row() {
        // With scatter, the hottest id should usually not be row 0.
        let mut z = ZipfTrace::new(1_000_000, 1.5, 5);
        let mut freq = HashMap::new();
        for _ in 0..50_000 {
            *freq.entry(z.next_id()).or_insert(0u64) += 1;
        }
        let hottest = freq
            .iter()
            .max_by_key(|(_, &c)| c)
            .map(|(&id, _)| id)
            .unwrap();
        assert_ne!(hottest, 0, "scatter should move the head off row 0");
    }

    #[test]
    fn huge_tables_sample_in_constant_space() {
        let mut z = ZipfTrace::new(100_000_000, 1.2, 1);
        let ids = z.take_ids(10_000);
        assert!(ids.iter().all(|&id| id < 100_000_000));
    }

    #[test]
    #[should_panic(expected = "must exceed 1")]
    fn exponent_at_most_one_rejected() {
        ZipfTrace::new(10, 1.0, 0);
    }
}
