//! Request arrival processes for open-loop load generation.
//!
//! Production recommendation serving sees batches arrive from the frontend
//! continuously, not back-to-back: an open-loop generator keeps issuing at
//! the configured rate even while the system is backed up, which is what
//! exposes queueing delay and latency tails. The processes here supply the
//! inter-arrival gaps; the serving runtime (the `recssd-serving` crate)
//! consumes them.

use recssd_sim::rng::Xoshiro256;
use recssd_sim::SimDuration;

/// An inter-arrival-time generator.
///
/// # Example
///
/// ```
/// use recssd_trace::ArrivalProcess;
/// use recssd_sim::SimDuration;
///
/// // A Poisson stream at 10k requests per simulated second.
/// let mut arr = ArrivalProcess::poisson(10_000.0, 42);
/// let gap = arr.next_gap();
/// assert!(gap > SimDuration::ZERO);
///
/// // A deterministic stream at fixed spacing.
/// let mut uni = ArrivalProcess::uniform(SimDuration::from_us(100));
/// assert_eq!(uni.next_gap(), SimDuration::from_us(100));
/// ```
#[derive(Debug)]
pub enum ArrivalProcess {
    /// Memoryless arrivals: exponential gaps with the given mean rate
    /// (requests per simulated second). The standard open-loop traffic
    /// model for tail-latency studies.
    Poisson {
        /// Mean arrival rate in requests per simulated second.
        rate_per_sec: f64,
        /// Deterministic generator state.
        rng: Xoshiro256,
    },
    /// Deterministic arrivals at a fixed gap (a perfectly paced frontend).
    Uniform {
        /// The fixed inter-arrival gap.
        gap: SimDuration,
    },
}

impl ArrivalProcess {
    /// A Poisson process with the given mean rate.
    ///
    /// # Panics
    ///
    /// Panics if `rate_per_sec` is not positive and finite.
    pub fn poisson(rate_per_sec: f64, seed: u64) -> Self {
        assert!(
            rate_per_sec > 0.0 && rate_per_sec.is_finite(),
            "arrival rate must be positive and finite"
        );
        ArrivalProcess::Poisson {
            rate_per_sec,
            rng: Xoshiro256::seed_from(seed),
        }
    }

    /// A deterministic process with fixed `gap` spacing.
    pub fn uniform(gap: SimDuration) -> Self {
        ArrivalProcess::Uniform { gap }
    }

    /// The mean inter-arrival gap of this process.
    pub fn mean_gap(&self) -> SimDuration {
        match self {
            ArrivalProcess::Poisson { rate_per_sec, .. } => {
                SimDuration::from_secs_f64(1.0 / rate_per_sec)
            }
            ArrivalProcess::Uniform { gap } => *gap,
        }
    }

    /// Draws the gap to the next arrival.
    pub fn next_gap(&mut self) -> SimDuration {
        match self {
            ArrivalProcess::Poisson { rate_per_sec, rng } => {
                // Inverse-CDF exponential draw; `1 - u` keeps ln() finite
                // (u is in [0, 1)).
                let u = rng.next_f64();
                SimDuration::from_secs_f64(-(1.0 - u).ln() / *rate_per_sec)
            }
            ArrivalProcess::Uniform { gap } => *gap,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_gaps_average_to_the_rate() {
        let rate = 50_000.0; // 20 us mean gap
        let mut arr = ArrivalProcess::poisson(rate, 7);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| arr.next_gap().as_ns()).sum();
        let mean_ns = total as f64 / n as f64;
        let want_ns = 1e9 / rate;
        assert!(
            (mean_ns - want_ns).abs() < want_ns * 0.05,
            "mean gap {mean_ns} ns, want ≈ {want_ns} ns"
        );
        assert_eq!(arr.mean_gap(), SimDuration::from_us(20));
    }

    #[test]
    fn poisson_is_deterministic_per_seed() {
        let mut a = ArrivalProcess::poisson(1000.0, 3);
        let mut b = ArrivalProcess::poisson(1000.0, 3);
        for _ in 0..100 {
            assert_eq!(a.next_gap(), b.next_gap());
        }
    }

    #[test]
    fn uniform_gaps_are_fixed() {
        let mut u = ArrivalProcess::uniform(SimDuration::from_ms(1));
        assert_eq!(u.next_gap(), SimDuration::from_ms(1));
        assert_eq!(u.next_gap(), SimDuration::from_ms(1));
        assert_eq!(u.mean_gap(), SimDuration::from_ms(1));
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn non_positive_rate_rejected() {
        ArrivalProcess::poisson(0.0, 0);
    }
}
