//! Synthetic embedding-access traces for the RecSSD reproduction.
//!
//! The paper drives every evaluation with synthetic traces: "We instrument
//! the open-source synthetic trace generators from Facebook's open-sourced
//! DLRM with the locality analysis from industry-scale recommendation
//! systems... We generate exponential distributions based on a parameter
//! value, K. Sweeping K generates input traces with varying degrees of
//! locality; for instance, setting K equal to 0, 1, and 2 generates traces
//! with 13%, 54%, and 72% unique accesses respectively" (§5).
//!
//! * [`LocalityTrace`] — that generator: an LRU-stack re-reference model
//!   with exponentially distributed stack distances and a per-K fresh-id
//!   probability, calibrated to the paper's unique-access fractions *and*
//!   to the baseline host-LRU hit rates of Fig. 10 (84 % / 44 % / 28 % for
//!   K = 0/1/2 with a 2 K-entry cache).
//! * [`ZipfTrace`] — bounded Zipf/power-law ids, the stand-in for the
//!   proprietary production traces behind Figs. 3–4 (which the paper's
//!   artifact appendix marks non-reproducible).
//! * [`DriftingZipf`] — Zipf popularity whose rank→row mapping rotates or
//!   churns every phase: the drifting-skew regime that motivates *online*
//!   re-profiling and placement-plan refresh in the serving layer.
//! * [`patterns`] — the SEQ (contiguous ids) and STR (one page per id)
//!   microbenchmark patterns of Fig. 8.
//! * [`ArrivalProcess`] — Poisson / uniform inter-arrival gaps for the
//!   serving layer's open-loop load generation.
//! * [`analysis`] — reuse CDFs by page granularity (Fig. 3) and N-way LRU
//!   page-cache hit-rate sweeps (Fig. 4).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
mod arrivals;
mod drift;
mod locality;
pub mod patterns;
mod zipf;

pub use arrivals::ArrivalProcess;
pub use drift::{DriftingZipf, RowStream};
pub use locality::{LocalityK, LocalityTrace};
pub use zipf::ZipfTrace;

/// Fraction of accesses in `ids` that touch a row for the first time.
///
/// # Example
///
/// ```
/// use recssd_trace::unique_fraction;
/// assert_eq!(unique_fraction(&[1, 1, 2, 3]), 0.75);
/// ```
pub fn unique_fraction(ids: &[u64]) -> f64 {
    if ids.is_empty() {
        return 0.0;
    }
    let mut seen = std::collections::HashSet::new();
    let uniques = ids.iter().filter(|&&id| seen.insert(id)).count();
    uniques as f64 / ids.len() as f64
}
