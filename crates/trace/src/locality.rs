//! The DLRM-style locality-K trace generator.

use recssd_sim::rng::Xoshiro256;

/// The paper's locality knob: K = 0 is the most temporally local trace
/// (≈13 % unique accesses), K = 2 the least (≈72 %).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LocalityK {
    /// ≈13 % unique accesses; baseline 2 K-entry LRU hits ≈84 %.
    K0,
    /// ≈54 % unique accesses; baseline LRU hits ≈44 %.
    K1,
    /// ≈72 % unique accesses; baseline LRU hits ≈28 %.
    K2,
}

impl LocalityK {
    /// The fresh-id probability this K maps to (the complement is the
    /// re-reference probability).
    pub fn unique_prob(self) -> f64 {
        match self {
            LocalityK::K0 => 0.13,
            LocalityK::K1 => 0.54,
            LocalityK::K2 => 0.72,
        }
    }

    /// All three sweep points, in paper order.
    pub fn all() -> [LocalityK; 3] {
        [LocalityK::K0, LocalityK::K1, LocalityK::K2]
    }

    /// Numeric value for labels.
    pub fn value(self) -> u32 {
        match self {
            LocalityK::K0 => 0,
            LocalityK::K1 => 1,
            LocalityK::K2 => 2,
        }
    }
}

impl std::fmt::Display for LocalityK {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "K={}", self.value())
    }
}

/// Generates embedding-row ids with controlled temporal locality.
///
/// With probability `unique_prob` the next id is drawn uniformly from the
/// table; otherwise a previously used id is re-referenced at an
/// exponentially distributed LRU-stack distance ("likelihood distributions
/// for input embeddings across stack distances of previously requested
/// embedding vectors", §5).
///
/// # Example
///
/// ```
/// use recssd_trace::{unique_fraction, LocalityK, LocalityTrace};
/// let mut t = LocalityTrace::with_k(1_000_000, LocalityK::K1, 7);
/// let ids = t.take_ids(20_000);
/// let u = unique_fraction(&ids);
/// assert!((u - 0.54).abs() < 0.04, "unique fraction was {u}");
/// ```
#[derive(Debug)]
pub struct LocalityTrace {
    rows: u64,
    unique_prob: f64,
    mean_distance: f64,
    stack: Vec<u64>,
    max_stack: usize,
    rng: Xoshiro256,
}

impl LocalityTrace {
    /// Default mean LRU-stack distance of re-references. Calibrated so a
    /// 2 K-entry fully associative LRU cache reproduces the paper's
    /// baseline hit rates (84 / 44 / 28 % for K = 0/1/2).
    pub const DEFAULT_MEAN_DISTANCE: f64 = 600.0;

    /// Creates a generator with one of the paper's K presets.
    pub fn with_k(rows: u64, k: LocalityK, seed: u64) -> Self {
        LocalityTrace::new(rows, k.unique_prob(), Self::DEFAULT_MEAN_DISTANCE, seed)
    }

    /// Creates a generator with explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is zero, `unique_prob` is outside `[0, 1]`, or
    /// `mean_distance` is not positive.
    pub fn new(rows: u64, unique_prob: f64, mean_distance: f64, seed: u64) -> Self {
        assert!(rows > 0, "table must have rows");
        assert!(
            (0.0..=1.0).contains(&unique_prob),
            "unique probability must be in [0, 1]"
        );
        assert!(mean_distance > 0.0, "mean distance must be positive");
        LocalityTrace {
            rows,
            unique_prob,
            mean_distance,
            stack: Vec::new(),
            max_stack: 16_384,
            rng: Xoshiro256::seed_from(seed),
        }
    }

    /// The next id in the trace.
    pub fn next_id(&mut self) -> u64 {
        let reuse = !self.stack.is_empty() && !self.rng.gen_bool(self.unique_prob);
        if reuse {
            // Wrap distances into the live stack so the re-reference
            // probability holds even while the stack is still warming up
            // (beyond warm-up the wrap is a ~e^-27 tail event).
            let d = self.rng.next_exp(1.0 / self.mean_distance) as usize % self.stack.len();
            let id = self.stack.remove(d);
            self.stack.insert(0, id);
            return id;
        }
        let id = self.rng.gen_range(0..self.rows);
        if let Some(pos) = self.stack.iter().position(|&x| x == id) {
            self.stack.remove(pos);
        }
        self.stack.insert(0, id);
        self.stack.truncate(self.max_stack);
        id
    }

    /// Draws `n` ids.
    pub fn take_ids(&mut self, n: usize) -> Vec<u64> {
        (0..n).map(|_| self.next_id()).collect()
    }

    /// Number of table rows ids are drawn from.
    pub fn rows(&self) -> u64 {
        self.rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unique_fraction;
    use recssd_cache::LruCache;

    #[test]
    fn unique_fractions_match_paper_calibration() {
        // §5: K = 0, 1, 2 → 13 %, 54 %, 72 % unique accesses.
        for (k, want) in [
            (LocalityK::K0, 0.13),
            (LocalityK::K1, 0.54),
            (LocalityK::K2, 0.72),
        ] {
            let mut t = LocalityTrace::with_k(1_000_000, k, 42);
            let ids = t.take_ids(30_000);
            let u = unique_fraction(&ids);
            assert!(
                (u - want).abs() < 0.04,
                "{k}: unique fraction {u} (want ≈{want})"
            );
        }
    }

    #[test]
    fn lru_2k_hit_rates_match_figure_10_baseline() {
        // Fig. 10: "the baseline LRU cache hitrates always follow the
        // inverse of the locality distribution, with 84%, 44%, and 28%".
        for (k, want) in [
            (LocalityK::K0, 0.84),
            (LocalityK::K1, 0.44),
            (LocalityK::K2, 0.28),
        ] {
            let mut t = LocalityTrace::with_k(1_000_000, k, 1);
            let mut cache = LruCache::new(2048);
            for _ in 0..60_000 {
                let id = t.next_id();
                if cache.get(&id).is_none() {
                    cache.insert(id, ());
                }
            }
            let rate = cache.stats().hit_rate();
            assert!(
                (rate - want).abs() < 0.05,
                "{k}: LRU hit rate {rate:.3} (want ≈{want})"
            );
        }
    }

    #[test]
    fn traces_are_deterministic_per_seed() {
        let mut a = LocalityTrace::with_k(1000, LocalityK::K1, 5);
        let mut b = LocalityTrace::with_k(1000, LocalityK::K1, 5);
        assert_eq!(a.take_ids(500), b.take_ids(500));
        let mut c = LocalityTrace::with_k(1000, LocalityK::K1, 6);
        assert_ne!(a.take_ids(500), c.take_ids(500));
    }

    #[test]
    fn ids_stay_in_range() {
        let rows = 777;
        let mut t = LocalityTrace::with_k(rows, LocalityK::K2, 3);
        assert!(t.take_ids(5_000).iter().all(|&id| id < rows));
        assert_eq!(t.rows(), rows);
    }

    #[test]
    fn zero_unique_prob_reuses_heavily() {
        let mut t = LocalityTrace::new(1_000_000, 0.0, 10.0, 9);
        let ids = t.take_ids(10_000);
        assert!(
            unique_fraction(&ids) < 0.02,
            "all-reuse trace must repeat ids"
        );
    }

    #[test]
    fn full_unique_prob_is_nearly_uniform() {
        let mut t = LocalityTrace::new(u64::MAX, 1.0, 10.0, 9);
        let ids = t.take_ids(10_000);
        assert!(unique_fraction(&ids) > 0.999);
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn bad_probability_panics() {
        LocalityTrace::new(10, 1.5, 10.0, 0);
    }
}
