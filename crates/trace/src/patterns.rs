//! The SEQ and STR microbenchmark access patterns of Fig. 8.

/// Sequential ids: `start, start+1, …` wrapping at `rows`.
///
/// "The Sequential (SEQ) memory access pattern represents use cases where
/// embedding table IDs are contiguous … use cases with extremely high page
/// locality" (§6.1). Under a dense layout, 128 consecutive 128-byte rows
/// share one 16 KB page.
///
/// # Example
///
/// ```
/// use recssd_trace::patterns::sequential_ids;
/// assert_eq!(sequential_ids(3, 4, 5), vec![3, 4, 0, 1]);
/// ```
///
/// # Panics
///
/// Panics if `rows` is zero.
pub fn sequential_ids(start: u64, count: usize, rows: u64) -> Vec<u64> {
    assert!(rows > 0, "table must have rows");
    (0..count as u64).map(|i| (start + i) % rows).collect()
}

/// Strided ids: `start, start+stride, …` wrapping at `rows`.
///
/// "The Random (STR) memory access patterns are generated with strided
/// embedding table lookup IDs and representative of access patterns where
/// each vector accessed is located on a unique Flash page" (§6.1). Pick
/// `stride >= rows_per_page` for that property.
///
/// # Example
///
/// ```
/// use recssd_trace::patterns::strided_ids;
/// assert_eq!(strided_ids(0, 128, 3, 1000), vec![0, 128, 256]);
/// ```
///
/// # Panics
///
/// Panics if `rows` is zero or `stride` is zero.
pub fn strided_ids(start: u64, stride: u64, count: usize, rows: u64) -> Vec<u64> {
    assert!(rows > 0, "table must have rows");
    assert!(stride > 0, "stride must be positive");
    (0..count as u64)
        .map(|i| (start + i * stride) % rows)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_wraps() {
        assert_eq!(sequential_ids(8, 4, 10), vec![8, 9, 0, 1]);
    }

    #[test]
    fn strided_lands_on_distinct_pages() {
        // 128 rows per page: stride 128 → one id per page.
        let ids = strided_ids(0, 128, 64, 1_000_000);
        let pages: std::collections::HashSet<u64> = ids.iter().map(|id| id / 128).collect();
        assert_eq!(pages.len(), 64);
    }

    #[test]
    fn sequential_shares_pages() {
        let ids = sequential_ids(0, 256, 1_000_000);
        let pages: std::collections::HashSet<u64> = ids.iter().map(|id| id / 128).collect();
        assert_eq!(pages.len(), 2, "256 contiguous rows span 2 dense pages");
    }

    #[test]
    #[should_panic(expected = "stride must be positive")]
    fn zero_stride_panics() {
        strided_ids(0, 0, 1, 10);
    }
}
