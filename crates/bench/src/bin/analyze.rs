//! `recssd-analyze`: offline critical-path, queueing and bottleneck
//! analysis over a saved Chrome-trace JSON.
//!
//! Reads a trace exported by `chrome_trace_json` (e.g. the serving
//! bench's `--trace-out trace.json`, or `trace_a_request.json` from the
//! example), reconstructs the span records exactly — timestamps round-
//! trip through the exporter's microsecond decimals without loss — and
//! prints the same reports the live [`ServingRuntime`] analysis APIs
//! produce: span-invariant validation, per-path critical-path profiles
//! with the conservation check, per-resource utilization timelines with
//! Little's-law-consistent queue stats, and the ranked bottleneck /
//! headroom report. The last line is always `top_bottleneck: <name>`,
//! so CI can diff the offline verdict against the live one.
//!
//! ```text
//! cargo run --release -p recssd-bench --bin recssd-analyze -- trace.json
//!     [--window-ns N] [--jsonl-out FILE]
//! ```
//!
//! The parser is hand-rolled for the exporter's format (the workspace
//! has no JSON dependency) but tolerates whitespace and key reordering;
//! unknown keys are skipped.
//!
//! [`ServingRuntime`]: recssd_serving::ServingRuntime

use recssd_serving::{
    bottleneck_report, coverage_report, critical_path_report, utilization_timelines,
    validate_spans, SpanRec,
};
use std::collections::HashMap;

fn main() {
    let mut args = std::env::args().skip(1);
    let mut path: Option<String> = None;
    let mut window_ns: u64 = 100_000;
    let mut jsonl_out: Option<String> = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--window-ns" => {
                let v = args.next().unwrap_or_default();
                window_ns = v
                    .parse()
                    .unwrap_or_else(|_| die(&format!("bad --window-ns {v:?}")));
            }
            "--jsonl-out" => {
                jsonl_out = Some(
                    args.next()
                        .unwrap_or_else(|| die("--jsonl-out needs a file")),
                )
            }
            "--help" | "-h" => {
                println!("usage: recssd-analyze <trace.json> [--window-ns N] [--jsonl-out FILE]");
                return;
            }
            _ if path.is_none() => path = Some(a),
            _ => die(&format!("unexpected argument {a:?}")),
        }
    }
    let path = path.unwrap_or_else(|| die("usage: recssd-analyze <trace.json> [--window-ns N]"));
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
    let spans = parse_trace(&text).unwrap_or_else(|e| die(&format!("cannot parse {path}: {e}")));

    println!("recssd-analyze: {path}");
    match validate_spans(&spans) {
        Ok(check) => println!(
            "spans: {} ({} requests), invariants OK, min e2e coverage {:.1}%",
            check.spans,
            check.requests,
            check.min_coverage * 100.0
        ),
        Err(e) => {
            // Still locate the shortfall before giving up: the coverage
            // report names the worst gap per request.
            eprintln!("span invariants FAILED: {e}");
            for rc in coverage_report(&spans).iter().filter(|r| r.coverage < 0.99) {
                if let Some(g) = rc.gaps.first() {
                    eprintln!(
                        "  request {}: {:.1}% covered, worst gap {} ns after {} (id {})",
                        rc.request,
                        rc.coverage * 100.0,
                        g.len_ns(),
                        g.after,
                        g.after_id
                    );
                }
            }
            std::process::exit(1);
        }
    }

    println!("\n{}", critical_path_report(&spans).render());

    let timelines = utilization_timelines(&spans, window_ns);
    println!(
        "resource utilization ({} resources, window {} ns):",
        timelines.len(),
        window_ns
    );
    for t in &timelines {
        println!(
            "  {:<20} {:<6} util {:>5.1}%  arrivals {:>6}  lambda {:>12.1}/s  \
             mean_wait {:>9.0} ns  L {:>8.3}  LL-residual {:.2e}",
            t.resource,
            t.kind.name(),
            t.utilization() * 100.0,
            t.total_arrivals,
            t.arrival_rate_per_s(),
            t.mean_wait_ns(),
            t.occupancy(),
            t.littles_law_residual()
        );
    }
    if let Some(out) = jsonl_out {
        let mut buf = String::new();
        for t in &timelines {
            buf.push_str(&t.snapshot_jsonl());
        }
        std::fs::write(&out, buf).unwrap_or_else(|e| die(&format!("cannot write {out}: {e}")));
        println!("  windowed series -> {out}");
    }

    println!("\n{}", bottleneck_report(&spans).render());
}

fn die(msg: &str) -> ! {
    eprintln!("recssd-analyze: {msg}");
    std::process::exit(2)
}

// ---------------------------------------------------------------------
// Chrome-trace JSON parsing (no external deps).
// ---------------------------------------------------------------------

/// Interner handing out `&'static str` — [`SpanRec`] stores static
/// strings so live emission never allocates; offline we leak one copy
/// per distinct name, which for a trace is a handful of strings.
#[derive(Default)]
struct Interner(HashMap<String, &'static str>);

impl Interner {
    fn get(&mut self, s: String) -> &'static str {
        if let Some(&v) = self.0.get(&s) {
            return v;
        }
        let leaked: &'static str = Box::leak(s.clone().into_boxed_str());
        self.0.insert(s, leaked);
        leaked
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
    names: Interner,
}

type PResult<T> = Result<T, String>;

/// Parses the exporter's document shape: an object whose `traceEvents`
/// key holds the array of complete (`ph: "X"`) events.
fn parse_trace(text: &str) -> PResult<Vec<SpanRec>> {
    let mut p = Parser {
        b: text.as_bytes(),
        i: 0,
        names: Interner::default(),
    };
    let mut spans = Vec::new();
    p.expect(b'{')?;
    loop {
        p.ws();
        if p.eat(b'}') {
            break;
        }
        let key = p.string()?;
        p.expect(b':')?;
        if key == "traceEvents" {
            p.expect(b'[')?;
            loop {
                p.ws();
                if p.eat(b']') {
                    break;
                }
                spans.push(p.event()?);
                p.ws();
                p.eat(b',');
            }
        } else {
            p.skip_value()?;
        }
        p.ws();
        p.eat(b',');
    }
    // Canonical order, same as the runtime's trace accessors.
    spans.sort_unstable_by_key(|s| (s.start_ns, s.end_ns, s.id));
    Ok(spans)
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&mut self) -> u8 {
        self.ws();
        *self.b.get(self.i).unwrap_or(&0)
    }

    fn eat(&mut self, c: u8) -> bool {
        self.ws();
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: u8) -> PResult<()> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", c as char, self.i))
        }
    }

    /// A JSON string with the exporter's escapes (`\"`, `\\`, `\uXXXX`).
    fn string(&mut self) -> PResult<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let c = *self
                .b
                .get(self.i)
                .ok_or_else(|| "unterminated string".to_string())?;
            self.i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = *self
                        .b
                        .get(self.i)
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.i += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = self
                                .b
                                .get(self.i..self.i + 4)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            self.i += 4;
                            out.push(
                                char::from_u32(code).ok_or_else(|| format!("bad \\u{code:04x}"))?,
                            );
                        }
                        other => return Err(format!("unknown escape \\{}", other as char)),
                    }
                }
                c => {
                    // Multi-byte UTF-8 passes through verbatim.
                    let start = self.i - 1;
                    let mut end = self.i;
                    if c >= 0x80 {
                        while end < self.b.len() && self.b[end] & 0xc0 == 0x80 {
                            end += 1;
                        }
                        self.i = end;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.b[start..end]).map_err(|e| e.to_string())?,
                    );
                }
            }
        }
    }

    /// A non-negative decimal number, returned as nanoseconds when a
    /// fractional part is present (the exporter writes microseconds with
    /// exactly three decimals, so `ns = int * 1000 + frac`) and as the
    /// plain integer otherwise.
    fn number(&mut self) -> PResult<(u64, bool)> {
        self.ws();
        let start = self.i;
        let mut int: u64 = 0;
        while let Some(c) = self.b.get(self.i) {
            if c.is_ascii_digit() {
                int = int
                    .checked_mul(10)
                    .and_then(|v| v.checked_add((c - b'0') as u64))
                    .ok_or_else(|| "number overflow".to_string())?;
                self.i += 1;
            } else {
                break;
            }
        }
        if self.i == start {
            return Err(format!("expected a number at byte {}", self.i));
        }
        if self.b.get(self.i) != Some(&b'.') {
            return Ok((int, false));
        }
        self.i += 1;
        let mut frac: u64 = 0;
        let mut digits = 0u32;
        while let Some(c) = self.b.get(self.i) {
            if c.is_ascii_digit() {
                if digits < 3 {
                    frac = frac * 10 + (c - b'0') as u64;
                    digits += 1;
                }
                self.i += 1;
            } else {
                break;
            }
        }
        while digits < 3 {
            frac *= 10;
            digits += 1;
        }
        Ok((int * 1000 + frac, true))
    }

    /// One `traceEvents` entry back into a [`SpanRec`].
    fn event(&mut self) -> PResult<SpanRec> {
        self.expect(b'{')?;
        let mut rec = SpanRec {
            id: 0,
            parent: 0,
            name: "",
            start_ns: 0,
            end_ns: 0,
            pid: 0,
            tid: 0,
            arg_key: "",
            arg_val: 0,
            label: "",
        };
        let mut dur_ns = 0u64;
        loop {
            self.ws();
            if self.eat(b'}') {
                break;
            }
            let key = self.string()?;
            self.expect(b':')?;
            match key.as_str() {
                "name" => {
                    let s = self.string()?;
                    rec.name = self.names.get(s);
                }
                "ph" => {
                    let ph = self.string()?;
                    if ph != "X" {
                        return Err(format!("unsupported event phase {ph:?}"));
                    }
                }
                "ts" => rec.start_ns = self.number()?.0,
                "dur" => dur_ns = self.number()?.0,
                "pid" => rec.pid = self.number()?.0 as u32,
                "tid" => rec.tid = self.number()?.0 as u32,
                "args" => {
                    self.expect(b'{')?;
                    loop {
                        self.ws();
                        if self.eat(b'}') {
                            break;
                        }
                        let k = self.string()?;
                        self.expect(b':')?;
                        match k.as_str() {
                            "span" => rec.id = self.number()?.0,
                            "parent" => rec.parent = self.number()?.0,
                            "label" => {
                                let s = self.string()?;
                                rec.label = self.names.get(s);
                            }
                            _ => {
                                rec.arg_val = self.number()?.0;
                                rec.arg_key = self.names.get(k);
                            }
                        }
                        self.ws();
                        self.eat(b',');
                    }
                }
                _ => self.skip_value()?,
            }
            self.ws();
            self.eat(b',');
        }
        rec.end_ns = rec.start_ns + dur_ns;
        if rec.id == 0 {
            return Err("event missing args.span id".to_string());
        }
        Ok(rec)
    }

    /// Skips any JSON value (used for keys the analyzer doesn't need).
    fn skip_value(&mut self) -> PResult<()> {
        match self.peek() {
            b'"' => {
                self.string()?;
            }
            b'{' => {
                self.expect(b'{')?;
                loop {
                    self.ws();
                    if self.eat(b'}') {
                        break;
                    }
                    self.string()?;
                    self.expect(b':')?;
                    self.skip_value()?;
                    self.ws();
                    self.eat(b',');
                }
            }
            b'[' => {
                self.expect(b'[')?;
                loop {
                    self.ws();
                    if self.eat(b']') {
                        break;
                    }
                    self.skip_value()?;
                    self.ws();
                    self.eat(b',');
                }
            }
            b't' | b'f' | b'n' => {
                while self.b.get(self.i).is_some_and(|c| c.is_ascii_alphabetic()) {
                    self.i += 1;
                }
            }
            b'-' => {
                self.i += 1;
                self.number()?;
            }
            _ => {
                self.number()?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::parse_trace;
    use recssd_serving::chrome_trace_json;

    /// Exported spans round-trip through the parser exactly, including
    /// sub-microsecond timestamps, args and labels.
    #[test]
    fn export_then_parse_roundtrips_exactly() {
        use recssd_serving::SpanRec;
        let mut spans = vec![
            SpanRec {
                id: 1,
                parent: 0,
                name: "request",
                start_ns: 1_234_567,
                end_ns: 2_000_001,
                pid: 0,
                tid: 0,
                arg_key: "degraded",
                arg_val: 0,
                label: "ndp",
            },
            SpanRec {
                id: 2,
                parent: 1,
                name: "sub:wait",
                start_ns: 1_234_569,
                end_ns: 1_500_000,
                pid: 0,
                tid: 0,
                arg_key: "shard",
                arg_val: 1,
                label: "",
            },
        ];
        let json = chrome_trace_json(&spans);
        let parsed = parse_trace(&json).expect("parses");
        spans.sort_unstable_by_key(|s| (s.start_ns, s.end_ns, s.id));
        assert_eq!(parsed, spans);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_trace("not json").is_err());
        assert!(parse_trace("{\"traceEvents\":[{\"ph\":\"X\"}]}").is_err());
    }
}
