//! Wall-clock throughput harness for the SLS datapath.
//!
//! Drives batched SLS operators through [`System`] for each of the three
//! execution paths (DRAM, baseline SSD, NDP) and reports **simulated
//! lookups per wall-clock second** — the number that caps how much
//! workload this simulator can chew through per unit of real time, which
//! is what the allocation-free datapath optimises. Results are printed
//! and written to `BENCH_throughput.json` so future PRs have a perf
//! trajectory to compare against.
//!
//! ```text
//! cargo run --release -p recssd-bench --bin throughput
//! cargo run --release -p recssd-bench --bin throughput --features count-allocs
//! RECSSD_PAPER_SCALE=1 cargo run --release -p recssd-bench --bin throughput
//! ```
//!
//! With `--features count-allocs` a counting global allocator is
//! installed and the report includes allocation events per path and per
//! lookup — steady-state NDP should sit well below one allocation per
//! gathered vector.

use std::fmt::Write as _;
use std::time::Instant;

use recssd::{OpKind, RecSsdConfig, SlsOptions, System};
use recssd_embedding::{
    EmbeddingTable, LookupBatch, PageLayout, Quantization, TableImage, TableSpec,
};
use recssd_serving::{
    ExecMode, SchedulePolicy, ServingConfig, ServingRuntime, SlsPath, WorkerProfile,
};
use recssd_sim::rng::Xoshiro256;
use recssd_sim::SimTime;

#[cfg(feature = "count-allocs")]
#[global_allocator]
static ALLOC: recssd_sim::alloc_count::CountingAllocator =
    recssd_sim::alloc_count::CountingAllocator;

struct Params {
    rows: u64,
    dim: usize,
    outputs: usize,
    lookups_per_output: usize,
    warmup_batches: usize,
    batches: usize,
}

impl Params {
    fn from_env() -> Self {
        if std::env::var("RECSSD_PAPER_SCALE").as_deref() == Ok("1") {
            Params {
                rows: 4096,
                dim: 32,
                outputs: 8,
                lookups_per_output: 20,
                warmup_batches: 32,
                batches: 512,
            }
        } else {
            Params {
                rows: 4096,
                dim: 32,
                outputs: 8,
                lookups_per_output: 20,
                warmup_batches: 8,
                batches: 128,
            }
        }
    }

    fn lookups_per_batch(&self) -> usize {
        self.outputs * self.lookups_per_output
    }
}

struct PathReport {
    name: &'static str,
    wall_secs: f64,
    sim_ns: u64,
    lookups: u64,
    allocs: Option<u64>,
}

impl PathReport {
    fn lookups_per_wall_sec(&self) -> f64 {
        self.lookups as f64 / self.wall_secs
    }
}

fn build_system(p: &Params) -> (System, recssd::TableId) {
    let mut sys = System::new(RecSsdConfig::small_wide());
    let spec = TableSpec::new(p.rows, p.dim, Quantization::F32);
    let table = sys.add_table(TableImage::new(
        EmbeddingTable::procedural(spec, 1),
        PageLayout::Spread,
        sys.config().ssd.block_bytes(),
    ));
    (sys, table)
}

fn gen_batches(p: &Params, n: usize, seed: u64) -> Vec<LookupBatch> {
    let mut rng = Xoshiro256::seed_from(seed);
    (0..n)
        .map(|_| {
            LookupBatch::new(
                (0..p.outputs)
                    .map(|_| {
                        (0..p.lookups_per_output)
                            .map(|_| rng.gen_range(0..p.rows))
                            .collect()
                    })
                    .collect(),
            )
        })
        .collect()
}

#[cfg(feature = "count-allocs")]
fn alloc_count() -> Option<u64> {
    Some(recssd_sim::alloc_count::allocation_count())
}

#[cfg(not(feature = "count-allocs"))]
fn alloc_count() -> Option<u64> {
    None
}

type MkOp = dyn Fn(recssd::TableId, LookupBatch) -> OpKind;

/// Runs `batches` ops through one path: submit → run → drain → recycle,
/// the steady-state serving loop.
///
/// With `trap` set (and `count-allocs` enabled) every batch arms
/// [`trap_next_allocation`], so the first steady-state allocation
/// panics with a backtrace naming the allocating frame. Driven by
/// `RECSSD_TRAP=<path-name>`; this is how the residual per-path alloc
/// counts in the report get root-caused.
///
/// [`trap_next_allocation`]: recssd_sim::alloc_count::trap_next_allocation
fn drive(
    sys: &mut System,
    table: recssd::TableId,
    batches: Vec<LookupBatch>,
    mk: &MkOp,
    trap: bool,
) -> u64 {
    let _ = trap;
    let mut sim_ns = 0u64;
    for batch in batches {
        #[cfg(feature = "count-allocs")]
        if trap {
            recssd_sim::alloc_count::trap_next_allocation();
        }
        let t0 = sys.now();
        let op = sys.submit(mk(table, batch));
        sys.run_until_idle();
        sim_ns += sys.now().saturating_since(t0).as_ns();
        let result = sys.take_result(op);
        if let Some(out) = result.outputs {
            sys.recycle_outputs(out);
        }
    }
    sim_ns
}

fn run_path(p: &Params, name: &'static str, mk: &MkOp) -> PathReport {
    let (mut sys, table) = build_system(p);
    // Warm-up: pools, caches and maps reach steady size before timing.
    drive(
        &mut sys,
        table,
        gen_batches(p, p.warmup_batches, 7),
        mk,
        false,
    );
    let batches = gen_batches(p, p.batches, 13);
    let lookups = (p.batches * p.lookups_per_batch()) as u64;
    let allocs_before = alloc_count();
    let wall0 = Instant::now();
    let trap = std::env::var("RECSSD_TRAP").as_deref() == Ok(name);
    let sim_ns = drive(&mut sys, table, batches, mk, trap);
    let wall_secs = wall0.elapsed().as_secs_f64();
    let allocs = alloc_count().zip(allocs_before).map(|(a, b)| a - b);
    PathReport {
        name,
        wall_secs,
        sim_ns,
        lookups,
        allocs,
    }
}

/// Workload for the parallel-scaling block: an 8-shard NDP serving
/// co-simulation saturated by densely staggered open-loop arrivals, so
/// every lookahead window has all shards busy — the shape the
/// multi-threaded stepper exists for.
struct ScalingParams {
    shards: usize,
    depth: usize,
    rows: u64,
    dim: usize,
    requests: usize,
    outputs: usize,
    lookups_per_output: usize,
    arrival_step_ns: u64,
}

impl ScalingParams {
    fn default() -> Self {
        ScalingParams {
            shards: 8,
            depth: 4,
            rows: 8192,
            dim: 64,
            requests: 256,
            outputs: 8,
            lookups_per_output: 32,
            arrival_step_ns: 500,
        }
    }

    fn lookups(&self) -> u64 {
        (self.requests * self.outputs * self.lookups_per_output) as u64
    }
}

/// One execution mode's measurement over the scaling workload.
struct ScalingPoint {
    label: &'static str,
    wall_secs: f64,
    sim_ns: u64,
    /// Order-sensitive digest of the full completion stream (ids,
    /// nanosecond timings, output bits) — every mode must produce the
    /// same value or the parallel stepper broke bit-identity.
    checksum: u64,
    workers: Vec<WorkerProfile>,
}

fn scaling_run(sp: &ScalingParams, label: &'static str, exec: ExecMode) -> ScalingPoint {
    let cfg = ServingConfig::small_wide(sp.shards, SchedulePolicy::micro_batch(8))
        .with_depth(sp.depth)
        .with_exec(exec);
    let mut rt = ServingRuntime::new(&cfg);
    let table = rt.add_table(EmbeddingTable::procedural(
        TableSpec::new(sp.rows, sp.dim, Quantization::F32),
        11,
    ));
    let mut rng = Xoshiro256::seed_from(0x5CA1E);
    for i in 0..sp.requests {
        let batch = LookupBatch::new(
            (0..sp.outputs)
                .map(|_| {
                    (0..sp.lookups_per_output)
                        .map(|_| rng.gen_range(0..sp.rows))
                        .collect()
                })
                .collect(),
        );
        rt.submit_at(
            SimTime::from_ns(i as u64 * sp.arrival_step_ns),
            i as u64,
            table,
            batch,
            SlsPath::Ndp(SlsOptions::default()),
        );
    }
    let wall0 = Instant::now();
    let done = rt.run_until_idle();
    let wall_secs = wall0.elapsed().as_secs_f64();
    assert_eq!(done.len(), sp.requests, "requests lost in scaling run");
    let mut checksum = 0xcbf29ce484222325u64; // FNV-1a over the stream
    let mut fold = |v: u64| {
        checksum = (checksum ^ v).wrapping_mul(0x100000001b3);
    };
    for d in &done {
        fold(d.id.0);
        fold(d.finish.as_ns());
        fold(d.queue.as_ns());
        fold(d.service.as_ns());
        fold(d.missing_lookups);
        for v in d.outputs.as_slice() {
            fold(u64::from(v.to_bits()));
        }
    }
    ScalingPoint {
        label,
        wall_secs,
        sim_ns: rt.now().as_ns(),
        checksum,
        workers: rt.worker_profiles(),
    }
}

/// Measures the conservative parallel stepper against the sequential
/// one on the same saturated 8-shard NDP workload and asserts the
/// completion streams stay bit-identical while doing so.
fn run_parallel_scaling(sp: &ScalingParams) -> Vec<ScalingPoint> {
    let points = vec![
        scaling_run(sp, "sequential", ExecMode::Sequential),
        scaling_run(sp, "parallel2", ExecMode::Parallel(2)),
        scaling_run(sp, "parallel4", ExecMode::Parallel(4)),
    ];
    for pt in &points[1..] {
        assert_eq!(
            pt.checksum, points[0].checksum,
            "{} completion stream diverged from sequential",
            pt.label
        );
    }
    points
}

fn json_escape_free(
    reports: &[PathReport],
    p: &Params,
    sp: &ScalingParams,
    scaling: &[ScalingPoint],
    cores: usize,
) -> String {
    // Hand-rolled JSON: the workspace has no serde and the schema is flat.
    let mut s = String::new();
    s.push_str("{\n  \"schema\": \"recssd-throughput/v2\",\n");
    let _ = writeln!(
        s,
        "  \"workload\": {{\"rows\": {}, \"dim\": {}, \"outputs\": {}, \"lookups_per_output\": {}, \"batches\": {}}},",
        p.rows, p.dim, p.outputs, p.lookups_per_output, p.batches
    );
    s.push_str("  \"paths\": {\n");
    for (i, r) in reports.iter().enumerate() {
        let allocs = r.allocs.map_or("null".to_string(), |a| a.to_string());
        let allocs_per_lookup = r.allocs.map_or("null".to_string(), |a| {
            format!("{:.3}", a as f64 / r.lookups as f64)
        });
        let _ = write!(
            s,
            "    \"{}\": {{\"lookups\": {}, \"wall_secs\": {:.6}, \"lookups_per_wall_sec\": {:.0}, \"sim_ns\": {}, \"allocs\": {}, \"allocs_per_lookup\": {}}}",
            r.name,
            r.lookups,
            r.wall_secs,
            r.lookups_per_wall_sec(),
            r.sim_ns,
            allocs,
            allocs_per_lookup
        );
        s.push_str(if i + 1 < reports.len() { ",\n" } else { "\n" });
    }
    s.push_str("  },\n");
    s.push_str("  \"parallel_scaling\": {\n");
    let _ = writeln!(s, "    \"cores\": {cores},");
    let _ = writeln!(
        s,
        "    \"workload\": {{\"shards\": {}, \"depth\": {}, \"rows\": {}, \"dim\": {}, \
         \"requests\": {}, \"lookups\": {}, \"arrival_step_ns\": {}}},",
        sp.shards,
        sp.depth,
        sp.rows,
        sp.dim,
        sp.requests,
        sp.lookups(),
        sp.arrival_step_ns
    );
    let seq_wall = scaling[0].wall_secs;
    s.push_str("    \"modes\": {\n");
    for (i, pt) in scaling.iter().enumerate() {
        let (advance_ns, barrier_ns, windows) = pt.workers.iter().fold((0, 0, 0), |acc, w| {
            (acc.0 + w.advance_ns, acc.1 + w.barrier_ns, w.windows)
        });
        let _ = write!(
            s,
            "      \"{}\": {{\"wall_secs\": {:.6}, \"lookups_per_wall_sec\": {:.0}, \
             \"speedup\": {:.3}, \"sim_ns\": {}, \"windows\": {}, \
             \"advance_ns\": {}, \"barrier_ns\": {}}}",
            pt.label,
            pt.wall_secs,
            sp.lookups() as f64 / pt.wall_secs,
            seq_wall / pt.wall_secs,
            pt.sim_ns,
            windows,
            advance_ns,
            barrier_ns
        );
        s.push_str(if i + 1 < scaling.len() { ",\n" } else { "\n" });
    }
    s.push_str("    }\n  }\n}\n");
    s
}

fn main() {
    let p = Params::from_env();
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_throughput.json".to_string());

    println!(
        "workload: {} batches x {} outputs x {} lookups (rows {}, dim {})",
        p.batches, p.outputs, p.lookups_per_output, p.rows, p.dim
    );
    let reports = [
        run_path(&p, "dram", &OpKind::dram_sls),
        run_path(&p, "baseline", &|t, b| {
            OpKind::baseline_sls(t, b, SlsOptions::default())
        }),
        run_path(&p, "ndp", &|t, b| {
            OpKind::ndp_sls(t, b, SlsOptions::default())
        }),
    ];
    for r in &reports {
        let allocs = r.allocs.map_or(String::from("n/a"), |a| {
            format!("{a} ({:.2}/lookup)", a as f64 / r.lookups as f64)
        });
        println!(
            "{:<9} {:>12.0} simulated lookups/wall-sec  (wall {:.3}s, sim {:.3}ms, allocs {})",
            r.name,
            r.lookups_per_wall_sec(),
            r.wall_secs,
            r.sim_ns as f64 / 1e6,
            allocs
        );
    }
    let sp = ScalingParams::default();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "parallel scaling: {} shards x depth {} NDP serving, {} requests ({} lookups), {cores} cores",
        sp.shards,
        sp.depth,
        sp.requests,
        sp.lookups()
    );
    let scaling = run_parallel_scaling(&sp);
    let seq_wall = scaling[0].wall_secs;
    for pt in &scaling {
        println!(
            "{:<11} wall {:.3}s  speedup {:.2}x  ({:.0} lookups/wall-sec)",
            pt.label,
            pt.wall_secs,
            seq_wall / pt.wall_secs,
            sp.lookups() as f64 / pt.wall_secs
        );
    }
    let json = json_escape_free(&reports, &p, &sp, &scaling, cores);
    std::fs::write(&out_path, &json).expect("write BENCH_throughput.json");
    println!("wrote {out_path}");
}
