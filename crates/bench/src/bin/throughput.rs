//! Wall-clock throughput harness for the SLS datapath.
//!
//! Drives batched SLS operators through [`System`] for each of the three
//! execution paths (DRAM, baseline SSD, NDP) and reports **simulated
//! lookups per wall-clock second** — the number that caps how much
//! workload this simulator can chew through per unit of real time, which
//! is what the allocation-free datapath optimises. Results are printed
//! and written to `BENCH_throughput.json` so future PRs have a perf
//! trajectory to compare against.
//!
//! ```text
//! cargo run --release -p recssd-bench --bin throughput
//! cargo run --release -p recssd-bench --bin throughput --features count-allocs
//! RECSSD_PAPER_SCALE=1 cargo run --release -p recssd-bench --bin throughput
//! ```
//!
//! With `--features count-allocs` a counting global allocator is
//! installed and the report includes allocation events per path and per
//! lookup — steady-state NDP should sit well below one allocation per
//! gathered vector.

use std::fmt::Write as _;
use std::time::Instant;

use recssd::{OpKind, RecSsdConfig, SlsOptions, System};
use recssd_embedding::{
    EmbeddingTable, LookupBatch, PageLayout, Quantization, TableImage, TableSpec,
};
use recssd_sim::rng::Xoshiro256;

#[cfg(feature = "count-allocs")]
#[global_allocator]
static ALLOC: recssd_sim::alloc_count::CountingAllocator =
    recssd_sim::alloc_count::CountingAllocator;

struct Params {
    rows: u64,
    dim: usize,
    outputs: usize,
    lookups_per_output: usize,
    warmup_batches: usize,
    batches: usize,
}

impl Params {
    fn from_env() -> Self {
        if std::env::var("RECSSD_PAPER_SCALE").as_deref() == Ok("1") {
            Params {
                rows: 4096,
                dim: 32,
                outputs: 8,
                lookups_per_output: 20,
                warmup_batches: 32,
                batches: 512,
            }
        } else {
            Params {
                rows: 4096,
                dim: 32,
                outputs: 8,
                lookups_per_output: 20,
                warmup_batches: 8,
                batches: 128,
            }
        }
    }

    fn lookups_per_batch(&self) -> usize {
        self.outputs * self.lookups_per_output
    }
}

struct PathReport {
    name: &'static str,
    wall_secs: f64,
    sim_ns: u64,
    lookups: u64,
    allocs: Option<u64>,
}

impl PathReport {
    fn lookups_per_wall_sec(&self) -> f64 {
        self.lookups as f64 / self.wall_secs
    }
}

fn build_system(p: &Params) -> (System, recssd::TableId) {
    let mut sys = System::new(RecSsdConfig::small_wide());
    let spec = TableSpec::new(p.rows, p.dim, Quantization::F32);
    let table = sys.add_table(TableImage::new(
        EmbeddingTable::procedural(spec, 1),
        PageLayout::Spread,
        sys.config().ssd.block_bytes(),
    ));
    (sys, table)
}

fn gen_batches(p: &Params, n: usize, seed: u64) -> Vec<LookupBatch> {
    let mut rng = Xoshiro256::seed_from(seed);
    (0..n)
        .map(|_| {
            LookupBatch::new(
                (0..p.outputs)
                    .map(|_| {
                        (0..p.lookups_per_output)
                            .map(|_| rng.gen_range(0..p.rows))
                            .collect()
                    })
                    .collect(),
            )
        })
        .collect()
}

#[cfg(feature = "count-allocs")]
fn alloc_count() -> Option<u64> {
    Some(recssd_sim::alloc_count::allocation_count())
}

#[cfg(not(feature = "count-allocs"))]
fn alloc_count() -> Option<u64> {
    None
}

type MkOp = dyn Fn(recssd::TableId, LookupBatch) -> OpKind;

/// Runs `batches` ops through one path: submit → run → drain → recycle,
/// the steady-state serving loop.
fn drive(sys: &mut System, table: recssd::TableId, batches: Vec<LookupBatch>, mk: &MkOp) -> u64 {
    let mut sim_ns = 0u64;
    for batch in batches {
        let t0 = sys.now();
        let op = sys.submit(mk(table, batch));
        sys.run_until_idle();
        sim_ns += sys.now().saturating_since(t0).as_ns();
        let result = sys.take_result(op);
        if let Some(out) = result.outputs {
            sys.recycle_outputs(out);
        }
    }
    sim_ns
}

fn run_path(p: &Params, name: &'static str, mk: &MkOp) -> PathReport {
    let (mut sys, table) = build_system(p);
    // Warm-up: pools, caches and maps reach steady size before timing.
    drive(&mut sys, table, gen_batches(p, p.warmup_batches, 7), mk);
    let batches = gen_batches(p, p.batches, 13);
    let lookups = (p.batches * p.lookups_per_batch()) as u64;
    let allocs_before = alloc_count();
    let wall0 = Instant::now();
    let sim_ns = drive(&mut sys, table, batches, mk);
    let wall_secs = wall0.elapsed().as_secs_f64();
    let allocs = alloc_count().zip(allocs_before).map(|(a, b)| a - b);
    PathReport {
        name,
        wall_secs,
        sim_ns,
        lookups,
        allocs,
    }
}

fn json_escape_free(reports: &[PathReport], p: &Params) -> String {
    // Hand-rolled JSON: the workspace has no serde and the schema is flat.
    let mut s = String::new();
    s.push_str("{\n  \"schema\": \"recssd-throughput/v1\",\n");
    let _ = writeln!(
        s,
        "  \"workload\": {{\"rows\": {}, \"dim\": {}, \"outputs\": {}, \"lookups_per_output\": {}, \"batches\": {}}},",
        p.rows, p.dim, p.outputs, p.lookups_per_output, p.batches
    );
    s.push_str("  \"paths\": {\n");
    for (i, r) in reports.iter().enumerate() {
        let allocs = r.allocs.map_or("null".to_string(), |a| a.to_string());
        let allocs_per_lookup = r.allocs.map_or("null".to_string(), |a| {
            format!("{:.3}", a as f64 / r.lookups as f64)
        });
        let _ = write!(
            s,
            "    \"{}\": {{\"lookups\": {}, \"wall_secs\": {:.6}, \"lookups_per_wall_sec\": {:.0}, \"sim_ns\": {}, \"allocs\": {}, \"allocs_per_lookup\": {}}}",
            r.name,
            r.lookups,
            r.wall_secs,
            r.lookups_per_wall_sec(),
            r.sim_ns,
            allocs,
            allocs_per_lookup
        );
        s.push_str(if i + 1 < reports.len() { ",\n" } else { "\n" });
    }
    s.push_str("  }\n}\n");
    s
}

fn main() {
    let p = Params::from_env();
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_throughput.json".to_string());

    println!(
        "workload: {} batches x {} outputs x {} lookups (rows {}, dim {})",
        p.batches, p.outputs, p.lookups_per_output, p.rows, p.dim
    );
    let reports = [
        run_path(&p, "dram", &OpKind::dram_sls),
        run_path(&p, "baseline", &|t, b| {
            OpKind::baseline_sls(t, b, SlsOptions::default())
        }),
        run_path(&p, "ndp", &|t, b| {
            OpKind::ndp_sls(t, b, SlsOptions::default())
        }),
    ];
    for r in &reports {
        let allocs = r.allocs.map_or(String::from("n/a"), |a| {
            format!("{a} ({:.2}/lookup)", a as f64 / r.lookups as f64)
        });
        println!(
            "{:<9} {:>12.0} simulated lookups/wall-sec  (wall {:.3}s, sim {:.3}ms, allocs {})",
            r.name,
            r.lookups_per_wall_sec(),
            r.wall_secs,
            r.sim_ns as f64 / 1e6,
            allocs
        );
    }
    let json = json_escape_free(&reports, &p);
    std::fs::write(&out_path, &json).expect("write BENCH_throughput.json");
    println!("wrote {out_path}");
}
