//! Regenerates the paper's tables and figures.
//!
//! ```text
//! figures all            # everything (EXPERIMENTS.md order)
//! figures fig8 fig9      # a selection
//! figures --csv fig5     # CSV instead of aligned tables
//! RECSSD_PAPER_SCALE=1 figures all   # paper-scale parameters
//! ```

use recssd_bench::experiments as ex;
use recssd_bench::{Scale, Series};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let csv = args.iter().any(|a| a == "--csv");
    let picks: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .collect();
    let picks = if picks.is_empty() || picks.contains(&"all") {
        vec![
            "table1",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig8",
            "fig9",
            "fig10ac",
            "fig10df",
            "fig11a",
            "fig11b",
            "ablations",
        ]
    } else {
        picks
    };
    let scale = Scale::from_env();
    eprintln!(
        "running {:?} at {} scale",
        picks,
        if scale.model_rows >= 1_000_000 {
            "paper"
        } else {
            "quick"
        }
    );
    for pick in picks {
        let series: Series = match pick {
            "table1" => ex::table1_params::run(),
            "fig3" => ex::fig03_reuse_cdf::run(scale),
            "fig4" => ex::fig04_page_cache::run(scale),
            "fig5" => ex::fig05_sls_dram_vs_ssd::run(scale),
            "fig6" => ex::fig06_e2e_dram_vs_ssd::run(scale),
            "fig8" => ex::fig08_sls_breakdown::run(scale),
            "fig9" => ex::fig09_naive_ndp::run(scale),
            "fig10ac" => ex::fig10_caching::run(scale, ex::fig10_caching::Variant::SsdCache),
            "fig10df" => ex::fig10_caching::run(scale, ex::fig10_caching::Variant::Partitioned),
            "fig11a" => ex::fig11_sensitivity::run_feature_quant(scale),
            "fig11b" => ex::fig11_sensitivity::run_indices_tables(scale),
            "ablations" => {
                ex::ablations::run_arm_speed(scale).print();
                ex::ablations::run_ssd_cache_capacity(scale).print();
                ex::ablations::run_io_concurrency(scale).print();
                ex::ablations::run_pipelining(scale)
            }
            other => {
                eprintln!("unknown experiment: {other}");
                std::process::exit(2);
            }
        };
        if csv {
            println!("# {}", series.title);
            print!("{}", series.to_csv());
            println!();
        } else {
            series.print();
        }
    }
}
