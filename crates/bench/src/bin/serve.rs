//! Serving-layer benchmark: sweeps shard count × scheduling policy ×
//! operator queue depth for all three execution paths under closed-loop
//! Zipf traffic, sweeps open-loop offered load (Poisson arrivals)
//! against latency per path, sweeps hot-fraction × Zipf skew × path for
//! the frequency-profiled hybrid DRAM+NDP placement subsystem, runs a
//! drifting-skew sweep (stale static plan vs the online-adaptive runtime
//! vs a per-phase oracle) plus a baseline-path pipelining A/B, runs a
//! resilience suite (deterministic fault injection: transient-rate
//! sweep, uncorrectable-media recovery, full-shard brownout behind the
//! circuit breaker), runs a traced observability pass (sim-time span
//! tracing across serving → host → firmware → flash, per-path latency
//! attribution, wall-clock self-profile), runs the trace analysis layer
//! over it (per-request critical-path extraction, per-resource queueing
//! timelines, automated bottleneck ranking + headroom), sweeps
//! per-channel SLS engine pools × queue depth on the NDP path (the
//! multi-engine in-SSD compute tentpole), and writes
//! `BENCH_serving.json` (v9 schema) with throughput, p50/p95/p99/p999
//! latency, per-shard operator occupancy, flash channel utilisation,
//! DRAM-tier hit-rate, per-tier latency, plan-refresh / migration
//! telemetry, fault / retry / fallback / degradation counters, the
//! observability block and the analysis block.
//!
//! ```text
//! cargo run --release -p recssd-bench --bin serve
//! RECSSD_PAPER_SCALE=1 cargo run --release -p recssd-bench --bin serve
//! cargo run --release -p recssd-bench --bin serve -- out.json \
//!     --trace-out trace.json --epoch-log epochs.jsonl
//! ```
//!
//! At any scale the run asserts the serving subsystem's acceptance bars:
//! aggregate NDP throughput grows at least 2x from 1 shard to 4 shards,
//! intra-shard pipelining (queue depth 4) gains at least 1.5x over depth
//! 1 on the 1-shard NDP FIFO configuration, hybrid DRAM+NDP placement
//! beats the all-NDP baseline by at least 1.3x at every swept skew
//! (all ≥ 0.9), frequency-ordered cold packing does not lower the FTL
//! page-cache hit rate, online-adaptive placement recovers at least 70%
//! of the per-phase-oracle throughput under churning skew while the
//! stale static plan falls below it, heat-packed storage gives the
//! baseline path at least 1.25x from queue depth 1 to 4, a sample of
//! merged outputs bit-matches `sls_reference` in every sweep, NDP
//! serving at 1% transient faults keeps at least 85% of fault-free
//! throughput with *every* completion bit-verified, a full-shard
//! brownout trips the circuit breaker while the fleet keeps serving
//! (degraded completions flagged, never silently wrong), the traced
//! pass reconstructs at least 99% of every request's end-to-end latency
//! from causally-linked child spans, the critical-path decomposition
//! conserves at least 95% of e2e time on all three serving paths, and
//! on the heat-packed baseline workload the bottleneck analyzer ranks
//! the serial firmware core first — re-finding, automatically, the wall
//! that previously took a manual deep-dive. With per-channel engine
//! pools enabled, multi-engine NDP throughput dominates the
//! single-engine configuration at every swept point (≥ 1.5x at 4 shards
//! × depth 4), and the traced multi-engine run's top bottleneck moves
//! off the firmware core onto a flash resource.

use std::fmt::Write as _;

use recssd::{
    BrownoutWindow, EnginePoolConfig, FaultConfig, LookupBatch, MergePlacement, SlsOptions,
};
use recssd_embedding::{EmbeddingTable, PageLayout, Quantization, TableSpec};
use recssd_placement::{plan_delta, FreqProfiler, PlacementPlan, PlacementPolicy};
use recssd_serving::{
    bottleneck_report, chrome_trace_json, critical_path_report, utilization_timelines,
    validate_spans, AdaptivePolicy, BottleneckReport, CriticalPathReport, ExecMode, FaultPolicy,
    LoadGen, LoadMode, LoadReport, PathAttribution, Phase, SchedulePolicy, ServingConfig,
    ServingRuntime, SlsPath, TrafficSpec, UtilizationTimeline, WallPhaseReport, WorkerProfile,
};
use recssd_sim::stats::Quantiles;
use recssd_sim::{SimDuration, SimTime};
use recssd_trace::{ArrivalProcess, DriftingZipf, RowStream, ZipfTrace};

struct Params {
    tables: usize,
    rows_per_table: u64,
    dim: usize,
    spec: TrafficSpec,
    clients: usize,
    requests: usize,
    verify_every: u64,
    depths: &'static [usize],
    /// Offered load as a fraction of the measured pipelined capacity.
    open_loads: &'static [f64],
    open_requests: usize,
    /// Zipf exponents of the placement sweep (the paper's skew axis).
    skews: &'static [f64],
    /// DRAM-tier budgets of the placement sweep, as row fractions
    /// (0 = the unplaced all-device baseline).
    hot_fractions: &'static [f64],
    /// Profiling samples per table feeding the placement plan.
    profile_samples: usize,
    /// Rows of the dense-layout packing A/B table.
    packing_rows: u64,
    /// Drift sweep: rotation phases (phase 0 included).
    drift_phases: u64,
    /// Drift sweep: requests served per phase.
    drift_requests_per_phase: usize,
    /// Drift sweep: Zipf skew of the rotating distribution.
    drift_skew: f64,
    /// Drift sweep: fraction of the rank mapping that churns per phase.
    drift_churn: f64,
    /// Drift sweep: global DRAM row budget (all tables together) — kept
    /// small enough that the head it buys is *learnable* from live
    /// traffic, the regime where online re-profiling can actually chase
    /// the oracle.
    drift_budget_rows: usize,
    /// Adaptive arm: admissions per re-planning epoch.
    drift_epoch_requests: u64,
    /// Drift sweep: closed-loop client population (high enough that
    /// throughput reflects capacity — i.e. miss rate — not per-request
    /// latency).
    drift_clients: usize,
    /// Multi-engine sweep: embedding dimension. Wide vectors put the
    /// NDP path in the Fig.-11a regime where per-page Translation
    /// dominates the firmware — the wall the engine pool breaks.
    me_dim: usize,
    /// Multi-engine sweep: closed-loop clients (enough to saturate all
    /// [`ME_SHARDS`] shards at the deepest swept queue depth).
    me_clients: usize,
}

impl Params {
    fn from_env() -> Self {
        if std::env::var("RECSSD_PAPER_SCALE").as_deref() == Ok("1") {
            Params {
                tables: 4,
                rows_per_table: 4096,
                dim: 32,
                spec: TrafficSpec {
                    outputs: 4,
                    lookups_per_output: 10,
                    zipf_exponent: 1.2,
                },
                clients: 16,
                requests: 512,
                verify_every: 16,
                depths: &[1, 2, 4, 8],
                open_loads: &[0.25, 0.5, 0.75, 0.95],
                open_requests: 256,
                skews: &[1.05, 1.2, 1.5, 2.0],
                hot_fractions: &[0.0, 0.02, 0.05, 0.1, 0.2],
                profile_samples: 200_000,
                packing_rows: 16_384,
                drift_phases: 4,
                drift_requests_per_phase: 768,
                drift_skew: 1.5,
                drift_churn: 0.35,
                drift_budget_rows: 512,
                drift_epoch_requests: 96,
                drift_clients: 64,
                me_dim: 1024,
                me_clients: 64,
            }
        } else {
            Params {
                tables: 2,
                rows_per_table: 2048,
                dim: 32,
                spec: TrafficSpec {
                    outputs: 4,
                    lookups_per_output: 8,
                    zipf_exponent: 1.2,
                },
                clients: 12,
                requests: 96,
                verify_every: 8,
                depths: &[1, 2, 4],
                open_loads: &[0.25, 0.5, 0.75, 0.95],
                open_requests: 96,
                skews: &[1.05, 1.2, 1.5],
                hot_fractions: &[0.0, 0.05, 0.2],
                profile_samples: 50_000,
                packing_rows: 8_192,
                drift_phases: 4,
                drift_requests_per_phase: 384,
                drift_skew: 1.5,
                drift_churn: 0.35,
                drift_budget_rows: 128,
                drift_epoch_requests: 48,
                drift_clients: 48,
                me_dim: 1024,
                me_clients: 32,
            }
        }
    }
}

fn build_runtime(
    p: &Params,
    cfg: &ServingConfig,
) -> (ServingRuntime, Vec<recssd_serving::ServedTableId>) {
    let mut rt = ServingRuntime::new(cfg);
    let tables = (0..p.tables)
        .map(|t| {
            rt.add_table(EmbeddingTable::procedural(
                TableSpec::new(p.rows_per_table, p.dim, Quantization::F32),
                t as u64,
            ))
        })
        .collect();
    (rt, tables)
}

struct ConfigReport {
    shards: usize,
    depth: usize,
    policy: &'static str,
    path: &'static str,
    report: LoadReport,
}

fn run_config(
    p: &Params,
    shards: usize,
    depth: usize,
    policy: SchedulePolicy,
    path: SlsPath,
) -> ConfigReport {
    let cfg = ServingConfig::small_wide(shards, policy).with_depth(depth);
    let (mut rt, tables) = build_runtime(p, &cfg);
    let mut gen = LoadGen::new(
        &rt,
        tables,
        p.spec,
        LoadMode::Closed {
            clients: p.clients,
            think: SimDuration::ZERO,
        },
        42,
    )
    .with_verify_every(p.verify_every);
    let report = gen.run(&mut rt, path, p.requests);
    assert!(
        report.verified > 0,
        "verification sample was empty — bit-match unchecked"
    );
    ConfigReport {
        shards,
        depth,
        policy: policy.name(),
        path: path.name(),
        report,
    }
}

struct OpenReport {
    path: &'static str,
    depth: usize,
    /// Fraction of the measured closed-loop capacity offered.
    load: f64,
    /// Offered arrival rate, requests per simulated second.
    rate_rps: f64,
    report: LoadReport,
}

/// Open-loop latency-vs-offered-load point: Poisson arrivals at a fixed
/// fraction of the path's measured pipelined capacity, 1 shard, FIFO.
fn run_open(p: &Params, path: SlsPath, depth: usize, load: f64, capacity_rps: f64) -> OpenReport {
    let rate_rps = load * capacity_rps;
    let cfg = ServingConfig::small_wide(1, SchedulePolicy::Fifo).with_depth(depth);
    let (mut rt, tables) = build_runtime(p, &cfg);
    let mut gen = LoadGen::new(
        &rt,
        tables,
        p.spec,
        LoadMode::Open(ArrivalProcess::poisson(rate_rps, 99)),
        71,
    )
    .with_verify_every(p.verify_every);
    let report = gen.run(&mut rt, path, p.open_requests);
    assert!(report.verified > 0, "open-loop bit-match unchecked");
    OpenReport {
        path: path.name(),
        depth,
        load,
        rate_rps,
        report,
    }
}

struct PlacementReport {
    path: &'static str,
    skew: f64,
    hot_fraction: f64,
    hot_rows: usize,
    report: LoadReport,
}

/// Profiles one decorrelated Zipf stream per table at `skew` — static
/// placement relies on the distribution, not the exact replay, so one
/// profile serves every (path × hot-fraction) point of that skew.
fn profile_skew(p: &Params, skew: f64) -> FreqProfiler {
    let mut prof = FreqProfiler::new();
    for t in 0..p.tables {
        let id = prof.add_table(p.rows_per_table);
        let mut zipf = ZipfTrace::new(p.rows_per_table, skew, 0x9E37 + t as u64 * 7919);
        prof.profile_zipf(id, &mut zipf, p.profile_samples);
    }
    prof
}

/// One hybrid-placement point: pin the plan's hot rows into the DRAM
/// tier (no plan = the unplaced all-device baseline) and serve
/// closed-loop traffic of the profiled skew. Two shards, pipelined
/// FIFO, like for like across hot fractions.
fn run_placement(
    p: &Params,
    path: SlsPath,
    depth: usize,
    skew: f64,
    hot_fraction: f64,
    plan: Option<&PlacementPlan>,
) -> PlacementReport {
    let cfg = ServingConfig::small_wide(2, SchedulePolicy::Fifo).with_depth(depth);
    let mut rt = ServingRuntime::new(&cfg);
    let mut hot_rows = 0;
    let tables = (0..p.tables)
        .map(|t| {
            let table = EmbeddingTable::procedural(
                TableSpec::new(p.rows_per_table, p.dim, Quantization::F32),
                t as u64,
            );
            match plan {
                Some(plan) => {
                    hot_rows += plan.table(t).hot_count();
                    rt.add_table_placed(table, plan.table(t))
                }
                None => rt.add_table(table),
            }
        })
        .collect();
    let spec = TrafficSpec {
        zipf_exponent: skew,
        ..p.spec
    };
    let mut gen = LoadGen::new(
        &rt,
        tables,
        spec,
        LoadMode::Closed {
            clients: p.clients,
            think: SimDuration::ZERO,
        },
        42,
    )
    .with_verify_every(p.verify_every);
    let report = gen.run(&mut rt, path, p.requests);
    assert!(report.verified > 0, "placement bit-match unchecked");
    PlacementReport {
        path: path.name(),
        skew,
        hot_fraction,
        hot_rows,
        report,
    }
}

struct PackingReport {
    packed: bool,
    report: LoadReport,
}

/// Frequency-ordered cold packing A/B: one dense-layout table much
/// larger than the 32-page FTL cache, zero hot budget (packing only),
/// NDP path. Packed images put the co-hot head of the Zipf stream on
/// shared pages, so the FTL page cache covers far more of the traffic.
fn run_packing(p: &Params, depth: usize, packed: bool) -> PackingReport {
    let skew = 1.2;
    let mut cfg = ServingConfig::small_wide(1, SchedulePolicy::Fifo).with_depth(depth);
    cfg.layout = PageLayout::Dense;
    let mut rt = ServingRuntime::new(&cfg);
    let table =
        EmbeddingTable::procedural(TableSpec::new(p.packing_rows, p.dim, Quantization::F32), 1);
    let id = if packed {
        let mut prof = FreqProfiler::new();
        let t = prof.add_table(p.packing_rows);
        let mut zipf = ZipfTrace::new(p.packing_rows, skew, 0x9E37);
        prof.profile_zipf(t, &mut zipf, p.profile_samples);
        let plan = PlacementPlan::build(&prof, &PlacementPolicy::hot_fraction(0.0));
        rt.add_table_placed(table, plan.table(0))
    } else {
        rt.add_table(table)
    };
    let spec = TrafficSpec {
        zipf_exponent: skew,
        ..p.spec
    };
    let mut gen = LoadGen::new(
        &rt,
        vec![id],
        spec,
        LoadMode::Closed {
            clients: p.clients,
            think: SimDuration::ZERO,
        },
        42,
    )
    .with_verify_every(p.verify_every);
    let report = gen.run(&mut rt, SlsPath::Ndp(SlsOptions::default()), p.requests);
    assert!(report.verified > 0, "packing bit-match unchecked");
    PackingReport { packed, report }
}

/// One arm of the drift sweep: aggregate throughput plus per-phase
/// tier-hit and refresh telemetry.
struct DriftArm {
    arm: &'static str,
    lookups_per_sim_sec: f64,
    plan_refreshes: u64,
    rows_promoted: u64,
    rows_demoted: u64,
    migration_lookups: u64,
    phase_tput: Vec<f64>,
    phase_tier_hit: Vec<f64>,
}

fn drift_seed(t: usize) -> u64 {
    0xD41F7 + t as u64 * 7919
}

/// Request shape of the drift sweep: small requests keep the fully-hot
/// request fraction (≈ hit_rate^lookups, the quantity that actually
/// gates hybrid throughput) from amplifying tiny hit-rate gaps into
/// cliff edges, so the sweep measures adaptation rather than the tail of
/// the binomial.
fn drift_spec(p: &Params) -> TrafficSpec {
    TrafficSpec {
        zipf_exponent: p.drift_skew,
        ..p.spec
    }
}

/// Draws per table, per phase, of the drifting stream (the generator is
/// shared round-robin across tables, so each table sees `1/tables` of
/// the phase's requests).
fn drift_period(p: &Params) -> u64 {
    (p.drift_requests_per_phase / p.tables) as u64 * drift_spec(p).lookups_per_request() as u64
}

/// The stationary profile of one drift phase, via pinned clones of the
/// traffic generators — what an oracle that knows the phase's
/// distribution would profile.
fn profile_drift_phase(p: &Params, phase: u64) -> FreqProfiler {
    let mut prof = FreqProfiler::new();
    for t in 0..p.tables {
        let id = prof.add_table(p.rows_per_table);
        let mut pinned = DriftingZipf::new(
            p.rows_per_table,
            p.drift_skew,
            drift_seed(t),
            drift_period(p),
        )
        .with_churn(p.drift_churn)
        .pinned(phase);
        prof.profile_stream(id, (0..p.profile_samples).map(|_| pinned.next_id()));
    }
    prof
}

/// Registers every table under `plan` on a fresh 2-shard pipelined
/// runtime.
fn drift_runtime(
    p: &Params,
    depth: usize,
    plan: &PlacementPlan,
) -> (ServingRuntime, Vec<recssd_serving::ServedTableId>) {
    // Micro-batching amortises per-command fixed costs across requests,
    // so capacity tracks *cold lookup volume* — the quantity placement
    // actually controls — rather than per-request round-trips.
    let cfg = ServingConfig::small_wide(2, SchedulePolicy::micro_batch(16)).with_depth(depth);
    let mut rt = ServingRuntime::new(&cfg);
    let tables = (0..p.tables)
        .map(|t| {
            let table = EmbeddingTable::procedural(
                TableSpec::new(p.rows_per_table, p.dim, Quantization::F32),
                t as u64,
            );
            rt.add_table_placed(table, plan.table(t))
        })
        .collect();
    (rt, tables)
}

fn drift_gen(
    p: &Params,
    rt: &ServingRuntime,
    tables: &[recssd_serving::ServedTableId],
    streams: Vec<RowStream>,
) -> LoadGen {
    let spec = drift_spec(p);
    LoadGen::new(
        rt,
        tables.to_vec(),
        spec,
        LoadMode::Closed {
            clients: p.drift_clients,
            think: SimDuration::ZERO,
        },
        42,
    )
    .with_streams(streams)
    .with_verify_every(p.verify_every)
}

fn fold_drift_arm(arm: &'static str, phases: &[LoadReport]) -> DriftArm {
    let lookups: u64 = phases.iter().map(|r| r.lookups).sum();
    let secs: f64 = phases.iter().map(|r| r.makespan.as_secs_f64()).sum();
    DriftArm {
        arm,
        lookups_per_sim_sec: lookups as f64 / secs,
        plan_refreshes: phases.iter().map(|r| r.plan_refreshes).sum(),
        rows_promoted: phases.iter().map(|r| r.rows_promoted).sum(),
        rows_demoted: phases.iter().map(|r| r.rows_demoted).sum(),
        migration_lookups: phases.iter().map(|r| r.migration_lookups).sum(),
        phase_tput: phases.iter().map(|r| r.lookups_per_sim_sec).collect(),
        phase_tier_hit: phases.iter().map(|r| r.tier_hit_rate).collect(),
    }
}

/// The drift sweep: rotating-skew traffic served by (a) a static plan
/// profiled on phase 0 that goes stale, (b) the online-adaptive runtime
/// (decayed re-profiling + global-budget re-planning + live migration),
/// and (c) a per-phase oracle upper bound whose plan always matches the
/// current phase for free.
fn run_drift(p: &Params, depth: usize) -> Vec<DriftArm> {
    let path = SlsPath::Ndp(SlsOptions::default());
    let period = drift_period(p);
    let phase0_plan = PlacementPlan::build_global(&profile_drift_phase(p, 0), p.drift_budget_rows);
    let drifting_streams = || -> Vec<RowStream> {
        (0..p.tables)
            .map(|t| {
                RowStream::Drifting(
                    DriftingZipf::new(p.rows_per_table, p.drift_skew, drift_seed(t), period)
                        .with_churn(p.drift_churn),
                )
            })
            .collect()
    };

    let mut arms = Vec::new();
    for arm in ["stale", "adaptive"] {
        let (mut rt, tables) = drift_runtime(p, depth, &phase0_plan);
        if arm == "adaptive" {
            rt.enable_adaptive(AdaptivePolicy {
                epoch_requests: p.drift_epoch_requests,
                decay: 0.8,
                budget_rows: p.drift_budget_rows,
                min_hit_gain: 0.03,
            });
        }
        let mut gen = drift_gen(p, &rt, &tables, drifting_streams());
        let mut phases = Vec::new();
        for phase in 0..p.drift_phases {
            let report = gen.run(&mut rt, path, p.drift_requests_per_phase);
            assert!(report.verified > 0, "drift bit-match unchecked");
            println!(
                "{arm:>9} phase {phase}: {:>10.0} lookups/sim-sec  tier-hit {:>5.1}%  \
                 refreshes {}  promoted {:>4}  migration {:>4} lookups",
                report.lookups_per_sim_sec,
                report.tier_hit_rate * 100.0,
                report.plan_refreshes,
                report.rows_promoted,
                report.migration_lookups,
            );
            phases.push(report);
        }
        arms.push(fold_drift_arm(arm, &phases));
    }

    // Oracle: a fresh, perfectly profiled static plan per phase.
    let mut phases = Vec::new();
    let mut prev_plan = phase0_plan.clone();
    for phase in 0..p.drift_phases {
        let plan = if phase == 0 {
            phase0_plan.clone()
        } else {
            PlacementPlan::build_global_versioned(
                &profile_drift_phase(p, phase),
                p.drift_budget_rows,
                prev_plan.version().next(),
            )
        };
        // How much of the hot set the churn actually moved this phase —
        // the migration volume an ideally informed refresh would pay.
        let delta = plan_delta(&prev_plan, &plan);
        if phase > 0 {
            println!(
                "   oracle phase {phase} plan delta: {} promoted, {} demoted of {} hot rows",
                delta.total_promoted(),
                delta.total_demoted(),
                plan.total_hot_rows(),
            );
        }
        prev_plan = plan.clone();
        let (mut rt, tables) = drift_runtime(p, depth, &plan);
        let streams: Vec<RowStream> = (0..p.tables)
            .map(|t| {
                RowStream::Drifting(
                    DriftingZipf::new(p.rows_per_table, p.drift_skew, drift_seed(t), period)
                        .with_churn(p.drift_churn)
                        .pinned(phase),
                )
            })
            .collect();
        let mut gen = drift_gen(p, &rt, &tables, streams);
        let report = gen.run(&mut rt, path, p.drift_requests_per_phase);
        assert!(report.verified > 0, "oracle bit-match unchecked");
        println!(
            "{:>9} phase {phase}: {:>10.0} lookups/sim-sec  tier-hit {:>5.1}%",
            "oracle",
            report.lookups_per_sim_sec,
            report.tier_hit_rate * 100.0,
        );
        phases.push(report);
    }
    arms.push(fold_drift_arm("oracle", &phases));
    arms
}

struct BaselineDepthReport {
    packed: bool,
    depth: usize,
    lookups_per_sim_sec: f64,
}

/// Baseline-path pipelining A/B: heat-order packing makes the hot
/// storage prefix contiguous, so the coalescing I/O planner amortises the
/// serial per-command firmware charge and queue depth finally pays on the
/// COTS-SSD path.
fn run_baseline_depth(p: &Params, packed: bool, depth: usize) -> BaselineDepthReport {
    let skew = 1.2;
    let mut cfg = ServingConfig::small_wide(1, SchedulePolicy::Fifo).with_depth(depth);
    // A tuned host policy for heat-packed tables: read through larger
    // gaps than the conservative default, trading junk-page transfers
    // for far fewer serial firmware commands. (The default stays low so
    // scattered traffic does not pay the junk-page volume.)
    cfg.system.host.read_bridge_limit = 8;
    let mut rt = ServingRuntime::new(&cfg);
    let prof = profile_skew(p, skew);
    let plan = PlacementPlan::build(&prof, &PlacementPolicy::hot_fraction(0.0));
    let tables: Vec<_> = (0..p.tables)
        .map(|t| {
            let table = EmbeddingTable::procedural(
                TableSpec::new(p.rows_per_table, p.dim, Quantization::F32),
                t as u64,
            );
            if packed {
                rt.add_table_placed(table, plan.table(t))
            } else {
                rt.add_table(table)
            }
        })
        .collect();
    let spec = TrafficSpec {
        zipf_exponent: skew,
        ..p.spec
    };
    let mut gen = LoadGen::new(
        &rt,
        tables,
        spec,
        LoadMode::Closed {
            clients: p.clients,
            think: SimDuration::ZERO,
        },
        42,
    )
    .with_verify_every(p.verify_every);
    let report = gen.run(
        &mut rt,
        SlsPath::Baseline(SlsOptions::default()),
        p.requests,
    );
    assert!(report.verified > 0, "baseline depth bit-match unchecked");
    BaselineDepthReport {
        packed,
        depth,
        lookups_per_sim_sec: report.lookups_per_sim_sec,
    }
}

/// One point of the transient-fault-rate sweep.
struct ResiliencePoint {
    rate: f64,
    /// Throughput relative to the fault-free point of the same sweep.
    throughput_ratio: f64,
    report: LoadReport,
}

struct ResilienceReport {
    sweep: Vec<ResiliencePoint>,
    uncorrectable_rate: f64,
    uncorrectable: LoadReport,
    brownout: LoadReport,
}

/// One resilience run: 2 pipelined shards, micro-batched NDP serving,
/// closed-loop, with **every** completion verified against the unsharded
/// `sls_reference` (missing-slot aware — flagged rows are exempt, every
/// served row must bit-match). `inject` arms fault plans on the fresh
/// runtime before traffic starts.
fn run_resilient(
    p: &Params,
    policy: FaultPolicy,
    inject: impl FnOnce(&mut ServingRuntime),
) -> LoadReport {
    let cfg = ServingConfig::small_wide(2, SchedulePolicy::micro_batch(8)).with_depth(2);
    let (mut rt, tables) = build_runtime(p, &cfg);
    inject(&mut rt);
    rt.set_fault_policy(policy);
    let mut gen = LoadGen::new(
        &rt,
        tables,
        p.spec,
        LoadMode::Closed {
            clients: p.clients,
            think: SimDuration::ZERO,
        },
        42,
    )
    .with_verify_every(1);
    gen.run(&mut rt, SlsPath::Ndp(SlsOptions::default()), p.requests)
}

/// The resilience suite: transient-rate sweep (faults absorbed by
/// in-device ECC retries — throughput bends, correctness never),
/// uncorrectable-media recovery (host retries + NDP→baseline fallback),
/// and a full-shard brownout served through the circuit breaker under a
/// deadline.
fn run_resilience(p: &Params) -> ResilienceReport {
    let rates = [0.0, 0.001, 0.01, 0.05];
    println!("resilience sweep (transient rates {rates:?}, NDP, every completion verified):");
    let mut sweep: Vec<ResiliencePoint> = Vec::new();
    for &rate in &rates {
        let report = run_resilient(p, FaultPolicy::default(), |rt| {
            if rate > 0.0 {
                let mut fc = FaultConfig::quiet(0xFA17);
                fc.transient_read_error_rate = rate;
                rt.inject_faults(&fc);
            }
        });
        // Transient faults are ECC-corrected inside the device: every
        // request is served complete, bit-verified, nothing degraded.
        assert_eq!(
            report.requests, p.requests as u64,
            "lost requests at rate {rate}"
        );
        assert_eq!(
            report.verified, report.requests,
            "unverified completion at rate {rate}"
        );
        assert_eq!(
            report.degraded, 0,
            "transient faults must not degrade requests"
        );
        let throughput_ratio = match sweep.first() {
            Some(base) => report.lookups_per_sim_sec / base.report.lookups_per_sim_sec,
            None => 1.0,
        };
        println!(
            "  transient {:>6.3}: {:>10.0} lookups/sim-sec ({:>5.1}% of fault-free)  \
             verified {}/{}",
            rate,
            report.lookups_per_sim_sec,
            throughput_ratio * 100.0,
            report.verified,
            report.requests,
        );
        sweep.push(ResiliencePoint {
            rate,
            throughput_ratio,
            report,
        });
    }
    // Acceptance bar 6: at 1% transient faults NDP serving keeps >= 85%
    // of fault-free throughput with zero non-flagged mismatches (the
    // per-completion bit-verification above *is* the mismatch check).
    let at_1pct = sweep
        .iter()
        .find(|s| s.rate == 0.01)
        .expect("1% transient point present");
    assert!(
        at_1pct.throughput_ratio >= 0.85,
        "1% transient faults cost too much throughput: {:.1}% of fault-free",
        at_1pct.throughput_ratio * 100.0
    );

    // Uncorrectable media errors: typed device failures recovered by the
    // host retry budget and NDP→baseline fallback; rows that stay
    // unreadable are flagged, never fabricated.
    let uncorrectable_rate = 0.02;
    let uncorrectable = run_resilient(p, FaultPolicy::default(), |rt| {
        let mut fc = FaultConfig::quiet(0xC0FFEE);
        fc.uncorrectable_rate = uncorrectable_rate;
        rt.inject_faults(&fc);
    });
    assert_eq!(uncorrectable.requests, p.requests as u64, "lost requests");
    assert_eq!(uncorrectable.verified, uncorrectable.requests);
    assert!(
        uncorrectable.faults > 0 && uncorrectable.retries > 0,
        "uncorrectable scenario exercised no recovery path"
    );
    println!(
        "  uncorrectable {:.2}: faults {}  retries {}  fallbacks {}  degraded {}  \
         missing {} of {} lookups",
        uncorrectable_rate,
        uncorrectable.faults,
        uncorrectable.retries,
        uncorrectable.fallbacks,
        uncorrectable.degraded,
        uncorrectable.missing_lookups,
        uncorrectable.lookups,
    );

    // Full-shard NDP brownout: shard 0 browns out and fails every read;
    // the breaker trips, NDP work redirects to the baseline path, the
    // deadline bounds every request, and the fleet keeps serving —
    // degraded and flagged, never hung, never silently wrong.
    let mut sick = FaultConfig::quiet(0xB10);
    sick.uncorrectable_rate = 1.0;
    sick.brownouts = vec![BrownoutWindow {
        start: SimTime::ZERO,
        end: SimTime::from_ms(10),
        factor: 4,
    }];
    let brownout = run_resilient(
        p,
        FaultPolicy {
            max_retries: 1,
            fallback_after: 1,
            deadline: Some(SimDuration::from_ms(5)),
            breaker_window: 4,
            breaker_threshold: 0.5,
            breaker_cooldown: SimDuration::from_us(200),
            ..FaultPolicy::default()
        },
        |rt| rt.inject_faults_on_shard(0, &sick),
    );
    // Acceptance bar 7: the breaker trips and the fleet survives a
    // full-shard brownout — every request completes (many degraded,
    // all flagged and bit-verified on their served rows).
    assert_eq!(
        brownout.requests, p.requests as u64,
        "brownout lost requests"
    );
    assert_eq!(brownout.verified, brownout.requests);
    assert!(
        brownout.breaker_trips >= 1,
        "brownout never tripped the breaker"
    );
    assert!(
        brownout.degraded > 0,
        "total shard loss must degrade requests"
    );
    assert!(
        brownout.missing_lookups < brownout.lookups,
        "healthy shards must keep serving rows through the brownout"
    );
    println!(
        "  brownout: breaker trips {}  degraded {}/{}  missing {} of {} lookups  p99 {:.1}us",
        brownout.breaker_trips,
        brownout.degraded,
        brownout.requests,
        brownout.missing_lookups,
        brownout.lookups,
        brownout.e2e.p99 as f64 / 1e3,
    );

    ResilienceReport {
        sweep,
        uncorrectable_rate,
        uncorrectable,
        brownout,
    }
}

/// The observability pass: the same stack traced end-to-end.
struct ObsReport {
    /// Requests submitted (one `request` span each).
    requests: usize,
    /// Spans recorded across serving, host, firmware and flash layers.
    spans: usize,
    /// Worst direct-child coverage over non-degraded request spans.
    min_coverage: f64,
    /// Per-path time-goes-where report.
    attribution: Vec<PathAttribution>,
    /// Wall-clock self-profile of the simulator loop.
    wall: Vec<WallPhaseReport>,
    /// The execution mode the traced pass actually ran under (after any
    /// `RECSSD_FORCE_EXEC` override), as a stable label.
    exec: String,
    /// Per-worker advance vs barrier-wait self-profiles of the parallel
    /// stepper (empty when the pass ran sequentially).
    workers: Vec<WorkerProfile>,
    /// The full Chrome-trace JSON (written to `--trace-out`).
    trace_json: String,
    /// Per-epoch JSONL metric snapshots (written to `--epoch-log`).
    epoch_log: String,
    /// Per-path critical-path decomposition of the traced pass.
    critical: CriticalPathReport,
    /// Resource saturation ranking + per-path headroom of the same pass.
    bottleneck: BottleneckReport,
    /// Windowed per-resource busy/wait/occupancy timelines.
    timelines: Vec<UtilizationTimeline>,
}

/// Analysis window width for the utilization timelines, ns.
const ANALYSIS_WINDOW_NS: u64 = 100_000;

/// Stable JSON label for an execution mode.
fn exec_label(exec: ExecMode) -> String {
    match exec {
        ExecMode::Sequential => "sequential".to_string(),
        ExecMode::Parallel(n) => format!("parallel{n}"),
    }
}

/// Traced mixed-path run: tracing + self-profiling + the adaptive loop
/// (for epoch snapshots) on a 2-shard micro-batched runtime, stepped by
/// the parallel executor (one worker per shard) so the per-worker
/// advance/barrier profile is populated. Asserts the span invariants:
/// every request reconstructs from its children (≥ 99 % coverage),
/// parents resolve, children nest — and they hold under the
/// multi-threaded stepper exactly as they do sequentially.
fn run_observability(p: &Params) -> ObsReport {
    let cfg = ServingConfig::small_wide(2, SchedulePolicy::micro_batch(8))
        .with_depth(2)
        .with_exec(ExecMode::Parallel(2));
    let (mut rt, tables) = build_runtime(p, &cfg);
    rt.enable_tracing();
    rt.enable_self_profiling();
    rt.enable_epoch_log();
    rt.enable_adaptive(AdaptivePolicy {
        epoch_requests: (p.requests as u64 / 3).max(8),
        decay: 0.8,
        budget_rows: (p.rows_per_table / 8) as usize,
        min_hit_gain: 0.0,
    });
    let paths = [
        SlsPath::Dram,
        SlsPath::Baseline(SlsOptions::default()),
        SlsPath::Ndp(SlsOptions::default()),
    ];
    let mut zipf = ZipfTrace::new(p.rows_per_table, p.spec.zipf_exponent, 0x0B5);
    for i in 0..p.requests {
        let batch = LookupBatch::new(
            (0..p.spec.outputs)
                .map(|_| {
                    (0..p.spec.lookups_per_output)
                        .map(|_| zipf.next_id())
                        .collect()
                })
                .collect(),
        );
        rt.submit_at(
            SimTime::from_us(i as u64),
            i as u64,
            tables[i % tables.len()],
            batch,
            paths[i % paths.len()],
        );
    }
    let done = rt.run_until_idle();
    assert_eq!(done.len(), p.requests, "observability run lost requests");
    for d in done.iter().step_by(p.verify_every as usize) {
        rt.verify_bitmatch(d);
    }
    let spans = rt.take_trace();
    let check = validate_spans(&spans).expect("span invariants hold");
    assert_eq!(check.requests, p.requests, "one request span per request");
    // Acceptance bar 8: the trace reconstructs >= 99% of each sampled
    // request's end-to-end latency from its direct children.
    assert!(
        check.min_coverage >= 0.99,
        "trace reconstructs only {:.1}% of some request",
        check.min_coverage * 100.0
    );
    println!(
        "observability: {} spans over {} requests, min e2e coverage {:.2}%",
        check.spans,
        check.requests,
        check.min_coverage * 100.0
    );
    for a in rt.attribution() {
        println!(
            "  {:>8}: {:>4} requests  queue p50 {:>8.1}us  service p50 {:>8.1}us  \
             e2e p99 {:>9.1}us",
            a.path,
            a.requests,
            a.queue.p50 as f64 / 1e3,
            a.service.p50 as f64 / 1e3,
            a.e2e.p99 as f64 / 1e3,
        );
    }
    for w in rt.wall_profile() {
        println!(
            "  wall {:>14}: {:>9.3} ms over {:>6} sections",
            w.phase,
            w.nanos as f64 / 1e6,
            w.count,
        );
    }
    for w in rt.worker_profiles() {
        println!(
            "  worker {}: advance {:>9.3} ms, barrier {:>9.3} ms over {} windows \
             ({:.0}% useful)",
            w.worker,
            w.advance_ns as f64 / 1e6,
            w.barrier_ns as f64 / 1e6,
            w.windows,
            w.utilization() * 100.0,
        );
    }

    // Analysis layer over the same trace: critical-path decomposition,
    // queueing timelines, bottleneck ranking. (Pure observers — the
    // runtime equivalents read a non-draining snapshot; here the spans
    // are already drained, so the free functions run on them directly.)
    let critical = critical_path_report(&spans);
    let bottleneck = bottleneck_report(&spans);
    let timelines = utilization_timelines(&spans, ANALYSIS_WINDOW_NS);
    print!("{}", critical.render());
    print!("{}", bottleneck.render());
    // Acceptance bar 9: the phase decomposition conserves e2e time —
    // every serving path's profile accounts for >= 95% of measured
    // latency, and all three paths are present.
    for path in ["baseline", "dram", "ndp"] {
        let p = critical
            .paths
            .iter()
            .find(|p| p.path == path)
            .unwrap_or_else(|| panic!("no critical-path profile for the {path} path"));
        assert!(
            p.conservation() >= 0.95,
            "critical path conserves only {:.1}% of {path} e2e time",
            p.conservation() * 100.0
        );
    }
    assert!(
        critical.min_conservation >= 0.95,
        "critical-path conservation floor {:.3} < 0.95",
        critical.min_conservation
    );
    for t in &timelines {
        assert!(
            t.littles_law_residual() < 1e-6,
            "timeline {} breaks Little's law (residual {})",
            t.resource,
            t.littles_law_residual()
        );
    }

    ObsReport {
        requests: p.requests,
        spans: check.spans,
        min_coverage: check.min_coverage,
        attribution: rt.attribution(),
        wall: rt.wall_profile(),
        exec: exec_label(rt.exec_mode()),
        workers: rt.worker_profiles(),
        trace_json: chrome_trace_json(&spans),
        epoch_log: rt.take_epoch_log(),
        critical,
        bottleneck,
        timelines,
    }
}

/// Automated bottleneck attribution on the heat-packed baseline
/// workload: the same configuration as [`run_baseline_depth`] with
/// packing on, traced, analyzed. This is the workload whose wall —
/// the serial per-command firmware core — previously took a manual
/// deep-dive to identify; the analyzer must now rank it first
/// unprompted.
fn run_heatpacked_analysis(p: &Params, depth: usize) -> (BottleneckReport, CriticalPathReport) {
    let skew = 1.2;
    let mut cfg = ServingConfig::small_wide(1, SchedulePolicy::Fifo).with_depth(depth);
    cfg.system.host.read_bridge_limit = 8;
    let mut rt = ServingRuntime::new(&cfg);
    rt.enable_tracing();
    let prof = profile_skew(p, skew);
    let plan = PlacementPlan::build(&prof, &PlacementPolicy::hot_fraction(0.0));
    let tables: Vec<_> = (0..p.tables)
        .map(|t| {
            rt.add_table_placed(
                EmbeddingTable::procedural(
                    TableSpec::new(p.rows_per_table, p.dim, Quantization::F32),
                    t as u64,
                ),
                plan.table(t),
            )
        })
        .collect();
    let spec = TrafficSpec {
        zipf_exponent: skew,
        ..p.spec
    };
    let mut gen = LoadGen::new(
        &rt,
        tables,
        spec,
        LoadMode::Closed {
            clients: p.clients,
            think: SimDuration::ZERO,
        },
        42,
    )
    .with_verify_every(p.verify_every);
    let _ = gen.run(
        &mut rt,
        SlsPath::Baseline(SlsOptions::default()),
        p.requests,
    );
    let bottleneck = rt.bottleneck_report();
    let critical = rt.critical_path_report();
    (bottleneck, critical)
}

/// Shard count of the multi-engine sweep — the ISSUE's acceptance
/// workload (4-shard FIFO NDP).
const ME_SHARDS: usize = 4;
/// Engine-pool sizes swept (0 = no pool: the serial firmware core does
/// every per-page Translation itself).
const ME_ENGINES: [usize; 5] = [0, 1, 2, 4, 8];

struct MultiEnginePoint {
    engines: usize,
    depth: usize,
    report: LoadReport,
}

/// Builds the engine-pool knob for `engines` per-channel SLS engines
/// (merge folded on the firmware core), or `None` for the serial path.
fn engine_pool(engines: usize) -> Option<EnginePoolConfig> {
    (engines > 0).then_some(EnginePoolConfig {
        engines,
        rate_pct: 100,
        merge: MergePlacement::FwCore,
    })
}

/// Adds the multi-engine workload's tables to `rt`: same row counts as
/// the main sweep but `me_dim`-wide vectors, so per-page Translation —
/// not the flash array — is the firmware's dominant cost (Fig. 11a).
fn add_me_tables(p: &Params, rt: &mut ServingRuntime) -> Vec<recssd_serving::ServedTableId> {
    (0..p.tables)
        .map(|t| {
            rt.add_table(EmbeddingTable::procedural(
                TableSpec::new(p.rows_per_table, p.me_dim, Quantization::F32),
                t as u64,
            ))
        })
        .collect()
}

/// One multi-engine sweep point: closed-loop FIFO NDP traffic on
/// [`ME_SHARDS`] shards with an `engines`-wide per-channel SLS engine
/// pool. Identical workload and seed across pool sizes, so the only
/// variable is where Translation executes.
fn run_multi_engine(p: &Params, depth: usize, engines: usize) -> MultiEnginePoint {
    let mut cfg = ServingConfig::small_wide(ME_SHARDS, SchedulePolicy::Fifo).with_depth(depth);
    cfg.system.ssd.ftl.engines = engine_pool(engines);
    let mut rt = ServingRuntime::new(&cfg);
    let tables = add_me_tables(p, &mut rt);
    let mut gen = LoadGen::new(
        &rt,
        tables,
        p.spec,
        LoadMode::Closed {
            clients: p.me_clients,
            think: SimDuration::ZERO,
        },
        42,
    )
    .with_verify_every(p.verify_every);
    let report = gen.run(&mut rt, SlsPath::Ndp(SlsOptions::default()), p.requests);
    assert!(report.verified > 0, "multi-engine bit-match unchecked");
    MultiEnginePoint {
        engines,
        depth,
        report,
    }
}

/// Traced multi-engine NDP run: with the per-page Translation work
/// spread across `engines` per-channel engines the serial firmware wall
/// is gone, so the bottleneck analyzer must attribute the path to a
/// *flash* resource instead of `fw:core`. Returns the live reports plus
/// the Chrome-trace JSON so CI can replay the same verdict offline
/// through `recssd-analyze`.
fn run_multi_engine_analysis(
    p: &Params,
    depth: usize,
    engines: usize,
) -> (BottleneckReport, CriticalPathReport, String) {
    let mut cfg = ServingConfig::small_wide(1, SchedulePolicy::Fifo).with_depth(depth);
    cfg.system.ssd.ftl.engines = engine_pool(engines);
    let mut rt = ServingRuntime::new(&cfg);
    rt.enable_tracing();
    let tables = add_me_tables(p, &mut rt);
    let mut gen = LoadGen::new(
        &rt,
        tables,
        p.spec,
        LoadMode::Closed {
            clients: p.me_clients,
            think: SimDuration::ZERO,
        },
        42,
    )
    .with_verify_every(p.verify_every);
    let _ = gen.run(&mut rt, SlsPath::Ndp(SlsOptions::default()), p.requests);
    let spans = rt.take_trace();
    let bottleneck = bottleneck_report(&spans);
    let critical = critical_path_report(&spans);
    let trace_json = chrome_trace_json(&spans);
    (bottleneck, critical, trace_json)
}

fn q_json(q: &Quantiles) -> String {
    format!(
        "\"p50_us\": {:.2}, \"p95_us\": {:.2}, \"p99_us\": {:.2}, \"p999_us\": {:.2}, \"mean_us\": {:.2}, \"max_us\": {:.2}",
        q.p50 as f64 / 1e3,
        q.p95 as f64 / 1e3,
        q.p99 as f64 / 1e3,
        q.p999 as f64 / 1e3,
        q.mean / 1e3,
        q.max as f64 / 1e3,
    )
}

#[allow(clippy::too_many_arguments)] // one sweep section per parameter
fn write_json(
    p: &Params,
    configs: &[ConfigReport],
    open: &[OpenReport],
    placement: &[PlacementReport],
    packing: &[PackingReport],
    drift: &[DriftArm],
    baseline_depth: &[BaselineDepthReport],
    resilience: &ResilienceReport,
    obs: &ObsReport,
    heat_bottleneck: &BottleneckReport,
    heat_critical: &CriticalPathReport,
    multi_engine: &[MultiEnginePoint],
    me_speedup: f64,
    me_bottleneck: &BottleneckReport,
    me_critical: &CriticalPathReport,
) -> String {
    // Hand-rolled JSON: the workspace has no serde and the schema is flat.
    let mut s = String::new();
    s.push_str("{\n  \"schema\": \"recssd-serving/v9\",\n");
    let _ = writeln!(
        s,
        "  \"workload\": {{\"tables\": {}, \"rows_per_table\": {}, \"dim\": {}, \"outputs\": {}, \
         \"lookups_per_output\": {}, \"zipf_exponent\": {}, \"clients\": {}, \"requests\": {}}},",
        p.tables,
        p.rows_per_table,
        p.dim,
        p.spec.outputs,
        p.spec.lookups_per_output,
        p.spec.zipf_exponent,
        p.clients,
        p.requests
    );
    s.push_str("  \"configs\": [\n");
    for (i, c) in configs.iter().enumerate() {
        let r = &c.report;
        let _ = write!(
            s,
            "    {{\"shards\": {}, \"depth\": {}, \"policy\": \"{}\", \"path\": \"{}\", \
             \"requests\": {}, \"lookups\": {}, \"sim_secs\": {:.6}, \
             \"lookups_per_sim_sec\": {:.0}, \"batching_factor\": {:.2}, \
             \"occupancy\": {:.3}, \"channel_util\": {:.4}, \"verified\": {}, {}, \
             \"queue_p99_us\": {:.2}}}",
            c.shards,
            c.depth,
            c.policy,
            c.path,
            r.requests,
            r.lookups,
            r.makespan.as_secs_f64(),
            r.lookups_per_sim_sec,
            r.batching_factor,
            r.mean_occupancy(),
            r.mean_channel_util(),
            r.verified,
            q_json(&r.e2e),
            r.queue.p99 as f64 / 1e3,
        );
        s.push_str(if i + 1 < configs.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n  \"open_loop\": [\n");
    for (i, o) in open.iter().enumerate() {
        let r = &o.report;
        let _ = write!(
            s,
            "    {{\"path\": \"{}\", \"shards\": 1, \"policy\": \"fifo\", \"depth\": {}, \
             \"offered_load\": {:.2}, \"rate_rps\": {:.0}, \"requests\": {}, \
             \"lookups_per_sim_sec\": {:.0}, \"occupancy\": {:.3}, \"channel_util\": {:.4}, \
             \"verified\": {}, {}, \"queue_p99_us\": {:.2}}}",
            o.path,
            o.depth,
            o.load,
            o.rate_rps,
            r.requests,
            r.lookups_per_sim_sec,
            r.mean_occupancy(),
            r.mean_channel_util(),
            r.verified,
            q_json(&r.e2e),
            r.queue.p99 as f64 / 1e3,
        );
        s.push_str(if i + 1 < open.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n  \"placement\": [\n");
    for (i, pl) in placement.iter().enumerate() {
        let r = &pl.report;
        let _ = write!(
            s,
            "    {{\"path\": \"{}\", \"skew\": {:.2}, \"hot_fraction\": {:.3}, \
             \"hot_rows\": {}, \"requests\": {}, \"lookups_per_sim_sec\": {:.0}, \
             \"tier_hit_rate\": {:.4}, \"tier_lookups\": {}, \"tier_occupancy\": {:.3}, \
             \"tier_p50_us\": {:.2}, \"tier_p99_us\": {:.2}, \
             \"device_p50_us\": {:.2}, \"device_p99_us\": {:.2}, \
             \"ftl_cache_hit_rate\": {:.4}, \"ftl_cache_occupancy\": {:.4}, \
             \"verified\": {}, {}}}",
            pl.path,
            pl.skew,
            pl.hot_fraction,
            pl.hot_rows,
            r.requests,
            r.lookups_per_sim_sec,
            r.tier_hit_rate,
            r.tier_lookups,
            r.tier_occupancy,
            r.tier_service.p50 as f64 / 1e3,
            r.tier_service.p99 as f64 / 1e3,
            r.device_service.p50 as f64 / 1e3,
            r.device_service.p99 as f64 / 1e3,
            r.ftl_cache_hit_rate,
            r.ftl_cache_occupancy,
            r.verified,
            q_json(&r.e2e),
        );
        s.push_str(if i + 1 < placement.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n  \"packing\": [\n");
    for (i, pk) in packing.iter().enumerate() {
        let r = &pk.report;
        let _ = write!(
            s,
            "    {{\"packed\": {}, \"rows\": {}, \"lookups_per_sim_sec\": {:.0}, \
             \"ftl_cache_hit_rate\": {:.4}, \"ftl_cache_occupancy\": {:.4}, \
             \"verified\": {}}}",
            pk.packed,
            p.packing_rows,
            r.lookups_per_sim_sec,
            r.ftl_cache_hit_rate,
            r.ftl_cache_occupancy,
            r.verified,
        );
        s.push_str(if i + 1 < packing.len() { ",\n" } else { "\n" });
    }
    let f64_list = |xs: &[f64], digits: usize| -> String {
        xs.iter()
            .map(|x| format!("{x:.digits$}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    s.push_str("  ],\n");
    let _ = writeln!(
        s,
        "  \"drift\": {{\"phases\": {}, \"requests_per_phase\": {}, \"skew\": {}, \
         \"budget_rows\": {}, \"epoch_requests\": {}, \"arms\": [",
        p.drift_phases,
        p.drift_requests_per_phase,
        p.drift_skew,
        p.drift_budget_rows,
        p.drift_epoch_requests,
    );
    for (i, a) in drift.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"arm\": \"{}\", \"lookups_per_sim_sec\": {:.0}, \"plan_refreshes\": {}, \
             \"rows_promoted\": {}, \"rows_demoted\": {}, \"migration_lookups\": {}, \
             \"phase_tput\": [{}], \"phase_tier_hit_rates\": [{}]}}",
            a.arm,
            a.lookups_per_sim_sec,
            a.plan_refreshes,
            a.rows_promoted,
            a.rows_demoted,
            a.migration_lookups,
            f64_list(&a.phase_tput, 0),
            f64_list(&a.phase_tier_hit, 4),
        );
        s.push_str(if i + 1 < drift.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]},\n  \"baseline_pipelining\": [\n");
    for (i, b) in baseline_depth.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"packed\": {}, \"depth\": {}, \"lookups_per_sim_sec\": {:.0}}}",
            b.packed, b.depth, b.lookups_per_sim_sec,
        );
        s.push_str(if i + 1 < baseline_depth.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    // The v9 multi-engine block: per-channel SLS engine pool × queue
    // depth sweep on the 4-shard FIFO NDP workload, plus the traced
    // multi-engine run's bottleneck verdict (must be a flash resource —
    // the serial firmware wall is gone).
    let _ = writeln!(
        s,
        "  ],\n  \"multi_engine\": {{\n    \"shards\": {ME_SHARDS}, \"policy\": \"fifo\", \
         \"path\": \"ndp\",\n    \"points\": [",
    );
    for (i, m) in multi_engine.iter().enumerate() {
        let r = &m.report;
        let _ = write!(
            s,
            "      {{\"engines\": {}, \"depth\": {}, \"lookups_per_sim_sec\": {:.0}, \
             \"occupancy\": {:.3}, \"channel_util\": {:.4}, \"verified\": {}, {}}}",
            m.engines,
            m.depth,
            r.lookups_per_sim_sec,
            r.mean_occupancy(),
            r.mean_channel_util(),
            r.verified,
            q_json(&r.e2e),
        );
        s.push_str(if i + 1 < multi_engine.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    let _ = writeln!(
        s,
        "    ],\n    \"speedup_vs_single_engine\": {:.3},\n    \
         \"ndp_top_bottleneck\": \"{}\",\n    \"ndp_min_conservation\": {:.4}\n  }},",
        me_speedup,
        me_bottleneck.top().unwrap_or(""),
        me_critical.min_conservation,
    );
    let fault_counters = |r: &LoadReport| -> String {
        format!(
            "\"requests\": {}, \"verified\": {}, \"lookups\": {}, \"faults\": {}, \
             \"retries\": {}, \"fallbacks\": {}, \"breaker_trips\": {}, \"degraded\": {}, \
             \"missing_lookups\": {}",
            r.requests,
            r.verified,
            r.lookups,
            r.faults,
            r.retries,
            r.fallbacks,
            r.breaker_trips,
            r.degraded,
            r.missing_lookups,
        )
    };
    s.push_str("  \"resilience\": {\n    \"transient_sweep\": [\n");
    for (i, pt) in resilience.sweep.iter().enumerate() {
        let _ = write!(
            s,
            "      {{\"rate\": {}, \"throughput_ratio\": {:.4}, \
             \"lookups_per_sim_sec\": {:.0}, {}, \"p99_us\": {:.2}}}",
            pt.rate,
            pt.throughput_ratio,
            pt.report.lookups_per_sim_sec,
            fault_counters(&pt.report),
            pt.report.e2e.p99 as f64 / 1e3,
        );
        s.push_str(if i + 1 < resilience.sweep.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    let _ = writeln!(
        s,
        "    ],\n    \"uncorrectable\": {{\"rate\": {}, {}}},",
        resilience.uncorrectable_rate,
        fault_counters(&resilience.uncorrectable),
    );
    let _ = writeln!(
        s,
        "    \"brownout\": {{{}, \"p99_us\": {:.2}}}",
        fault_counters(&resilience.brownout),
        resilience.brownout.e2e.p99 as f64 / 1e3,
    );
    s.push_str("  },\n");
    let _ = writeln!(
        s,
        "  \"observability\": {{\n    \"trace_spans\": {}, \"trace_requests\": {}, \
         \"trace_min_coverage\": {:.4}, \"exec\": \"{}\",",
        obs.spans, obs.requests, obs.min_coverage, obs.exec,
    );
    s.push_str("    \"attribution\": [\n");
    for (i, a) in obs.attribution.iter().enumerate() {
        let _ = write!(
            s,
            "      {{\"path\": \"{}\", \"requests\": {}, \
             \"queue\": {{{}}}, \"service\": {{{}}}, \"e2e\": {{{}}}}}",
            a.path,
            a.requests,
            q_json(&a.queue),
            q_json(&a.service),
            q_json(&a.e2e),
        );
        s.push_str(if i + 1 < obs.attribution.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    s.push_str("    ],\n    \"wall_profile\": [\n");
    for (i, w) in obs.wall.iter().enumerate() {
        let _ = write!(
            s,
            "      {{\"phase\": \"{}\", \"wall_ms\": {:.3}, \"sections\": {}}}",
            w.phase,
            w.nanos as f64 / 1e6,
            w.count,
        );
        s.push_str(if i + 1 < obs.wall.len() { ",\n" } else { "\n" });
    }
    s.push_str("    ],\n    \"worker_profiles\": [\n");
    for (i, w) in obs.workers.iter().enumerate() {
        let _ = write!(
            s,
            "      {{\"worker\": {}, \"advance_ms\": {:.3}, \"barrier_ms\": {:.3}, \
             \"windows\": {}, \"utilization\": {:.3}}}",
            w.worker,
            w.advance_ns as f64 / 1e6,
            w.barrier_ns as f64 / 1e6,
            w.windows,
            w.utilization(),
        );
        s.push_str(if i + 1 < obs.workers.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    s.push_str("    ]\n  },\n");

    // The v8 analysis block: critical-path decomposition, resource
    // saturation ranking + headroom, queueing timelines, and the
    // heat-packed firmware-wall regression probe.
    let _ = writeln!(
        s,
        "  \"analysis\": {{\n    \"min_conservation\": {:.4}, \"window_ns\": {},",
        obs.critical.min_conservation, ANALYSIS_WINDOW_NS,
    );
    s.push_str("    \"critical_paths\": [\n");
    for (i, pp) in obs.critical.paths.iter().enumerate() {
        let phases = Phase::ALL
            .iter()
            .map(|&ph| {
                format!(
                    "{{\"phase\": \"{}\", \"ns\": {}, \"share\": {:.4}, \"tail_share\": {:.4}}}",
                    ph.name(),
                    pp.phase_ns[ph.index()],
                    pp.share(ph),
                    pp.tail_share(ph),
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        let _ = write!(
            s,
            "      {{\"path\": \"{}\", \"requests\": {}, \"conservation\": {:.4}, \
             \"top_phase\": \"{}\", \"e2e_mean_us\": {:.2}, \"e2e_p99_us\": {:.2}, \
             \"phases\": [{}]}}",
            pp.path,
            pp.requests,
            pp.conservation(),
            pp.top_phase().name(),
            pp.e2e.mean_ns / 1e3,
            pp.e2e.p99_ns as f64 / 1e3,
            phases,
        );
        s.push_str(if i + 1 < obs.critical.paths.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    s.push_str("    ],\n    \"bottlenecks\": [\n");
    for (i, r) in obs.bottleneck.ranked.iter().enumerate() {
        let _ = write!(
            s,
            "      {{\"resource\": \"{}\", \"utilization\": {:.4}, \"capacity\": {}, \
             \"service_ns\": {}, \"busy_ns\": {}}}",
            r.resource,
            r.utilization(),
            r.capacity,
            r.service_ns,
            r.busy_ns,
        );
        s.push_str(if i + 1 < obs.bottleneck.ranked.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    let _ = writeln!(
        s,
        "    ],\n    \"top_bottleneck\": \"{}\",",
        obs.bottleneck.top().unwrap_or(""),
    );
    s.push_str("    \"headroom\": [\n");
    for (i, h) in obs.bottleneck.headroom.iter().enumerate() {
        let _ = write!(
            s,
            "      {{\"path\": \"{}\", \"bottleneck\": \"{}\", \"capacity\": {}, \
             \"demand_ns\": {}, \"sustainable_rps\": {:.1}, \"observed_rps\": {:.1}, \
             \"headroom_x\": {:.3}, \"saturated\": {}}}",
            h.path,
            h.bottleneck,
            h.capacity,
            h.demand_ns,
            h.sustainable_rps,
            h.observed_rps,
            h.headroom_x,
            h.saturated,
        );
        s.push_str(if i + 1 < obs.bottleneck.headroom.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    s.push_str("    ],\n    \"timelines\": [\n");
    for (i, t) in obs.timelines.iter().enumerate() {
        let _ = write!(
            s,
            "      {{\"resource\": \"{}\", \"kind\": \"{}\", \"windows\": {}, \
             \"utilization\": {:.4}, \"arrivals\": {}, \"arrival_rate_per_s\": {:.1}, \
             \"mean_wait_ns\": {:.1}, \"occupancy\": {:.4}, \"littles_law_residual\": {:.3e}}}",
            t.resource,
            t.kind.name(),
            t.windows.len(),
            t.utilization(),
            t.total_arrivals,
            t.arrival_rate_per_s(),
            t.mean_wait_ns(),
            t.occupancy(),
            t.littles_law_residual(),
        );
        s.push_str(if i + 1 < obs.timelines.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    let _ = writeln!(
        s,
        "    ],\n    \"heatpacked_baseline\": {{\"top_bottleneck\": \"{}\", \
         \"fw_utilization\": {:.4}, \"min_conservation\": {:.4}}}",
        heat_bottleneck.top().unwrap_or(""),
        heat_bottleneck
            .ranked
            .iter()
            .find(|r| r.resource.starts_with("fw:core"))
            .map(|r| r.utilization())
            .unwrap_or(0.0),
        heat_critical.min_conservation,
    );
    s.push_str("  }\n}\n");
    s
}

fn main() {
    let p = Params::from_env();
    let mut out_path = "BENCH_serving.json".to_string();
    let mut trace_out: Option<String> = None;
    let mut epoch_log_out: Option<String> = None;
    let mut ndp_trace_out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--trace-out" => trace_out = Some(args.next().expect("--trace-out needs a path")),
            "--epoch-log" => epoch_log_out = Some(args.next().expect("--epoch-log needs a path")),
            "--ndp-trace-out" => {
                ndp_trace_out = Some(args.next().expect("--ndp-trace-out needs a path"))
            }
            other => out_path = other.to_string(),
        }
    }
    println!(
        "workload: {} tables x {} rows (dim {}), {} outputs x {} lookups/request, \
         {} closed-loop clients, {} requests per config, depths {:?}",
        p.tables,
        p.rows_per_table,
        p.dim,
        p.spec.outputs,
        p.spec.lookups_per_output,
        p.clients,
        p.requests,
        p.depths,
    );

    let paths = [
        SlsPath::Dram,
        SlsPath::Baseline(SlsOptions::default()),
        SlsPath::Ndp(SlsOptions::default()),
    ];
    let policies = [SchedulePolicy::Fifo, SchedulePolicy::micro_batch(16)];
    let mut configs = Vec::new();
    for &shards in &[1usize, 2, 4] {
        for &depth in p.depths {
            for &policy in &policies {
                for &path in &paths {
                    let c = run_config(&p, shards, depth, policy, path);
                    println!(
                        "{:>8} {:<10} {} shard(s) depth {}: {:>12.0} lookups/sim-sec  \
                         p50 {:>8.1}us  p99 {:>9.1}us  occ {:>4.2}  chan {:>5.1}%  (batching {:.2}x)",
                        c.path,
                        c.policy,
                        c.shards,
                        c.depth,
                        c.report.lookups_per_sim_sec,
                        c.report.e2e.p50 as f64 / 1e3,
                        c.report.e2e.p99 as f64 / 1e3,
                        c.report.mean_occupancy(),
                        c.report.mean_channel_util() * 100.0,
                        c.report.batching_factor,
                    );
                    configs.push(c);
                }
            }
        }
    }

    // Acceptance bar 1: NDP throughput scales >= 2x from 1 to 4 shards
    // (FIFO, depth 1, like for like).
    let tput = |shards, depth| fifo_tput(&configs, shards, depth, "ndp");
    let scaling = tput(4, 1) / tput(1, 1);
    println!("NDP FIFO shard scaling 1→4 (depth 1): {scaling:.2}x");
    assert!(
        scaling >= 2.0,
        "NDP throughput scaled only {scaling:.2}x from 1 to 4 shards"
    );

    // Acceptance bar 2: intra-shard pipelining pays — depth 4 gains
    // >= 1.5x over depth 1 at one shard on the NDP FIFO path.
    let pipe_depth = if p.depths.contains(&4) {
        4
    } else {
        p.depths[p.depths.len() - 1]
    };
    let pipelining = tput(1, pipe_depth) / tput(1, 1);
    println!("NDP FIFO queue-depth scaling 1→{pipe_depth} (1 shard): {pipelining:.2}x");
    assert!(
        pipelining >= 1.5,
        "operator pipelining gained only {pipelining:.2}x at depth {pipe_depth}"
    );

    // Open-loop offered-load vs latency curves, per path, on the
    // pipelined 1-shard configuration. Rates are fractions of each
    // path's own measured closed-loop capacity.
    println!("open-loop sweep ({} requests per point):", p.open_requests);
    let mut open = Vec::new();
    for &path in &paths {
        let capacity_rps =
            fifo_tput(&configs, 1, pipe_depth, path.name()) / p.spec.lookups_per_request() as f64;
        for &load in p.open_loads {
            let o = run_open(&p, path, pipe_depth, load, capacity_rps);
            println!(
                "{:>8} load {:.2} ({:>8.0} req/s): p50 {:>8.1}us  p99 {:>9.1}us  \
                 queue-p99 {:>9.1}us  occ {:>4.2}",
                o.path,
                o.load,
                o.rate_rps,
                o.report.e2e.p50 as f64 / 1e3,
                o.report.e2e.p99 as f64 / 1e3,
                o.report.queue.p99 as f64 / 1e3,
                o.report.mean_occupancy(),
            );
            open.push(o);
        }
    }

    // Hybrid placement sweep: hot-fraction × skew × path, on the
    // pipelined 2-shard FIFO configuration.
    println!(
        "placement sweep (skews {:?}, hot fractions {:?}, {} requests per point):",
        p.skews, p.hot_fractions, p.requests
    );
    let mut placement = Vec::new();
    for &skew in p.skews {
        let prof = profile_skew(&p, skew);
        for &hot in p.hot_fractions {
            let plan = (hot > 0.0)
                .then(|| PlacementPlan::build(&prof, &PlacementPolicy::hot_fraction(hot)));
            for &path in &paths {
                let pl = run_placement(&p, path, pipe_depth, skew, hot, plan.as_ref());
                println!(
                    "{:>8} skew {:.2} hot {:>5.1}% ({:>4} rows): {:>12.0} lookups/sim-sec  \
                     tier-hit {:>5.1}%  tier-occ {:>4.2}  ftl-cache {:>5.1}%  p99 {:>9.1}us",
                    pl.path,
                    pl.skew,
                    pl.hot_fraction * 100.0,
                    pl.hot_rows,
                    pl.report.lookups_per_sim_sec,
                    pl.report.tier_hit_rate * 100.0,
                    pl.report.tier_occupancy,
                    pl.report.ftl_cache_hit_rate * 100.0,
                    pl.report.e2e.p99 as f64 / 1e3,
                );
                placement.push(pl);
            }
        }
    }

    // Acceptance bar 3: at every swept skew (all >= 0.9), the best hybrid
    // DRAM+NDP configuration beats the all-NDP baseline by >= 1.3x.
    for &skew in p.skews {
        let point = |hot: f64| {
            placement
                .iter()
                .find(|pl| pl.path == "ndp" && pl.skew == skew && pl.hot_fraction == hot)
                .expect("placement point present")
                .report
                .lookups_per_sim_sec
        };
        let all_ndp = point(0.0);
        let best = p.hot_fractions[1..]
            .iter()
            .map(|&h| point(h))
            .fold(f64::MIN, f64::max);
        let gain = best / all_ndp;
        println!("hybrid DRAM+NDP vs all-NDP at skew {skew:.2}: {gain:.2}x");
        assert!(
            gain >= 1.3,
            "hybrid placement gained only {gain:.2}x over all-NDP at skew {skew:.2}"
        );
    }

    // Cold-tail packing A/B: frequency-ordered dense images must not
    // lower (and should raise) the FTL page-cache hit rate.
    let packing = vec![
        run_packing(&p, pipe_depth, false),
        run_packing(&p, pipe_depth, true),
    ];
    let (unpacked, packed) = (&packing[0].report, &packing[1].report);
    println!(
        "cold packing (dense, {} rows): ftl-cache {:.1}% -> {:.1}%, \
         {:.0} -> {:.0} lookups/sim-sec",
        p.packing_rows,
        unpacked.ftl_cache_hit_rate * 100.0,
        packed.ftl_cache_hit_rate * 100.0,
        unpacked.lookups_per_sim_sec,
        packed.lookups_per_sim_sec,
    );
    assert!(
        packed.ftl_cache_hit_rate >= unpacked.ftl_cache_hit_rate,
        "frequency-ordered packing lowered the FTL page-cache hit rate: {:.4} -> {:.4}",
        unpacked.ftl_cache_hit_rate,
        packed.ftl_cache_hit_rate
    );

    // Drift sweep: rotating skew, stale vs adaptive vs per-phase oracle.
    println!(
        "drift sweep ({} phases x {} requests, skew {}, global budget {} rows):",
        p.drift_phases, p.drift_requests_per_phase, p.drift_skew, p.drift_budget_rows
    );
    let drift = run_drift(&p, pipe_depth);
    let arm = |name: &str| {
        drift
            .iter()
            .find(|a| a.arm == name)
            .expect("drift arm present")
    };
    let (stale, adaptive, oracle) = (arm("stale"), arm("adaptive"), arm("oracle"));
    let recovered = adaptive.lookups_per_sim_sec / oracle.lookups_per_sim_sec;
    let stale_frac = stale.lookups_per_sim_sec / oracle.lookups_per_sim_sec;
    println!(
        "drift: stale {:.0} ({:.0}% of oracle), adaptive {:.0} ({:.0}% of oracle, \
         {} refreshes, {} rows promoted), oracle {:.0} lookups/sim-sec",
        stale.lookups_per_sim_sec,
        stale_frac * 100.0,
        adaptive.lookups_per_sim_sec,
        recovered * 100.0,
        adaptive.plan_refreshes,
        adaptive.rows_promoted,
        oracle.lookups_per_sim_sec,
    );
    // Acceptance bar 4: online adaptation recovers >= 70% of the oracle
    // hybrid throughput under rotating skew, while the stale static plan
    // falls below the adaptive one.
    assert!(
        recovered >= 0.70,
        "adaptive placement recovered only {:.0}% of the oracle under drift",
        recovered * 100.0
    );
    assert!(
        stale.lookups_per_sim_sec < adaptive.lookups_per_sim_sec,
        "stale static plan ({:.0}) should degrade below adaptive ({:.0})",
        stale.lookups_per_sim_sec,
        adaptive.lookups_per_sim_sec
    );
    assert!(
        adaptive.plan_refreshes >= 2 && adaptive.rows_promoted > 0,
        "adaptive arm never re-planned"
    );

    // Baseline pipelining A/B: heat-packed storage + coalesced reads give
    // the COTS baseline queue-depth headroom it never had.
    let mut baseline_depth = Vec::new();
    for packed in [false, true] {
        for &depth in &[1usize, 2, pipe_depth] {
            let b = run_baseline_depth(&p, packed, depth);
            println!(
                "baseline {} depth {}: {:>8.0} lookups/sim-sec",
                if b.packed { "packed " } else { "unpacked" },
                b.depth,
                b.lookups_per_sim_sec,
            );
            baseline_depth.push(b);
        }
    }
    let bd = |packed: bool, depth: usize| {
        baseline_depth
            .iter()
            .find(|b| b.packed == packed && b.depth == depth)
            .expect("baseline depth point")
            .lookups_per_sim_sec
    };
    // Acceptance bar 5: on packed storage the baseline pipelines — depth
    // 1 -> 4 gains at least 1.25x (it was ~1.17x and flat beyond depth 2
    // before coalescing), and packing beats unpacked at depth 4.
    let packed_gain = bd(true, pipe_depth) / bd(true, 1);
    println!("baseline packed depth 1->{pipe_depth}: {packed_gain:.2}x");
    assert!(
        packed_gain >= 1.25,
        "packed baseline gained only {packed_gain:.2}x from pipelining"
    );
    assert!(
        bd(true, pipe_depth) > bd(false, pipe_depth),
        "packing must raise pipelined baseline throughput"
    );

    // Resilience suite: deterministic fault injection, recovery policy,
    // graceful degradation (acceptance bars 6 and 7 inside).
    let resilience = run_resilience(&p);

    // Observability pass: traced end-to-end, span invariants asserted
    // (acceptance bars 8 and 9 inside).
    let obs = run_observability(&p);

    // Acceptance bar 10: on the heat-packed baseline workload the
    // analyzer re-finds the serial-firmware wall automatically — the
    // firmware core ranks as the top bottleneck, and the decomposition
    // still conserves e2e time.
    let (heat_bottleneck, heat_critical) = run_heatpacked_analysis(&p, pipe_depth);
    let heat_top = heat_bottleneck.top().unwrap_or("").to_string();
    println!(
        "heat-packed baseline (depth {pipe_depth}): top bottleneck {heat_top}, \
         conservation {:.1}%",
        heat_critical.min_conservation * 100.0
    );
    assert!(
        heat_top.starts_with("fw:core"),
        "heat-packed baseline should bottleneck on the firmware core, got {heat_top}"
    );
    assert!(
        heat_critical.min_conservation >= 0.95,
        "heat-packed critical path conserves only {:.1}%",
        heat_critical.min_conservation * 100.0
    );

    // Multi-engine sweep (the in-SSD compute tentpole): per-channel SLS
    // engine pool size × queue depth on the 4-shard FIFO NDP workload.
    println!(
        "multi-engine sweep ({ME_SHARDS} shards, engines {ME_ENGINES:?}, depths {:?}):",
        p.depths
    );
    let mut multi_engine = Vec::new();
    for &depth in p.depths {
        for &engines in &ME_ENGINES {
            let m = run_multi_engine(&p, depth, engines);
            println!(
                "  ndp {} engine(s) depth {}: {:>12.0} lookups/sim-sec  \
                 p50 {:>8.1}us  p99 {:>9.1}us  occ {:>4.2}  chan {:>5.1}%",
                m.engines,
                m.depth,
                m.report.lookups_per_sim_sec,
                m.report.e2e.p50 as f64 / 1e3,
                m.report.e2e.p99 as f64 / 1e3,
                m.report.mean_occupancy(),
                m.report.mean_channel_util() * 100.0,
            );
            multi_engine.push(m);
        }
    }
    let me_tput = |engines: usize, depth: usize| {
        multi_engine
            .iter()
            .find(|m| m.engines == engines && m.depth == depth)
            .expect("multi-engine point present")
            .report
            .lookups_per_sim_sec
    };
    // Acceptance bar 11: engine pools dominate — every multi-engine
    // configuration is at least as fast as single-engine at every swept
    // point, and >= 4 engines gain >= 1.5x at depth `pipe_depth`.
    for &depth in p.depths {
        for &engines in &[2usize, 4, 8] {
            let (multi, single) = (me_tput(engines, depth), me_tput(1, depth));
            assert!(
                multi >= single,
                "{engines} engines ({multi:.0}) slower than 1 engine ({single:.0}) \
                 at depth {depth}"
            );
        }
    }
    let me_speedup = me_tput(4, pipe_depth) / me_tput(1, pipe_depth);
    println!("multi-engine NDP speedup 1→4 engines (depth {pipe_depth}): {me_speedup:.2}x");
    assert!(
        me_speedup >= 1.5,
        "4-engine NDP gained only {me_speedup:.2}x over single-engine at depth {pipe_depth}"
    );

    // Acceptance bar 12: with the translation work spread across the
    // engine pool, the serial firmware wall is gone — the analyzer must
    // pin the traced multi-engine NDP run on a *flash* resource.
    let (me_bottleneck, me_critical, me_trace) = run_multi_engine_analysis(&p, pipe_depth, 8);
    let me_top = me_bottleneck.top().unwrap_or("").to_string();
    println!(
        "multi-engine NDP (8 engines, depth {pipe_depth}): top bottleneck {me_top}, \
         conservation {:.1}%",
        me_critical.min_conservation * 100.0
    );
    assert!(
        me_top.starts_with("flash"),
        "multi-engine NDP should bottleneck on flash, got {me_top}"
    );
    assert!(
        me_critical.min_conservation >= 0.95,
        "multi-engine critical path conserves only {:.1}%",
        me_critical.min_conservation * 100.0
    );

    if let Some(path) = &ndp_trace_out {
        std::fs::write(path, &me_trace).expect("write multi-engine trace JSON");
        println!("wrote {path}");
    }

    if let Some(path) = &trace_out {
        std::fs::write(path, &obs.trace_json).expect("write trace JSON");
        println!("wrote {path} ({} spans)", obs.spans);
    }
    if let Some(path) = &epoch_log_out {
        std::fs::write(path, &obs.epoch_log).expect("write epoch JSONL");
        println!("wrote {path} ({} epochs)", obs.epoch_log.lines().count());
    }

    let json = write_json(
        &p,
        &configs,
        &open,
        &placement,
        &packing,
        &drift,
        &baseline_depth,
        &resilience,
        &obs,
        &heat_bottleneck,
        &heat_critical,
        &multi_engine,
        me_speedup,
        &me_bottleneck,
        &me_critical,
    );
    std::fs::write(&out_path, &json).expect("write BENCH_serving.json");
    println!("wrote {out_path}");
}

/// The FIFO closed-loop throughput of `path` at (`shards`, `depth`).
fn fifo_tput(configs: &[ConfigReport], shards: usize, depth: usize, path: &str) -> f64 {
    configs
        .iter()
        .find(|c| c.shards == shards && c.depth == depth && c.policy == "fifo" && c.path == path)
        .expect("config present")
        .report
        .lookups_per_sim_sec
}
