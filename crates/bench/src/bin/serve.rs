//! Serving-layer benchmark: sweeps shard count × scheduling policy for all
//! three execution paths under closed-loop Zipf traffic and writes
//! `BENCH_serving.json` with throughput plus p50/p95/p99/p999 latency.
//!
//! ```text
//! cargo run --release -p recssd-bench --bin serve
//! RECSSD_PAPER_SCALE=1 cargo run --release -p recssd-bench --bin serve
//! ```
//!
//! At any scale the run asserts the serving subsystem's acceptance bar:
//! aggregate NDP throughput grows at least 2x from 1 shard to 4 shards,
//! and a sample of merged sharded outputs bit-matches `sls_reference`.

use std::fmt::Write as _;

use recssd::SlsOptions;
use recssd_embedding::{EmbeddingTable, Quantization, TableSpec};
use recssd_serving::{
    LoadGen, LoadMode, LoadReport, SchedulePolicy, ServingConfig, ServingRuntime, SlsPath,
    TrafficSpec,
};
use recssd_sim::stats::Quantiles;
use recssd_sim::SimDuration;

struct Params {
    tables: usize,
    rows_per_table: u64,
    dim: usize,
    spec: TrafficSpec,
    clients: usize,
    requests: usize,
    verify_every: u64,
}

impl Params {
    fn from_env() -> Self {
        if std::env::var("RECSSD_PAPER_SCALE").as_deref() == Ok("1") {
            Params {
                tables: 4,
                rows_per_table: 4096,
                dim: 32,
                spec: TrafficSpec {
                    outputs: 4,
                    lookups_per_output: 10,
                    zipf_exponent: 1.2,
                },
                clients: 16,
                requests: 512,
                verify_every: 16,
            }
        } else {
            Params {
                tables: 2,
                rows_per_table: 2048,
                dim: 32,
                spec: TrafficSpec {
                    outputs: 4,
                    lookups_per_output: 8,
                    zipf_exponent: 1.2,
                },
                clients: 12,
                requests: 96,
                verify_every: 8,
            }
        }
    }
}

struct ConfigReport {
    shards: usize,
    policy: &'static str,
    path: &'static str,
    report: LoadReport,
    batching: f64,
}

fn run_config(p: &Params, shards: usize, policy: SchedulePolicy, path: SlsPath) -> ConfigReport {
    let cfg = ServingConfig::small_wide(shards, policy);
    let mut rt = ServingRuntime::new(&cfg);
    let tables: Vec<_> = (0..p.tables)
        .map(|t| {
            rt.add_table(EmbeddingTable::procedural(
                TableSpec::new(p.rows_per_table, p.dim, Quantization::F32),
                t as u64,
            ))
        })
        .collect();
    let mut gen = LoadGen::new(
        &rt,
        tables,
        p.spec,
        LoadMode::Closed {
            clients: p.clients,
            think: SimDuration::ZERO,
        },
        42,
    )
    .with_verify_every(p.verify_every);
    let report = gen.run(&mut rt, path, p.requests);
    assert!(
        report.verified > 0,
        "verification sample was empty — bit-match unchecked"
    );
    let batching = report.batching_factor;
    ConfigReport {
        shards,
        policy: policy.name(),
        path: path.name(),
        report,
        batching,
    }
}

fn q_json(q: &Quantiles) -> String {
    format!(
        "\"p50_us\": {:.2}, \"p95_us\": {:.2}, \"p99_us\": {:.2}, \"p999_us\": {:.2}, \"mean_us\": {:.2}, \"max_us\": {:.2}",
        q.p50 as f64 / 1e3,
        q.p95 as f64 / 1e3,
        q.p99 as f64 / 1e3,
        q.p999 as f64 / 1e3,
        q.mean / 1e3,
        q.max as f64 / 1e3,
    )
}

fn write_json(p: &Params, configs: &[ConfigReport]) -> String {
    // Hand-rolled JSON: the workspace has no serde and the schema is flat.
    let mut s = String::new();
    s.push_str("{\n  \"schema\": \"recssd-serving/v1\",\n");
    let _ = writeln!(
        s,
        "  \"workload\": {{\"tables\": {}, \"rows_per_table\": {}, \"dim\": {}, \"outputs\": {}, \
         \"lookups_per_output\": {}, \"zipf_exponent\": {}, \"clients\": {}, \"requests\": {}}},",
        p.tables,
        p.rows_per_table,
        p.dim,
        p.spec.outputs,
        p.spec.lookups_per_output,
        p.spec.zipf_exponent,
        p.clients,
        p.requests
    );
    s.push_str("  \"configs\": [\n");
    for (i, c) in configs.iter().enumerate() {
        let r = &c.report;
        let _ = write!(
            s,
            "    {{\"shards\": {}, \"policy\": \"{}\", \"path\": \"{}\", \"requests\": {}, \
             \"lookups\": {}, \"sim_secs\": {:.6}, \"lookups_per_sim_sec\": {:.0}, \
             \"batching_factor\": {:.2}, \"verified\": {}, {}, \"queue_p99_us\": {:.2}}}",
            c.shards,
            c.policy,
            c.path,
            r.requests,
            r.lookups,
            r.makespan.as_secs_f64(),
            r.lookups_per_sim_sec,
            c.batching,
            r.verified,
            q_json(&r.e2e),
            r.queue.p99 as f64 / 1e3,
        );
        s.push_str(if i + 1 < configs.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

fn main() {
    let p = Params::from_env();
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_serving.json".to_string());
    println!(
        "workload: {} tables x {} rows (dim {}), {} outputs x {} lookups/request, \
         {} closed-loop clients, {} requests per config",
        p.tables,
        p.rows_per_table,
        p.dim,
        p.spec.outputs,
        p.spec.lookups_per_output,
        p.clients,
        p.requests
    );

    let paths = [
        SlsPath::Dram,
        SlsPath::Baseline(SlsOptions::default()),
        SlsPath::Ndp(SlsOptions::default()),
    ];
    let policies = [
        SchedulePolicy::Fifo,
        SchedulePolicy::micro_batch(16, SimDuration::from_us(200)),
    ];
    let mut configs = Vec::new();
    for &shards in &[1usize, 2, 4] {
        for &policy in &policies {
            for &path in &paths {
                let c = run_config(&p, shards, policy, path);
                println!(
                    "{:>8} {:<10} {} shard(s): {:>12.0} lookups/sim-sec  \
                     p50 {:>8.1}us  p99 {:>9.1}us  p999 {:>9.1}us  (batching {:.2}x)",
                    c.path,
                    c.policy,
                    c.shards,
                    c.report.lookups_per_sim_sec,
                    c.report.e2e.p50 as f64 / 1e3,
                    c.report.e2e.p99 as f64 / 1e3,
                    c.report.e2e.p999 as f64 / 1e3,
                    c.batching,
                );
                configs.push(c);
            }
        }
    }

    // Acceptance bar: NDP throughput scales >= 2x from 1 to 4 shards
    // (FIFO, like for like).
    let tput = |shards: usize| {
        configs
            .iter()
            .find(|c| c.shards == shards && c.policy == "fifo" && c.path == "ndp")
            .expect("config present")
            .report
            .lookups_per_sim_sec
    };
    let scaling = tput(4) / tput(1);
    println!("NDP FIFO shard scaling 1→4: {scaling:.2}x");
    assert!(
        scaling >= 2.0,
        "NDP throughput scaled only {scaling:.2}x from 1 to 4 shards"
    );

    let json = write_json(&p, &configs);
    std::fs::write(&out_path, &json).expect("write BENCH_serving.json");
    println!("wrote {out_path}");
}
