//! Serving-layer benchmark: sweeps shard count × scheduling policy ×
//! operator queue depth for all three execution paths under closed-loop
//! Zipf traffic, then sweeps open-loop offered load (Poisson arrivals)
//! against latency per path, and writes `BENCH_serving.json` (v2 schema)
//! with throughput, p50/p95/p99/p999 latency, per-shard operator
//! occupancy and flash channel utilisation.
//!
//! ```text
//! cargo run --release -p recssd-bench --bin serve
//! RECSSD_PAPER_SCALE=1 cargo run --release -p recssd-bench --bin serve
//! ```
//!
//! At any scale the run asserts the serving subsystem's acceptance bars:
//! aggregate NDP throughput grows at least 2x from 1 shard to 4 shards,
//! intra-shard pipelining (queue depth 4) gains at least 1.5x over depth
//! 1 on the 1-shard NDP FIFO configuration, and a sample of merged
//! sharded outputs bit-matches `sls_reference`.

use std::fmt::Write as _;

use recssd::SlsOptions;
use recssd_embedding::{EmbeddingTable, Quantization, TableSpec};
use recssd_serving::{
    LoadGen, LoadMode, LoadReport, SchedulePolicy, ServingConfig, ServingRuntime, SlsPath,
    TrafficSpec,
};
use recssd_sim::stats::Quantiles;
use recssd_sim::SimDuration;
use recssd_trace::ArrivalProcess;

struct Params {
    tables: usize,
    rows_per_table: u64,
    dim: usize,
    spec: TrafficSpec,
    clients: usize,
    requests: usize,
    verify_every: u64,
    depths: &'static [usize],
    /// Offered load as a fraction of the measured pipelined capacity.
    open_loads: &'static [f64],
    open_requests: usize,
}

impl Params {
    fn from_env() -> Self {
        if std::env::var("RECSSD_PAPER_SCALE").as_deref() == Ok("1") {
            Params {
                tables: 4,
                rows_per_table: 4096,
                dim: 32,
                spec: TrafficSpec {
                    outputs: 4,
                    lookups_per_output: 10,
                    zipf_exponent: 1.2,
                },
                clients: 16,
                requests: 512,
                verify_every: 16,
                depths: &[1, 2, 4, 8],
                open_loads: &[0.25, 0.5, 0.75, 0.95],
                open_requests: 256,
            }
        } else {
            Params {
                tables: 2,
                rows_per_table: 2048,
                dim: 32,
                spec: TrafficSpec {
                    outputs: 4,
                    lookups_per_output: 8,
                    zipf_exponent: 1.2,
                },
                clients: 12,
                requests: 96,
                verify_every: 8,
                depths: &[1, 2, 4],
                open_loads: &[0.25, 0.5, 0.75, 0.95],
                open_requests: 96,
            }
        }
    }
}

fn build_runtime(
    p: &Params,
    cfg: &ServingConfig,
) -> (ServingRuntime, Vec<recssd_serving::ServedTableId>) {
    let mut rt = ServingRuntime::new(cfg);
    let tables = (0..p.tables)
        .map(|t| {
            rt.add_table(EmbeddingTable::procedural(
                TableSpec::new(p.rows_per_table, p.dim, Quantization::F32),
                t as u64,
            ))
        })
        .collect();
    (rt, tables)
}

struct ConfigReport {
    shards: usize,
    depth: usize,
    policy: &'static str,
    path: &'static str,
    report: LoadReport,
}

fn run_config(
    p: &Params,
    shards: usize,
    depth: usize,
    policy: SchedulePolicy,
    path: SlsPath,
) -> ConfigReport {
    let cfg = ServingConfig::small_wide(shards, policy).with_depth(depth);
    let (mut rt, tables) = build_runtime(p, &cfg);
    let mut gen = LoadGen::new(
        &rt,
        tables,
        p.spec,
        LoadMode::Closed {
            clients: p.clients,
            think: SimDuration::ZERO,
        },
        42,
    )
    .with_verify_every(p.verify_every);
    let report = gen.run(&mut rt, path, p.requests);
    assert!(
        report.verified > 0,
        "verification sample was empty — bit-match unchecked"
    );
    ConfigReport {
        shards,
        depth,
        policy: policy.name(),
        path: path.name(),
        report,
    }
}

struct OpenReport {
    path: &'static str,
    depth: usize,
    /// Fraction of the measured closed-loop capacity offered.
    load: f64,
    /// Offered arrival rate, requests per simulated second.
    rate_rps: f64,
    report: LoadReport,
}

/// Open-loop latency-vs-offered-load point: Poisson arrivals at a fixed
/// fraction of the path's measured pipelined capacity, 1 shard, FIFO.
fn run_open(p: &Params, path: SlsPath, depth: usize, load: f64, capacity_rps: f64) -> OpenReport {
    let rate_rps = load * capacity_rps;
    let cfg = ServingConfig::small_wide(1, SchedulePolicy::Fifo).with_depth(depth);
    let (mut rt, tables) = build_runtime(p, &cfg);
    let mut gen = LoadGen::new(
        &rt,
        tables,
        p.spec,
        LoadMode::Open(ArrivalProcess::poisson(rate_rps, 99)),
        71,
    )
    .with_verify_every(p.verify_every);
    let report = gen.run(&mut rt, path, p.open_requests);
    assert!(report.verified > 0, "open-loop bit-match unchecked");
    OpenReport {
        path: path.name(),
        depth,
        load,
        rate_rps,
        report,
    }
}

fn q_json(q: &Quantiles) -> String {
    format!(
        "\"p50_us\": {:.2}, \"p95_us\": {:.2}, \"p99_us\": {:.2}, \"p999_us\": {:.2}, \"mean_us\": {:.2}, \"max_us\": {:.2}",
        q.p50 as f64 / 1e3,
        q.p95 as f64 / 1e3,
        q.p99 as f64 / 1e3,
        q.p999 as f64 / 1e3,
        q.mean / 1e3,
        q.max as f64 / 1e3,
    )
}

fn write_json(p: &Params, configs: &[ConfigReport], open: &[OpenReport]) -> String {
    // Hand-rolled JSON: the workspace has no serde and the schema is flat.
    let mut s = String::new();
    s.push_str("{\n  \"schema\": \"recssd-serving/v2\",\n");
    let _ = writeln!(
        s,
        "  \"workload\": {{\"tables\": {}, \"rows_per_table\": {}, \"dim\": {}, \"outputs\": {}, \
         \"lookups_per_output\": {}, \"zipf_exponent\": {}, \"clients\": {}, \"requests\": {}}},",
        p.tables,
        p.rows_per_table,
        p.dim,
        p.spec.outputs,
        p.spec.lookups_per_output,
        p.spec.zipf_exponent,
        p.clients,
        p.requests
    );
    s.push_str("  \"configs\": [\n");
    for (i, c) in configs.iter().enumerate() {
        let r = &c.report;
        let _ = write!(
            s,
            "    {{\"shards\": {}, \"depth\": {}, \"policy\": \"{}\", \"path\": \"{}\", \
             \"requests\": {}, \"lookups\": {}, \"sim_secs\": {:.6}, \
             \"lookups_per_sim_sec\": {:.0}, \"batching_factor\": {:.2}, \
             \"occupancy\": {:.3}, \"channel_util\": {:.4}, \"verified\": {}, {}, \
             \"queue_p99_us\": {:.2}}}",
            c.shards,
            c.depth,
            c.policy,
            c.path,
            r.requests,
            r.lookups,
            r.makespan.as_secs_f64(),
            r.lookups_per_sim_sec,
            r.batching_factor,
            r.mean_occupancy(),
            r.mean_channel_util(),
            r.verified,
            q_json(&r.e2e),
            r.queue.p99 as f64 / 1e3,
        );
        s.push_str(if i + 1 < configs.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n  \"open_loop\": [\n");
    for (i, o) in open.iter().enumerate() {
        let r = &o.report;
        let _ = write!(
            s,
            "    {{\"path\": \"{}\", \"shards\": 1, \"policy\": \"fifo\", \"depth\": {}, \
             \"offered_load\": {:.2}, \"rate_rps\": {:.0}, \"requests\": {}, \
             \"lookups_per_sim_sec\": {:.0}, \"occupancy\": {:.3}, \"channel_util\": {:.4}, \
             \"verified\": {}, {}, \"queue_p99_us\": {:.2}}}",
            o.path,
            o.depth,
            o.load,
            o.rate_rps,
            r.requests,
            r.lookups_per_sim_sec,
            r.mean_occupancy(),
            r.mean_channel_util(),
            r.verified,
            q_json(&r.e2e),
            r.queue.p99 as f64 / 1e3,
        );
        s.push_str(if i + 1 < open.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

fn main() {
    let p = Params::from_env();
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_serving.json".to_string());
    println!(
        "workload: {} tables x {} rows (dim {}), {} outputs x {} lookups/request, \
         {} closed-loop clients, {} requests per config, depths {:?}",
        p.tables,
        p.rows_per_table,
        p.dim,
        p.spec.outputs,
        p.spec.lookups_per_output,
        p.clients,
        p.requests,
        p.depths,
    );

    let paths = [
        SlsPath::Dram,
        SlsPath::Baseline(SlsOptions::default()),
        SlsPath::Ndp(SlsOptions::default()),
    ];
    let policies = [SchedulePolicy::Fifo, SchedulePolicy::micro_batch(16)];
    let mut configs = Vec::new();
    for &shards in &[1usize, 2, 4] {
        for &depth in p.depths {
            for &policy in &policies {
                for &path in &paths {
                    let c = run_config(&p, shards, depth, policy, path);
                    println!(
                        "{:>8} {:<10} {} shard(s) depth {}: {:>12.0} lookups/sim-sec  \
                         p50 {:>8.1}us  p99 {:>9.1}us  occ {:>4.2}  chan {:>5.1}%  (batching {:.2}x)",
                        c.path,
                        c.policy,
                        c.shards,
                        c.depth,
                        c.report.lookups_per_sim_sec,
                        c.report.e2e.p50 as f64 / 1e3,
                        c.report.e2e.p99 as f64 / 1e3,
                        c.report.mean_occupancy(),
                        c.report.mean_channel_util() * 100.0,
                        c.report.batching_factor,
                    );
                    configs.push(c);
                }
            }
        }
    }

    // Acceptance bar 1: NDP throughput scales >= 2x from 1 to 4 shards
    // (FIFO, depth 1, like for like).
    let tput = |shards, depth| fifo_tput(&configs, shards, depth, "ndp");
    let scaling = tput(4, 1) / tput(1, 1);
    println!("NDP FIFO shard scaling 1→4 (depth 1): {scaling:.2}x");
    assert!(
        scaling >= 2.0,
        "NDP throughput scaled only {scaling:.2}x from 1 to 4 shards"
    );

    // Acceptance bar 2: intra-shard pipelining pays — depth 4 gains
    // >= 1.5x over depth 1 at one shard on the NDP FIFO path.
    let pipe_depth = if p.depths.contains(&4) {
        4
    } else {
        p.depths[p.depths.len() - 1]
    };
    let pipelining = tput(1, pipe_depth) / tput(1, 1);
    println!("NDP FIFO queue-depth scaling 1→{pipe_depth} (1 shard): {pipelining:.2}x");
    assert!(
        pipelining >= 1.5,
        "operator pipelining gained only {pipelining:.2}x at depth {pipe_depth}"
    );

    // Open-loop offered-load vs latency curves, per path, on the
    // pipelined 1-shard configuration. Rates are fractions of each
    // path's own measured closed-loop capacity.
    println!("open-loop sweep ({} requests per point):", p.open_requests);
    let mut open = Vec::new();
    for &path in &paths {
        let capacity_rps =
            fifo_tput(&configs, 1, pipe_depth, path.name()) / p.spec.lookups_per_request() as f64;
        for &load in p.open_loads {
            let o = run_open(&p, path, pipe_depth, load, capacity_rps);
            println!(
                "{:>8} load {:.2} ({:>8.0} req/s): p50 {:>8.1}us  p99 {:>9.1}us  \
                 queue-p99 {:>9.1}us  occ {:>4.2}",
                o.path,
                o.load,
                o.rate_rps,
                o.report.e2e.p50 as f64 / 1e3,
                o.report.e2e.p99 as f64 / 1e3,
                o.report.queue.p99 as f64 / 1e3,
                o.report.mean_occupancy(),
            );
            open.push(o);
        }
    }

    let json = write_json(&p, &configs, &open);
    std::fs::write(&out_path, &json).expect("write BENCH_serving.json");
    println!("wrote {out_path}");
}

/// The FIFO closed-loop throughput of `path` at (`shards`, `depth`).
fn fifo_tput(configs: &[ConfigReport], shards: usize, depth: usize, path: &str) -> f64 {
    configs
        .iter()
        .find(|c| c.shards == shards && c.depth == depth && c.policy == "fifo" && c.path == path)
        .expect("config present")
        .report
        .lookups_per_sim_sec
}
