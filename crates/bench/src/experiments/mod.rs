//! One module per paper table/figure. Each `run(scale)` regenerates the
//! corresponding rows/series (see EXPERIMENTS.md for the index and the
//! paper-vs-measured record).

pub mod ablations;
pub mod fig03_reuse_cdf;
pub mod fig04_page_cache;
pub mod fig05_sls_dram_vs_ssd;
pub mod fig06_e2e_dram_vs_ssd;
pub mod fig08_sls_breakdown;
pub mod fig09_naive_ndp;
pub mod fig10_caching;
pub mod fig11_sensitivity;
pub mod table1_params;

mod common;

pub use common::*;
