//! Figure 6: end-to-end model latency with embeddings in DRAM vs. SSD.
//!
//! Paper (§3.3): "The execution time for MLP-dominated models remains
//! largely unaffected between the two memory systems ... WND, MTWND,
//! DIEN, and NCF increases the model latency by 1.01×, 1.01×, 1.09×, and
//! 1.01× ... the execution time of embedding-dominated models, such as
//! DLRM-RMC1, DLRM-RMC2, DLRM-RMC3, degrades by several orders of
//! magnitude."
//!
//! The MLP-dominated models' one-hot features carry extreme popularity
//! skew in production, which the host OS page cache absorbs; we model
//! that with a high-reuse trace plus the host-side vector cache. The
//! embedding-dominated models use the paper's random indices.

use recssd::SlsOptions;
use recssd_embedding::PageLayout;
use recssd_models::{BatchGen, EmbeddingMode, ModelClass, ModelConfig, ModelInstance};
use recssd_trace::LocalityTrace;

use crate::experiments::{cosmos_system, ms, x};
use crate::{Scale, Series};

/// Runs the experiment at batch 64 (the paper's Fig. 6 batch size).
pub fn run(scale: Scale) -> Series {
    let mut series = Series::new(
        "Figure 6: end-to-end latency, embeddings in DRAM vs SSD (batch 64)",
        &["model", "class", "dram_ms", "ssd_ms", "slowdown"],
    );
    let batch = 64;
    for cfg in ModelConfig::zoo() {
        let cfg = cfg.scaled_tables(scale.model_rows);
        let mut sys = cosmos_system(0);
        let class = cfg.class;
        let tables = cfg.tables;
        let rows = cfg.rows_per_table;
        let name = cfg.name;
        let model = ModelInstance::build(&mut sys, cfg, PageLayout::Spread, 66);
        let mut gen = make_gen(class, rows, tables);
        let mut opts = SlsOptions {
            io_concurrency: 32,
            ..SlsOptions::default()
        };
        if class == ModelClass::MlpDominated {
            for &t in model.tables() {
                sys.enable_host_cache(t, 2048);
            }
            opts.use_host_cache = true;
        }
        // DRAM reference.
        let mut t_dram = recssd_sim::SimDuration::ZERO;
        for _ in 0..scale.reps {
            t_dram += model
                .run_inference(&mut sys, batch, &EmbeddingMode::Dram, &mut gen)
                .latency;
        }
        let t_dram = t_dram / scale.reps as u64;
        // SSD path (warm up caches first, as a long-running service would).
        let mode = EmbeddingMode::BaselineSsd(opts);
        for _ in 0..scale.warmup {
            model.run_inference(&mut sys, batch, &mode, &mut gen);
        }
        let mut t_ssd = recssd_sim::SimDuration::ZERO;
        for _ in 0..scale.reps {
            t_ssd += model
                .run_inference(&mut sys, batch, &mode, &mut gen)
                .latency;
        }
        let t_ssd = t_ssd / scale.reps as u64;
        series.push(vec![
            name.to_string(),
            format!("{class:?}"),
            ms(t_dram),
            ms(t_ssd),
            x(t_ssd.as_ns() as f64 / t_dram.as_ns() as f64),
        ]);
    }
    series
}

fn make_gen(class: ModelClass, rows: u64, tables: usize) -> BatchGen {
    match class {
        // One-hot production features: extreme reuse (~2% unique).
        ModelClass::MlpDominated => BatchGen::Locality {
            traces: (0..tables)
                .map(|t| LocalityTrace::new(rows, 0.02, 400.0, 660 + t as u64))
                .collect(),
        },
        // The paper's random indices for the embedding-dominated models.
        ModelClass::EmbeddingDominated => BatchGen::uniform(661),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy: run with --release")]
    fn dichotomy_reproduces() {
        let s = run(Scale::quick());
        assert_eq!(s.rows.len(), 8);
        for row in &s.rows {
            let slowdown: f64 = row[4].parse().unwrap();
            if row[1].contains("Mlp") {
                assert!(
                    slowdown < 1.6,
                    "{}: MLP-dominated models must tolerate SSD, got {slowdown}x",
                    row[0]
                );
            } else {
                assert!(
                    slowdown > 20.0,
                    "{}: embedding-dominated models must collapse, got {slowdown}x",
                    row[0]
                );
            }
        }
    }
}
