//! Figure 5: standalone SLS latency, DRAM vs. COTS SSD, over batch size.
//!
//! Paper (§3.2): "The embedding table has one million rows, with an
//! embedding vector dimension of 32, and 80 lookups per table ...
//! compared to the DRAM baseline, accessing embedding tables stored in
//! the SSD incurs three orders of magnitude longer latencies."

use recssd::{OpKind, SlsOptions};
use recssd_embedding::{PageLayout, Quantization};
use recssd_sim::rng::Xoshiro256;

use crate::experiments::{add_table, cosmos_system, ms, uniform_batch, x};
use crate::{Scale, Series};

/// Runs the experiment.
pub fn run(scale: Scale) -> Series {
    let mut series = Series::new(
        "Figure 5: SparseLengthsSum latency, DRAM vs SSD (1M x 32 table, 80 lookups)",
        &["batch", "dram_ms", "ssd_ms", "slowdown"],
    );
    let rows = 1_000_000u64;
    let mut sys = cosmos_system(0);
    let table = add_table(&mut sys, rows, 32, Quantization::F32, PageLayout::Spread, 5);
    let mut rng = Xoshiro256::seed_from(55);
    let batches: &[usize] = if scale.reps >= 5 {
        &[8, 16, 32, 64, 128, 256]
    } else {
        &[8, 32, 64, 128]
    };
    for &batch in batches {
        let b = uniform_batch(&mut rng, rows, batch, 80);
        let dram = sys.submit(OpKind::dram_sls(table, b.clone()));
        sys.run_until_idle();
        sys.device_mut().ftl_mut().drop_caches();
        let ssd = sys.submit(OpKind::baseline_sls(
            table,
            b,
            SlsOptions {
                io_concurrency: 32,
                ..SlsOptions::default()
            },
        ));
        sys.run_until_idle();
        let t_dram = sys.result(dram).service_time();
        let t_ssd = sys.result(ssd).service_time();
        series.push(vec![
            batch.to_string(),
            ms(t_dram),
            ms(t_ssd),
            x(t_ssd.as_ns() as f64 / t_dram.as_ns() as f64),
        ]);
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy: run with --release")]
    fn ssd_is_orders_of_magnitude_slower() {
        let s = run(Scale::quick());
        for row in &s.rows {
            let slowdown: f64 = row[3].parse().unwrap();
            assert!(
                slowdown > 100.0,
                "batch {}: SSD slowdown should be orders of magnitude, got {slowdown}",
                row[0]
            );
        }
        // Latency grows with batch for both systems.
        let first_ssd: f64 = s.rows.first().unwrap()[2].parse().unwrap();
        let last_ssd: f64 = s.rows.last().unwrap()[2].parse().unwrap();
        assert!(last_ssd > first_ssd);
    }
}
