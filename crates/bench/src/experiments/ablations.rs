//! Ablations of RecSSD's design choices, beyond the paper's figures.
//!
//! Each ablation grounds one claim the paper makes in prose:
//!
//! * **Embedded-CPU speed** — §6.1: "we expect that with faster SSD
//!   microprocessors or custom logic, the Translation time could be
//!   significantly reduced."
//! * **SSD embedding-cache capacity** — §4.2's direct-mapped cache: how
//!   many slots does the device DRAM need before hit rates saturate?
//! * **Baseline I/O window** — the difference between the paper's naive
//!   (Fig. 9) and optimised (Fig. 10) baselines is outstanding-command
//!   depth; this sweep shows where the firmware ceiling bites.
//! * **Operator pipelining** — §4.2's threadpool: how much of the NDP
//!   latency can overlap with neural-network compute.

use recssd::{OpKind, RecSsdConfig, SlsOptions, System};
use recssd_embedding::{PageLayout, Quantization};
use recssd_models::{BatchGen, EmbeddingMode, ModelConfig, ModelInstance};
use recssd_sim::rng::Xoshiro256;
use recssd_sim::SimDuration;
use recssd_trace::{LocalityK, LocalityTrace};

use crate::experiments::{add_table, cosmos_system, ms, pct, uniform_batch, x};
use crate::{Scale, Series};

const ROWS: u64 = 1_000_000;

/// Sweep the embedded CPU's translation throughput: a faster in-SSD
/// processor turns the Translation-bound region into pure flash-bound.
pub fn run_arm_speed(scale: Scale) -> Series {
    let _ = scale;
    let mut series = Series::new(
        "Ablation: SSD microprocessor speed vs NDP SLS latency (STR, batch 64)",
        &[
            "cpu_speed",
            "translation_us",
            "total_us",
            "speedup_vs_baseline",
        ],
    );
    // Baseline reference, measured once.
    let mut rng = Xoshiro256::seed_from(9);
    let batch = uniform_batch(&mut rng, ROWS, 64, 80);
    let t_base = {
        let mut sys = cosmos_system(0);
        let table = add_table(&mut sys, ROWS, 32, Quantization::F32, PageLayout::Spread, 4);
        let op = sys.submit(OpKind::baseline_sls(
            table,
            batch.clone(),
            SlsOptions {
                io_concurrency: 32,
                ..SlsOptions::default()
            },
        ));
        sys.run_until_idle();
        sys.result(op).service_time()
    };
    for (label, mult) in [
        ("0.25x", 0.25),
        ("0.5x", 0.5),
        ("1x (A9)", 1.0),
        ("2x", 2.0),
        ("4x", 4.0),
    ] {
        let mut cfg = RecSsdConfig::cosmos();
        cfg.ndp.translate_fixed_ns = (cfg.ndp.translate_fixed_ns as f64 / mult) as u64;
        cfg.ndp.translate_per_byte_ns /= mult;
        cfg.ndp.config_process_per_pair_ns =
            (cfg.ndp.config_process_per_pair_ns as f64 / mult) as u64;
        let mut sys = System::new(cfg);
        let table = add_table(&mut sys, ROWS, 32, Quantization::F32, PageLayout::Spread, 4);
        let op = sys.submit(OpKind::ndp_sls(table, batch.clone(), SlsOptions::default()));
        sys.run_until_idle();
        let total = sys.result(op).service_time();
        let report = sys.device().engine().stats().mean_report();
        series.push(vec![
            label.into(),
            format!("{:.0}", report.translation.as_us_f64()),
            format!("{:.0}", total.as_us_f64()),
            x(t_base.as_ns() as f64 / total.as_ns() as f64),
        ]);
    }
    series
}

/// Sweep the SSD-side direct-mapped embedding cache capacity.
pub fn run_ssd_cache_capacity(scale: Scale) -> Series {
    let mut series = Series::new(
        "Ablation: SSD embedding-cache slots vs hit rate and latency (RM3-like, K=0)",
        &["slots", "hit_rate", "sls_ms"],
    );
    for slots in [0usize, 1 << 12, 1 << 15, 1 << 18, 1 << 21] {
        let mut sys = cosmos_system(slots);
        let table = add_table(
            &mut sys,
            scale.model_rows,
            32,
            Quantization::F32,
            PageLayout::Spread,
            6,
        );
        let mut trace = LocalityTrace::with_k(scale.model_rows, LocalityK::K0, 60);
        let make = |t: &mut LocalityTrace| {
            recssd_embedding::LookupBatch::new(
                (0..16)
                    .map(|_| (0..20).map(|_| t.next_id()).collect())
                    .collect(),
            )
        };
        // Warm, then measure.
        for _ in 0..10 {
            let op = sys.submit(OpKind::ndp_sls(
                table,
                make(&mut trace),
                SlsOptions::default(),
            ));
            sys.run_until_idle();
            let _ = sys.result(op);
        }
        sys.device_mut().engine_mut().reset_stats();
        let mut total = SimDuration::ZERO;
        for _ in 0..4 {
            let op = sys.submit(OpKind::ndp_sls(
                table,
                make(&mut trace),
                SlsOptions::default(),
            ));
            sys.run_until_idle();
            total += sys.result(op).service_time();
        }
        let stats = sys.device().engine().stats();
        series.push(vec![
            slots.to_string(),
            pct(stats.embed_cache.hit_rate()),
            ms(total / 4),
        ]);
    }
    series
}

/// Sweep the baseline's outstanding-read window: shallow windows are
/// latency-bound, deep windows hit the firmware's command-processing
/// ceiling — the gap between the paper's naive and optimised baselines.
pub fn run_io_concurrency(_scale: Scale) -> Series {
    let mut series = Series::new(
        "Ablation: baseline SSD outstanding reads vs SLS latency (STR, batch 32)",
        &["io_concurrency", "sls_ms", "per_page_us"],
    );
    let mut sys = cosmos_system(0);
    let table = add_table(&mut sys, ROWS, 32, Quantization::F32, PageLayout::Spread, 7);
    let mut rng = Xoshiro256::seed_from(70);
    for conc in [1usize, 2, 4, 8, 16, 32] {
        let batch = uniform_batch(&mut rng, ROWS, 32, 80);
        let pages = batch.distinct_rows().len();
        sys.device_mut().ftl_mut().drop_caches();
        let op = sys.submit(OpKind::baseline_sls(
            table,
            batch,
            SlsOptions {
                io_concurrency: conc,
                ..SlsOptions::default()
            },
        ));
        sys.run_until_idle();
        let t = sys.result(op).service_time();
        series.push(vec![
            conc.to_string(),
            ms(t),
            format!("{:.1}", t.as_us_f64() / pages as f64),
        ]);
    }
    series
}

/// Compare sequential batches against pipelined serving for an
/// MLP-heavy model: the §4.2 threadpool hides NDP I/O under compute.
pub fn run_pipelining(scale: Scale) -> Series {
    let mut series = Series::new(
        "Ablation: operator pipelining (WND, NDP embeddings, 6 batches)",
        &["mode", "makespan_ms", "per_batch_ms"],
    );
    let cfg = ModelConfig::wnd().scaled_tables(scale.model_rows);
    let mut sys = cosmos_system(0);
    let model = ModelInstance::build(&mut sys, cfg, PageLayout::Spread, 8);
    let mode = EmbeddingMode::Ndp(SlsOptions::default());
    let n = 6;
    // Sequential: run batches one at a time.
    let mut gen = BatchGen::uniform(80);
    let mut seq_total = SimDuration::ZERO;
    for _ in 0..n {
        seq_total += model.run_inference(&mut sys, 32, &mode, &mut gen).latency;
    }
    series.push(vec![
        "sequential".into(),
        ms(seq_total),
        ms(seq_total / n as u64),
    ]);
    // Pipelined: submit all, let the pools overlap.
    let (makespan, mean) = model.run_pipelined(&mut sys, 32, n, &mode, &mut gen);
    series.push(vec!["pipelined".into(), ms(makespan), ms(mean)]);
    series
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            model_rows: 50_000,
            warmup: 0,
            reps: 1,
            trace_len: 1000,
        }
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy: run with --release")]
    fn faster_arm_reduces_translation_and_total() {
        let s = run_arm_speed(tiny());
        let total = |label: &str| -> f64 {
            s.rows.iter().find(|r| r[0] == label).unwrap()[2]
                .parse()
                .unwrap()
        };
        assert!(total("4x") <= total("1x (A9)"));
        assert!(total("1x (A9)") < total("0.25x"));
        // A 4x faster CPU cannot beat the flash-bound floor by much more
        // than the translation share it removed.
        let sp4: f64 = s.rows.iter().find(|r| r[0] == "4x").unwrap()[3]
            .parse()
            .unwrap();
        let sp1: f64 = s.rows.iter().find(|r| r[0] == "1x (A9)").unwrap()[3]
            .parse()
            .unwrap();
        assert!(sp4 >= sp1, "faster CPU never hurts");
        assert!(sp4 <= sp1 * 2.5, "flash-bound floor caps the gain");
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy: run with --release")]
    fn cache_capacity_saturates() {
        let s = run_ssd_cache_capacity(tiny());
        let rows = &s.rows;
        let get = |slots: &str| -> (f64, f64) {
            let r = rows.iter().find(|r| r[0] == slots).expect("row");
            (
                r[1].trim_end_matches('%').parse().unwrap(),
                r[2].parse().unwrap(),
            )
        };
        let (h0, t0) = get("0");
        let (h_small, _) = get("4096");
        let (h_big, t_big) = get(&(1usize << 21).to_string());
        assert_eq!(h0, 0.0, "no cache, no hits");
        assert!(h_big >= h_small, "capacity monotone");
        assert!(t_big <= t0, "cache never slows the device");
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy: run with --release")]
    fn shallow_windows_are_latency_bound() {
        let s = run_io_concurrency(tiny());
        let per_page = |conc: &str| -> f64 {
            s.rows.iter().find(|r| r[0] == conc).unwrap()[2]
                .parse()
                .unwrap()
        };
        assert!(
            per_page("1") > per_page("32") * 2.0,
            "depth-1 pays full round trips: {} vs {}",
            per_page("1"),
            per_page("32")
        );
        // Beyond the firmware ceiling, extra depth stops helping.
        assert!(per_page("16") <= per_page("2"));
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy: run with --release")]
    fn pipelining_beats_sequential() {
        let s = run_pipelining(tiny());
        let seq: f64 = s.rows[0][1].parse().unwrap();
        let pipe: f64 = s.rows[1][1].parse().unwrap();
        assert!(pipe < seq, "pipelined makespan {pipe} < sequential {seq}");
    }
}
