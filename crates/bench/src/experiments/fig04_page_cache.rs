//! Figure 4: 16-way LRU 4 KB page-cache hit rate vs. capacity, across
//! tables of different locality.
//!
//! Paper: "Using a 16-way, LRU, 4KB page cache of varying cache
//! capacities, the hit rate varies wildly from under 10% to over 90%
//! across the different embedding tables ... With a 16MB page cache per
//! embedding table, more than 50% of reuses can be achieved across all
//! the embedding tables analyzed." Production tables are substituted
//! with a skew sweep: near-uniform (cold) through steep Zipf (hot).

use recssd_sim::rng::Xoshiro256;
use recssd_trace::analysis::page_cache_sweep;
use recssd_trace::ZipfTrace;

use crate::{Scale, Series};

const ROW_BYTES: usize = 128;
const PAGE: usize = 4096;
const WAYS: usize = 16;

/// Runs the experiment.
pub fn run(scale: Scale) -> Series {
    let mut series = Series::new(
        "Figure 4: 16-way LRU 4KB page cache hit rate vs capacity (per-table skew sweep)",
        &["table", "capacity", "hit_rate"],
    );
    let rows = 10_000_000u64;
    let n = scale.trace_len;
    let tables: Vec<(String, Vec<u64>)> = {
        let mut t = Vec::new();
        let mut rng = Xoshiro256::seed_from(404);
        t.push((
            "uniform".to_string(),
            (0..n).map(|_| rng.gen_range(0..rows)).collect(),
        ));
        for s in [1.1, 1.3, 1.6, 2.0, 2.5] {
            t.push((
                format!("zipf-{s:.1}"),
                ZipfTrace::new(rows, s, 404).take_ids(n),
            ));
        }
        t
    };
    let capacities = [256 << 10, 1 << 20, 4 << 20, 16 << 20, 64 << 20];
    for (name, ids) in &tables {
        for (cap, rate) in page_cache_sweep(ids, &capacities, WAYS, PAGE, ROW_BYTES) {
            series.push(vec![
                name.clone(),
                format!("{}MB", cap >> 20),
                format!("{:.1}%", rate * 100.0),
            ]);
        }
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rates_span_the_figure_4_range() {
        let s = run(Scale::quick());
        let rate = |table: &str, cap: &str| -> f64 {
            s.rows
                .iter()
                .find(|r| r[0] == table && r[1] == cap)
                .expect("row")[2]
                .trim_end_matches('%')
                .parse::<f64>()
                .unwrap()
                / 100.0
        };
        // "from under 10% to over 90%" at a mid capacity.
        assert!(rate("uniform", "1MB") < 0.10);
        assert!(rate("zipf-2.5", "1MB") > 0.90);
        // Hit rate grows with capacity for a skewed table.
        assert!(rate("zipf-1.3", "64MB") >= rate("zipf-1.3", "1MB"));
        // "With a 16MB page cache per embedding table, more than 50% of
        // reuses" — holds for every skewed table (the uniform stand-in has
        // essentially no reuse to capture).
        for t in ["zipf-1.1", "zipf-1.3", "zipf-1.6", "zipf-2.0", "zipf-2.5"] {
            assert!(rate(t, "64MB") > 0.5, "{t} at 64MB");
        }
    }
}
