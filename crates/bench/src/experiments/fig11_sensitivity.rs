//! Figure 11: sensitivity of the NDP benefit to model parameters.
//!
//! Paper (§6.4): "feature size and quantization, which affect the size of
//! embedding vectors relative to the page size, show decreasing relative
//! performance as this ratio grows ... although increasing table count
//! diminishes performance, this quickly becomes outscaled by increases in
//! performance from the increased indices per lookup."

use recssd::SlsOptions;
use recssd_embedding::{PageLayout, Quantization};
use recssd_models::{BatchGen, EmbeddingMode, ModelClass, ModelConfig, ModelInstance};

use crate::experiments::{cosmos_system, x};
use crate::{Scale, Series};

/// An RM3-like model with overridable embedding parameters (the paper's
/// sensitivity baseline).
fn rm3_like(
    rows: u64,
    dim: usize,
    quant: Quantization,
    tables: usize,
    lookups: usize,
) -> ModelConfig {
    ModelConfig {
        name: "RM3-like",
        class: ModelClass::EmbeddingDominated,
        tables,
        rows_per_table: rows,
        dim,
        lookups_per_table: lookups,
        quant,
        bottom_mlp: recssd_models::MlpSpec::new(vec![128, 64, 32]),
        top_mlp: recssd_models::MlpSpec::new(vec![32 + tables * dim, 128, 1]),
        extra_flops_per_sample: 0.0,
    }
}

fn speedup_of(cfg: ModelConfig, scale: Scale, seed: u64) -> f64 {
    let batch = 64;
    let mut sys = cosmos_system(0);
    let model = ModelInstance::build(&mut sys, cfg, PageLayout::Spread, seed);
    let mut gen = BatchGen::uniform(seed * 31);
    let opts = SlsOptions {
        io_concurrency: 32,
        ..SlsOptions::default()
    };
    let mut t_base = recssd_sim::SimDuration::ZERO;
    for _ in 0..scale.reps {
        t_base += model
            .run_inference(&mut sys, batch, &EmbeddingMode::BaselineSsd(opts), &mut gen)
            .latency;
    }
    sys.device_mut().ftl_mut().drop_caches();
    let mut t_ndp = recssd_sim::SimDuration::ZERO;
    for _ in 0..scale.reps {
        t_ndp += model
            .run_inference(&mut sys, batch, &EmbeddingMode::Ndp(opts), &mut gen)
            .latency;
    }
    t_base.as_ns() as f64 / t_ndp.as_ns() as f64
}

/// Figure 11a: feature size × quantization.
pub fn run_feature_quant(scale: Scale) -> Series {
    let mut series = Series::new(
        "Figure 11a: NDP speedup vs feature size and quantization (RM3-like)",
        &["feature_size", "quant", "vector_bytes", "speedup"],
    );
    // Sweep vector size up toward the 16 KB page so the ratio the paper
    // varies ("the size of embedding vectors relative to the page size")
    // actually grows; quantisation shifts where the decline begins.
    for dim in [64usize, 256, 1024, 2048] {
        for quant in [Quantization::Int8, Quantization::F16, Quantization::F32] {
            let cfg = rm3_like(scale.model_rows, dim, quant, 10, 20);
            let sp = speedup_of(cfg, scale, 111);
            series.push(vec![
                dim.to_string(),
                format!("{quant:?}"),
                quant.row_bytes(dim).to_string(),
                x(sp),
            ]);
        }
    }
    series
}

/// Figure 11b: indices per lookup × table count.
pub fn run_indices_tables(scale: Scale) -> Series {
    let mut series = Series::new(
        "Figure 11b: NDP speedup vs indices per lookup and table count (RM3-like)",
        &["indices", "tables", "speedup"],
    );
    for lookups in [20usize, 40, 80, 120] {
        for tables in [8usize, 16, 32] {
            let cfg = rm3_like(scale.model_rows, 32, Quantization::F32, tables, lookups);
            let sp = speedup_of(cfg, scale, 222);
            series.push(vec![lookups.to_string(), tables.to_string(), x(sp)]);
        }
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            model_rows: 100_000,
            warmup: 0,
            reps: 1,
            trace_len: 1000,
        }
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy: run with --release")]
    fn bigger_vectors_reduce_relative_performance() {
        let s = run_feature_quant(tiny());
        let sp = |dim: &str, quant: &str| -> f64 {
            s.rows
                .iter()
                .find(|r| r[0] == dim && r[1] == quant)
                .expect("row")[3]
                .parse()
                .unwrap()
        };
        // Fig. 11a: relative performance decreases as vector bytes/page
        // grows (more Translation work per page on the weak SSD CPU).
        assert!(
            sp("64", "F32") > sp("2048", "F32") * 1.2,
            "dim 64 {} vs dim 2048 {}",
            sp("64", "F32"),
            sp("2048", "F32")
        );
        // Quantisation shrinks vectors and helps NDP at large dims.
        assert!(sp("2048", "Int8") > sp("2048", "F32"));
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy: run with --release")]
    fn more_indices_amortise_and_beat_table_count_penalty() {
        let s = run_indices_tables(tiny());
        let sp = |idx: &str, tables: &str| -> f64 {
            s.rows
                .iter()
                .find(|r| r[0] == idx && r[1] == tables)
                .expect("row")[2]
                .parse()
                .unwrap()
        };
        // Fig. 11b: increasing indices per lookup improves the NDP win.
        assert!(
            sp("120", "8") >= sp("20", "8") * 0.95,
            "indices amortise: 20 -> {} vs 120 -> {}",
            sp("20", "8"),
            sp("120", "8")
        );
    }
}
