//! Table 1: differentiating benchmark parameters of RM1/RM2/RM3.

use recssd_models::ModelConfig;

use crate::Series;

/// Regenerates Table 1.
pub fn run() -> Series {
    let mut series = Series::new(
        "Table 1: differentiating benchmark parameters",
        &["benchmark", "feature_size", "indices", "table_count"],
    );
    for m in ModelConfig::table1() {
        series.push(vec![
            m.name.replace("DLRM-RMC", "RM"),
            m.dim.to_string(),
            m.lookups_per_table.to_string(),
            m.tables.to_string(),
        ]);
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_paper_exactly() {
        let s = run();
        assert_eq!(
            s.rows,
            vec![
                vec!["RM1".to_string(), "32".into(), "80".into(), "8".into()],
                vec!["RM2".to_string(), "64".into(), "120".into(), "32".into()],
                vec!["RM3".to_string(), "32".into(), "20".into(), "10".into()],
            ]
        );
    }
}
