//! Figure 8: standalone SLS operator performance with the FTL-internal
//! breakdown, for sequential and strided patterns, baseline vs. NDP.
//!
//! Paper (§6.1): execution time categorised as Config Write, Config
//! Process, Translation and Flash Read; "Under the Random memory lookup
//! access pattern, RecSSD achieves up to a 4× performance improvement
//! over baseline SSD ... roughly half the time in the RecSSD's FTL is
//! spent on Translation ... Sequential access patterns with high spatial
//! locality result in poor NDP performance."

use recssd::{OpKind, SlsOptions};
use recssd_embedding::{LookupBatch, PageLayout, Quantization};
use recssd_trace::patterns::{sequential_ids, strided_ids};

use crate::experiments::{add_table, cosmos_system, us};
use crate::{Scale, Series};

const LOOKUPS: usize = 80;
const ROWS: u64 = 1_000_000;

/// Runs the experiment.
pub fn run(scale: Scale) -> Series {
    let mut series = Series::new(
        "Figure 8: SLS latency breakdown (dense layout, 1M x 32 table, 80 lookups)",
        &[
            "pattern",
            "batch",
            "mode",
            "config_write_us",
            "config_process_us",
            "translation_us",
            "flash_read_us",
            "total_us",
        ],
    );
    let batches: &[usize] = if scale.reps >= 5 {
        &[16, 64, 256]
    } else {
        &[16, 64]
    };
    for pattern in ["SEQ", "STR"] {
        for &batch in batches {
            let mut sys = cosmos_system(0);
            let table = add_table(&mut sys, ROWS, 32, Quantization::F32, PageLayout::Dense, 8);
            // 128 dense rows per 16 KB page; stride 128 puts every id on
            // its own flash page (the paper's STR definition).
            let make_batch = |start: u64| -> LookupBatch {
                let n = batch * LOOKUPS;
                let ids = match pattern {
                    "SEQ" => sequential_ids(start, n, ROWS),
                    _ => strided_ids(start, 128, n, ROWS),
                };
                LookupBatch::new(ids.chunks(LOOKUPS).map(|c| c.to_vec()).collect())
            };
            // Baseline.
            let b = sys.submit(OpKind::baseline_sls(
                table,
                make_batch(0),
                SlsOptions {
                    io_concurrency: 32,
                    ..SlsOptions::default()
                },
            ));
            sys.run_until_idle();
            let t_base = sys.result(b).service_time();
            series.push(vec![
                pattern.into(),
                batch.to_string(),
                "baseline".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                us(t_base),
            ]);
            // NDP, cold device.
            sys.device_mut().ftl_mut().drop_caches();
            sys.device_mut().engine_mut().reset_stats();
            let n = sys.submit(OpKind::ndp_sls(table, make_batch(0), SlsOptions::default()));
            sys.run_until_idle();
            let _ = sys.result(n);
            let report = sys.device().engine().stats().mean_report();
            series.push(vec![
                pattern.into(),
                batch.to_string(),
                "ndp".into(),
                us(report.config_write),
                us(report.config_process),
                us(report.translation),
                us(report.flash_read),
                us(report.total),
            ]);
        }
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;

    fn val(s: &Series, pattern: &str, batch: &str, mode: &str, col: usize) -> f64 {
        s.rows
            .iter()
            .find(|r| r[0] == pattern && r[1] == batch && r[2] == mode)
            .expect("row exists")[col]
            .parse()
            .unwrap()
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy: run with --release")]
    fn strided_ndp_wins_and_translation_is_half() {
        let s = run(Scale::quick());
        let base = val(&s, "STR", "64", "baseline", 7);
        let ndp = val(&s, "STR", "64", "ndp", 7);
        let speedup = base / ndp;
        assert!(
            (2.0..8.0).contains(&speedup),
            "STR speedup should be ~4x: {speedup:.2}"
        );
        // "roughly half the time ... spent on Translation".
        let translation = val(&s, "STR", "64", "ndp", 5);
        let frac = translation / ndp;
        assert!(
            (0.25..0.85).contains(&frac),
            "translation should be roughly half of NDP time: {frac:.2}"
        );
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy: run with --release")]
    fn sequential_favours_the_baseline() {
        let s = run(Scale::quick());
        let base = val(&s, "SEQ", "64", "baseline", 7);
        let ndp = val(&s, "SEQ", "64", "ndp", 7);
        assert!(
            ndp >= base * 0.8,
            "SEQ should not favour NDP: base {base} vs ndp {ndp}"
        );
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy: run with --release")]
    fn components_sum_below_total() {
        let s = run(Scale::quick());
        for row in s.rows.iter().filter(|r| r[2] == "ndp") {
            let total: f64 = row[7].parse().unwrap();
            let cw: f64 = row[3].parse().unwrap();
            let cp: f64 = row[4].parse().unwrap();
            assert!(cw + cp <= total * 1.01, "setup phases within total");
        }
    }
}
