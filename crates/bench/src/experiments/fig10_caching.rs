//! Figure 10: full-model speedup of RecSSD over the optimised baseline,
//! with caching — (a–c) SSD-side direct-mapped cache vs. host LRU,
//! (d–f) adding static host partitioning.
//!
//! Paper (§6.3): "Batchsizes are swept between 1 and 32, along with the
//! three input trace locality conditions K = 0, 1, 2 ... With high
//! locality (i.e., low K), conventional SSD systems achieve higher
//! performance than RecSSD. On the other hand, with low locality RecSSD
//! outperforms the conventional baseline ... with static partitioning,
//! RecSSD achieves a 2× performance improvement over the conventional
//! SSD baseline."

use recssd::{SlsOptions, System};
use recssd_cache::StaticPartitionBuilder;
use recssd_embedding::PageLayout;
use recssd_models::{BatchGen, EmbeddingMode, ModelConfig, ModelInstance};
use recssd_trace::{LocalityK, LocalityTrace};

use crate::experiments::{cosmos_system, ms, pct, x};
use crate::{Scale, Series};

/// Host LRU capacity per table (§5: "host-side DRAM caches store up to 2K
/// entries per embedding table").
const HOST_CACHE_ENTRIES: usize = 2048;
/// SSD-side direct-mapped embedding-cache slots. Large in entry count but
/// direct-mapped and shared by *all* tables, so its effective hit rate
/// trails the per-table associative host LRU — the asymmetry §6.3 calls
/// out ("the direct mapped caching hit rate cannot match that of the more
/// complex fully associative LRU cache on the host system").
const SSD_CACHE_SLOTS: usize = 1 << 15;

/// Which Fig. 10 half to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// (a–c): RecSSD uses only the SSD-side cache.
    SsdCache,
    /// (d–f): RecSSD adds profile-guided static host partitioning.
    Partitioned,
}

/// Runs one variant of the experiment.
pub fn run(scale: Scale, variant: Variant) -> Series {
    let title = match variant {
        Variant::SsdCache => {
            "Figure 10(a-c): RecSSD (SSD cache) vs baseline (host LRU), by K and batch"
        }
        Variant::Partitioned => {
            "Figure 10(d-f): RecSSD (static partition + SSD cache) vs baseline (host LRU)"
        }
    };
    let mut series = Series::new(
        title,
        &[
            "model",
            "K",
            "batch",
            "baseline_ms",
            "recssd_ms",
            "speedup",
            "recssd_hit",
            "lru_hit",
        ],
    );
    let batches: &[usize] = if scale.reps >= 5 {
        &[1, 2, 4, 8, 16, 32]
    } else {
        &[1, 4, 16, 32]
    };
    for cfg in ModelConfig::table1() {
        let cfg = cfg.scaled_tables(scale.model_rows);
        for k in LocalityK::all() {
            run_cell(&mut series, &cfg, k, batches, scale, variant);
        }
    }
    series
}

fn run_cell(
    series: &mut Series,
    cfg: &ModelConfig,
    k: LocalityK,
    batches: &[usize],
    scale: Scale,
    variant: Variant,
) {
    let seed = 1000 + k.value() as u64;
    // Two identical systems so device-side caches don't cross-contaminate;
    // identical generator seeds make both modes see the same id streams.
    let mut base_sys = cosmos_system(0);
    let mut rec_sys = cosmos_system(SSD_CACHE_SLOTS);
    let base_model = ModelInstance::build(&mut base_sys, cfg.clone(), PageLayout::Spread, 77);
    let rec_model = ModelInstance::build(&mut rec_sys, cfg.clone(), PageLayout::Spread, 77);
    for &t in base_model.tables() {
        base_sys.enable_host_cache(t, HOST_CACHE_ENTRIES);
    }
    let mut rec_opts = SlsOptions::default();
    if variant == Variant::Partitioned {
        // Profile the input distribution (same generator family, separate
        // stream) and pin the hottest rows per table in host DRAM.
        for (i, &t) in rec_model.tables().iter().enumerate() {
            let mut profile =
                LocalityTrace::with_k(cfg.rows_per_table, k, seed.wrapping_add(i as u64 * 7919));
            let mut b = StaticPartitionBuilder::new();
            for _ in 0..40_000 {
                b.observe(profile.next_id());
            }
            // The partition covers at most a quarter of the *used* id
            // space (§6.3: "the hit rate asymptotically approaches 25%,
            // the size of the static partition relative to the used ID
            // space"), bounded by the host DRAM budget.
            let cap = HOST_CACHE_ENTRIES.min(b.distinct_ids() / 4).max(1);
            rec_sys.set_partition(t, b.build(cap));
        }
        rec_opts.use_partition = true;
    }
    let base_opts = SlsOptions {
        io_concurrency: 32,
        use_host_cache: true,
        ..SlsOptions::default()
    };
    let mut base_gen = BatchGen::locality(cfg.rows_per_table, k, cfg.tables, seed);
    let mut rec_gen = BatchGen::locality(cfg.rows_per_table, k, cfg.tables, seed);
    for &batch in batches {
        // Warm both systems to cache steady state before measuring (§5:
        // "We average latency results across many batches, ensuring
        // steady-state behavior"): enough inferences that each table sees
        // several thousand lookups.
        let per_inference = cfg.lookups_per_table * batch;
        let warmup = scale.warmup.max((4000 / per_inference.max(1)).min(120));
        for _ in 0..warmup {
            base_model.run_inference(
                &mut base_sys,
                batch,
                &EmbeddingMode::BaselineSsd(base_opts),
                &mut base_gen,
            );
            rec_model.run_inference(
                &mut rec_sys,
                batch,
                &EmbeddingMode::Ndp(rec_opts),
                &mut rec_gen,
            );
        }
        reset_stats(&mut base_sys, &base_model);
        reset_stats(&mut rec_sys, &rec_model);
        let mut t_base = recssd_sim::SimDuration::ZERO;
        let mut t_rec = recssd_sim::SimDuration::ZERO;
        for _ in 0..scale.reps {
            t_base += base_model
                .run_inference(
                    &mut base_sys,
                    batch,
                    &EmbeddingMode::BaselineSsd(base_opts),
                    &mut base_gen,
                )
                .latency;
            t_rec += rec_model
                .run_inference(
                    &mut rec_sys,
                    batch,
                    &EmbeddingMode::Ndp(rec_opts),
                    &mut rec_gen,
                )
                .latency;
        }
        let t_base = t_base / scale.reps as u64;
        let t_rec = t_rec / scale.reps as u64;
        let lru_hit = mean_host_hit(&base_sys, &base_model);
        let rec_hit = match variant {
            Variant::SsdCache => rec_sys.device().engine().stats().embed_cache.hit_rate(),
            Variant::Partitioned => mean_partition_hit(&rec_sys, &rec_model),
        };
        series.push(vec![
            cfg.name.to_string(),
            k.to_string(),
            batch.to_string(),
            ms(t_base),
            ms(t_rec),
            x(t_base.as_ns() as f64 / t_rec.as_ns() as f64),
            pct(rec_hit),
            pct(lru_hit),
        ]);
    }
}

fn reset_stats(sys: &mut System, model: &ModelInstance) {
    let _ = model;
    sys.device_mut().engine_mut().reset_stats();
    sys.reset_host_stats();
}

fn mean_host_hit(sys: &System, model: &ModelInstance) -> f64 {
    let mut agg = recssd_cache::HitStats::new();
    for &t in model.tables() {
        if let Some(s) = sys.host_cache_stats(t) {
            agg.merge(s);
        }
    }
    agg.hit_rate()
}

fn mean_partition_hit(sys: &System, model: &ModelInstance) -> f64 {
    let mut agg = recssd_cache::HitStats::new();
    for &t in model.tables() {
        if let Some(s) = sys.partition_stats(t) {
            agg.merge(s);
        }
    }
    agg.hit_rate()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scale() -> Scale {
        Scale {
            model_rows: 100_000,
            warmup: 1,
            reps: 1,
            trace_len: 10_000,
        }
    }

    fn speedup(s: &Series, model: &str, k: &str, batch: &str) -> f64 {
        s.rows
            .iter()
            .find(|r| r[0] == model && r[1] == k && r[2] == batch)
            .expect("row exists")[5]
            .parse()
            .unwrap()
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy: run with --release")]
    fn locality_flips_the_winner() {
        let s = run(tiny_scale(), Variant::SsdCache);
        // Fig. 10: at high locality (K=0) the baseline's associative host
        // LRU wins; at low locality (K=2) RecSSD wins.
        let high_locality = speedup(&s, "DLRM-RMC1", "K=0", "16");
        let low_locality = speedup(&s, "DLRM-RMC1", "K=2", "16");
        assert!(
            low_locality > high_locality,
            "RecSSD should gain as locality drops: K0 {high_locality} vs K2 {low_locality}"
        );
        assert!(
            low_locality > 1.2,
            "RecSSD must win at low locality: {low_locality}"
        );
        // Baseline LRU hit rates follow the locality distribution.
        let lru = |krow: &str| -> f64 {
            s.rows
                .iter()
                .find(|r| r[0] == "DLRM-RMC1" && r[1] == krow && r[2] == "16")
                .unwrap()[7]
                .trim_end_matches('%')
                .parse()
                .unwrap()
        };
        assert!(lru("K=0") > lru("K=2"), "LRU hit rate tracks locality");
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy: run with --release")]
    fn partitioning_extends_the_win_at_low_locality() {
        let cache_only = run(tiny_scale(), Variant::SsdCache);
        let partitioned = run(tiny_scale(), Variant::Partitioned);
        let a = speedup(&cache_only, "DLRM-RMC3", "K=2", "16");
        let b = speedup(&partitioned, "DLRM-RMC3", "K=2", "16");
        assert!(
            b >= a * 0.9,
            "partitioning should help (or at least not hurt) at low locality: {a} -> {b}"
        );
        assert!(b > 1.2, "paper: up to 2x with partitioning; got {b}");
    }
}
