//! Figure 9: naive NDP speedup over the baseline SSD, per model.
//!
//! Paper (§6.2): "the simplest naive experimental configuration ...
//! without operator pipelining and caching techniques, and using randomly
//! generated input indices. We observe that many models exist where NDP
//! provides no observable benefits, and for models where performance is
//! limited by embedding operations and SSD latencies, NDP can provide
//! substantial assistance with up to 7× speedup."

use recssd::SlsOptions;
use recssd_embedding::PageLayout;
use recssd_models::{BatchGen, EmbeddingMode, ModelConfig, ModelInstance};

use crate::experiments::{cosmos_system, ms, x};
use crate::{Scale, Series};

/// Runs the experiment at batch 64 with random indices and the naive
/// (shallow-window, no caching, no pipelining) configuration.
pub fn run(scale: Scale) -> Series {
    let mut series = Series::new(
        "Figure 9: naive NDP speedup over baseline SSD (batch 64, random indices)",
        &["model", "baseline_ms", "ndp_ms", "speedup"],
    );
    let batch = 64;
    for cfg in ModelConfig::zoo() {
        let cfg = cfg.scaled_tables(scale.model_rows);
        let name = cfg.name;
        let mut sys = cosmos_system(0);
        let model = ModelInstance::build(&mut sys, cfg, PageLayout::Spread, 99);
        let mut gen = BatchGen::uniform(990);
        let naive = SlsOptions::naive();
        let mut t_base = recssd_sim::SimDuration::ZERO;
        for _ in 0..scale.reps {
            t_base += model
                .run_inference(
                    &mut sys,
                    batch,
                    &EmbeddingMode::BaselineSsd(naive),
                    &mut gen,
                )
                .latency;
        }
        let t_base = t_base / scale.reps as u64;
        sys.device_mut().ftl_mut().drop_caches();
        let mut t_ndp = recssd_sim::SimDuration::ZERO;
        for _ in 0..scale.reps {
            t_ndp += model
                .run_inference(&mut sys, batch, &EmbeddingMode::Ndp(naive), &mut gen)
                .latency;
        }
        let t_ndp = t_ndp / scale.reps as u64;
        series.push(vec![
            name.to_string(),
            ms(t_base),
            ms(t_ndp),
            x(t_base.as_ns() as f64 / t_ndp.as_ns() as f64),
        ]);
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy: run with --release")]
    fn embedding_models_speed_up_and_mlp_models_do_not() {
        let s = run(Scale::quick());
        let speedup = |name: &str| -> f64 {
            s.rows.iter().find(|r| r[0] == name).expect("model present")[3]
                .parse()
                .unwrap()
        };
        for m in ["DLRM-RMC1", "DLRM-RMC2", "DLRM-RMC3"] {
            let sp = speedup(m);
            assert!(
                (2.0..10.0).contains(&sp),
                "{m}: naive NDP speedup should be substantial (paper: up to 7x): {sp:.2}"
            );
        }
        for m in ["WND", "MTWND", "DIN", "NCF"] {
            let sp = speedup(m);
            assert!(
                (0.8..1.6).contains(&sp),
                "{m}: MLP-dominated models see little benefit: {sp:.2}"
            );
        }
    }
}
