//! Shared experiment plumbing.

use recssd::{LookupBatch, RecSsdConfig, System, TableId};
use recssd_embedding::{EmbeddingTable, PageLayout, Quantization, TableImage, TableSpec};
use recssd_sim::rng::Xoshiro256;

/// A full-scale (Cosmos+) system, with an optional SSD-side embedding
/// cache of `embed_cache_slots`.
pub fn cosmos_system(embed_cache_slots: usize) -> System {
    let mut cfg = RecSsdConfig::cosmos();
    cfg.ndp = cfg.ndp.with_embed_cache(embed_cache_slots);
    System::new(cfg)
}

/// Registers one procedural table.
pub fn add_table(
    sys: &mut System,
    rows: u64,
    dim: usize,
    quant: Quantization,
    layout: PageLayout,
    seed: u64,
) -> TableId {
    let page = sys.config().ssd.block_bytes();
    sys.add_table(TableImage::new(
        EmbeddingTable::procedural(TableSpec::new(rows, dim, quant), seed),
        layout,
        page,
    ))
}

/// A uniform-random batch of `outputs × lookups` ids.
pub fn uniform_batch(
    rng: &mut Xoshiro256,
    rows: u64,
    outputs: usize,
    lookups: usize,
) -> LookupBatch {
    LookupBatch::new(
        (0..outputs)
            .map(|_| (0..lookups).map(|_| rng.gen_range(0..rows)).collect())
            .collect(),
    )
}

/// Formats a microsecond value with 1 decimal.
pub fn us(d: recssd_sim::SimDuration) -> String {
    format!("{:.1}", d.as_us_f64())
}

/// Formats a millisecond value with 3 decimals.
pub fn ms(d: recssd_sim::SimDuration) -> String {
    format!("{:.3}", d.as_ms_f64())
}

/// Formats a ratio with 2 decimals.
pub fn x(ratio: f64) -> String {
    format!("{ratio:.2}")
}

/// Formats a rate as a percentage.
pub fn pct(rate: f64) -> String {
    format!("{:.0}%", rate * 100.0)
}
