//! Figure 3: reuse distribution of embedding-table accesses by page
//! granularity.
//!
//! Paper: "Figure 3 depicts the reuse distribution of embedding tables in
//! the granularity of 256B, 1KB, and 4KB ... Access patterns to embedding
//! tables follow the power-law distribution ... a few hundred pages
//! capture 30% of reuses while caching a few thousand pages can extend
//! reuse over 50%." The original uses proprietary production traces
//! (explicitly non-reproducible per the artifact appendix); this harness
//! substitutes a Zipf trace with production-like skew.

use recssd_trace::analysis::{hot_page_coverage, reuse_cdf};
use recssd_trace::ZipfTrace;

use crate::{Scale, Series};

/// Row-granularity of the synthetic table (bytes per embedding row).
const ROW_BYTES: usize = 128;

/// Runs the experiment.
pub fn run(scale: Scale) -> Series {
    let mut series = Series::new(
        "Figure 3: reuse CDF by page granularity (synthetic power-law trace)",
        &["granularity", "hot_pages", "reuse_coverage"],
    );
    let rows = 10_000_000u64;
    let ids = ZipfTrace::new(rows, 1.25, 303).take_ids(scale.trace_len);
    for granularity in [256usize, 1024, 4096] {
        let cdf = reuse_cdf(&ids, granularity, ROW_BYTES);
        for hot_pages in [100usize, 500, 1_000, 5_000, 10_000] {
            let cov = hot_page_coverage(&cdf, hot_pages);
            series.push(vec![
                format!("{granularity}B"),
                hot_pages.to_string(),
                format!("{:.1}%", cov * 100.0),
            ]);
        }
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_claims_hold() {
        let s = run(Scale::quick());
        assert_eq!(s.rows.len(), 15);
        // §3.1's claims at 4KB granularity: hundreds of pages → ≥30% of
        // reuses; thousands → >50%.
        let cov = |gran: &str, pages: &str| -> f64 {
            let row = s
                .rows
                .iter()
                .find(|r| r[0] == gran && r[1] == pages)
                .expect("row exists");
            row[2].trim_end_matches('%').parse::<f64>().unwrap() / 100.0
        };
        assert!(cov("4096B", "500") >= 0.30, "hundreds of pages ≥ 30%");
        assert!(cov("4096B", "5000") >= 0.50, "thousands of pages > 50%");
        // Power-law shape: the CDF is steep — going from the hottest 100
        // pages to the hottest 10000 multiplies coverage by far less than
        // the 100x page count.
        assert!(cov("1024B", "10000") < cov("1024B", "100") * 20.0);
        assert!(cov("256B", "10000") > cov("256B", "100"));
    }
}
