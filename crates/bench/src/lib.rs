//! Benchmark harness regenerating every table and figure of the RecSSD
//! paper's evaluation.
//!
//! Each experiment lives in [`experiments`] and returns a [`Series`] — the
//! same rows/series the paper's figure reports. Run them all with:
//!
//! ```text
//! cargo run -p recssd-bench --release --bin figures -- all
//! ```
//!
//! or individually (`figures -- fig8`), or as bench targets
//! (`cargo bench -p recssd-bench`). By default experiments run at a
//! reduced *quick* scale; set `RECSSD_PAPER_SCALE=1` for the paper-scale
//! parameters (1 M-row tables, more repetitions). §6.4 of the paper notes
//! "absolute table size does not impact our results ... embedding lookup
//! performance is dependant on access patterns, not absolute table size",
//! which is what makes the quick scale representative.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod experiments;
mod series;

pub use series::Series;

/// Experiment sizing knobs.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Rows per embedding table for model experiments.
    pub model_rows: u64,
    /// Warm-up inferences before measuring.
    pub warmup: usize,
    /// Measured inferences averaged per data point.
    pub reps: usize,
    /// Length of characterisation traces (Figs. 3–4).
    pub trace_len: usize,
}

impl Scale {
    /// Reduced scale for CI and quick runs.
    pub fn quick() -> Self {
        Scale {
            model_rows: 200_000,
            warmup: 1,
            reps: 2,
            trace_len: 150_000,
        }
    }

    /// The paper's parameters (§5: 1 M-row tables, steady-state averages).
    pub fn paper() -> Self {
        Scale {
            model_rows: 1_000_000,
            warmup: 2,
            reps: 5,
            trace_len: 500_000,
        }
    }

    /// `paper()` if `RECSSD_PAPER_SCALE=1` is set, else `quick()`.
    pub fn from_env() -> Self {
        if std::env::var("RECSSD_PAPER_SCALE").as_deref() == Ok("1") {
            Scale::paper()
        } else {
            Scale::quick()
        }
    }
}
