//! Tabular experiment output.

/// One experiment's output: a titled table of rows, printable as an
/// aligned text table or CSV.
#[derive(Debug, Clone)]
pub struct Series {
    /// Title (e.g. `"Figure 8: SLS latency breakdown"`).
    pub title: String,
    /// Column names.
    pub header: Vec<String>,
    /// Row values, one `Vec<String>` per row.
    pub rows: Vec<Vec<String>>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Series {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the width differs from the header.
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Renders as an aligned text table.
    pub fn to_table(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Prints the aligned table to stdout.
    pub fn print(&self) {
        println!("{}", self.to_table());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rendering_aligns() {
        let mut s = Series::new("T", &["a", "long_col"]);
        s.push(vec!["1".into(), "2".into()]);
        s.push(vec!["100".into(), "2000".into()]);
        let t = s.to_table();
        assert!(t.contains("== T =="));
        assert!(t.contains("long_col"));
        let csv = s.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("a,long_col"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_width_panics() {
        Series::new("T", &["a"]).push(vec!["1".into(), "2".into()]);
    }
}
