//! `cargo bench` entry point: regenerates every paper table and figure at
//! the configured scale and prints the series (see also the `figures`
//! binary for selective runs).

use recssd_bench::experiments as ex;
use recssd_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    ex::table1_params::run().print();
    ex::fig03_reuse_cdf::run(scale).print();
    ex::fig04_page_cache::run(scale).print();
    ex::fig05_sls_dram_vs_ssd::run(scale).print();
    ex::fig06_e2e_dram_vs_ssd::run(scale).print();
    ex::fig08_sls_breakdown::run(scale).print();
    ex::fig09_naive_ndp::run(scale).print();
    ex::fig10_caching::run(scale, ex::fig10_caching::Variant::SsdCache).print();
    ex::fig10_caching::run(scale, ex::fig10_caching::Variant::Partitioned).print();
    ex::fig11_sensitivity::run_feature_quant(scale).print();
    ex::fig11_sensitivity::run_indices_tables(scale).print();
    ex::ablations::run_arm_speed(scale).print();
    ex::ablations::run_ssd_cache_capacity(scale).print();
    ex::ablations::run_io_concurrency(scale).print();
    ex::ablations::run_pipelining(scale).print();
}
