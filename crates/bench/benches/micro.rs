//! Criterion microbenchmarks of the building blocks on the hot paths:
//! cache operations, deterministic RNG, trace sampling, quantization and
//! a full small NDP SLS round trip through the simulator.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use recssd::{OpKind, RecSsdConfig, SlsOptions, System};
use recssd_cache::{DirectMappedCache, LruCache};
use recssd_embedding::{
    EmbeddingTable, LookupBatch, PageLayout, Quantization, TableImage, TableSpec,
};
use recssd_sim::rng::Xoshiro256;
use recssd_trace::{LocalityK, LocalityTrace, ZipfTrace};

fn bench_caches(c: &mut Criterion) {
    c.bench_function("lru_cache_get_insert", |b| {
        let mut cache = LruCache::new(2048);
        let mut rng = Xoshiro256::seed_from(1);
        b.iter(|| {
            let key = rng.gen_range(0..4096);
            if cache.get(&key).is_none() {
                cache.insert(key, key);
            }
            black_box(cache.len())
        })
    });
    c.bench_function("direct_mapped_get_insert", |b| {
        let mut cache: DirectMappedCache<u64> = DirectMappedCache::new(2048);
        let mut rng = Xoshiro256::seed_from(2);
        b.iter(|| {
            let key = rng.gen_range(0..4096);
            if cache.get(key).is_none() {
                cache.insert(key, key);
            }
            black_box(cache.len())
        })
    });
}

fn bench_traces(c: &mut Criterion) {
    c.bench_function("locality_trace_next_id", |b| {
        let mut t = LocalityTrace::with_k(1_000_000, LocalityK::K1, 3);
        b.iter(|| black_box(t.next_id()))
    });
    c.bench_function("zipf_trace_next_id", |b| {
        let mut z = ZipfTrace::new(100_000_000, 1.2, 4);
        b.iter(|| black_box(z.next_id()))
    });
}

fn bench_quant(c: &mut Criterion) {
    let vals: Vec<f32> = (0..64).map(|i| (i as f32 - 32.0) / 64.0).collect();
    for q in [Quantization::F32, Quantization::F16, Quantization::Int8] {
        let mut buf = vec![0u8; q.row_bytes(64)];
        c.bench_function(&format!("quant_encode_decode_{q:?}"), |b| {
            b.iter(|| {
                q.encode(&vals, &mut buf);
                black_box(q.decode(&buf, 64))
            })
        });
    }
}

/// The optimisation this PR exists for, made visible in-repo: the
/// allocating `decode` against the allocation-free `decode_into` and the
/// fused `decode_accumulate`.
fn bench_decode_variants(c: &mut Criterion) {
    let vals: Vec<f32> = (0..64).map(|i| (i as f32 - 32.0) / 64.0).collect();
    for q in [Quantization::F32, Quantization::F16, Quantization::Int8] {
        let mut buf = vec![0u8; q.row_bytes(64)];
        q.encode(&vals, &mut buf);
        c.bench_function(&format!("decode_alloc_{q:?}"), |b| {
            b.iter(|| black_box(q.decode(&buf, 64)))
        });
        let mut out = vec![0.0f32; 64];
        c.bench_function(&format!("decode_into_{q:?}"), |b| {
            b.iter(|| {
                q.decode_into(&buf, &mut out);
                black_box(out[0])
            })
        });
        let mut acc = vec![0.0f32; 64];
        c.bench_function(&format!("decode_accumulate_{q:?}"), |b| {
            b.iter(|| {
                q.decode_accumulate(&buf, &mut acc);
                black_box(acc[0])
            })
        });
    }
}

/// A page-translation loop exactly as the NDP engine runs it: one dense
/// 16 KB page, every resident vector accumulated into a result slot.
fn bench_page_translation(c: &mut Criterion) {
    for q in [Quantization::F32, Quantization::F16, Quantization::Int8] {
        let dim = 32usize;
        let page_bytes = 16 * 1024;
        let img = TableImage::new(
            EmbeddingTable::procedural(TableSpec::new(100_000, dim, q), 7),
            PageLayout::Dense,
            page_bytes,
        );
        let mut page = vec![0u8; page_bytes];
        img.fill_relative_page(3, &mut page);
        let rows = img.rows_per_page() as usize;
        let row_bytes = img.table().spec().row_bytes();
        let mut acc = vec![0.0f32; dim];
        c.bench_function(&format!("page_translate_{rows}x_{q:?}"), |b| {
            b.iter(|| {
                for r in 0..rows {
                    img.accumulate_row_at(&page, r * row_bytes, &mut acc);
                }
                black_box(acc[0])
            })
        });
    }
}

fn bench_ndp_round_trip(c: &mut Criterion) {
    c.bench_function("ndp_sls_small_end_to_end", |b| {
        b.iter(|| {
            let mut sys = System::new(RecSsdConfig::small());
            let spec = TableSpec::new(500, 32, Quantization::F32);
            let table = sys.add_table(TableImage::new(
                EmbeddingTable::procedural(spec, 1),
                PageLayout::Spread,
                16 * 1024,
            ));
            let batch = LookupBatch::new(vec![vec![1, 99, 250], vec![400, 7]]);
            let op = sys.submit(OpKind::ndp_sls(table, batch, SlsOptions::default()));
            sys.run_until_idle();
            black_box(sys.result(op).outputs.clone())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_caches, bench_traces, bench_quant, bench_decode_variants,
        bench_page_translation, bench_ndp_round_trip
}
criterion_main!(benches);
