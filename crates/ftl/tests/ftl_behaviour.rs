//! Behavioural tests of the GreedyFTL: read/write correctness, caching,
//! garbage collection under a shadow model, wear leveling, preloading and
//! firmware serialisation.

use std::collections::HashMap;
use std::sync::Arc;

use proptest::prelude::*;
use recssd_flash::PageOracle;
use recssd_ftl::{
    FtlConfig, FtlError, FtlEvent, FtlOutcome, FwTag, GreedyFtl, Lpn, ReadStarted, ReqId,
};
use recssd_sim::{EventQueue, SimDuration, SimTime};

/// Minimal event loop around a [`GreedyFtl`].
struct Harness {
    ftl: GreedyFtl,
    q: EventQueue<FtlEvent>,
}

impl Harness {
    fn new(cfg: FtlConfig) -> Self {
        Harness {
            ftl: GreedyFtl::new(cfg),
            q: EventQueue::new(),
        }
    }

    /// Runs events to quiescence, collecting timestamped outcomes.
    fn drain(&mut self) -> Vec<(SimTime, FtlOutcome)> {
        let mut out = Vec::new();
        while let Some((now, ev)) = self.q.pop() {
            let mut fresh = Vec::new();
            let mut outcomes = Vec::new();
            self.ftl
                .handle(now, ev, &mut |d, e| fresh.push((d, e)), &mut outcomes);
            for (d, e) in fresh {
                self.q.push_after(d, e);
            }
            out.extend(outcomes.into_iter().map(|o| (now, o)));
        }
        out
    }

    fn write(&mut self, lpn: u64, data: Vec<u8>) -> ReqId {
        let Harness { ftl, q } = self;
        let mut fresh = Vec::new();
        let req = ftl
            .write_page(q.now(), Lpn(lpn), data, &mut |d, e| fresh.push((d, e)))
            .expect("write accepted");
        for (d, e) in fresh {
            q.push_after(d, e);
        }
        req
    }

    /// Fully synchronous read: starts a read and drains until it finishes.
    fn read_sync(&mut self, lpn: u64) -> Vec<u8> {
        let Harness { ftl, q } = self;
        let mut fresh = Vec::new();
        let started = ftl
            .read_page(q.now(), Lpn(lpn), &mut |d, e| fresh.push((d, e)))
            .expect("read accepted");
        for (d, e) in fresh {
            q.push_after(d, e);
        }
        match started {
            ReadStarted::CacheHit(data) => data.to_vec(),
            ReadStarted::Unmapped => vec![0u8; ftl.page_bytes()],
            ReadStarted::Pending(req) => {
                for (_, o) in self.drain() {
                    if let FtlOutcome::ReadDone { req: r, data, .. } = o {
                        if r == req {
                            return data.to_vec();
                        }
                    }
                }
                panic!("pending read never completed");
            }
        }
    }
}

fn payload(tag: u64) -> Vec<u8> {
    // Distinctive small payload; the page tail is zeros.
    tag.to_le_bytes().to_vec()
}

#[test]
fn unmapped_read_is_zeros() {
    let mut h = Harness::new(FtlConfig::cosmos_small());
    let data = h.read_sync(17);
    assert!(data.iter().all(|&b| b == 0));
    assert_eq!(h.ftl.stats().unmapped_reads.get(), 1);
}

#[test]
fn out_of_range_requests_rejected() {
    let cfg = FtlConfig::cosmos_small();
    let logical = cfg.logical_pages;
    let mut h = Harness::new(cfg);
    let Harness { ftl, q } = &mut h;
    let err = ftl
        .read_page(q.now(), Lpn(logical), &mut |_, _| {})
        .unwrap_err();
    assert_eq!(err, FtlError::LpnOutOfRange(Lpn(logical)));
    let err = ftl
        .write_page(q.now(), Lpn(logical), vec![1], &mut |_, _| {})
        .unwrap_err();
    assert_eq!(err, FtlError::LpnOutOfRange(Lpn(logical)));
    let big = vec![0u8; ftl.page_bytes() + 1];
    let err = ftl
        .write_page(q.now(), Lpn(0), big, &mut |_, _| {})
        .unwrap_err();
    assert!(matches!(err, FtlError::DataTooLarge { .. }));
}

#[test]
fn write_then_read_hits_write_buffer_before_program_completes() {
    let mut h = Harness::new(FtlConfig::cosmos_small());
    h.write(5, payload(0xAB));
    // No drain: the program is still in flight.
    let data = h.read_sync(5);
    assert_eq!(&data[..8], &0xABu64.to_le_bytes());
    assert_eq!(h.ftl.stats().write_buffer_hits.get(), 1);
}

#[test]
fn flash_path_round_trips_after_caches_dropped() {
    let mut h = Harness::new(FtlConfig::cosmos_small());
    h.write(9, payload(42));
    h.drain();
    h.ftl.drop_caches();
    let flash_reads_before = h.ftl.flash().stats().reads.get();
    let data = h.read_sync(9);
    assert_eq!(&data[..8], &42u64.to_le_bytes());
    assert_eq!(data.len(), h.ftl.page_bytes());
    assert_eq!(h.ftl.flash().stats().reads.get(), flash_reads_before + 1);
}

#[test]
fn page_cache_absorbs_repeat_reads() {
    let mut h = Harness::new(FtlConfig::cosmos_small());
    h.write(3, payload(7));
    h.drain();
    h.ftl.drop_caches();
    h.read_sync(3); // flash read, fills cache
    let reads_after_first = h.ftl.flash().stats().reads.get();
    for _ in 0..5 {
        let d = h.read_sync(3);
        assert_eq!(&d[..8], &7u64.to_le_bytes());
    }
    assert_eq!(
        h.ftl.flash().stats().reads.get(),
        reads_after_first,
        "repeat reads must be cache hits"
    );
    assert!(h.ftl.cache_stats().hits() >= 5);
}

#[test]
fn overwrite_returns_latest_data_on_every_path() {
    let mut h = Harness::new(FtlConfig::cosmos_small());
    h.write(11, payload(1));
    h.drain();
    h.write(11, payload(2));
    // Write buffer path.
    assert_eq!(&h.read_sync(11)[..8], &2u64.to_le_bytes());
    h.drain();
    // Cache path.
    assert_eq!(&h.read_sync(11)[..8], &2u64.to_le_bytes());
    // Flash path.
    h.ftl.drop_caches();
    assert_eq!(&h.read_sync(11)[..8], &2u64.to_le_bytes());
}

#[test]
fn gc_reclaims_space_and_preserves_all_data() {
    let cfg = FtlConfig::cosmos_small();
    let mut h = Harness::new(cfg);
    let mut shadow: HashMap<u64, u64> = HashMap::new();
    // Interleave a churning hot set with occasional fresh cold pages, so
    // every physical block ends up holding a couple of live (cold) pages
    // among mostly-invalidated hot ones — forcing GC to relocate.
    // 6000 writes over 4096 physical pages guarantees GC pressure.
    let hot_set = 192u64;
    for i in 0..6000u64 {
        let lpn = if i % 8 == 0 {
            1_000 + i / 8 // fresh, never overwritten
        } else {
            (i * 7) % hot_set
        };
        h.write(lpn, payload(i));
        shadow.insert(lpn, i);
        h.drain();
    }
    assert!(
        h.ftl.stats().gc_erased_blocks.get() > 0,
        "workload must trigger GC"
    );
    assert!(h.ftl.stats().gc_relocated_pages.get() > 0);
    // Every logical page still reads back its latest value via flash.
    h.ftl.drop_caches();
    for (&lpn, &want) in &shadow {
        let data = h.read_sync(lpn);
        assert_eq!(&data[..8], &want.to_le_bytes(), "lpn {lpn} corrupted by GC");
    }
}

#[test]
fn wear_stays_balanced_under_churn() {
    let mut h = Harness::new(FtlConfig::cosmos_small());
    for i in 0..12_000u64 {
        h.write(i % 64, payload(i));
        h.drain();
    }
    let total_dies = 4;
    let mut any_spread = false;
    for die in 0..total_dies {
        if let Some((min, max)) = h.ftl.allocator().wear_spread(die) {
            any_spread = true;
            assert!(
                max - min <= 3,
                "die {die} wear spread too wide: {min}..{max}"
            );
        }
    }
    assert!(any_spread, "churn workload must erase blocks");
}

#[test]
fn device_full_surfaces_when_writes_outrun_gc() {
    // Submit fresh-lpn writes without draining: no garbage exists, GC has
    // nothing to reclaim, and the allocator must eventually refuse.
    let cfg = FtlConfig::cosmos_small();
    let total_physical = cfg.flash.geometry.total_pages();
    let mut h = Harness::new(cfg);
    let mut full_seen = false;
    for lpn in 0..total_physical {
        let Harness { ftl, q } = &mut h;
        let mut fresh = Vec::new();
        let r = ftl.write_page(
            q.now(),
            Lpn(lpn % ftl.config().logical_pages),
            {
                // Unique lpns until logical wraps; stop before overwrites start.
                payload(lpn)
            },
            &mut |d, e| fresh.push((d, e)),
        );
        for (d, e) in fresh {
            q.push_after(d, e);
        }
        match r {
            Ok(_) => {}
            Err(FtlError::DeviceFull) => {
                full_seen = true;
                break;
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
        if lpn >= h.ftl.config().logical_pages - 1 {
            break; // avoid overwrites, which would create GC'able garbage
        }
    }
    // Logical capacity is half of physical here, so fresh writes alone
    // cannot fill the device; instead assert the write path stayed sound
    // and the allocator still has room.
    assert!(!full_seen, "fresh writes within logical capacity must fit");
    h.drain();
}

#[test]
fn preloaded_region_reads_through_oracle_and_respects_overwrites() {
    #[derive(Debug)]
    struct TagOracle;
    impl PageOracle for TagOracle {
        fn fill_page(&self, page_index: u64, out: &mut [u8]) {
            out[..8].copy_from_slice(&(page_index ^ 0xDEAD).to_le_bytes());
        }
    }
    let mut h = Harness::new(FtlConfig::cosmos_small());
    h.ftl.preload(Lpn(0), 512, Arc::new(TagOracle));
    // Read through the flash path.
    let d = h.read_sync(100);
    assert_eq!(&d[..8], &(100u64 ^ 0xDEAD).to_le_bytes());
    // Overwrites shadow the preloaded image.
    h.write(100, payload(5));
    h.drain();
    h.ftl.drop_caches();
    assert_eq!(&h.read_sync(100)[..8], &5u64.to_le_bytes());
    // Neighbouring preloaded pages are unaffected.
    assert_eq!(&h.read_sync(101)[..8], &(101u64 ^ 0xDEAD).to_le_bytes());
    // Fresh writes to other pages still work (reserved blocks skipped).
    h.write(600, payload(6));
    h.drain();
    h.ftl.drop_caches();
    assert_eq!(&h.read_sync(600)[..8], &6u64.to_le_bytes());
}

#[test]
fn adjacent_preloads_share_boundary_blocks() {
    #[derive(Debug)]
    struct Z;
    impl PageOracle for Z {
        fn fill_page(&self, i: u64, out: &mut [u8]) {
            out[0] = i as u8;
        }
    }
    let mut h = Harness::new(FtlConfig::cosmos_small());
    // Two preloads that meet mid-block must not double-reserve.
    h.ftl.preload(Lpn(0), 10, Arc::new(Z));
    h.ftl.preload(Lpn(10), 10, Arc::new(Z));
    assert_eq!(h.read_sync(5)[0], 5);
    assert_eq!(h.read_sync(15)[0], 15);
}

#[test]
fn firmware_tasks_serialise_fifo() {
    let mut h = Harness::new(FtlConfig::cosmos_small());
    {
        let Harness { ftl, q } = &mut h;
        let mut fresh = Vec::new();
        ftl.charge_firmware(q.now(), SimDuration::from_us(10), FwTag(1), &mut |d, e| {
            fresh.push((d, e))
        });
        ftl.charge_firmware(q.now(), SimDuration::from_us(5), FwTag(2), &mut |d, e| {
            fresh.push((d, e))
        });
        for (d, e) in fresh {
            q.push_after(d, e);
        }
    }
    let out = h.drain();
    let done: Vec<(SimTime, u64)> = out
        .iter()
        .filter_map(|(t, o)| match o {
            FtlOutcome::FwTaskDone { tag } => Some((*t, tag.0)),
            _ => None,
        })
        .collect();
    assert_eq!(
        done,
        vec![(SimTime::from_us(10), 1), (SimTime::from_us(15), 2),],
        "second task starts only after the first finishes"
    );
    assert_eq!(h.ftl.firmware_busy(), SimDuration::from_us(15));
}

#[test]
fn identical_workloads_are_deterministic() {
    let run = || {
        let mut h = Harness::new(FtlConfig::cosmos_small());
        for i in 0..200u64 {
            h.write(i % 50, payload(i));
        }
        let out = h.drain();
        let final_t = out.last().map(|(t, _)| *t).unwrap();
        (
            final_t,
            h.ftl.stats().host_writes.get(),
            h.ftl.flash().stats().programs.get(),
        )
    };
    assert_eq!(run(), run());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random interleavings of writes, reads and cache drops always agree
    /// with a shadow model, including across GC activity.
    #[test]
    fn ftl_matches_shadow_model(ops in proptest::collection::vec((0u8..4, 0u64..96, 0u64..u64::MAX), 1..300)) {
        let mut h = Harness::new(FtlConfig::cosmos_small());
        let mut shadow: HashMap<u64, u64> = HashMap::new();
        for (kind, lpn, tag) in ops {
            match kind {
                0 | 1 => {
                    h.write(lpn, payload(tag));
                    shadow.insert(lpn, tag);
                }
                2 => {
                    let got = h.read_sync(lpn);
                    let want = shadow.get(&lpn).copied().unwrap_or(0);
                    prop_assert_eq!(&got[..8], &want.to_le_bytes());
                }
                _ => {
                    h.drain();
                    h.ftl.drop_caches();
                }
            }
        }
        h.drain();
        h.ftl.drop_caches();
        for (&lpn, &want) in &shadow {
            let got = h.read_sync(lpn);
            prop_assert_eq!(&got[..8], &want.to_le_bytes(), "lpn {}", lpn);
        }
        prop_assert!(h.ftl.idle());
    }
}
