//! Flash translation layer (FTL) for the RecSSD reproduction.
//!
//! Models the GreedyFTL firmware of the Cosmos+ OpenSSD, which RecSSD's
//! artifact modifies. The FTL exposes a logical page space over the raw
//! NAND array and performs the four classic duties §2.2 of the paper lists:
//!
//! 1. **Indirect mapping** between logical and physical pages
//!    ([`MappingTable`]), with identity-mapped *preloaded* regions for bulk
//!    embedding-table images.
//! 2. **Log-structured writes** ([`BlockAllocator`]): pages are appended to
//!    open blocks striped round-robin across channels and dies, and
//!    overwrites invalidate the stale physical page.
//! 3. **Garbage collection**: a greedy policy picks the block with the
//!    fewest valid pages, relocates the survivors and erases the victim —
//!    fully asynchronous, competing with foreground traffic for the flash.
//! 4. **Wear leveling**: free blocks are handed out lowest-erase-count
//!    first; per-block erase counts are tracked.
//!
//! On top of those, the FTL owns the two shared firmware resources the
//! RecSSD design interacts with:
//!
//! * an LRU **page cache** in SSD DRAM ([`GreedyFtl::read_page`] serves
//!   hits synchronously), and
//! * the **firmware core** ([`GreedyFtl::charge_firmware`]), a serial task
//!   queue modelling the embedded CPU. Both baseline NVMe command
//!   processing and RecSSD's NDP "Translation" computation execute on it,
//!   which is exactly why Fig. 8 of the paper shows Translation consuming
//!   roughly half of the FTL time: the embedded core is slow.
//!
//! Like the flash layer, the FTL is event-driven: route its [`FtlEvent`]s
//! back into [`GreedyFtl::handle`] and consume the returned
//! [`FtlOutcome`]s.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod alloc;
mod config;
mod firmware;
mod ftl_impl;
mod map;

pub use alloc::BlockAllocator;
pub use config::FtlConfig;
pub use firmware::{EnginePool, EnginePoolConfig, FwCore, FwTag, MergePlacement};
pub use ftl_impl::{FtlError, FtlEvent, FtlOutcome, FtlStats, GreedyFtl, ReadStarted, ReqId};
pub use map::MappingTable;

use std::fmt;

/// A logical page number: the host-visible block address space, in units of
/// one flash page (16 KB by default).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lpn(pub u64);

impl fmt::Display for Lpn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lpn:{}", self.0)
    }
}
