//! FTL configuration.

use recssd_flash::FlashConfig;

use crate::firmware::EnginePoolConfig;

/// Configuration of the FTL layer.
///
/// # Example
///
/// ```
/// use recssd_ftl::FtlConfig;
/// let cfg = FtlConfig::cosmos();
/// assert!(cfg.logical_pages < cfg.flash.geometry.total_pages());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FtlConfig {
    /// The underlying NAND array.
    pub flash: FlashConfig,
    /// Host-visible logical capacity in pages. Must be smaller than the
    /// physical page count — the difference is over-provisioning for GC.
    pub logical_pages: u64,
    /// Capacity of the SSD-DRAM page cache, in pages.
    pub page_cache_pages: usize,
    /// GC starts for a die when its free-block count drops to this level.
    pub gc_low_water: usize,
    /// Per-channel SLS engine pool (Conduit-style multi-engine compute).
    /// `None` models the stock single-core firmware: every task runs on
    /// the serial [`crate::FwCore`].
    pub engines: Option<EnginePoolConfig>,
}

impl FtlConfig {
    /// Cosmos+ OpenSSD-like configuration: ~87 % of physical pages exposed,
    /// a 64 MB page cache (4096 × 16 KB), GC at two free blocks.
    pub fn cosmos() -> Self {
        let flash = FlashConfig::cosmos();
        let logical_pages = flash.geometry.total_pages() / 8 * 7;
        FtlConfig {
            flash,
            logical_pages,
            page_cache_pages: 4096,
            gc_low_water: 2,
            engines: None,
        }
    }

    /// Small geometry for unit tests: a handful of blocks per die so GC
    /// and wear-leveling paths are exercised quickly.
    pub fn cosmos_small() -> Self {
        let flash = FlashConfig::cosmos_small();
        let logical_pages = flash.geometry.total_pages() / 2;
        FtlConfig {
            flash,
            logical_pages,
            page_cache_pages: 32,
            gc_low_water: 2,
            engines: None,
        }
    }

    /// Enables a per-channel engine pool (one full-rate engine per flash
    /// channel unless `cfg` says otherwise).
    pub fn with_engines(mut self, cfg: EnginePoolConfig) -> Self {
        self.engines = Some(cfg);
        self
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if logical capacity is not strictly below physical capacity
    /// (no over-provisioning would deadlock GC) or if any field is zero.
    pub fn validate(&self) {
        assert!(self.logical_pages > 0, "logical capacity must be positive");
        assert!(
            self.logical_pages < self.flash.geometry.total_pages(),
            "logical capacity must leave over-provisioning headroom"
        );
        assert!(self.page_cache_pages > 0, "page cache must be non-empty");
        assert!(self.gc_low_water >= 1, "GC low-water must be at least 1");
        assert!(
            (self.gc_low_water as u32) < self.flash.geometry.blocks_per_die,
            "GC low-water must be below blocks per die"
        );
        if let Some(engines) = &self.engines {
            engines.validate();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        FtlConfig::cosmos().validate();
        FtlConfig::cosmos_small().validate();
    }

    #[test]
    #[should_panic(expected = "over-provisioning")]
    fn full_logical_capacity_rejected() {
        let mut cfg = FtlConfig::cosmos_small();
        cfg.logical_pages = cfg.flash.geometry.total_pages();
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "page cache")]
    fn zero_cache_rejected() {
        let mut cfg = FtlConfig::cosmos_small();
        cfg.page_cache_pages = 0;
        cfg.validate();
    }
}
