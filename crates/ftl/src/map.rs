//! Logical → physical mapping with validity tracking.

use std::ops::Range;

use recssd_flash::{FlashGeometry, Ppa};
use recssd_sim::FxHashMap;

use crate::Lpn;

/// The indirect mapping table plus the reverse (physical → logical) index
/// and per-block valid-page counts that greedy GC victim selection needs.
///
/// Bulk-preloaded regions (embedding-table images) are represented as
/// *identity intervals* rather than per-page entries, so a 16 GB table
/// costs a few words of mapping state. Host overwrites shadow the identity
/// interval with explicit entries.
///
/// # Example
///
/// ```
/// use recssd_flash::FlashGeometry;
/// use recssd_ftl::{Lpn, MappingTable};
///
/// let g = FlashGeometry::cosmos();
/// let mut map = MappingTable::new();
/// map.add_identity_range(0..1000);
/// assert_eq!(map.lookup(Lpn(5), &g), Some(g.ppa_of_index(5)));
/// assert_eq!(map.lookup(Lpn(1000), &g), None);
/// ```
#[derive(Debug, Default)]
pub struct MappingTable {
    // Fx-hashed: these maps key on page indices and sit on the per-read
    // lookup path, where SipHash is pure overhead.
    l2p: FxHashMap<u64, Ppa>,
    p2l: FxHashMap<u64, u64>,
    valid: FxHashMap<u64, u32>,
    identity: Vec<Range<u64>>,
}

impl MappingTable {
    /// Creates an empty table (all logical pages unmapped).
    pub fn new() -> Self {
        MappingTable::default()
    }

    /// Registers `lpns` as identity-mapped (logical page *n* lives at
    /// physical linear index *n*). Used for preloaded bulk data.
    pub fn add_identity_range(&mut self, lpns: Range<u64>) {
        self.identity.push(lpns);
    }

    /// Physical location of `lpn`, if mapped.
    pub fn lookup(&self, lpn: Lpn, g: &FlashGeometry) -> Option<Ppa> {
        if let Some(&ppa) = self.l2p.get(&lpn.0) {
            return Some(ppa);
        }
        self.identity
            .iter()
            .any(|r| r.contains(&lpn.0))
            .then(|| g.ppa_of_index(lpn.0))
    }

    /// `true` if `lpn` has any mapping (explicit or identity).
    pub fn is_mapped(&self, lpn: Lpn) -> bool {
        self.l2p.contains_key(&lpn.0) || self.identity.iter().any(|r| r.contains(&lpn.0))
    }

    /// Logical page stored at physical index `ppa_index`, for GC liveness
    /// checks. Only allocator-written pages are tracked (identity regions
    /// are never garbage-collected).
    pub fn lpn_at(&self, ppa_index: u64) -> Option<Lpn> {
        self.p2l.get(&ppa_index).map(|&l| Lpn(l))
    }

    /// Points `lpn` at `ppa`, invalidating any previous explicit mapping.
    /// Valid counts are maintained for allocator-managed blocks.
    pub fn map(&mut self, lpn: Lpn, ppa: Ppa, g: &FlashGeometry) {
        let idx = g.linear_index(ppa);
        if let Some(old) = self.l2p.insert(lpn.0, ppa) {
            let old_idx = g.linear_index(old);
            self.p2l.remove(&old_idx);
            let old_block = g.block_index(old.channel, old.die, old.block);
            if let Some(v) = self.valid.get_mut(&old_block) {
                *v = v.saturating_sub(1);
            }
        }
        self.p2l.insert(idx, lpn.0);
        let block = g.block_index(ppa.channel, ppa.die, ppa.block);
        *self.valid.entry(block).or_insert(0) += 1;
    }

    /// GC relocation commit: remaps `lpn` from `old` to `new` only if the
    /// mapping still points at `old` (a concurrent host write wins
    /// otherwise). Returns `true` if the remap happened.
    pub fn remap_if_current(&mut self, lpn: Lpn, old: Ppa, new: Ppa, g: &FlashGeometry) -> bool {
        if self.lookup(lpn, g) != Some(old) {
            return false;
        }
        self.map(lpn, new, g);
        true
    }

    /// Number of valid (live) pages in the block, for victim selection.
    pub fn valid_in_block(&self, block_index: u64) -> u32 {
        self.valid.get(&block_index).copied().unwrap_or(0)
    }

    /// Drops all physical bookkeeping for an erased block.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the block still holds valid pages — GC
    /// must relocate everything live before erasing.
    pub fn forget_block(&mut self, channel: u32, die: u32, block: u32, g: &FlashGeometry) {
        let bidx = g.block_index(channel, die, block);
        debug_assert_eq!(
            self.valid_in_block(bidx),
            0,
            "erasing block with live pages"
        );
        for page in 0..g.pages_per_block {
            let idx = g.linear_index(Ppa {
                channel,
                die,
                block,
                page,
            });
            self.p2l.remove(&idx);
        }
        self.valid.remove(&bidx);
    }

    /// Live `(lpn, ppa)` pairs currently stored in the block, in page
    /// order — the GC relocation work list.
    pub fn live_in_block(
        &self,
        channel: u32,
        die: u32,
        block: u32,
        g: &FlashGeometry,
    ) -> Vec<(Lpn, Ppa)> {
        let mut live = Vec::new();
        for page in 0..g.pages_per_block {
            let ppa = Ppa {
                channel,
                die,
                block,
                page,
            };
            let idx = g.linear_index(ppa);
            if let Some(&lpn) = self.p2l.get(&idx) {
                // An entry in p2l is live only if l2p agrees.
                if self.l2p.get(&lpn) == Some(&ppa) {
                    live.push((Lpn(lpn), ppa));
                }
            }
        }
        live
    }

    /// Number of explicitly mapped logical pages.
    pub fn mapped_pages(&self) -> usize {
        self.l2p.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_geometry() -> FlashGeometry {
        FlashGeometry {
            channels: 2,
            dies_per_channel: 2,
            blocks_per_die: 8,
            pages_per_block: 4,
            page_bytes: 256,
        }
    }

    #[test]
    fn unmapped_lookup_is_none() {
        let g = small_geometry();
        let map = MappingTable::new();
        assert_eq!(map.lookup(Lpn(0), &g), None);
        assert!(!map.is_mapped(Lpn(0)));
    }

    #[test]
    fn map_and_lookup() {
        let g = small_geometry();
        let mut map = MappingTable::new();
        let ppa = g.ppa_of_index(10);
        map.map(Lpn(3), ppa, &g);
        assert_eq!(map.lookup(Lpn(3), &g), Some(ppa));
        assert_eq!(map.lpn_at(10), Some(Lpn(3)));
        assert!(map.is_mapped(Lpn(3)));
        assert_eq!(map.mapped_pages(), 1);
    }

    #[test]
    fn overwrite_invalidates_old_page() {
        let g = small_geometry();
        let mut map = MappingTable::new();
        let a = g.ppa_of_index(0);
        let b = g.ppa_of_index(1);
        map.map(Lpn(7), a, &g);
        let block_a = g.block_index(a.channel, a.die, a.block);
        assert_eq!(map.valid_in_block(block_a), 1);
        map.map(Lpn(7), b, &g);
        assert_eq!(map.lookup(Lpn(7), &g), Some(b));
        assert_eq!(map.valid_in_block(block_a), 0);
        assert_eq!(map.lpn_at(g.linear_index(a)), None, "stale p2l cleaned");
    }

    #[test]
    fn identity_range_lookup_and_shadowing() {
        let g = small_geometry();
        let mut map = MappingTable::new();
        map.add_identity_range(0..16);
        assert_eq!(map.lookup(Lpn(9), &g), Some(g.ppa_of_index(9)));
        // Host overwrite shadows identity.
        let elsewhere = g.ppa_of_index(40);
        map.map(Lpn(9), elsewhere, &g);
        assert_eq!(map.lookup(Lpn(9), &g), Some(elsewhere));
        // Other identity pages unaffected.
        assert_eq!(map.lookup(Lpn(10), &g), Some(g.ppa_of_index(10)));
    }

    #[test]
    fn remap_if_current_detects_concurrent_overwrite() {
        let g = small_geometry();
        let mut map = MappingTable::new();
        let old = g.ppa_of_index(0);
        let gc_new = g.ppa_of_index(20);
        let host_new = g.ppa_of_index(30);
        map.map(Lpn(1), old, &g);
        // Host writes during GC relocation.
        map.map(Lpn(1), host_new, &g);
        assert!(!map.remap_if_current(Lpn(1), old, gc_new, &g));
        assert_eq!(map.lookup(Lpn(1), &g), Some(host_new));
        // Without interference, the remap commits.
        map.map(Lpn(2), old, &g);
        assert!(map.remap_if_current(Lpn(2), old, gc_new, &g));
        assert_eq!(map.lookup(Lpn(2), &g), Some(gc_new));
    }

    #[test]
    fn live_in_block_lists_only_current_pages() {
        let g = small_geometry();
        let mut map = MappingTable::new();
        // Three pages in (0,0,0): lpn 1 at page 0, lpn 2 at page 1; lpn 1
        // is then overwritten elsewhere, leaving only lpn 2 live here.
        let p0 = Ppa {
            channel: 0,
            die: 0,
            block: 0,
            page: 0,
        };
        let p1 = Ppa {
            channel: 0,
            die: 0,
            block: 0,
            page: 1,
        };
        let away = Ppa {
            channel: 1,
            die: 0,
            block: 0,
            page: 0,
        };
        map.map(Lpn(1), p0, &g);
        map.map(Lpn(2), p1, &g);
        map.map(Lpn(1), away, &g);
        let live = map.live_in_block(0, 0, 0, &g);
        assert_eq!(live, vec![(Lpn(2), p1)]);
    }

    #[test]
    fn forget_block_clears_reverse_entries() {
        let g = small_geometry();
        let mut map = MappingTable::new();
        let p0 = Ppa {
            channel: 0,
            die: 0,
            block: 2,
            page: 0,
        };
        map.map(Lpn(5), p0, &g);
        map.map(Lpn(5), g.ppa_of_index(60), &g); // invalidate old copy
        map.forget_block(0, 0, 2, &g);
        assert_eq!(map.valid_in_block(g.block_index(0, 0, 2)), 0);
        assert_eq!(map.lpn_at(g.linear_index(p0)), None);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "live pages")]
    fn forget_block_with_live_pages_panics_in_debug() {
        let g = small_geometry();
        let mut map = MappingTable::new();
        map.map(
            Lpn(1),
            Ppa {
                channel: 0,
                die: 0,
                block: 0,
                page: 0,
            },
            &g,
        );
        map.forget_block(0, 0, 0, &g);
    }
}
