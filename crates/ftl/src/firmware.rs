//! The embedded firmware core: a serial queue of timed tasks.
//!
//! The Cosmos+ FTL runs on a 1 GHz dual-core ARM A9; in this model one core
//! executes FTL work serially (command processing, NDP config processing
//! and the per-page "Translation" reduction), while the second core is
//! assumed to service the NVMe frontend interrupt path (its cost is folded
//! into the per-command charge). Serialising tasks on this resource is
//! what produces the paper's two headline firmware effects: the ~10 K IOPS
//! host-visible random-read ceiling of the baseline (§3.2) and the
//! Translation-bound NDP profile of Fig. 8.

use std::collections::VecDeque;

use recssd_sim::SimDuration;

/// Caller-defined tag identifying a firmware task; returned when the task
/// completes so the caller can resume the appropriate state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FwTag(pub u64);

/// A serial task executor with FIFO queueing.
///
/// The owner schedules a completion event `duration` after each task
/// starts; [`FwCore::start`] returns the delay to schedule when the core
/// was idle, and [`FwCore::finish`] pops the next queued task.
#[derive(Debug, Default)]
pub struct FwCore {
    current: Option<FwTag>,
    queue: VecDeque<(SimDuration, FwTag)>,
    busy_total: SimDuration,
}

impl FwCore {
    /// Creates an idle core.
    pub fn new() -> Self {
        FwCore::default()
    }

    /// `true` if no task is running.
    pub fn idle(&self) -> bool {
        self.current.is_none()
    }

    /// Number of queued (not yet started) tasks.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Tag of the currently running task, if any (the task popped by the
    /// latest [`FwCore::finish`], until it finishes in turn).
    pub fn current(&self) -> Option<FwTag> {
        self.current
    }

    /// Total busy time accumulated across all started tasks.
    pub fn busy_total(&self) -> SimDuration {
        self.busy_total
    }

    /// Submits a task. If the core is idle the task starts immediately and
    /// the returned delay must be scheduled as the core's completion event;
    /// if busy, the task queues and `None` is returned.
    pub fn start(&mut self, duration: SimDuration, tag: FwTag) -> Option<SimDuration> {
        self.busy_total += duration;
        if self.current.is_none() {
            self.current = Some(tag);
            Some(duration)
        } else {
            self.queue.push_back((duration, tag));
            None
        }
    }

    /// Completes the running task, returning its tag and — if another task
    /// was queued — the delay to schedule for that next task.
    ///
    /// # Panics
    ///
    /// Panics if the core is idle (a completion event arrived without a
    /// running task, indicating event routing corruption).
    pub fn finish(&mut self) -> (FwTag, Option<SimDuration>) {
        let done = self.current.take().expect("firmware completion while idle");
        let next = self.queue.pop_front().map(|(d, tag)| {
            self.current = Some(tag);
            d
        });
        (done, next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_core_starts_immediately() {
        let mut fw = FwCore::new();
        assert!(fw.idle());
        let d = fw.start(SimDuration::from_us(5), FwTag(1));
        assert_eq!(d, Some(SimDuration::from_us(5)));
        assert!(!fw.idle());
    }

    #[test]
    fn busy_core_queues_fifo() {
        let mut fw = FwCore::new();
        fw.start(SimDuration::from_us(1), FwTag(1));
        assert_eq!(fw.start(SimDuration::from_us(2), FwTag(2)), None);
        assert_eq!(fw.start(SimDuration::from_us(3), FwTag(3)), None);
        assert_eq!(fw.queued(), 2);
        let (t1, next) = fw.finish();
        assert_eq!(t1, FwTag(1));
        assert_eq!(next, Some(SimDuration::from_us(2)));
        let (t2, next) = fw.finish();
        assert_eq!(t2, FwTag(2));
        assert_eq!(next, Some(SimDuration::from_us(3)));
        let (t3, next) = fw.finish();
        assert_eq!(t3, FwTag(3));
        assert_eq!(next, None);
        assert!(fw.idle());
    }

    #[test]
    fn busy_total_accumulates() {
        let mut fw = FwCore::new();
        fw.start(SimDuration::from_us(1), FwTag(1));
        fw.start(SimDuration::from_us(2), FwTag(2));
        assert_eq!(fw.busy_total(), SimDuration::from_us(3));
    }

    #[test]
    #[should_panic(expected = "completion while idle")]
    fn finish_on_idle_panics() {
        FwCore::new().finish();
    }
}
