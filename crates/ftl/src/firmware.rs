//! The embedded firmware core: a serial queue of timed tasks.
//!
//! The Cosmos+ FTL runs on a 1 GHz dual-core ARM A9; in this model one core
//! executes FTL work serially (command processing, NDP config processing
//! and the per-page "Translation" reduction), while the second core is
//! assumed to service the NVMe frontend interrupt path (its cost is folded
//! into the per-command charge). Serialising tasks on this resource is
//! what produces the paper's two headline firmware effects: the ~10 K IOPS
//! host-visible random-read ceiling of the baseline (§3.2) and the
//! Translation-bound NDP profile of Fig. 8.

use std::collections::VecDeque;

use recssd_sim::SimDuration;

/// Caller-defined tag identifying a firmware task; returned when the task
/// completes so the caller can resume the appropriate state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FwTag(pub u64);

/// A serial task executor with FIFO queueing.
///
/// The owner schedules a completion event `duration` after each task
/// starts; [`FwCore::start`] returns the delay to schedule when the core
/// was idle, and [`FwCore::finish`] pops the next queued task.
#[derive(Debug, Default)]
pub struct FwCore {
    current: Option<FwTag>,
    queue: VecDeque<(SimDuration, FwTag)>,
    busy_total: SimDuration,
}

impl FwCore {
    /// Creates an idle core.
    pub fn new() -> Self {
        FwCore::default()
    }

    /// `true` if no task is running.
    pub fn idle(&self) -> bool {
        self.current.is_none()
    }

    /// Number of queued (not yet started) tasks.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Tag of the currently running task, if any (the task popped by the
    /// latest [`FwCore::finish`], until it finishes in turn).
    pub fn current(&self) -> Option<FwTag> {
        self.current
    }

    /// Total busy time accumulated across all started tasks.
    pub fn busy_total(&self) -> SimDuration {
        self.busy_total
    }

    /// Submits a task. If the core is idle the task starts immediately and
    /// the returned delay must be scheduled as the core's completion event;
    /// if busy, the task queues and `None` is returned.
    pub fn start(&mut self, duration: SimDuration, tag: FwTag) -> Option<SimDuration> {
        self.busy_total += duration;
        if self.current.is_none() {
            self.current = Some(tag);
            Some(duration)
        } else {
            self.queue.push_back((duration, tag));
            None
        }
    }

    /// Completes the running task, returning its tag and — if another task
    /// was queued — the delay to schedule for that next task.
    ///
    /// # Panics
    ///
    /// Panics if the core is idle (a completion event arrived without a
    /// running task, indicating event routing corruption).
    pub fn finish(&mut self) -> (FwTag, Option<SimDuration>) {
        let done = self.current.take().expect("firmware completion while idle");
        let next = self.queue.pop_front().map(|(d, tag)| {
            self.current = Some(tag);
            d
        });
        (done, next)
    }
}

/// Which resource executes the final merge of per-engine partial results
/// (the fold of engine-local accumulators into the request's scratchpad).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergePlacement {
    /// Merge on the serial firmware core (keeps engines free for
    /// translation but re-serialises the tail on the shared core).
    FwCore,
    /// Merge on the engine with this index (modulo the pool size).
    Engine(u32),
}

/// Configuration of the per-channel SLS engine pool (Conduit-style
/// multi-engine in-SSD compute). Absent (`None` in
/// [`crate::FtlConfig::engines`]) the device has only the serial
/// firmware core, exactly the single-core Cosmos+ model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnginePoolConfig {
    /// Number of engines. Translation work for a page is routed to
    /// engine `channel % engines`, so setting this to the channel count
    /// gives one engine per flash channel.
    pub engines: usize,
    /// Engine service rate as a percentage of the firmware core's
    /// (100 = parity). Charged durations scale by `100 / rate_pct`
    /// with exact integer arithmetic, so timing stays deterministic.
    pub rate_pct: u32,
    /// Where the final partial-result merge executes.
    pub merge: MergePlacement,
}

impl EnginePoolConfig {
    /// One full-rate engine per flash channel, merging on the firmware
    /// core — the Conduit-style default.
    pub fn per_channel(channels: u32) -> Self {
        EnginePoolConfig {
            engines: channels as usize,
            rate_pct: 100,
            merge: MergePlacement::FwCore,
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on a zero-engine pool or a zero service rate.
    pub fn validate(&self) {
        assert!(
            self.engines >= 1,
            "engine pool must have at least one engine"
        );
        assert!(self.rate_pct >= 1, "engine rate must be positive");
    }

    /// Scales a firmware-core-calibrated duration to this pool's
    /// service rate (exact integer arithmetic).
    pub fn scale(&self, d: SimDuration) -> SimDuration {
        if self.rate_pct == 100 {
            d
        } else {
            d * 100 / self.rate_pct as u64
        }
    }
}

/// A pool of per-channel compute engines: independent serial task
/// executors (one [`FwCore`] each) with their own FIFO queues, modelling
/// Conduit-style per-channel SLS units alongside the firmware core.
#[derive(Debug)]
pub struct EnginePool {
    units: Vec<FwCore>,
    cfg: EnginePoolConfig,
}

impl EnginePool {
    /// Creates an idle pool.
    ///
    /// # Panics
    ///
    /// Panics if the configuration names zero engines (see
    /// [`EnginePoolConfig::validate`]).
    pub fn new(cfg: EnginePoolConfig) -> Self {
        cfg.validate();
        EnginePool {
            units: (0..cfg.engines).map(|_| FwCore::new()).collect(),
            cfg,
        }
    }

    /// The pool's configuration.
    pub fn config(&self) -> &EnginePoolConfig {
        &self.cfg
    }

    /// Number of engines (always ≥ 1).
    pub fn len(&self) -> usize {
        self.units.len()
    }

    /// Always `false`: construction rejects empty pools.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// `true` when every engine is idle.
    pub fn idle(&self) -> bool {
        self.units.iter().all(|u| u.idle())
    }

    /// Tag of the task running on `engine`, if any.
    pub fn current(&self, engine: usize) -> Option<FwTag> {
        self.units[engine].current()
    }

    /// Queued (not yet started) tasks on `engine`.
    pub fn queued(&self, engine: usize) -> usize {
        self.units[engine].queued()
    }

    /// Total busy time of `engine`.
    pub fn busy(&self, engine: usize) -> SimDuration {
        self.units[engine].busy_total()
    }

    /// Total busy time summed across the pool.
    pub fn busy_total(&self) -> SimDuration {
        self.units
            .iter()
            .fold(SimDuration::ZERO, |acc, u| acc + u.busy_total())
    }

    /// Submits a task to `engine` (modulo the pool size), scaling
    /// `duration` by the pool's service rate. Same contract as
    /// [`FwCore::start`]: `Some(delay)` means the engine was idle and the
    /// caller must schedule its completion; `None` means the task queued
    /// FIFO behind the engine's current work.
    pub fn start(
        &mut self,
        engine: usize,
        duration: SimDuration,
        tag: FwTag,
    ) -> Option<SimDuration> {
        let idx = engine % self.units.len();
        self.units[idx].start(self.cfg.scale(duration), tag)
    }

    /// Completes the task running on `engine`; same contract as
    /// [`FwCore::finish`].
    ///
    /// # Panics
    ///
    /// Panics if that engine is idle.
    pub fn finish(&mut self, engine: usize) -> (FwTag, Option<SimDuration>) {
        self.units[engine].finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_core_starts_immediately() {
        let mut fw = FwCore::new();
        assert!(fw.idle());
        let d = fw.start(SimDuration::from_us(5), FwTag(1));
        assert_eq!(d, Some(SimDuration::from_us(5)));
        assert!(!fw.idle());
    }

    #[test]
    fn busy_core_queues_fifo() {
        let mut fw = FwCore::new();
        fw.start(SimDuration::from_us(1), FwTag(1));
        assert_eq!(fw.start(SimDuration::from_us(2), FwTag(2)), None);
        assert_eq!(fw.start(SimDuration::from_us(3), FwTag(3)), None);
        assert_eq!(fw.queued(), 2);
        let (t1, next) = fw.finish();
        assert_eq!(t1, FwTag(1));
        assert_eq!(next, Some(SimDuration::from_us(2)));
        let (t2, next) = fw.finish();
        assert_eq!(t2, FwTag(2));
        assert_eq!(next, Some(SimDuration::from_us(3)));
        let (t3, next) = fw.finish();
        assert_eq!(t3, FwTag(3));
        assert_eq!(next, None);
        assert!(fw.idle());
    }

    #[test]
    fn busy_total_accumulates() {
        let mut fw = FwCore::new();
        fw.start(SimDuration::from_us(1), FwTag(1));
        fw.start(SimDuration::from_us(2), FwTag(2));
        assert_eq!(fw.busy_total(), SimDuration::from_us(3));
    }

    #[test]
    #[should_panic(expected = "completion while idle")]
    fn finish_on_idle_panics() {
        FwCore::new().finish();
    }

    #[test]
    #[should_panic(expected = "at least one engine")]
    fn zero_engine_pool_rejected_at_construction() {
        EnginePool::new(EnginePoolConfig {
            engines: 0,
            rate_pct: 100,
            merge: MergePlacement::FwCore,
        });
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_pool_rejected_at_construction() {
        EnginePool::new(EnginePoolConfig {
            engines: 4,
            rate_pct: 0,
            merge: MergePlacement::FwCore,
        });
    }

    /// Simultaneously ready tasks on different engines all start at once
    /// (no cross-engine serialisation), while same-engine tasks queue
    /// FIFO — each engine is fair to its own arrival order.
    #[test]
    fn pool_queues_are_independent_and_fifo() {
        let mut pool = EnginePool::new(EnginePoolConfig::per_channel(4));
        // One task per engine: all start immediately.
        for e in 0..4 {
            let d = pool.start(e, SimDuration::from_us(10), FwTag(e as u64));
            assert_eq!(d, Some(SimDuration::from_us(10)), "engine {e} was busy");
        }
        assert!(!pool.idle());
        // Second wave on the same engines: all queue behind the first.
        for e in 0..4 {
            assert_eq!(
                pool.start(e, SimDuration::from_us(5), FwTag(100 + e as u64)),
                None
            );
            assert_eq!(pool.queued(e), 1);
        }
        // Completions pop each engine's own queue in arrival order.
        for e in 0..4 {
            let (done, next) = pool.finish(e);
            assert_eq!(done, FwTag(e as u64));
            assert_eq!(next, Some(SimDuration::from_us(5)));
            let (done, next) = pool.finish(e);
            assert_eq!(done, FwTag(100 + e as u64));
            assert_eq!(next, None);
        }
        assert!(pool.idle());
        // Every engine accrued exactly its own work.
        for e in 0..4 {
            assert_eq!(pool.busy(e), SimDuration::from_us(15));
        }
        assert_eq!(pool.busy_total(), SimDuration::from_us(60));
    }

    /// Engine indices wrap modulo the pool size, so channel counts larger
    /// than the pool still route deterministically.
    #[test]
    fn pool_routing_wraps_modulo_size() {
        let mut pool = EnginePool::new(EnginePoolConfig::per_channel(2));
        assert!(pool.start(0, SimDuration::from_us(1), FwTag(0)).is_some());
        // Engine 2 wraps onto engine 0, which is busy: the task queues.
        assert_eq!(pool.start(2, SimDuration::from_us(1), FwTag(2)), None);
        assert_eq!(pool.queued(0), 1);
        assert_eq!(pool.queued(1), 0);
    }

    /// A half-rate pool charges doubled durations, exactly.
    #[test]
    fn pool_scales_durations_by_service_rate() {
        let cfg = EnginePoolConfig {
            engines: 1,
            rate_pct: 50,
            merge: MergePlacement::FwCore,
        };
        assert_eq!(cfg.scale(SimDuration::from_us(7)), SimDuration::from_us(14));
        let mut pool = EnginePool::new(cfg);
        let d = pool.start(0, SimDuration::from_us(3), FwTag(9));
        assert_eq!(d, Some(SimDuration::from_us(6)));
    }
}
