//! Log-structured page allocation with wear-aware free-block selection.

use std::collections::{BTreeSet, HashMap, HashSet};

use recssd_flash::{FlashGeometry, Ppa};

/// Allocates physical pages for the log-structured write path.
///
/// Each die keeps one *open block* whose pages are handed out sequentially
/// (satisfying NAND's in-order program rule); consecutive allocations
/// round-robin across dies so host writes stripe over every channel.
/// Free blocks are selected lowest-erase-count first, which is the wear
/// leveling policy; erase counts are tracked per block.
///
/// # Example
///
/// ```
/// use recssd_flash::FlashGeometry;
/// use recssd_ftl::BlockAllocator;
///
/// let g = FlashGeometry::cosmos();
/// let mut alloc = BlockAllocator::new(g);
/// let a = alloc.alloc_page().unwrap();
/// let b = alloc.alloc_page().unwrap();
/// assert_ne!((a.channel, a.die), (b.channel, b.die), "writes stripe");
/// ```
#[derive(Debug)]
pub struct BlockAllocator {
    g: FlashGeometry,
    /// Per die: free blocks ordered by (erase_count, block).
    free: Vec<BTreeSet<(u64, u32)>>,
    /// Per die: the block currently accepting appends.
    open: Vec<Option<OpenBlock>>,
    /// Per die: fully programmed blocks (GC victim candidates).
    used: Vec<Vec<u32>>,
    erase_counts: HashMap<u64, u64>,
    reserved: HashSet<u64>,
    rr: usize,
    total_erases: u64,
}

#[derive(Debug, Clone, Copy)]
struct OpenBlock {
    block: u32,
    next_page: u32,
}

impl BlockAllocator {
    /// Creates an allocator with every block free.
    pub fn new(g: FlashGeometry) -> Self {
        let dies = g.total_dies() as usize;
        BlockAllocator {
            free: (0..dies)
                .map(|_| (0..g.blocks_per_die).map(|b| (0u64, b)).collect())
                .collect(),
            open: vec![None; dies],
            used: vec![Vec::new(); dies],
            erase_counts: HashMap::new(),
            reserved: HashSet::new(),
            rr: 0,
            total_erases: 0,
            g,
        }
    }

    fn die_linear(&self, channel: u32, die: u32) -> usize {
        (channel * self.g.dies_per_channel + die) as usize
    }

    fn die_coords(&self, die_linear: usize) -> (u32, u32) {
        (
            die_linear as u32 / self.g.dies_per_channel,
            die_linear as u32 % self.g.dies_per_channel,
        )
    }

    /// Withdraws a block from circulation (e.g. because it holds preloaded
    /// data). Reserved blocks are never allocated or GC'd.
    ///
    /// # Panics
    ///
    /// Panics if the block is currently open or already used.
    pub fn reserve(&mut self, channel: u32, die: u32, block: u32) {
        let d = self.die_linear(channel, die);
        let count = self
            .erase_counts
            .get(&self.g.block_index(channel, die, block))
            .copied()
            .unwrap_or(0);
        let removed = self.free[d].remove(&(count, block));
        assert!(
            removed,
            "reserve of non-free block ch{channel}/die{die}/blk{block}"
        );
        self.reserved
            .insert(self.g.block_index(channel, die, block));
    }

    /// Allocates the next physical page, striping round-robin across dies.
    /// Returns `None` when every die is out of space (foreground writes
    /// must then stall for GC).
    pub fn alloc_page(&mut self) -> Option<Ppa> {
        let dies = self.free.len();
        for attempt in 0..dies {
            let d = (self.rr + attempt) % dies;
            if let Some(ppa) = self.alloc_in_die(d) {
                self.rr = (d + 1) % dies;
                return Some(ppa);
            }
        }
        None
    }

    /// Allocates a page in a specific die if possible.
    pub fn alloc_in_die(&mut self, die_linear: usize) -> Option<Ppa> {
        if self.open[die_linear].is_none() {
            let &(count, block) = self.free[die_linear].iter().next()?;
            self.free[die_linear].remove(&(count, block));
            self.open[die_linear] = Some(OpenBlock {
                block,
                next_page: 0,
            });
        }
        let (channel, die) = self.die_coords(die_linear);
        let ob = self.open[die_linear].as_mut().expect("opened above");
        let ppa = Ppa {
            channel,
            die,
            block: ob.block,
            page: ob.next_page,
        };
        ob.next_page += 1;
        if ob.next_page == self.g.pages_per_block {
            self.used[die_linear].push(ob.block);
            self.open[die_linear] = None;
        }
        Some(ppa)
    }

    /// Free blocks remaining in a die.
    pub fn free_blocks_in_die(&self, die_linear: usize) -> usize {
        self.free[die_linear].len()
    }

    /// Fully programmed blocks in a die (GC victim candidates), in fill
    /// order.
    pub fn used_blocks_in_die(&self, die_linear: usize) -> &[u32] {
        &self.used[die_linear]
    }

    /// Removes `block` from the die's used list when GC claims it.
    ///
    /// # Panics
    ///
    /// Panics if the block is not in the used list.
    pub fn take_used(&mut self, die_linear: usize, block: u32) {
        let pos = self.used[die_linear]
            .iter()
            .position(|&b| b == block)
            .expect("GC victim must be a used block");
        self.used[die_linear].remove(pos);
    }

    /// Returns an erased block to the free pool and bumps its wear count.
    pub fn on_erase(&mut self, channel: u32, die: u32, block: u32) {
        let d = self.die_linear(channel, die);
        let bidx = self.g.block_index(channel, die, block);
        let count = self.erase_counts.entry(bidx).or_insert(0);
        *count += 1;
        self.total_erases += 1;
        self.free[d].insert((*count, block));
    }

    /// Erase count of one block.
    pub fn erase_count(&self, channel: u32, die: u32, block: u32) -> u64 {
        self.erase_counts
            .get(&self.g.block_index(channel, die, block))
            .copied()
            .unwrap_or(0)
    }

    /// Total erases performed (wear figure of merit).
    pub fn total_erases(&self) -> u64 {
        self.total_erases
    }

    /// `(min, max)` erase count over the *recycled* blocks of a die —
    /// wear-leveling spread. Returns `None` if nothing was ever erased.
    pub fn wear_spread(&self, die_linear: usize) -> Option<(u64, u64)> {
        let (channel, die) = self.die_coords(die_linear);
        let counts: Vec<u64> = (0..self.g.blocks_per_die)
            .map(|b| self.erase_count(channel, die, b))
            .filter(|&c| c > 0)
            .collect();
        let min = counts.iter().min()?;
        let max = counts.iter().max()?;
        Some((*min, *max))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> FlashGeometry {
        FlashGeometry {
            channels: 2,
            dies_per_channel: 2,
            blocks_per_die: 4,
            pages_per_block: 4,
            page_bytes: 256,
        }
    }

    #[test]
    fn allocations_stripe_round_robin() {
        let mut a = BlockAllocator::new(small());
        let dies: Vec<(u32, u32)> = (0..4)
            .map(|_| a.alloc_page().unwrap())
            .map(|p| (p.channel, p.die))
            .collect();
        let distinct: std::collections::HashSet<_> = dies.iter().collect();
        assert_eq!(distinct.len(), 4, "4 allocations hit 4 distinct dies");
    }

    #[test]
    fn pages_within_open_block_are_sequential() {
        let mut a = BlockAllocator::new(small());
        let mut pages = Vec::new();
        for _ in 0..8 {
            let p = a.alloc_page().unwrap();
            if (p.channel, p.die) == (0, 0) {
                pages.push(p.page);
            }
        }
        assert_eq!(pages, vec![0, 1]);
    }

    #[test]
    fn full_block_moves_to_used_list() {
        let mut a = BlockAllocator::new(small());
        // Fill die (0,0)'s open block: 4 pages.
        for _ in 0..4 {
            a.alloc_in_die(0).unwrap();
        }
        assert_eq!(a.used_blocks_in_die(0), &[0]);
        assert_eq!(a.free_blocks_in_die(0), 3);
        // Next allocation in the die opens a new block.
        let p = a.alloc_in_die(0).unwrap();
        assert_eq!(p.block, 1);
        assert_eq!(p.page, 0);
    }

    #[test]
    fn exhaustion_returns_none() {
        let g = small();
        let mut a = BlockAllocator::new(g);
        let total = g.total_pages();
        for _ in 0..total {
            assert!(a.alloc_page().is_some());
        }
        assert_eq!(a.alloc_page(), None);
    }

    #[test]
    fn erase_recycles_block_and_counts_wear() {
        let mut a = BlockAllocator::new(small());
        for _ in 0..4 {
            a.alloc_in_die(0).unwrap();
        }
        a.take_used(0, 0);
        a.on_erase(0, 0, 0);
        assert_eq!(a.erase_count(0, 0, 0), 1);
        assert_eq!(a.free_blocks_in_die(0), 4);
        assert_eq!(a.total_erases(), 1);
        assert_eq!(a.wear_spread(0), Some((1, 1)));
    }

    #[test]
    fn wear_leveling_prefers_cold_blocks() {
        let mut a = BlockAllocator::new(small());
        // Fill and erase block 0 of die 0; its erase count rises to 1.
        for _ in 0..4 {
            let p = a.alloc_in_die(0).unwrap();
            assert_eq!(p.block, 0);
        }
        a.take_used(0, 0);
        a.on_erase(0, 0, 0);
        // The free set orders by erase count, so the next opened block is a
        // cold one (count 0), not the just-erased block 0.
        let p = a.alloc_in_die(0).unwrap();
        assert_eq!(p.block, 1, "cold block preferred over hot block 0");
    }

    #[test]
    fn reserved_blocks_never_allocated() {
        let g = small();
        let mut a = BlockAllocator::new(g);
        a.reserve(0, 0, 0);
        a.reserve(0, 0, 1);
        a.reserve(0, 0, 2);
        a.reserve(0, 0, 3);
        // Die (0,0) has nothing left; allocation falls through to others.
        for _ in 0..12 {
            let p = a.alloc_page().unwrap();
            assert_ne!((p.channel, p.die), (0, 0));
        }
    }

    #[test]
    #[should_panic(expected = "non-free block")]
    fn double_reserve_panics() {
        let mut a = BlockAllocator::new(small());
        a.reserve(0, 0, 0);
        a.reserve(0, 0, 0);
    }
}
