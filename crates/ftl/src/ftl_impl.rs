//! The GreedyFTL: read/write paths, page cache, firmware core and
//! asynchronous greedy garbage collection.

use std::fmt;
use std::sync::Arc;

use recssd_cache::LruCache;
use recssd_flash::{
    FlashArray, FlashCompletion, FlashError, FlashEvent, FlashOp, FlashOpId, PageOracle, Ppa,
};
use recssd_obs::trace::{track, SpanId, Tracer};
use recssd_sim::stats::{Counter, HitStats};
use recssd_sim::{FxHashMap, SimDuration, SimTime};

use crate::firmware::EnginePool;
use crate::{BlockAllocator, EnginePoolConfig, FtlConfig, FwCore, FwTag, Lpn, MappingTable};

/// Identifier of an in-flight FTL request (read or write).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ReqId(u64);

impl fmt::Display for ReqId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ftl-req#{}", self.0)
    }
}

/// Events the FTL schedules for itself; route them back into
/// [`GreedyFtl::handle`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FtlEvent {
    /// An event belonging to the underlying flash array.
    Flash(FlashEvent),
    /// The firmware core finished its current task.
    FwDone,
    /// Engine `i` of the per-channel pool finished its current task.
    EngineDone(u32),
}

/// Results emitted by [`GreedyFtl::handle`].
#[derive(Debug, Clone)]
pub enum FtlOutcome {
    /// A pending logical-page read completed from flash.
    ReadDone {
        /// Request id returned by [`GreedyFtl::read_page`].
        req: ReqId,
        /// The logical page read.
        lpn: Lpn,
        /// Full page contents.
        data: Arc<[u8]>,
    },
    /// A pending logical-page read hit an injected uncorrectable media
    /// error: no data is delivered and the layer above must surface a
    /// typed device error for the owning command.
    ReadFailed {
        /// Request id returned by [`GreedyFtl::read_page`].
        req: ReqId,
        /// The logical page whose read failed.
        lpn: Lpn,
    },
    /// A logical-page write was durably programmed.
    WriteDone {
        /// Request id returned by [`GreedyFtl::write_page`].
        req: ReqId,
        /// The logical page written.
        lpn: Lpn,
    },
    /// A firmware task charged via [`GreedyFtl::charge_firmware`] finished.
    FwTaskDone {
        /// The caller-supplied tag.
        tag: FwTag,
    },
}

/// Synchronous result of starting a logical read.
#[derive(Debug, Clone)]
pub enum ReadStarted {
    /// Served from SSD DRAM (write buffer or page cache) with no flash
    /// access; the caller is responsible for charging any firmware time.
    CacheHit(Arc<[u8]>),
    /// The logical page was never written; it reads as zeros.
    Unmapped,
    /// A flash read is in flight; a [`FtlOutcome::ReadDone`] with this id
    /// will follow.
    Pending(ReqId),
}

/// FTL-level errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FtlError {
    /// Logical address beyond the configured capacity.
    LpnOutOfRange(Lpn),
    /// No free physical pages (the device is overfilled faster than GC can
    /// reclaim).
    DeviceFull,
    /// Payload larger than a page.
    DataTooLarge {
        /// Bytes supplied.
        len: usize,
        /// Page size.
        page_bytes: usize,
    },
    /// An error surfaced by the flash layer.
    Flash(FlashError),
}

impl fmt::Display for FtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FtlError::LpnOutOfRange(lpn) => write!(f, "logical page out of range: {lpn}"),
            FtlError::DeviceFull => write!(f, "no free physical pages available"),
            FtlError::DataTooLarge { len, page_bytes } => {
                write!(f, "payload of {len} bytes exceeds page size {page_bytes}")
            }
            FtlError::Flash(e) => write!(f, "flash error: {e}"),
        }
    }
}

impl std::error::Error for FtlError {}

impl From<FlashError> for FtlError {
    fn from(e: FlashError) -> Self {
        FtlError::Flash(e)
    }
}

/// Aggregate FTL statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct FtlStats {
    /// Logical reads issued by the host/firmware layers above.
    pub host_reads: Counter,
    /// Logical writes issued.
    pub host_writes: Counter,
    /// Reads of never-written pages.
    pub unmapped_reads: Counter,
    /// Reads absorbed by the in-flight write buffer.
    pub write_buffer_hits: Counter,
    /// Pages relocated by garbage collection.
    pub gc_relocated_pages: Counter,
    /// Blocks erased by garbage collection.
    pub gc_erased_blocks: Counter,
}

impl FtlStats {
    /// Resets every counter.
    pub fn reset(&mut self) {
        self.host_reads.reset();
        self.host_writes.reset();
        self.unmapped_reads.reset();
        self.write_buffer_hits.reset();
        self.gc_relocated_pages.reset();
        self.gc_erased_blocks.reset();
    }
}

#[derive(Debug)]
enum Pending {
    HostRead {
        req: ReqId,
        lpn: Lpn,
        ppa: Ppa,
    },
    HostWrite {
        req: ReqId,
        lpn: Lpn,
    },
    GcRead {
        die: usize,
        lpn: Lpn,
        old: Ppa,
    },
    GcWrite {
        die: usize,
        lpn: Lpn,
        old: Ppa,
        new: Ppa,
    },
    GcErase {
        die: usize,
        channel: u32,
        die_in_ch: u32,
        block: u32,
    },
}

#[derive(Debug)]
struct GcJob {
    victim: u32,
    reads_left: usize,
    writes_left: usize,
}

/// Largest number of recycled `Arc<[u8]>` page images the FTL keeps.
/// Covers the page-cache eviction churn of a deep read backlog.
const ARC_POOL_CAP: usize = 1024;

/// The greedy FTL modelled on the Cosmos+ OpenSSD firmware. See the
/// [crate docs](crate) for the architecture overview and the event-driven
/// usage pattern.
#[derive(Debug)]
pub struct GreedyFtl {
    config: FtlConfig,
    flash: FlashArray,
    map: MappingTable,
    alloc: BlockAllocator,
    cache: LruCache<u64, Arc<[u8]>>,
    write_buffer: FxHashMap<u64, Arc<[u8]>>,
    fw: FwCore,
    /// Per-channel SLS engine pool; `None` = single-core firmware.
    engines: Option<EnginePool>,
    pending: FxHashMap<FlashOpId, Pending>,
    gc_jobs: FxHashMap<usize, GcJob>,
    reserved: std::collections::HashSet<u64>,
    next_req: u64,
    /// Free-list of exclusively-owned page images, refilled by cache
    /// eviction; completed flash reads copy into one of these instead of
    /// allocating a fresh `Arc`.
    arc_pool: Vec<Arc<[u8]>>,
    stats: FtlStats,
    /// Sim-time span tracer (disabled by default: every emission is a
    /// no-op `None` check until [`GreedyFtl::set_tracer`] installs a sink).
    tracer: Tracer,
}

impl GreedyFtl {
    /// Creates an FTL over a fresh flash array.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (see
    /// [`FtlConfig::validate`]).
    pub fn new(config: FtlConfig) -> Self {
        config.validate();
        GreedyFtl {
            flash: FlashArray::new(config.flash.clone()),
            map: MappingTable::new(),
            alloc: BlockAllocator::new(config.flash.geometry),
            cache: LruCache::new(config.page_cache_pages),
            write_buffer: FxHashMap::default(),
            fw: FwCore::new(),
            engines: config.engines.map(EnginePool::new),
            // Keys are monotonically increasing op ids, so this map
            // churns tombstones forever; pre-sizing past the deepest
            // realistic in-flight set keeps the steady-state
            // insert/remove cycle from ever resizing (= allocating).
            pending: FxHashMap::with_capacity_and_hasher(
                (config.flash.geometry.total_dies() as usize + 64).next_power_of_two(),
                Default::default(),
            ),
            gc_jobs: FxHashMap::default(),
            reserved: std::collections::HashSet::new(),
            next_req: 0,
            arc_pool: Vec::new(),
            stats: FtlStats::default(),
            tracer: Tracer::disabled(),
            config,
        }
    }

    /// Consumer-side return path for page images handed out via
    /// [`FtlOutcome::ReadDone`] / [`ReadStarted::CacheHit`]: once a reader
    /// has folded a page in, it offers the `Arc` back. The image is pooled
    /// only when this was the last reference (it may still sit in the page
    /// cache, in which case this is a no-op).
    pub fn recycle_page_image(&mut self, arc: Arc<[u8]>) {
        self.recycle_arc(arc);
    }

    /// Keeps `arc` for reuse if this FTL is its sole owner (typically a
    /// page image just evicted from the page cache whose readers have all
    /// dropped their clones).
    fn recycle_arc(&mut self, arc: Arc<[u8]>) {
        if Arc::strong_count(&arc) == 1
            && arc.len() == self.page_bytes()
            && self.arc_pool.len() < ARC_POOL_CAP
        {
            self.arc_pool.push(arc);
        }
    }

    /// Wraps a completed flash read in an `Arc` page image, reusing a
    /// pooled one when available (and returning the flash buffer to the
    /// array's pool) — the steady-state read path allocates nothing here.
    fn pooled_arc_from(&mut self, data: Box<[u8]>) -> Arc<[u8]> {
        match self.arc_pool.pop() {
            Some(mut arc) => {
                Arc::get_mut(&mut arc)
                    .expect("pooled arcs are exclusively owned")
                    .copy_from_slice(&data);
                self.flash.recycle_page_buf(data);
                arc
            }
            None => data.into(),
        }
    }

    /// Inserts into the page cache, recycling whatever the insert evicts.
    fn cache_insert(&mut self, lpn: u64, data: Arc<[u8]>) {
        if let Some((_, old)) = self.cache.insert(lpn, data) {
            self.recycle_arc(old);
        }
    }

    /// The FTL's configuration.
    pub fn config(&self) -> &FtlConfig {
        &self.config
    }

    /// FTL statistics.
    pub fn stats(&self) -> &FtlStats {
        &self.stats
    }

    /// Hit/miss statistics of the SSD-DRAM page cache.
    pub fn cache_stats(&self) -> HitStats {
        self.cache.stats()
    }

    /// Resident fraction of the SSD-DRAM page cache (`len / capacity`).
    pub fn cache_occupancy(&self) -> f64 {
        self.cache.occupancy()
    }

    /// Resets page-cache hit statistics (between experiment phases).
    pub fn reset_cache_stats(&mut self) {
        self.cache.reset_stats();
    }

    /// Resets **every** statistic this layer and the layers below
    /// accumulate: FTL counters, page-cache hit stats, flash-array stats
    /// and fault-injection counters. Device state (mappings, caches,
    /// RNG streams) is untouched.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
        self.cache.reset_stats();
        self.flash.reset_stats();
    }

    /// Installs the sim-time span tracer for this FTL (firmware-exec and
    /// flash-read spans land on the [`track::TID_FW`] / [`track::TID_FLASH`]
    /// rows of the tracer's pid).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Empties the SSD-DRAM page cache (cold-start experiments). In-flight
    /// write data is retained — dropping it would lose correctness.
    pub fn drop_caches(&mut self) {
        self.cache.clear();
    }

    /// Evicts every cached page in `[start, start + pages)` — required
    /// when a preloaded region is re-bound to new contents (placement
    /// repacking swaps a table slot's image), so stale page images can
    /// never serve the new binding.
    pub fn invalidate_range(&mut self, start: Lpn, pages: u64) {
        let range = start.0..start.0 + pages;
        let stale: Vec<u64> = self
            .cache
            .iter()
            .map(|(&k, _)| k)
            .filter(|k| range.contains(k))
            .collect();
        for lpn in stale {
            if let Some(arc) = self.cache.remove(&lpn) {
                self.recycle_arc(arc);
            }
        }
    }

    /// The wear-aware block allocator (read-only view for diagnostics).
    pub fn allocator(&self) -> &BlockAllocator {
        &self.alloc
    }

    /// The underlying flash array (read-only view for diagnostics).
    pub fn flash(&self) -> &FlashArray {
        &self.flash
    }

    /// Installs (or clears) a fault-injection plan on the underlying
    /// flash array. The plan also governs firmware-charge stalls and
    /// brownout inflation (see [`GreedyFtl::charge_firmware`]).
    pub fn set_fault_plan(&mut self, plan: Option<recssd_flash::FaultPlan>) {
        self.flash.set_fault_plan(plan);
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&recssd_flash::FaultPlan> {
        self.flash.fault_plan()
    }

    /// Mutable access to the installed fault plan.
    pub fn fault_plan_mut(&mut self) -> Option<&mut recssd_flash::FaultPlan> {
        self.flash.fault_plan_mut()
    }

    /// Total busy time of the firmware core.
    pub fn firmware_busy(&self) -> SimDuration {
        self.fw.busy_total()
    }

    /// The engine-pool configuration, when a pool is present.
    pub fn engine_config(&self) -> Option<&EnginePoolConfig> {
        self.engines.as_ref().map(|p| p.config())
    }

    /// Number of per-channel engines (0 = single-core firmware).
    pub fn engine_count(&self) -> usize {
        self.engines.as_ref().map_or(0, |p| p.len())
    }

    /// Total busy time of engine `i` of the pool.
    ///
    /// # Panics
    ///
    /// Panics if no pool is configured or `i` is out of range.
    pub fn engine_busy(&self, i: usize) -> SimDuration {
        self.engines
            .as_ref()
            .expect("engine pool configured")
            .busy(i)
    }

    /// Total busy time summed across the engine pool (zero without one).
    pub fn engines_busy_total(&self) -> SimDuration {
        self.engines
            .as_ref()
            .map_or(SimDuration::ZERO, |p| p.busy_total())
    }

    /// The flash channel physically holding `lpn`, for channel→engine
    /// affinity. Unmapped pages fall back to the preload stripe-order
    /// lane, so never-written pages still route deterministically.
    pub fn channel_of(&self, lpn: Lpn) -> u32 {
        let g = self.config.flash.geometry;
        match self.map.lookup(lpn, &g) {
            Some(ppa) => ppa.channel,
            None => g.stripe_channel(lpn.0),
        }
    }

    /// `true` when nothing is in flight anywhere in the FTL.
    pub fn idle(&self) -> bool {
        self.pending.is_empty()
            && self.flash.idle()
            && self.fw.idle()
            && self.engines.as_ref().is_none_or(|p| p.idle())
            && self.gc_jobs.is_empty()
    }

    /// Page size in bytes.
    pub fn page_bytes(&self) -> usize {
        self.config.flash.geometry.page_bytes
    }

    fn die_linear(&self, ppa: Ppa) -> usize {
        (ppa.channel * self.config.flash.geometry.dies_per_channel + ppa.die) as usize
    }

    /// Installs a preloaded, identity-mapped region backed by `oracle`
    /// (used to bulk-load embedding tables; mirrors §5's preloading of
    /// tables onto the OpenSSD). The covered physical blocks are reserved:
    /// never allocated for writes, never garbage collected.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the logical capacity.
    pub fn preload(&mut self, start: Lpn, pages: u64, oracle: Arc<dyn PageOracle>) {
        let end = start.0 + pages;
        assert!(
            end <= self.config.logical_pages,
            "preload range exceeds logical capacity"
        );
        let g = self.config.flash.geometry;
        let range = start.0..end;
        self.flash.preload(range.clone(), oracle);
        self.map.add_identity_range(range.clone());
        // Reserve every covered block (stripe-order lane math mirrors
        // FlashArray::preload). A block may be shared by two adjacent
        // preloads; reserve it only once.
        let stride = g.channels as u64 * g.dies_per_channel as u64;
        let ppb = g.pages_per_block as u64;
        for c in 0..g.channels {
            for d in 0..g.dies_per_channel {
                let offset = d as u64 * g.channels as u64 + c as u64;
                if range.end <= offset {
                    continue;
                }
                let m_last = (range.end - 1 - offset) / stride;
                let m_first = if range.start <= offset {
                    0
                } else {
                    (range.start - offset).div_ceil(stride)
                };
                if range.start > offset && offset + m_last * stride < range.start {
                    continue;
                }
                for b in (m_first / ppb)..=(m_last / ppb) {
                    if !self.reserved_blocks_contains(c, d, b as u32) {
                        self.alloc.reserve(c, d, b as u32);
                        self.reserved_blocks_insert(c, d, b as u32);
                    }
                }
            }
        }
    }

    fn reserved_blocks_contains(&self, c: u32, d: u32, b: u32) -> bool {
        self.reserved
            .contains(&self.config.flash.geometry.block_index(c, d, b))
    }

    fn reserved_blocks_insert(&mut self, c: u32, d: u32, b: u32) {
        let idx = self.config.flash.geometry.block_index(c, d, b);
        self.reserved.insert(idx);
    }

    /// Starts a logical page read.
    ///
    /// Returns synchronously when the page is resident in SSD DRAM (write
    /// buffer or page cache) or unmapped; otherwise a flash read is issued
    /// and a [`FtlOutcome::ReadDone`] follows.
    ///
    /// # Errors
    ///
    /// [`FtlError::LpnOutOfRange`] if `lpn` exceeds the logical capacity.
    pub fn read_page(
        &mut self,
        now: SimTime,
        lpn: Lpn,
        sched: &mut dyn FnMut(SimDuration, FtlEvent),
    ) -> Result<ReadStarted, FtlError> {
        if lpn.0 >= self.config.logical_pages {
            return Err(FtlError::LpnOutOfRange(lpn));
        }
        self.stats.host_reads.inc();
        if let Some(data) = self.write_buffer.get(&lpn.0) {
            self.stats.write_buffer_hits.inc();
            return Ok(ReadStarted::CacheHit(data.clone()));
        }
        if let Some(data) = self.cache.get(&lpn.0) {
            return Ok(ReadStarted::CacheHit(data.clone()));
        }
        let g = self.config.flash.geometry;
        let Some(ppa) = self.map.lookup(lpn, &g) else {
            self.stats.unmapped_reads.inc();
            return Ok(ReadStarted::Unmapped);
        };
        let op = self
            .flash
            .submit(now, FlashOp::Read { ppa }, &mut |d, fe| {
                sched(d, FtlEvent::Flash(fe))
            })?;
        let req = ReqId(self.next_req);
        self.next_req += 1;
        self.pending.insert(op, Pending::HostRead { req, lpn, ppa });
        Ok(ReadStarted::Pending(req))
    }

    /// Starts a logical page write (up to one page of data; the remainder
    /// of the page reads as zeros). Completion is signalled by
    /// [`FtlOutcome::WriteDone`]; reads of the page are served from the
    /// write buffer in the interim.
    ///
    /// # Errors
    ///
    /// [`FtlError::LpnOutOfRange`], [`FtlError::DataTooLarge`] or
    /// [`FtlError::DeviceFull`].
    pub fn write_page(
        &mut self,
        now: SimTime,
        lpn: Lpn,
        data: Vec<u8>,
        sched: &mut dyn FnMut(SimDuration, FtlEvent),
    ) -> Result<ReqId, FtlError> {
        let g = self.config.flash.geometry;
        if lpn.0 >= self.config.logical_pages {
            return Err(FtlError::LpnOutOfRange(lpn));
        }
        if data.len() > g.page_bytes {
            return Err(FtlError::DataTooLarge {
                len: data.len(),
                page_bytes: g.page_bytes,
            });
        }
        self.stats.host_writes.inc();
        let ppa = self.alloc.alloc_page().ok_or(FtlError::DeviceFull)?;
        self.map.map(lpn, ppa, &g);
        // Keep a full-page image resident until the program completes.
        let arc: Arc<[u8]> = match self.arc_pool.pop() {
            Some(mut arc) => {
                let page = Arc::get_mut(&mut arc).expect("pooled arcs are exclusively owned");
                page.fill(0);
                page[..data.len()].copy_from_slice(&data);
                arc
            }
            None => {
                let mut page = vec![0u8; g.page_bytes];
                page[..data.len()].copy_from_slice(&data);
                page.into()
            }
        };
        if let Some(old) = self.write_buffer.insert(lpn.0, arc.clone()) {
            self.recycle_arc(old);
        }
        self.cache_insert(lpn.0, arc);
        let op = self
            .flash
            .submit(
                now,
                FlashOp::Program {
                    ppa,
                    data: data.into_boxed_slice(),
                },
                &mut |d, fe| sched(d, FtlEvent::Flash(fe)),
            )
            .expect("allocator and flash write pointers must agree");
        let req = ReqId(self.next_req);
        self.next_req += 1;
        self.pending.insert(op, Pending::HostWrite { req, lpn });
        let die = self.die_linear(ppa);
        self.maybe_start_gc(now, die, sched);
        Ok(req)
    }

    /// Charges a task onto the serial firmware core. When the task
    /// finishes, [`FtlOutcome::FwTaskDone`] carries `tag` back to the
    /// caller. Tasks run FIFO — this serialisation models the embedded
    /// ARM core that both NVMe command handling and NDP translation share.
    pub fn charge_firmware(
        &mut self,
        now: SimTime,
        mut duration: SimDuration,
        tag: FwTag,
        sched: &mut dyn FnMut(SimDuration, FtlEvent),
    ) {
        // Fault injection: an active brownout inflates the charge and a
        // stall draw multiplies it (a wedged firmware code path holding
        // the serial core), both exact integer scalings.
        if let Some(plan) = self.flash.fault_plan_mut() {
            duration = plan.inflate(now, duration);
            if let Some(m) = plan.draw_stall() {
                duration = duration * m as u64;
            }
        }
        if let Some(d) = self.fw.start(duration, tag) {
            // The core is idle, so this charge's execution window is
            // exactly [now, now + d]; queued charges get their span when
            // the FwDone pop starts them (see `handle`).
            if self.tracer.enabled() {
                self.tracer.with_tid(track::TID_FW).span_arg(
                    "fw:exec",
                    now,
                    now + d,
                    SpanId::NONE,
                    "tag",
                    tag.0,
                );
            }
            sched(d, FtlEvent::FwDone);
        }
    }

    /// Charges a task onto engine `engine % pool size` of the per-channel
    /// pool. Same contract as [`GreedyFtl::charge_firmware`] — FIFO per
    /// engine, [`FtlOutcome::FwTaskDone`] carries `tag` back — but engines
    /// run concurrently with each other and with the firmware core, which
    /// is the whole point of the multi-engine model. Fault-plan brownout
    /// inflation and stall draws apply exactly as on the core.
    ///
    /// # Panics
    ///
    /// Panics if no engine pool is configured.
    pub fn charge_engine(
        &mut self,
        now: SimTime,
        engine: usize,
        mut duration: SimDuration,
        tag: FwTag,
        sched: &mut dyn FnMut(SimDuration, FtlEvent),
    ) {
        if let Some(plan) = self.flash.fault_plan_mut() {
            duration = plan.inflate(now, duration);
            if let Some(m) = plan.draw_stall() {
                duration = duration * m as u64;
            }
        }
        let pool = self.engines.as_mut().expect("engine pool configured");
        let idx = engine % pool.len();
        if let Some(d) = pool.start(idx, duration, tag) {
            if self.tracer.enabled() {
                self.tracer
                    .with_tid(track::TID_ENGINE_BASE + idx as u32)
                    .span_arg("fw:engine", now, now + d, SpanId::NONE, "ch", idx as u64);
            }
            sched(d, FtlEvent::EngineDone(idx as u32));
        }
    }

    /// Processes one FTL event, appending zero or more outcomes to `out`
    /// (an out-parameter so the caller's scratch buffer is reused across
    /// events instead of allocating a fresh `Vec` per event).
    pub fn handle(
        &mut self,
        now: SimTime,
        ev: FtlEvent,
        sched: &mut dyn FnMut(SimDuration, FtlEvent),
        out: &mut Vec<FtlOutcome>,
    ) {
        match ev {
            FtlEvent::FwDone => {
                let (tag, next) = self.fw.finish();
                if let Some(d) = next {
                    if self.tracer.enabled() {
                        if let Some(t) = self.fw.current() {
                            self.tracer.with_tid(track::TID_FW).span_arg(
                                "fw:exec",
                                now,
                                now + d,
                                SpanId::NONE,
                                "tag",
                                t.0,
                            );
                        }
                    }
                    sched(d, FtlEvent::FwDone);
                }
                out.push(FtlOutcome::FwTaskDone { tag });
            }
            FtlEvent::EngineDone(idx) => {
                let idx = idx as usize;
                let pool = self.engines.as_mut().expect("engine pool configured");
                let (tag, next) = pool.finish(idx);
                if let Some(d) = next {
                    if self.tracer.enabled() {
                        self.tracer
                            .with_tid(track::TID_ENGINE_BASE + idx as u32)
                            .span_arg("fw:engine", now, now + d, SpanId::NONE, "ch", idx as u64);
                    }
                    sched(d, FtlEvent::EngineDone(idx as u32));
                }
                out.push(FtlOutcome::FwTaskDone { tag });
            }
            FtlEvent::Flash(fev) => {
                let completion = self
                    .flash
                    .handle(now, fev, &mut |d, fe| sched(d, FtlEvent::Flash(fe)));
                if let Some(c) = completion {
                    self.on_flash_completion(now, c, sched, out);
                }
            }
        }
    }

    fn on_flash_completion(
        &mut self,
        now: SimTime,
        c: FlashCompletion,
        sched: &mut dyn FnMut(SimDuration, FtlEvent),
        out: &mut Vec<FtlOutcome>,
    ) {
        let g = self.config.flash.geometry;
        match self.pending.remove(&c.op).expect("untracked flash op") {
            Pending::HostRead { req, lpn, ppa } => {
                if self.tracer.enabled() {
                    // Sense (+ any ECC retries, + die/bus queueing) ends
                    // where the final channel transfer starts; the
                    // transfer's busy window ends exactly at completion.
                    let tr = self.tracer.with_tid(track::TID_FLASH);
                    let (key, val) = if c.failed {
                        ("failed", 1)
                    } else {
                        ("retried", c.retried as u64)
                    };
                    let read =
                        tr.span_arg("flash:read", c.submitted_at, now, SpanId::NONE, key, val);
                    tr.span("flash:xfer", now - c.last_phase, now, read);
                }
                if c.failed {
                    // Uncorrectable media error: the bytes are untrusted,
                    // so nothing is cached and the buffer goes straight
                    // back to the flash pool. The owner gets a typed
                    // failure instead of data.
                    self.flash
                        .recycle_page_buf(c.data.expect("read completion carries data"));
                    out.push(FtlOutcome::ReadFailed { req, lpn });
                    return;
                }
                let data = self.pooled_arc_from(c.data.expect("read completion carries data"));
                // Cache only if the mapping still points at what we read —
                // a concurrent overwrite must not be shadowed by stale data.
                if self.map.lookup(lpn, &g) == Some(ppa) && !self.write_buffer.contains_key(&lpn.0)
                {
                    self.cache_insert(lpn.0, data.clone());
                }
                out.push(FtlOutcome::ReadDone { req, lpn, data });
            }
            Pending::HostWrite { req, lpn } => {
                if let Some(arc) = self.write_buffer.remove(&lpn.0) {
                    self.recycle_arc(arc);
                }
                out.push(FtlOutcome::WriteDone { req, lpn });
            }
            Pending::GcRead { die, lpn, old } => {
                self.stats.gc_relocated_pages.inc();
                // GC relocation ignores injected read failures: real
                // firmware retries relocation reads offline until they
                // converge, so only host-facing reads surface errors.
                let data = c.data.expect("GC read carries data");
                let new = self
                    .alloc
                    .alloc_page()
                    .expect("GC ran out of space: device overfilled beyond over-provisioning");
                let op = self
                    .flash
                    .submit(now, FlashOp::Program { ppa: new, data }, &mut |d, fe| {
                        sched(d, FtlEvent::Flash(fe))
                    })
                    .expect("GC program must be well-formed");
                self.pending
                    .insert(op, Pending::GcWrite { die, lpn, old, new });
                let job = self.gc_jobs.get_mut(&die).expect("GC read without job");
                job.reads_left -= 1;
                job.writes_left += 1;
            }
            Pending::GcWrite { die, lpn, old, new } => {
                self.map.remap_if_current(lpn, old, new, &g);
                let job = self.gc_jobs.get_mut(&die).expect("GC write without job");
                job.writes_left -= 1;
                if job.reads_left == 0 && job.writes_left == 0 {
                    self.issue_gc_erase(now, die, sched);
                }
            }
            Pending::GcErase {
                die,
                channel,
                die_in_ch,
                block,
            } => {
                self.map.forget_block(channel, die_in_ch, block, &g);
                self.alloc.on_erase(channel, die_in_ch, block);
                self.stats.gc_erased_blocks.inc();
                self.gc_jobs.remove(&die);
                // Keep collecting if the die is still under pressure.
                self.maybe_start_gc(now, die, sched);
            }
        }
    }

    fn maybe_start_gc(
        &mut self,
        now: SimTime,
        die: usize,
        sched: &mut dyn FnMut(SimDuration, FtlEvent),
    ) {
        if self.gc_jobs.contains_key(&die) {
            return;
        }
        if self.alloc.free_blocks_in_die(die) > self.config.gc_low_water {
            return;
        }
        let g = self.config.flash.geometry;
        let channel = die as u32 / g.dies_per_channel;
        let die_in_ch = die as u32 % g.dies_per_channel;
        // Greedy victim: the used block with the fewest valid pages.
        let victim = self
            .alloc
            .used_blocks_in_die(die)
            .iter()
            .copied()
            .min_by_key(|&b| {
                self.map
                    .valid_in_block(g.block_index(channel, die_in_ch, b))
            });
        let Some(victim) = victim else {
            return; // nothing reclaimable yet
        };
        // A fully valid victim frees nothing: relocating it consumes as many
        // pages as the erase reclaims. Wait for garbage to accumulate.
        if self
            .map
            .valid_in_block(g.block_index(channel, die_in_ch, victim))
            >= g.pages_per_block
        {
            return;
        }
        self.alloc.take_used(die, victim);
        let live = self.map.live_in_block(channel, die_in_ch, victim, &g);
        self.gc_jobs.insert(
            die,
            GcJob {
                victim,
                reads_left: live.len(),
                writes_left: 0,
            },
        );
        if live.is_empty() {
            self.issue_gc_erase(now, die, sched);
            return;
        }
        for (lpn, ppa) in live {
            let op = self
                .flash
                .submit(now, FlashOp::Read { ppa }, &mut |d, fe| {
                    sched(d, FtlEvent::Flash(fe))
                })
                .expect("GC read must be well-formed");
            self.pending
                .insert(op, Pending::GcRead { die, lpn, old: ppa });
        }
    }

    fn issue_gc_erase(
        &mut self,
        now: SimTime,
        die: usize,
        sched: &mut dyn FnMut(SimDuration, FtlEvent),
    ) {
        let g = self.config.flash.geometry;
        let channel = die as u32 / g.dies_per_channel;
        let die_in_ch = die as u32 % g.dies_per_channel;
        let block = self.gc_jobs[&die].victim;
        let op = self
            .flash
            .submit(
                now,
                FlashOp::Erase {
                    ppa: Ppa {
                        channel,
                        die: die_in_ch,
                        block,
                        page: 0,
                    },
                },
                &mut |d, fe| sched(d, FtlEvent::Flash(fe)),
            )
            .expect("GC erase must be well-formed");
        self.pending.insert(
            op,
            Pending::GcErase {
                die,
                channel,
                die_in_ch,
                block,
            },
        );
    }
}
