//! Device-level behaviour: full command round trips, error completions,
//! NDP rejection on a COTS device, and the throughput calibrations that
//! anchor the paper's baseline numbers.

use std::sync::Arc;

use recssd_flash::PageOracle;
use recssd_ftl::Lpn;
use recssd_nvme::{NvmeCommand, NvmeStatus};
use recssd_sim::{EventQueue, SimTime};
use recssd_ssd::{SsdConfig, SsdDevice, SsdEvent};

/// Host-side event loop around a device.
struct Host {
    dev: SsdDevice,
    q: EventQueue<SsdEvent>,
}

impl Host {
    fn new(cfg: SsdConfig) -> Self {
        Host {
            dev: SsdDevice::new(cfg),
            q: EventQueue::new(),
        }
    }

    fn submit(&mut self, qid: u16, cmd: NvmeCommand) {
        let Host { dev, q } = self;
        dev.queue(qid).submit(cmd).expect("queue has room");
        let mut fresh = Vec::new();
        dev.doorbell(q.now(), qid, &mut |d, e| fresh.push((d, e)));
        for (d, e) in fresh {
            q.push_after(d, e);
        }
    }

    /// Drives the simulation until the device is idle; returns final time.
    fn drain(&mut self) -> SimTime {
        let mut last = self.q.now();
        while let Some((now, ev)) = self.q.pop() {
            let Host { dev, q } = self;
            let mut fresh = Vec::new();
            dev.handle(now, ev, &mut |d, e| fresh.push((d, e)));
            for (d, e) in fresh {
                q.push_after(d, e);
            }
            last = now;
        }
        assert!(self.dev.idle(), "drain must reach quiescence");
        last
    }

    fn poll(&mut self, qid: u16) -> Vec<recssd_nvme::NvmeCompletion> {
        let mut out = Vec::new();
        while let Some(c) = self.dev.queue(qid).poll() {
            out.push(c);
        }
        out
    }
}

fn page_payload(tag: u8, len: usize) -> Vec<u8> {
    let mut v = vec![0u8; len];
    v[0] = tag;
    v[len / 2] = tag ^ 0xFF;
    v
}

#[test]
fn write_then_read_round_trips_through_the_full_stack() {
    let mut h = Host::new(SsdConfig::cosmos_small());
    let page = h.dev.config().block_bytes();
    h.submit(
        0,
        NvmeCommand::write(1, 7, 2, {
            let mut p = page_payload(0xA1, page);
            p.extend(page_payload(0xB2, page));
            p
        }),
    );
    h.drain();
    let done = h.poll(0);
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].status, NvmeStatus::Success);

    // Cold read (drop device caches to force the flash path).
    h.dev.ftl_mut().drop_caches();
    h.submit(0, NvmeCommand::read(2, 7, 2));
    h.drain();
    let done = h.poll(0);
    assert_eq!(done.len(), 1);
    let data = done[0].data.as_ref().expect("read returns data");
    assert_eq!(data.len(), 2 * page);
    assert_eq!(data[0], 0xA1);
    assert_eq!(data[page / 2], 0xA1 ^ 0xFF);
    assert_eq!(data[page], 0xB2);
}

#[test]
fn out_of_range_and_zero_length_commands_fail_cleanly() {
    let mut h = Host::new(SsdConfig::cosmos_small());
    let logical = h.dev.config().ftl.logical_pages;
    h.submit(0, NvmeCommand::read(1, logical - 1, 2));
    h.submit(0, NvmeCommand::read(2, 0, 0));
    h.drain();
    let done = h.poll(0);
    assert_eq!(done.len(), 2);
    assert_eq!(done[0].status, NvmeStatus::LbaOutOfRange);
    assert_eq!(done[1].status, NvmeStatus::InvalidField);
}

#[test]
fn cots_device_rejects_ndp_commands() {
    let mut h = Host::new(SsdConfig::cosmos_small());
    h.submit(0, NvmeCommand::ndp_write(5, 0, vec![0u8; 64]));
    h.drain();
    let done = h.poll(0);
    assert_eq!(done[0].status, NvmeStatus::InvalidField);
    assert_eq!(h.dev.stats().ndp_commands.get(), 1);
}

#[test]
fn unmapped_reads_return_zeros() {
    let mut h = Host::new(SsdConfig::cosmos_small());
    h.submit(1, NvmeCommand::read(1, 100, 1));
    h.drain();
    let done = h.poll(1);
    assert!(done[0].data.as_ref().unwrap().iter().all(|&b| b == 0));
}

#[test]
fn preloaded_tables_are_readable_via_nvme() {
    #[derive(Debug)]
    struct Tagged;
    impl PageOracle for Tagged {
        fn fill_page(&self, idx: u64, out: &mut [u8]) {
            out[..8].copy_from_slice(&idx.to_le_bytes());
        }
    }
    let mut h = Host::new(SsdConfig::cosmos_small());
    h.dev.preload(Lpn(0), 256, Arc::new(Tagged));
    h.submit(0, NvmeCommand::read(1, 123, 1));
    h.drain();
    let done = h.poll(0);
    let data = done[0].data.as_ref().unwrap();
    assert_eq!(u64::from_le_bytes(data[..8].try_into().unwrap()), 123);
}

#[test]
fn random_single_block_reads_are_firmware_bound() {
    // §3.2 of the paper: host-visible random reads hit a ~10-20K IOPS
    // ceiling far below internal flash bandwidth, because each command
    // costs serial firmware time.
    let cfg = SsdConfig::cosmos_small();
    let fw_per_cmd = cfg.fw_command_time(1);
    let mut h = Host::new(cfg);
    #[derive(Debug)]
    struct Z;
    impl PageOracle for Z {
        fn fill_page(&self, _i: u64, _o: &mut [u8]) {}
    }
    h.dev.preload(Lpn(0), 1024, Arc::new(Z));
    let n: u64 = 128;
    for i in 0..n {
        // Spread across queues; strided so each hits a distinct page.
        h.submit((i % 4) as u16, NvmeCommand::read(i as u16, i * 7 % 1024, 1));
    }
    let end = h.drain();
    let expected_fw = fw_per_cmd * n;
    // Firmware serialisation dominates: completion time within 35% above
    // the pure-firmware bound (flash pipeline adds the tail latency).
    assert!(
        end >= SimTime::ZERO + expected_fw,
        "cannot be faster than serial firmware: {end}"
    );
    let max = SimTime::ZERO + expected_fw + expected_fw / 3;
    assert!(
        end <= max,
        "random reads should be firmware-bound: {end} vs {max}"
    );
    let iops = n as f64 / end.as_secs_f64();
    assert!(
        (10_000.0..25_000.0).contains(&iops),
        "random-read IOPS out of calibration: {iops:.0}"
    );
}

#[test]
fn large_sequential_reads_are_flash_bound_near_advertised_bandwidth() {
    // §5: maximum sequential read "just under 1.4GB/s".
    let cfg = SsdConfig::cosmos_small();
    let page = cfg.block_bytes();
    let mut h = Host::new(cfg);
    #[derive(Debug)]
    struct Z;
    impl PageOracle for Z {
        fn fill_page(&self, _i: u64, _o: &mut [u8]) {}
    }
    h.dev.preload(Lpn(0), 2048, Arc::new(Z));
    let nlb = 64u32;
    let cmds = 16u64;
    for i in 0..cmds {
        h.submit(
            (i % 4) as u16,
            NvmeCommand::read(i as u16, i * nlb as u64, nlb),
        );
    }
    let end = h.drain();
    let bytes = cmds as f64 * nlb as f64 * page as f64;
    let gbps = bytes / end.as_secs_f64() / 1e9;
    // cosmos_small has 2 channels (vs 8), so scale: 2 channels ≈ 0.33 GB/s.
    assert!(
        (0.25..0.40).contains(&gbps),
        "sequential bandwidth out of calibration: {gbps:.3} GB/s"
    );
}

#[test]
fn repeated_runs_are_deterministic() {
    let run = || {
        let mut h = Host::new(SsdConfig::cosmos_small());
        let page = h.dev.config().block_bytes();
        for i in 0..20u16 {
            h.submit(
                i % 3,
                NvmeCommand::write(i, i as u64 * 3, 1, page_payload(i as u8, page / 2)),
            );
        }
        let t1 = h.drain();
        for i in 0..20u16 {
            h.submit(i % 3, NvmeCommand::read(100 + i, i as u64 * 3, 1));
        }
        let t2 = h.drain();
        (t1, t2)
    };
    assert_eq!(run(), run());
}

#[test]
fn interleaved_queues_all_complete() {
    let mut h = Host::new(SsdConfig::cosmos_small());
    let page = h.dev.config().block_bytes();
    for i in 0..8u16 {
        h.submit(
            i % 8,
            NvmeCommand::write(i, i as u64, 1, page_payload(i as u8, page)),
        );
    }
    h.drain();
    for i in 0..8u16 {
        h.submit(i % 8, NvmeCommand::read(50 + i, i as u64, 1));
    }
    h.drain();
    for qid in 0..8u16 {
        let done = h.poll(qid);
        assert_eq!(done.len(), 2, "queue {qid} saw write+read completions");
        for c in done {
            assert_eq!(c.status, NvmeStatus::Success);
        }
    }
}
