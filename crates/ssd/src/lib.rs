//! The assembled SSD device simulator.
//!
//! Wires the substrate crates into one event-driven device modelled on the
//! Cosmos+ OpenSSD the paper prototypes on:
//!
//! ```text
//!  host ──QueuePair──▶ frontend ──FwCore──▶ GreedyFtl ──▶ FlashArray
//!        ◀─PcieLink──  (commands)  (firmware)  (mapping,     (channels,
//!                                              page cache)    dies)
//! ```
//!
//! A conventional **read** command costs: per-command firmware processing
//! (the serial embedded CPU — this is what caps the baseline's host-visible
//! random-read IOPS, §3.2), flash page reads through the FTL (page-cache
//! hits skip flash), one PCIe DMA of the full pages back to the host, and a
//! completion. A **write** command DMAs the payload in, charges firmware,
//! and programs pages through the log-structured write path.
//!
//! Commands with the spare NDP bit set are handed to a pluggable
//! [`NdpEngine`] — the hook where the `recssd` crate installs the paper's
//! SLS offload. The default engine ([`NoNdp`]) fails such commands with
//! `InvalidField`, which is exactly how a COTS drive behaves.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod device;
mod extension;

pub use config::SsdConfig;
pub use device::{SsdDevice, SsdEvent, SsdStats};
pub use extension::{DeviceCtx, NdpEngine, NoNdp, EXT_TAG_BIT};
// Re-exported so device-level callers can switch on the per-channel
// engine pool (`cfg.ftl.engines`) without depending on the FTL crate.
pub use recssd_ftl::{EnginePoolConfig, MergePlacement};
