//! Device-level configuration.

use recssd_ftl::FtlConfig;
use recssd_nvme::PcieConfig;
use recssd_sim::SimDuration;

/// Configuration of the assembled SSD.
///
/// The firmware cost parameters are the device-level calibration knobs (see
/// DESIGN.md §4): `fw_cmd_ns` is the serial embedded-CPU cost of handling
/// one NVMe command, which bounds host-visible random-read IOPS at
/// `1e9 / (fw_cmd_ns + fw_per_page_ns)` — the ceiling §3.2 of the paper
/// attributes the SSD's poor sparse-read performance to.
///
/// # Example
///
/// ```
/// use recssd_ssd::SsdConfig;
/// let cfg = SsdConfig::cosmos();
/// let iops = 1e9 / (cfg.fw_cmd_ns + cfg.fw_per_page_ns) as f64;
/// assert!(iops < 25_000.0, "random reads are firmware-bound");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SsdConfig {
    /// FTL and flash configuration.
    pub ftl: FtlConfig,
    /// PCIe link to the host.
    pub pcie: PcieConfig,
    /// Number of I/O queue pairs exposed to the host.
    pub io_queues: usize,
    /// Depth of each queue pair.
    pub queue_depth: usize,
    /// Firmware cost to process one NVMe command (ns).
    pub fw_cmd_ns: u64,
    /// Additional firmware cost per logical block in a command (ns).
    pub fw_per_page_ns: u64,
}

impl SsdConfig {
    /// Cosmos+ OpenSSD-like device (see DESIGN.md for the calibration).
    pub fn cosmos() -> Self {
        SsdConfig {
            ftl: FtlConfig::cosmos(),
            pcie: PcieConfig::gen2_x8(),
            io_queues: 8,
            queue_depth: 64,
            fw_cmd_ns: 50_000,
            fw_per_page_ns: 2_000,
        }
    }

    /// Small-geometry variant for unit tests.
    pub fn cosmos_small() -> Self {
        SsdConfig {
            ftl: FtlConfig::cosmos_small(),
            ..SsdConfig::cosmos()
        }
    }

    /// Firmware charge for a command covering `nlb` logical blocks.
    pub fn fw_command_time(&self, nlb: u32) -> SimDuration {
        SimDuration::from_ns(self.fw_cmd_ns + self.fw_per_page_ns * nlb as u64)
    }

    /// Logical block (= flash page) size in bytes.
    pub fn block_bytes(&self) -> usize {
        self.ftl.flash.geometry.page_bytes
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on zero queue counts/depths or an invalid FTL configuration.
    pub fn validate(&self) {
        self.ftl.validate();
        assert!(self.io_queues > 0, "need at least one I/O queue");
        assert!(self.queue_depth > 0, "queue depth must be positive");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        SsdConfig::cosmos().validate();
        SsdConfig::cosmos_small().validate();
    }

    #[test]
    fn fw_command_time_scales_with_blocks() {
        let cfg = SsdConfig::cosmos();
        let one = cfg.fw_command_time(1);
        let many = cfg.fw_command_time(64);
        assert_eq!(one.as_ns(), 52_000);
        assert_eq!(many.as_ns(), 50_000 + 64 * 2_000);
    }

    #[test]
    fn sequential_large_commands_amortise_firmware_below_flash_rate() {
        // A 64-block read charges ~178 us of firmware but needs ~800 us of
        // flash time — so sequential streams are flash-bound, matching the
        // ~1.3 GB/s figure, while single-block commands are firmware-bound.
        let cfg = SsdConfig::cosmos();
        let fw = cfg.fw_command_time(64);
        let flash_per_page = 1e9
            / (cfg.ftl.flash.timing.channel_read_iops(cfg.block_bytes())
                * cfg.ftl.flash.geometry.channels as f64);
        let flash_64 = flash_per_page * 64.0;
        assert!(
            (fw.as_ns() as f64) < flash_64,
            "large commands must not be firmware-bound"
        );
    }
}
