//! The firmware-extension hook where NDP engines plug in.

use recssd_ftl::{FtlOutcome, GreedyFtl};
use recssd_nvme::{NvmeCommand, NvmeCompletion, NvmeStatus, PcieLink, QueuePair, XferId};
use recssd_sim::{SimDuration, SimTime};

use crate::device::SsdEvent;

/// Firmware tags with this bit set belong to the installed [`NdpEngine`];
/// the device core never allocates them.
pub const EXT_TAG_BIT: u64 = 1 << 63;

/// Mutable view of the device internals handed to an [`NdpEngine`].
///
/// The engine runs *inside the FTL firmware* (the paper implements RecSSD
/// "within the FTL firmware; the interface is compatible with existing
/// NVMe protocols, requiring no hardware changes"), so it gets the same
/// capabilities the stock firmware has: read logical pages through the FTL
/// (sharing its page cache and flash scheduler), charge work onto the
/// serial firmware core, DMA across PCIe, and post NVMe completions.
pub struct DeviceCtx<'a> {
    /// Current simulation time.
    pub now: SimTime,
    /// The FTL (page reads, firmware charges, page cache).
    pub ftl: &'a mut GreedyFtl,
    /// The host link (result DMAs).
    pub pcie: &'a mut PcieLink,
    /// The NVMe queue pairs (for posting completions).
    pub queues: &'a mut [QueuePair],
    /// The device's host-transfer-buffer free-list (shared with the
    /// conventional read path), so engines can serve result blocks from
    /// recycled buffers and hand spent command payloads back.
    pub bufs: &'a mut Vec<Vec<u8>>,
    /// Event scheduler into the device's global queue.
    pub sched: &'a mut dyn FnMut(SimDuration, SsdEvent),
}

impl std::fmt::Debug for DeviceCtx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeviceCtx")
            .field("now", &self.now)
            .finish_non_exhaustive()
    }
}

impl DeviceCtx<'_> {
    /// Posts a completion on queue `qid`.
    ///
    /// # Panics
    ///
    /// Panics if `qid` is out of range.
    pub fn complete(&mut self, qid: u16, completion: NvmeCompletion) {
        self.queues[qid as usize].complete(completion);
    }

    /// A buffer of exactly `len` bytes with **unspecified contents**
    /// from the device's transfer-buffer pool (or a fresh allocation) —
    /// the caller must overwrite every byte (result encoders do).
    pub fn take_buffer(&mut self, len: usize) -> Vec<u8> {
        crate::device::pool_take_raw(self.bufs, len)
    }

    /// Returns a spent buffer to the device's transfer-buffer pool (see
    /// [`crate::SsdDevice::recycle_buffer`] for the size-class rule).
    pub fn recycle_buffer(&mut self, buf: Vec<u8>) {
        crate::device::pool_recycle(self.bufs, buf);
    }
}

/// A firmware extension handling NDP (spare-bit) commands.
///
/// Implementations receive every NDP-flagged command plus first refusal on
/// FTL outcomes and PCIe completions that the device core does not
/// recognise as its own (the core and the engine partition the id spaces:
/// firmware tags with [`EXT_TAG_BIT`] and any FTL/PCIe ids the engine
/// started itself).
pub trait NdpEngine {
    /// Handles an NDP command fetched from queue `qid`.
    fn on_ndp_command(&mut self, ctx: &mut DeviceCtx<'_>, qid: u16, cmd: NvmeCommand);

    /// Offers an FTL outcome whose ids the core does not own. Return
    /// `true` if this engine claims it.
    fn on_ftl_outcome(&mut self, ctx: &mut DeviceCtx<'_>, outcome: &FtlOutcome) -> bool;

    /// Offers a completed PCIe transfer the core does not own. Return
    /// `true` if this engine claims it.
    fn on_pcie_done(&mut self, ctx: &mut DeviceCtx<'_>, xfer: XferId) -> bool;

    /// `true` when the engine has no in-flight work (drain condition).
    fn idle(&self) -> bool;
}

/// The COTS behaviour: NDP commands fail with `InvalidField`, as a stock
/// drive that does not understand the spare bit would respond.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoNdp;

impl NdpEngine for NoNdp {
    fn on_ndp_command(&mut self, ctx: &mut DeviceCtx<'_>, qid: u16, cmd: NvmeCommand) {
        ctx.complete(
            qid,
            NvmeCompletion::error(cmd.cid, NvmeStatus::InvalidField),
        );
    }

    fn on_ftl_outcome(&mut self, _ctx: &mut DeviceCtx<'_>, _outcome: &FtlOutcome) -> bool {
        false
    }

    fn on_pcie_done(&mut self, _ctx: &mut DeviceCtx<'_>, _xfer: XferId) -> bool {
        false
    }

    fn idle(&self) -> bool {
        true
    }
}
