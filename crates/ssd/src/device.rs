//! The device core: command fetch, firmware charging, data paths.

use recssd_flash::PageOracle;
use recssd_ftl::{FtlEvent, FtlOutcome, FwTag, GreedyFtl, Lpn, ReadStarted, ReqId};
use recssd_nvme::{
    NvmeCommand, NvmeCompletion, NvmeOpcode, NvmeStatus, PcieEvent, PcieLink, QueuePair,
    XferDirection, XferId,
};
use recssd_sim::stats::Counter;
use recssd_sim::{FxHashMap, SimDuration, SimTime};

use crate::extension::{DeviceCtx, NdpEngine, EXT_TAG_BIT};
use crate::{NoNdp, SsdConfig};

/// Events of the assembled device; route them back into
/// [`SsdDevice::handle`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SsdEvent {
    /// FTL / flash / firmware event.
    Ftl(FtlEvent),
    /// PCIe DMA event.
    Pcie(PcieEvent),
}

/// Aggregate device statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct SsdStats {
    /// Conventional read commands processed.
    pub read_commands: Counter,
    /// Conventional write commands processed.
    pub write_commands: Counter,
    /// NDP (spare-bit) commands handed to the engine.
    pub ndp_commands: Counter,
    /// Logical blocks served to the host by conventional reads.
    pub blocks_read: Counter,
    /// Logical blocks written by conventional writes.
    pub blocks_written: Counter,
}

impl SsdStats {
    /// Resets every counter.
    pub fn reset(&mut self) {
        self.read_commands.reset();
        self.write_commands.reset();
        self.ndp_commands.reset();
        self.blocks_read.reset();
        self.blocks_written.reset();
    }
}

#[derive(Debug)]
struct CmdState {
    cmd: NvmeCommand,
    pages_left: u32,
    data: Vec<u8>,
    /// One of the command's page reads hit an uncorrectable media error;
    /// the command completes with [`NvmeStatus::MediaError`] once every
    /// outstanding page drains.
    failed: bool,
}

/// Largest number of recycled host-transfer buffers the device keeps.
const HOST_BUF_POOL_CAP: usize = 1024;

/// An in-flight tracking map pre-sized so steady-state churn never
/// resizes it. 256 slots comfortably covers the deepest realistic
/// in-flight set (every die busy plus queued commands and DMAs).
fn presized_map<K, V>() -> FxHashMap<K, V> {
    FxHashMap::with_capacity_and_hasher(256, Default::default())
}

/// Pool insert shared by [`SsdDevice::recycle_buffer`] and
/// [`crate::DeviceCtx::recycle_buffer`]: buffers are pooled by
/// *capacity* (rounded to a power of two at allocation), so one
/// recycled buffer serves every transfer length at or below it.
pub(crate) fn pool_recycle(pool: &mut Vec<Vec<u8>>, buf: Vec<u8>) {
    if buf.capacity() > 0 && pool.len() < HOST_BUF_POOL_CAP {
        pool.push(buf);
    }
}

/// Zeroed pool take, used where stale contents could leak through (the
/// conventional read path leaves unmapped pages untouched, relying on a
/// zeroed buffer).
pub(crate) fn pool_take(pool: &mut Vec<Vec<u8>>, len: usize) -> Vec<u8> {
    let mut buf = pool_take_raw(pool, len);
    buf.fill(0);
    buf
}

/// Exact-`len` buffer with **unspecified contents** — for callers that
/// overwrite every byte themselves (payload/result encoders), skipping
/// the redundant memset a zeroed take would pay.
pub(crate) fn pool_take_raw(pool: &mut Vec<Vec<u8>>, len: usize) -> Vec<u8> {
    // Best fit by capacity, not exact length: exact size classes
    // fragment the pool (a 16-page transfer cannot reuse a 15-page
    // buffer), which shows up as a steady trickle of allocations every
    // time a workload first produces a new transfer length. Rounding
    // fresh capacities to a power of two keeps the class count small,
    // so after warm-up a take only allocates when *concurrency* (not
    // length) reaches a new high-water mark.
    let mut best: Option<(usize, usize)> = None;
    for (i, b) in pool.iter().enumerate() {
        let cap = b.capacity();
        if cap >= len && best.is_none_or(|(_, c)| cap < c) {
            best = Some((i, cap));
        }
    }
    match best {
        Some((i, _)) => {
            let mut buf = pool.swap_remove(i);
            buf.resize(len, 0);
            buf
        }
        None => {
            let mut buf = Vec::with_capacity(len.next_power_of_two());
            buf.resize(len, 0);
            buf
        }
    }
}

/// The simulated SSD: NVMe frontend + FTL + flash, with a pluggable NDP
/// engine. See the [crate docs](crate) for the data-path description.
#[derive(Debug)]
pub struct SsdDevice<X: NdpEngine = NoNdp> {
    config: SsdConfig,
    ftl: GreedyFtl,
    pcie: PcieLink,
    queues: Vec<QueuePair>,
    ext: X,
    cmds: FxHashMap<(u16, u16), CmdState>,
    fw_tags: FxHashMap<u64, (u16, u16)>,
    read_reqs: FxHashMap<ReqId, (u16, u16, u32)>,
    write_reqs: FxHashMap<ReqId, (u16, u16)>,
    dma_out: FxHashMap<XferId, (u16, u16)>,
    dma_in: FxHashMap<XferId, (u16, u16)>,
    next_tag: u64,
    /// Free-list of recycled command-data buffers (see
    /// [`SsdDevice::recycle_buffer`]).
    host_buf_pool: Vec<Vec<u8>>,
    /// Reused scratch for FTL outcomes drained per event.
    ftl_scratch: Vec<FtlOutcome>,
    stats: SsdStats,
}

impl SsdDevice<NoNdp> {
    /// Creates a COTS device (NDP commands rejected).
    pub fn new(config: SsdConfig) -> Self {
        SsdDevice::with_engine(config, NoNdp)
    }
}

impl<X: NdpEngine> SsdDevice<X> {
    /// Creates a device with a custom NDP engine installed in its firmware.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn with_engine(config: SsdConfig, ext: X) -> Self {
        config.validate();
        let queues = (0..config.io_queues)
            .map(|q| QueuePair::new(q as u16, config.queue_depth))
            .collect();
        SsdDevice {
            ftl: GreedyFtl::new(config.ftl.clone()),
            pcie: PcieLink::new(config.pcie),
            queues,
            ext,
            // All of these are keyed by monotonically increasing ids
            // (request / transfer / firmware-tag counters), so the
            // steady-state insert/remove churn leaves tombstones
            // forever. Pre-sizing past the deepest realistic in-flight
            // set keeps them from ever resizing (= allocating) on the
            // hot path; each holds a few machine words per entry.
            cmds: presized_map(),
            fw_tags: presized_map(),
            read_reqs: presized_map(),
            write_reqs: presized_map(),
            dma_out: presized_map(),
            dma_in: presized_map(),
            next_tag: 0,
            host_buf_pool: Vec::new(),
            ftl_scratch: Vec::new(),
            stats: SsdStats::default(),
            config,
        }
    }

    /// Returns a consumed completion-data buffer to the device's free-list
    /// so the next read command fills it instead of allocating — the host
    /// runtime hands back every page/result buffer it has finished
    /// accumulating. Buffers are pooled by capacity (best fit, see
    /// [`pool_take_raw`]), so one recycled buffer serves every transfer
    /// length at or below its capacity.
    pub fn recycle_buffer(&mut self, buf: Vec<u8>) {
        pool_recycle(&mut self.host_buf_pool, buf);
    }

    /// A buffer of exactly `len` bytes with **unspecified contents**
    /// from the transfer-buffer pool (or a fresh allocation). Hosts
    /// building command payloads pull from here — and overwrite every
    /// byte — so the payload allocation closes the same recycle loop as
    /// completion data without a redundant memset.
    pub fn take_host_buffer(&mut self, len: usize) -> Vec<u8> {
        pool_take_raw(&mut self.host_buf_pool, len)
    }

    /// A zeroed buffer of exactly `len` bytes, reusing a same-sized pooled
    /// buffer when one is available.
    fn take_buffer(&mut self, len: usize) -> Vec<u8> {
        pool_take(&mut self.host_buf_pool, len)
    }

    /// The device configuration.
    pub fn config(&self) -> &SsdConfig {
        &self.config
    }

    /// Device statistics.
    pub fn stats(&self) -> &SsdStats {
        &self.stats
    }

    /// Resets this device's statistics and everything below it (FTL
    /// counters, page-cache hit stats, flash-array stats, fault-injection
    /// counters). Device state itself is untouched.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
        self.ftl.reset_stats();
    }

    /// Host-side access to a queue pair (submit commands, poll
    /// completions).
    ///
    /// # Panics
    ///
    /// Panics if `qid` is out of range.
    pub fn queue(&mut self, qid: u16) -> &mut QueuePair {
        &mut self.queues[qid as usize]
    }

    /// The FTL, for diagnostics and experiment instrumentation.
    pub fn ftl(&self) -> &GreedyFtl {
        &self.ftl
    }

    /// Mutable FTL access (cache drops between experiment phases).
    pub fn ftl_mut(&mut self) -> &mut GreedyFtl {
        &mut self.ftl
    }

    /// Installs (or clears) a fault-injection plan on the FTL's flash
    /// array (see [`GreedyFtl::set_fault_plan`]).
    pub fn set_fault_plan(&mut self, plan: Option<recssd_flash::FaultPlan>) {
        self.ftl.set_fault_plan(plan);
    }

    /// The PCIe link, for diagnostics.
    pub fn pcie(&self) -> &PcieLink {
        &self.pcie
    }

    /// The installed NDP engine.
    pub fn engine(&self) -> &X {
        &self.ext
    }

    /// Mutable access to the installed NDP engine.
    pub fn engine_mut(&mut self) -> &mut X {
        &mut self.ext
    }

    /// Bulk-loads a logical region from `oracle` (see
    /// [`GreedyFtl::preload`]).
    pub fn preload(&mut self, start: Lpn, pages: u64, oracle: std::sync::Arc<dyn PageOracle>) {
        self.ftl.preload(start, pages, oracle);
    }

    /// `true` when no command, DMA, flash or engine work is in flight
    /// (pending completions may still sit in completion queues).
    pub fn idle(&self) -> bool {
        self.cmds.is_empty() && self.ftl.idle() && self.pcie.idle() && self.ext.idle()
    }

    fn alloc_tag(&mut self, qid: u16, cid: u16) -> FwTag {
        let tag = self.next_tag;
        self.next_tag += 1;
        debug_assert_eq!(tag & EXT_TAG_BIT, 0, "core tag space exhausted");
        self.fw_tags.insert(tag, (qid, cid));
        FwTag(tag)
    }

    /// Rings the doorbell for queue `qid`: the device fetches and begins
    /// processing every submitted command.
    ///
    /// # Panics
    ///
    /// Panics if `qid` is out of range.
    pub fn doorbell(
        &mut self,
        now: SimTime,
        qid: u16,
        sched: &mut dyn FnMut(SimDuration, SsdEvent),
    ) {
        while let Some(cmd) = self.queues[qid as usize].fetch() {
            if cmd.ndp {
                self.stats.ndp_commands.inc();
                let Self {
                    ftl,
                    pcie,
                    queues,
                    ext,
                    host_buf_pool,
                    ..
                } = self;
                let mut ctx = DeviceCtx {
                    now,
                    ftl,
                    pcie,
                    queues,
                    bufs: host_buf_pool,
                    sched,
                };
                ext.on_ndp_command(&mut ctx, qid, cmd);
                continue;
            }
            let logical = self.config.ftl.logical_pages;
            let cid = cmd.cid;
            if cmd.nlb == 0 {
                self.queues[qid as usize]
                    .complete(NvmeCompletion::error(cid, NvmeStatus::InvalidField));
                continue;
            }
            if cmd.slba + cmd.nlb as u64 > logical {
                self.queues[qid as usize]
                    .complete(NvmeCompletion::error(cid, NvmeStatus::LbaOutOfRange));
                continue;
            }
            match cmd.opcode {
                NvmeOpcode::Read => {
                    self.stats.read_commands.inc();
                    self.stats.blocks_read.add(cmd.nlb as u64);
                    let nlb = cmd.nlb;
                    let buf_len = nlb as usize * self.config.block_bytes();
                    let data = self.take_buffer(buf_len);
                    self.cmds.insert(
                        (qid, cid),
                        CmdState {
                            cmd,
                            pages_left: nlb,
                            data,
                            failed: false,
                        },
                    );
                    let tag = self.alloc_tag(qid, cid);
                    let dur = self.config.fw_command_time(nlb);
                    self.ftl
                        .charge_firmware(now, dur, tag, &mut |d, e| sched(d, SsdEvent::Ftl(e)));
                }
                NvmeOpcode::Write => {
                    self.stats.write_commands.inc();
                    self.stats.blocks_written.add(cmd.nlb as u64);
                    let bytes = cmd.payload_len();
                    self.cmds.insert(
                        (qid, cid),
                        CmdState {
                            cmd,
                            pages_left: 0,
                            data: Vec::new(),
                            failed: false,
                        },
                    );
                    let xfer =
                        self.pcie
                            .request(now, bytes, XferDirection::HostToDevice, &mut |d, e| {
                                sched(d, SsdEvent::Pcie(e))
                            });
                    self.dma_in.insert(xfer, (qid, cid));
                }
            }
        }
    }

    /// Processes one device event.
    pub fn handle(
        &mut self,
        now: SimTime,
        ev: SsdEvent,
        sched: &mut dyn FnMut(SimDuration, SsdEvent),
    ) {
        match ev {
            SsdEvent::Ftl(fev) => {
                let mut outcomes = std::mem::take(&mut self.ftl_scratch);
                outcomes.clear();
                self.ftl.handle(
                    now,
                    fev,
                    &mut |d, e| sched(d, SsdEvent::Ftl(e)),
                    &mut outcomes,
                );
                for o in outcomes.drain(..) {
                    self.dispatch_ftl(now, o, sched);
                }
                self.ftl_scratch = outcomes;
            }
            SsdEvent::Pcie(pev) => {
                let xfer = self
                    .pcie
                    .handle(now, pev, &mut |d, e| sched(d, SsdEvent::Pcie(e)));
                self.dispatch_pcie(now, xfer, sched);
            }
        }
    }

    fn dispatch_ftl(
        &mut self,
        now: SimTime,
        outcome: FtlOutcome,
        sched: &mut dyn FnMut(SimDuration, SsdEvent),
    ) {
        match outcome {
            FtlOutcome::FwTaskDone { tag } if self.fw_tags.contains_key(&tag.0) => {
                let (qid, cid) = self.fw_tags.remove(&tag.0).expect("checked above");
                self.on_command_processed(now, qid, cid, sched);
            }
            FtlOutcome::ReadDone { req, data, .. } if self.read_reqs.contains_key(&req) => {
                let (qid, cid, page_idx) = self.read_reqs.remove(&req).expect("checked above");
                let page_bytes = self.config.block_bytes();
                let st = self.cmds.get_mut(&(qid, cid)).expect("command state");
                if !st.failed {
                    let off = page_idx as usize * page_bytes;
                    st.data[off..off + page_bytes].copy_from_slice(&data);
                }
                // This was the page image's last reader; hand it back.
                self.ftl.recycle_page_image(data);
                st.pages_left -= 1;
                if st.pages_left == 0 {
                    if st.failed {
                        self.fail_read_cmd(qid, cid);
                    } else {
                        self.start_read_dma(now, qid, cid, sched);
                    }
                }
            }
            FtlOutcome::ReadFailed { req, .. } if self.read_reqs.contains_key(&req) => {
                let (qid, cid, _) = self.read_reqs.remove(&req).expect("checked above");
                let st = self.cmds.get_mut(&(qid, cid)).expect("command state");
                st.failed = true;
                st.pages_left -= 1;
                if st.pages_left == 0 {
                    self.fail_read_cmd(qid, cid);
                }
            }
            FtlOutcome::WriteDone { req, .. } if self.write_reqs.contains_key(&req) => {
                let (qid, cid) = self.write_reqs.remove(&req).expect("checked above");
                let st = self.cmds.get_mut(&(qid, cid)).expect("command state");
                st.pages_left -= 1;
                if st.pages_left == 0 {
                    self.cmds.remove(&(qid, cid));
                    self.queues[qid as usize].complete(NvmeCompletion::success(cid, None));
                }
            }
            other => {
                let Self {
                    ftl,
                    pcie,
                    queues,
                    ext,
                    host_buf_pool,
                    ..
                } = self;
                let mut ctx = DeviceCtx {
                    now,
                    ftl,
                    pcie,
                    queues,
                    bufs: host_buf_pool,
                    sched,
                };
                let claimed = ext.on_ftl_outcome(&mut ctx, &other);
                assert!(claimed, "orphan FTL outcome: {other:?}");
            }
        }
    }

    /// Continues a command once its firmware processing charge completes.
    fn on_command_processed(
        &mut self,
        now: SimTime,
        qid: u16,
        cid: u16,
        sched: &mut dyn FnMut(SimDuration, SsdEvent),
    ) {
        let st = self.cmds.get(&(qid, cid)).expect("command state");
        match st.cmd.opcode {
            NvmeOpcode::Read => {
                let slba = st.cmd.slba;
                let nlb = st.cmd.nlb;
                let page_bytes = self.config.block_bytes();
                let mut immediate = Vec::new();
                for i in 0..nlb {
                    let started = self
                        .ftl
                        .read_page(now, Lpn(slba + i as u64), &mut |d, e| {
                            sched(d, SsdEvent::Ftl(e))
                        })
                        .expect("validated range");
                    match started {
                        ReadStarted::CacheHit(data) => immediate.push((i, Some(data))),
                        ReadStarted::Unmapped => immediate.push((i, None)),
                        ReadStarted::Pending(req) => {
                            self.read_reqs.insert(req, (qid, cid, i));
                        }
                    }
                }
                let st = self.cmds.get_mut(&(qid, cid)).expect("command state");
                for (i, data) in immediate {
                    if let Some(data) = data {
                        let off = i as usize * page_bytes;
                        st.data[off..off + page_bytes].copy_from_slice(&data);
                    }
                    st.pages_left -= 1;
                }
                if st.pages_left == 0 {
                    self.start_read_dma(now, qid, cid, sched);
                }
            }
            NvmeOpcode::Write => {
                let slba = st.cmd.slba;
                let nlb = st.cmd.nlb;
                let page_bytes = self.config.block_bytes();
                let payload = st.cmd.payload.clone().unwrap_or_default();
                for i in 0..nlb {
                    let start = (i as usize * page_bytes).min(payload.len());
                    let end = ((i as usize + 1) * page_bytes).min(payload.len());
                    let chunk = payload[start..end].to_vec();
                    let req = self
                        .ftl
                        .write_page(now, Lpn(slba + i as u64), chunk, &mut |d, e| {
                            sched(d, SsdEvent::Ftl(e))
                        })
                        .expect("validated range");
                    self.write_reqs.insert(req, (qid, cid));
                }
                self.cmds
                    .get_mut(&(qid, cid))
                    .expect("command state")
                    .pages_left = nlb;
            }
        }
    }

    /// Completes a conventional read whose media failed: no data crosses
    /// PCIe, the transfer buffer returns to the pool and the host sees a
    /// typed media error.
    fn fail_read_cmd(&mut self, qid: u16, cid: u16) {
        let st = self.cmds.remove(&(qid, cid)).expect("command state");
        pool_recycle(&mut self.host_buf_pool, st.data);
        self.queues[qid as usize].complete(NvmeCompletion::error(cid, NvmeStatus::MediaError));
    }

    fn start_read_dma(
        &mut self,
        now: SimTime,
        qid: u16,
        cid: u16,
        sched: &mut dyn FnMut(SimDuration, SsdEvent),
    ) {
        let bytes = self.cmds[&(qid, cid)].data.len();
        let xfer = self
            .pcie
            .request(now, bytes, XferDirection::DeviceToHost, &mut |d, e| {
                sched(d, SsdEvent::Pcie(e))
            });
        self.dma_out.insert(xfer, (qid, cid));
    }

    fn dispatch_pcie(
        &mut self,
        now: SimTime,
        xfer: XferId,
        sched: &mut dyn FnMut(SimDuration, SsdEvent),
    ) {
        if let Some((qid, cid)) = self.dma_out.remove(&xfer) {
            let st = self.cmds.remove(&(qid, cid)).expect("command state");
            self.queues[qid as usize].complete(NvmeCompletion::success(cid, Some(st.data)));
            return;
        }
        if let Some((qid, cid)) = self.dma_in.remove(&xfer) {
            let nlb = self.cmds[&(qid, cid)].cmd.nlb;
            let tag = self.alloc_tag(qid, cid);
            let dur = self.config.fw_command_time(nlb);
            self.ftl
                .charge_firmware(now, dur, tag, &mut |d, e| sched(d, SsdEvent::Ftl(e)));
            return;
        }
        let Self {
            ftl,
            pcie,
            queues,
            ext,
            host_buf_pool,
            ..
        } = self;
        let mut ctx = DeviceCtx {
            now,
            ftl,
            pcie,
            queues,
            bufs: host_buf_pool,
            sched,
        };
        let claimed = ext.on_pcie_done(&mut ctx, xfer);
        assert!(claimed, "orphan PCIe transfer: {xfer:?}");
    }
}
