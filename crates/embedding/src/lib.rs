//! Embedding tables for the RecSSD reproduction.
//!
//! Recommendation models process categorical features through embedding
//! tables: "each row is a unique embedding vector typically comprising 16,
//! 32, or 64 learned features"; per inference a set of rows is gathered
//! and aggregated (§2.1 of the paper). This crate provides:
//!
//! * [`TableSpec`] / [`EmbeddingTable`] — table shapes with f32, f16 or
//!   int8 row storage ([`Quantization`], swept in Fig. 11a) and either
//!   in-memory or *procedural* (hash-generated) contents, so a 1 M-row
//!   table costs no RAM.
//! * [`TableImage`] — the on-SSD byte layout of a table:
//!   [`PageLayout::Spread`] places one vector per 16 KB flash page (the
//!   model-evaluation layout of §5: "we assume a single embedding vector
//!   per SSD page of 16KB") while [`PageLayout::Dense`] packs pages full
//!   (the microbenchmark layout where SEQ/STR access patterns differ).
//!   `TableImage` implements the flash [`PageOracle`] so tables bulk-load
//!   into the simulated device without materialising.
//! * [`sls_reference`] — the golden SparseLengthsSum every accelerated
//!   path (baseline SSD, NDP, cached, partitioned) must reproduce.
//!
//! Procedural table values are multiples of 2⁻⁶ in (−2, 2), which makes
//! f32 summation *exact* regardless of accumulation order — so tests can
//! require bit-identical results between the DRAM reference and the NDP
//! path even though they accumulate in different orders.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod layout;
pub mod quant;
mod sls;
mod table;

pub use layout::{PageLayout, TableImage, TableImageOracle};
pub use quant::Quantization;
pub use recssd_flash::PageOracle;
pub use sls::{sls_reference, sls_reference_into, sls_reference_with, LookupBatch};
pub use table::{EmbeddingTable, RowScratch, TableId, TableSource, TableSpec};
