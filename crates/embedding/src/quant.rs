//! Row quantization formats: f32, f16 and int8.
//!
//! Fig. 11a of the paper sweeps "feature size and quantization, which
//! affect the size of embedding vectors relative to the page size". The
//! three formats here match that sweep. Int8 rows carry a per-row f32
//! scale followed by one byte per element; f16 is IEEE 754 binary16.

/// Element storage format of an embedding row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Quantization {
    /// 32-bit IEEE floats (4 bytes per element).
    F32,
    /// 16-bit IEEE floats (2 bytes per element).
    F16,
    /// Signed 8-bit integers with a per-row f32 scale
    /// (4 + dim bytes per row).
    Int8,
}

impl Quantization {
    /// Encoded size in bytes of one `dim`-element row.
    #[inline]
    pub fn row_bytes(self, dim: usize) -> usize {
        match self {
            Quantization::F32 => 4 * dim,
            Quantization::F16 => 2 * dim,
            Quantization::Int8 => 4 + dim,
        }
    }

    /// Encodes `values` into `out` (which must be exactly
    /// [`Quantization::row_bytes`] long).
    ///
    /// # Panics
    ///
    /// Panics if `out` has the wrong length.
    pub fn encode(self, values: &[f32], out: &mut [u8]) {
        assert_eq!(out.len(), self.row_bytes(values.len()), "bad row buffer");
        match self {
            Quantization::F32 => {
                for (chunk, &v) in out.chunks_exact_mut(4).zip(values) {
                    chunk.copy_from_slice(&v.to_le_bytes());
                }
            }
            Quantization::F16 => {
                for (chunk, &v) in out.chunks_exact_mut(2).zip(values) {
                    chunk.copy_from_slice(&f32_to_f16_bits(v).to_le_bytes());
                }
            }
            Quantization::Int8 => {
                // Power-of-two row scale: the smallest 2^e with
                // max|v| / 2^e <= 127. Dequantised values are then exact
                // binary fractions, so f32 accumulation of quantised rows
                // is order-independent — the property the NDP-vs-DRAM
                // bit-equality tests rely on. Costs at most one extra bit
                // of quantisation error versus an optimal scale.
                let max_abs = values.iter().fold(0.0f32, |m, v| m.max(v.abs()));
                let scale = if max_abs == 0.0 {
                    1.0
                } else {
                    2.0f32.powi(((max_abs / 127.0).log2().ceil()) as i32)
                };
                out[..4].copy_from_slice(&scale.to_le_bytes());
                for (b, &v) in out[4..].iter_mut().zip(values) {
                    *b = (v / scale).round().clamp(-127.0, 127.0) as i8 as u8;
                }
            }
        }
    }

    /// The single decode implementation: every decoded element is folded
    /// into `out` through `fold`, so assignment ([`Quantization::decode_into`])
    /// and fused accumulation ([`Quantization::decode_accumulate`]) share
    /// one loop and cannot drift apart numerically.
    #[inline(always)]
    fn decode_with<F: Fn(&mut f32, f32)>(self, bytes: &[u8], out: &mut [f32], fold: F) {
        let dim = out.len();
        let need = self.row_bytes(dim);
        assert!(bytes.len() >= need, "row bytes truncated");
        match self {
            Quantization::F32 => {
                for (o, c) in out.iter_mut().zip(bytes[..need].chunks_exact(4)) {
                    fold(o, f32::from_le_bytes(c.try_into().expect("4-byte chunk")));
                }
            }
            Quantization::F16 => {
                for (o, c) in out.iter_mut().zip(bytes[..need].chunks_exact(2)) {
                    let bits = u16::from_le_bytes(c.try_into().expect("2-byte chunk"));
                    fold(o, f16_bits_to_f32(bits));
                }
            }
            Quantization::Int8 => {
                let scale = f32::from_le_bytes(bytes[..4].try_into().expect("scale"));
                for (o, &b) in out.iter_mut().zip(&bytes[4..need]) {
                    fold(o, b as i8 as f32 * scale);
                }
            }
        }
    }

    /// Decodes a row of `out.len()` elements from `bytes` into `out`
    /// without allocating — the steady-state Translation primitive.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is shorter than the encoded row.
    #[inline]
    pub fn decode_into(self, bytes: &[u8], out: &mut [f32]) {
        self.decode_with(bytes, out, |o, v| *o = v);
    }

    /// Fused decode + add: accumulates the decoded row into `acc`
    /// element-wise. This is the operation RecSSD's Translation step
    /// actually performs — gathered vectors are never materialised, they
    /// are summed straight into the result slot.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is shorter than the encoded row.
    #[inline]
    pub fn decode_accumulate(self, bytes: &[u8], acc: &mut [f32]) {
        self.decode_with(bytes, acc, |o, v| *o += v);
    }

    /// Decodes a row of `dim` elements from `bytes` into a fresh `Vec`.
    /// Allocating convenience wrapper over [`Quantization::decode_into`];
    /// hot paths should pass a reused buffer to the `_into` variant.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is shorter than the encoded row.
    pub fn decode(self, bytes: &[u8], dim: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; dim];
        self.decode_into(bytes, &mut out);
        out
    }
}

/// Converts an f32 to IEEE binary16 bits (round-to-nearest-even, with
/// overflow to infinity and subnormal support).
#[inline]
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let frac = bits & 0x007F_FFFF;

    if exp == 0xFF {
        // Inf / NaN.
        let nan_payload = if frac != 0 { 0x0200 } else { 0 };
        return sign | 0x7C00 | nan_payload;
    }
    // Unbiased exponent, rebiased for f16 (bias 15 vs 127).
    let unbiased = exp - 127;
    if unbiased > 15 {
        return sign | 0x7C00; // overflow → ±inf
    }
    if unbiased >= -14 {
        // Normal f16. Round the 23-bit fraction to 10 bits (RNE).
        let half_exp = ((unbiased + 15) as u16) << 10;
        let mut mant = (frac >> 13) as u16;
        let round_bits = frac & 0x1FFF;
        if round_bits > 0x1000 || (round_bits == 0x1000 && (mant & 1) == 1) {
            mant += 1;
            if mant == 0x400 {
                // Mantissa overflow carries into the exponent.
                return sign | (half_exp + 0x400);
            }
        }
        return sign | half_exp | mant;
    }
    if unbiased >= -24 {
        // Subnormal f16.
        let full = frac | 0x0080_0000; // implicit leading 1
        let shift = (-14 - unbiased) as u32 + 13;
        let mut mant = (full >> shift) as u16;
        let rem = full & ((1 << shift) - 1);
        let half = 1u32 << (shift - 1);
        if rem > half || (rem == half && (mant & 1) == 1) {
            mant += 1;
        }
        return sign | mant;
    }
    sign // underflow → ±0
}

/// Converts IEEE binary16 bits to f32.
#[inline]
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = (h >> 10) & 0x1F;
    let frac = (h & 0x03FF) as u32;
    let bits = match (exp, frac) {
        (0, 0) => sign,
        (0, f) => {
            // Subnormal: normalise. `lead` counts the zeros above the MSB
            // within the 10-bit fraction field (a u32 has 22 zeros before
            // the field even begins).
            let lead = f.leading_zeros() - 22;
            let exp32 = 127 - 15 - lead;
            let mant = (f << (lead + 1)) & 0x03FF;
            sign | (exp32 << 23) | (mant << 13)
        }
        (0x1F, 0) => sign | 0x7F80_0000,
        (0x1F, f) => sign | 0x7F80_0000 | (f << 13),
        (e, f) => sign | (((e as u32) + 127 - 15) << 23) | (f << 13),
    };
    f32::from_bits(bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_bytes_per_format() {
        assert_eq!(Quantization::F32.row_bytes(32), 128);
        assert_eq!(Quantization::F16.row_bytes(32), 64);
        assert_eq!(Quantization::Int8.row_bytes(32), 36);
    }

    #[test]
    fn f32_round_trip_is_exact() {
        let q = Quantization::F32;
        let vals = vec![1.5, -0.25, 3.75, 0.0];
        let mut buf = vec![0u8; q.row_bytes(4)];
        q.encode(&vals, &mut buf);
        assert_eq!(q.decode(&buf, 4), vals);
    }

    #[test]
    fn f16_known_values() {
        assert_eq!(f32_to_f16_bits(0.0), 0x0000);
        assert_eq!(f32_to_f16_bits(-0.0), 0x8000);
        assert_eq!(f32_to_f16_bits(1.0), 0x3C00);
        assert_eq!(f32_to_f16_bits(-2.0), 0xC000);
        assert_eq!(f32_to_f16_bits(65504.0), 0x7BFF); // max finite f16
        assert_eq!(f32_to_f16_bits(1e6), 0x7C00); // overflow → inf
        assert_eq!(f16_bits_to_f32(0x3C00), 1.0);
        assert_eq!(f16_bits_to_f32(0x7C00), f32::INFINITY);
        assert_eq!(f16_bits_to_f32(0xFC00), f32::NEG_INFINITY);
        assert!(f16_bits_to_f32(0x7E00).is_nan());
        // Smallest positive subnormal: 2^-24.
        assert_eq!(f16_bits_to_f32(0x0001), 2.0f32.powi(-24));
        assert_eq!(f32_to_f16_bits(2.0f32.powi(-24)), 0x0001);
    }

    #[test]
    fn f16_round_trips_multiples_of_two_pow_minus_six() {
        // The procedural table grid: k/64 for k in -128..128. All exactly
        // representable in binary16, so encode∘decode is the identity.
        for k in -128i32..128 {
            let v = k as f32 / 64.0;
            let rt = f16_bits_to_f32(f32_to_f16_bits(v));
            assert_eq!(rt, v, "k={k}");
        }
    }

    #[test]
    fn f16_error_bound_for_unit_interval() {
        // Relative error of binary16 round-trip is at most 2^-11 for
        // normal values.
        let mut rng = recssd_sim::rng::Xoshiro256::seed_from(3);
        for _ in 0..10_000 {
            let v = (rng.next_f64() * 2.0 - 1.0) as f32;
            let rt = f16_bits_to_f32(f32_to_f16_bits(v));
            let err = (rt - v).abs();
            assert!(err <= v.abs() * 0.0005 + 1e-7, "v={v} rt={rt}");
        }
    }

    #[test]
    fn int8_round_trips_procedural_grid() {
        // Any row of k/64 grid values with |k| <= 127 quantises exactly
        // under the power-of-two scale, regardless of the row's max.
        let q = Quantization::Int8;
        for max_k in [127i32, 100, 64, 63, 32, 31, 5, 1] {
            let row: Vec<f32> = (-max_k..=max_k).map(|k| k as f32 / 64.0).collect();
            let mut buf = vec![0u8; q.row_bytes(row.len())];
            q.encode(&row, &mut buf);
            let dec = q.decode(&buf, row.len());
            for (a, b) in dec.iter().zip(&row) {
                assert_eq!(a, b, "max_k={max_k}");
            }
        }
    }

    #[test]
    fn int8_error_bound_for_random_rows() {
        let q = Quantization::Int8;
        let mut rng = recssd_sim::rng::Xoshiro256::seed_from(9);
        for _ in 0..1000 {
            let row: Vec<f32> = (0..32)
                .map(|_| (rng.next_f64() * 4.0 - 2.0) as f32)
                .collect();
            let mut buf = vec![0u8; q.row_bytes(32)];
            q.encode(&row, &mut buf);
            let dec = q.decode(&buf, 32);
            let max_abs = row.iter().fold(0.0f32, |m, v| m.max(v.abs()));
            // Power-of-two scale loses at most one bit vs the optimal
            // scale: error <= scale/2 < max_abs/127.
            let tol = max_abs / 127.0 + 1e-7;
            for (a, b) in dec.iter().zip(&row) {
                assert!((a - b).abs() <= tol, "a={a} b={b} tol={tol}");
            }
        }
    }

    #[test]
    fn int8_zero_row() {
        let q = Quantization::Int8;
        let row = vec![0.0f32; 8];
        let mut buf = vec![0u8; q.row_bytes(8)];
        q.encode(&row, &mut buf);
        assert_eq!(q.decode(&buf, 8), row);
    }

    #[test]
    #[should_panic(expected = "bad row buffer")]
    fn encode_wrong_buffer_panics() {
        Quantization::F32.encode(&[1.0], &mut [0u8; 3]);
    }

    #[test]
    fn f16_exhaustive_round_trip_through_f32() {
        // Every finite f16 must survive f16→f32→f16 unchanged.
        for h in 0u16..=0xFFFF {
            let exp = (h >> 10) & 0x1F;
            if exp == 0x1F {
                continue; // inf/NaN payloads not required to round-trip
            }
            let back = f32_to_f16_bits(f16_bits_to_f32(h));
            assert_eq!(back, h, "h={h:#06x}");
        }
    }
}
