//! On-SSD byte layout of embedding tables.

use std::sync::Arc;

use recssd_flash::PageOracle;

use crate::EmbeddingTable;

/// How rows are placed onto flash pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PageLayout {
    /// One vector per page. §5 of the paper adopts this for all model
    /// evaluations: "Given the high cache miss rates and our locality
    /// analysis, we assume a single embedding vector per SSD page of
    /// 16KB." Every distinct row access touches a distinct page.
    Spread,
    /// Rows packed densely, `page_bytes / row_bytes` per page. Used by the
    /// Fig. 8 microbenchmarks, where *sequential* ids share pages and
    /// *strided* ids land on distinct pages.
    Dense,
}

/// A table bound to a page layout: the bridge between row indices and
/// logical page addresses.
///
/// # Example
///
/// ```
/// use recssd_embedding::{EmbeddingTable, PageLayout, Quantization, TableImage, TableSpec};
/// let t = EmbeddingTable::procedural(TableSpec::new(1000, 32, Quantization::F32), 0);
/// let img = TableImage::new(t, PageLayout::Dense, 16 * 1024);
/// assert_eq!(img.rows_per_page(), 128);
/// assert_eq!(img.page_of_row(200).0, 1);
/// let spread = TableImage::new(
///     EmbeddingTable::procedural(TableSpec::new(1000, 32, Quantization::F32), 0),
///     PageLayout::Spread,
///     16 * 1024,
/// );
/// assert_eq!(spread.pages(), 1000);
/// ```
#[derive(Debug, Clone)]
pub struct TableImage {
    table: EmbeddingTable,
    layout: PageLayout,
    page_bytes: usize,
}

impl TableImage {
    /// Binds `table` to a layout.
    ///
    /// # Panics
    ///
    /// Panics if a row does not fit in a page.
    pub fn new(table: EmbeddingTable, layout: PageLayout, page_bytes: usize) -> Self {
        assert!(
            table.spec().row_bytes() <= page_bytes,
            "row larger than a page"
        );
        TableImage {
            table,
            layout,
            page_bytes,
        }
    }

    /// The underlying table.
    pub fn table(&self) -> &EmbeddingTable {
        &self.table
    }

    /// The layout.
    pub fn layout(&self) -> PageLayout {
        self.layout
    }

    /// Page size this image is laid out for.
    pub fn page_bytes(&self) -> usize {
        self.page_bytes
    }

    /// Rows stored per page.
    #[inline]
    pub fn rows_per_page(&self) -> u64 {
        match self.layout {
            PageLayout::Spread => 1,
            PageLayout::Dense => (self.page_bytes / self.table.spec().row_bytes()) as u64,
        }
    }

    /// Total pages occupied by the table.
    pub fn pages(&self) -> u64 {
        self.table.spec().rows.div_ceil(self.rows_per_page())
    }

    /// `(relative page index, byte offset within page)` of `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    #[inline]
    pub fn page_of_row(&self, row: u64) -> (u64, usize) {
        assert!(row < self.table.spec().rows, "row out of range");
        let rpp = self.rows_per_page();
        let page = row / rpp;
        let slot = (row % rpp) as usize;
        (page, slot * self.table.spec().row_bytes())
    }

    /// Rows residing on relative page `page` (clamped to the table size).
    #[inline]
    pub fn rows_in_page(&self, page: u64) -> std::ops::Range<u64> {
        let rpp = self.rows_per_page();
        let start = page * rpp;
        let end = ((page + 1) * rpp).min(self.table.spec().rows);
        start..end
    }

    /// Fills a page buffer with the encoded rows that live on relative
    /// page `page`.
    ///
    /// Pages are regenerated on every flash-read miss (the oracle-backed
    /// store synthesises contents on demand), so the encode scratch is
    /// thread-local: steady-state page fills allocate nothing.
    pub fn fill_relative_page(&self, page: u64, out: &mut [u8]) {
        thread_local! {
            static SCRATCH: std::cell::RefCell<crate::RowScratch> =
                std::cell::RefCell::new(crate::RowScratch::default());
        }
        let row_bytes = self.table.spec().row_bytes();
        SCRATCH.with(|scratch| {
            let scratch = &mut *scratch.borrow_mut();
            for (i, row) in self.rows_in_page(page).enumerate() {
                let off = i * row_bytes;
                self.table
                    .encode_row_with(row, scratch, &mut out[off..off + row_bytes]);
            }
        });
    }

    /// Decodes the row stored at `(page, offset)` into `out` without
    /// allocating.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != dim` or the page bytes are truncated.
    #[inline]
    pub fn decode_row_into(&self, page_data: &[u8], offset: usize, out: &mut [f32]) {
        let spec = self.table.spec();
        assert_eq!(out.len(), spec.dim, "output has wrong dim");
        spec.quant.decode_into(&page_data[offset..], out);
    }

    /// Accumulates the row stored at `(page, offset)` into `acc` — the
    /// fused gather+reduce RecSSD's Translation step performs on the
    /// device, with no intermediate vector.
    ///
    /// # Panics
    ///
    /// Panics if `acc.len() != dim` or the page bytes are truncated.
    #[inline]
    pub fn accumulate_row_at(&self, page_data: &[u8], offset: usize, acc: &mut [f32]) {
        let spec = self.table.spec();
        assert_eq!(acc.len(), spec.dim, "accumulator has wrong dim");
        spec.quant.decode_accumulate(&page_data[offset..], acc);
    }

    /// Decodes the row stored at `(page, offset)` from raw page bytes.
    /// Allocating wrapper over [`TableImage::decode_row_into`].
    pub fn decode_row_at(&self, page_data: &[u8], offset: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; self.table.spec().dim];
        self.decode_row_into(page_data, offset, &mut out);
        out
    }
}

/// Adapter installing a [`TableImage`] at a fixed base page so the flash
/// layer can generate its contents on demand.
#[derive(Debug)]
pub struct TableImageOracle {
    image: Arc<TableImage>,
    base_page: u64,
}

impl TableImageOracle {
    /// Binds `image` at `base_page` (the first linear page the table
    /// occupies on the device).
    pub fn new(image: Arc<TableImage>, base_page: u64) -> Self {
        TableImageOracle { image, base_page }
    }
}

impl PageOracle for TableImageOracle {
    fn fill_page(&self, page_index: u64, out: &mut [u8]) {
        let rel = page_index
            .checked_sub(self.base_page)
            .expect("oracle asked outside its range");
        if rel < self.image.pages() {
            self.image.fill_relative_page(rel, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Quantization, TableSpec};

    fn table(rows: u64, dim: usize, q: Quantization) -> EmbeddingTable {
        EmbeddingTable::procedural(TableSpec::new(rows, dim, q), 11)
    }

    #[test]
    fn spread_layout_is_one_row_per_page() {
        let img = TableImage::new(table(50, 32, Quantization::F32), PageLayout::Spread, 16384);
        assert_eq!(img.rows_per_page(), 1);
        assert_eq!(img.pages(), 50);
        assert_eq!(img.page_of_row(17), (17, 0));
        assert_eq!(img.rows_in_page(17), 17..18);
    }

    #[test]
    fn dense_layout_packs_rows() {
        let img = TableImage::new(table(300, 32, Quantization::F32), PageLayout::Dense, 16384);
        assert_eq!(img.rows_per_page(), 128);
        assert_eq!(img.pages(), 3);
        assert_eq!(img.page_of_row(0), (0, 0));
        assert_eq!(img.page_of_row(127), (0, 127 * 128));
        assert_eq!(img.page_of_row(128), (1, 0));
        // Last page is partial.
        assert_eq!(img.rows_in_page(2), 256..300);
    }

    #[test]
    fn quantization_shrinks_page_count() {
        let f32_img = TableImage::new(table(1000, 32, Quantization::F32), PageLayout::Dense, 16384);
        let i8_img = TableImage::new(
            table(1000, 32, Quantization::Int8),
            PageLayout::Dense,
            16384,
        );
        assert!(i8_img.pages() < f32_img.pages());
        assert_eq!(i8_img.rows_per_page(), (16384 / 36) as u64);
    }

    #[test]
    fn fill_and_decode_round_trip() {
        for q in [Quantization::F32, Quantization::F16, Quantization::Int8] {
            let img = TableImage::new(table(200, 16, q), PageLayout::Dense, 4096);
            let mut page = vec![0u8; 4096];
            let (p, off) = img.page_of_row(150);
            img.fill_relative_page(p, &mut page);
            let dec = img.decode_row_at(&page, off);
            assert_eq!(dec, img.table().row_f32(150), "quant {q:?}");
        }
    }

    #[test]
    fn oracle_serves_pages_at_its_base() {
        let img = Arc::new(TableImage::new(
            table(64, 8, Quantization::F32),
            PageLayout::Spread,
            512,
        ));
        let oracle = TableImageOracle::new(img.clone(), 1000);
        let mut out = vec![0u8; 512];
        oracle.fill_page(1005, &mut out);
        let dec = img.decode_row_at(&out, 0);
        assert_eq!(dec, img.table().row_f32(5));
        // Beyond the table: untouched zeros.
        let mut out2 = vec![0u8; 512];
        oracle.fill_page(1000 + 64, &mut out2);
        assert!(out2.iter().all(|&b| b == 0));
    }

    #[test]
    #[should_panic(expected = "row larger than a page")]
    fn oversized_rows_rejected() {
        TableImage::new(table(10, 2000, Quantization::F32), PageLayout::Dense, 4096);
    }
}
