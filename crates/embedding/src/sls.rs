//! The reference SparseLengthsSum operator.

use crate::{EmbeddingTable, RowScratch};

/// One batch of embedding lookups against a single table: for each output
/// slot, the list of input rows whose vectors are summed.
///
/// This mirrors the Caffe2 `SparseLengthsSum` signature the paper offloads
/// (§4.1): a flat id list plus per-output lengths. The NDP wire format
/// flattens this into sorted `(input id, result id)` pairs — see the
/// `recssd` crate.
///
/// # Example
///
/// ```
/// use recssd_embedding::LookupBatch;
/// let batch = LookupBatch::new(vec![vec![1, 2], vec![3]]);
/// assert_eq!(batch.outputs(), 2);
/// assert_eq!(batch.total_lookups(), 3);
/// assert_eq!(batch.pairs(), vec![(1, 0), (2, 0), (3, 1)]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LookupBatch {
    per_output: Vec<Vec<u64>>,
}

impl LookupBatch {
    /// Creates a batch from per-output row lists.
    ///
    /// # Panics
    ///
    /// Panics if there are no outputs or any output has no lookups.
    pub fn new(per_output: Vec<Vec<u64>>) -> Self {
        assert!(!per_output.is_empty(), "batch needs at least one output");
        assert!(
            per_output.iter().all(|ids| !ids.is_empty()),
            "every output needs at least one lookup"
        );
        LookupBatch { per_output }
    }

    /// Number of output (reduced) vectors.
    pub fn outputs(&self) -> usize {
        self.per_output.len()
    }

    /// Total lookups across all outputs.
    pub fn total_lookups(&self) -> usize {
        self.per_output.iter().map(|v| v.len()).sum()
    }

    /// The row lists per output.
    pub fn per_output(&self) -> &[Vec<u64>] {
        &self.per_output
    }

    /// Flattens into `(input row, output slot)` pairs sorted by input row
    /// — the wire format of the NDP config command. §4.3: "Adding a
    /// restriction that this list be sorted by input ID enables more
    /// efficient processing on the SSD system."
    pub fn pairs(&self) -> Vec<(u64, u32)> {
        let mut pairs = Vec::new();
        self.pairs_into(&mut pairs);
        pairs
    }

    /// [`LookupBatch::pairs`] into a caller-supplied buffer (cleared
    /// first), so a pooled vector makes steady-state flattening
    /// allocation-free.
    pub fn pairs_into(&self, out: &mut Vec<(u64, u32)>) {
        out.clear();
        out.reserve(self.total_lookups());
        for (slot, ids) in self.per_output.iter().enumerate() {
            out.extend(ids.iter().map(|&id| (id, slot as u32)));
        }
        out.sort_unstable();
    }

    /// Every distinct row referenced, ascending.
    pub fn distinct_rows(&self) -> Vec<u64> {
        let mut rows: Vec<u64> = self
            .per_output
            .iter()
            .flat_map(|ids| ids.iter().copied())
            .collect();
        rows.sort_unstable();
        rows.dedup();
        rows
    }
}

/// The golden SLS: for each output slot, the f32 sum of the (quantisation
/// round-tripped) rows. Every accelerated path must reproduce this.
///
/// # Panics
///
/// Panics if any row index exceeds the table.
///
/// # Example
///
/// ```
/// use recssd_embedding::{sls_reference, EmbeddingTable, LookupBatch, Quantization, TableSpec};
/// let t = EmbeddingTable::dense(
///     TableSpec::new(3, 2, Quantization::F32),
///     vec![1.0, 2.0, 10.0, 20.0, 100.0, 200.0],
/// );
/// let out = sls_reference(&t, &LookupBatch::new(vec![vec![0, 2]]));
/// assert_eq!(out, vec![vec![101.0, 202.0]]);
/// ```
pub fn sls_reference(table: &EmbeddingTable, batch: &LookupBatch) -> Vec<Vec<f32>> {
    let dim = table.spec().dim;
    let mut flat = vec![0.0f32; batch.outputs() * dim];
    sls_reference_into(table, batch, &mut flat);
    flat.chunks_exact(dim).map(|c| c.to_vec()).collect()
}

/// [`sls_reference`] into a flat `outputs × dim` accumulator (zeroed
/// first), allocating nothing per lookup — the form the host runtime's
/// DRAM path uses.
///
/// # Panics
///
/// Panics if `out.len() != batch.outputs() * dim` or any row index
/// exceeds the table.
pub fn sls_reference_into(table: &EmbeddingTable, batch: &LookupBatch, out: &mut [f32]) {
    sls_reference_with(table, batch, &mut RowScratch::default(), out);
}

/// [`sls_reference_into`] through a caller-owned [`RowScratch`], so a
/// runtime issuing many reference gathers (the DRAM path) reuses one
/// scratch instead of allocating per operator.
///
/// # Panics
///
/// Panics if `out.len() != batch.outputs() * dim` or any row index
/// exceeds the table.
pub fn sls_reference_with(
    table: &EmbeddingTable,
    batch: &LookupBatch,
    scratch: &mut RowScratch,
    out: &mut [f32],
) {
    let dim = table.spec().dim;
    assert_eq!(
        out.len(),
        batch.outputs() * dim,
        "flat output has wrong length"
    );
    out.fill(0.0);
    for (slot, ids) in batch.per_output().iter().enumerate() {
        let acc = &mut out[slot * dim..(slot + 1) * dim];
        for &id in ids {
            table.accumulate_row(id, scratch, acc);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Quantization, TableSpec};

    #[test]
    fn pairs_are_sorted_by_input_id() {
        let b = LookupBatch::new(vec![vec![9, 1], vec![5, 1]]);
        assert_eq!(b.pairs(), vec![(1, 0), (1, 1), (5, 1), (9, 0)]);
        assert_eq!(b.distinct_rows(), vec![1, 5, 9]);
    }

    #[test]
    fn reference_sums_rows() {
        let t = EmbeddingTable::dense(
            TableSpec::new(4, 3, Quantization::F32),
            vec![
                1.0, 0.0, 0.0, //
                0.0, 1.0, 0.0, //
                0.0, 0.0, 1.0, //
                1.0, 1.0, 1.0,
            ],
        );
        let out = sls_reference(&t, &LookupBatch::new(vec![vec![0, 1, 2], vec![3, 3]]));
        assert_eq!(out[0], vec![1.0, 1.0, 1.0]);
        assert_eq!(out[1], vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn procedural_sums_are_order_independent() {
        // Grid values make f32 addition exact, so any permutation of the
        // lookup order gives bit-identical sums — the property the NDP
        // correctness tests rely on.
        let t = EmbeddingTable::procedural(TableSpec::new(1000, 32, Quantization::F32), 3);
        let ids: Vec<u64> = (0..200).map(|i| (i * 37) % 1000).collect();
        let fwd = sls_reference(&t, &LookupBatch::new(vec![ids.clone()]));
        let mut rev_ids = ids;
        rev_ids.reverse();
        let rev = sls_reference(&t, &LookupBatch::new(vec![rev_ids]));
        assert_eq!(fwd, rev);
    }

    #[test]
    fn duplicate_ids_count_twice() {
        let t = EmbeddingTable::dense(TableSpec::new(1, 1, Quantization::F32), vec![2.5]);
        let out = sls_reference(&t, &LookupBatch::new(vec![vec![0, 0, 0]]));
        assert_eq!(out[0], vec![7.5]);
    }

    #[test]
    #[should_panic(expected = "at least one output")]
    fn empty_batch_panics() {
        LookupBatch::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "at least one lookup")]
    fn empty_output_panics() {
        LookupBatch::new(vec![vec![1], vec![]]);
    }
}
