//! Table specifications and contents.

use std::fmt;
use std::sync::Arc;

use recssd_sim::rng::mix64;

use crate::Quantization;

/// Identifier of an embedding table within a model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(pub u32);

impl fmt::Display for TableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "table{}", self.0)
    }
}

/// Shape and storage format of one embedding table.
///
/// # Example
///
/// ```
/// use recssd_embedding::{Quantization, TableSpec};
/// // The Table 1 / RM1 configuration: 1M rows of 32 features.
/// let spec = TableSpec::new(1_000_000, 32, Quantization::F32);
/// assert_eq!(spec.row_bytes(), 128);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TableSpec {
    /// Number of rows (embedding vectors).
    pub rows: u64,
    /// Features per vector.
    pub dim: usize,
    /// Element storage format.
    pub quant: Quantization,
}

impl TableSpec {
    /// Creates a spec.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `dim` is zero.
    pub fn new(rows: u64, dim: usize, quant: Quantization) -> Self {
        assert!(rows > 0, "table must have rows");
        assert!(dim > 0, "vectors must have features");
        TableSpec { rows, dim, quant }
    }

    /// Encoded bytes per row.
    pub fn row_bytes(&self) -> usize {
        self.quant.row_bytes(self.dim)
    }
}

/// Where a table's values come from.
#[derive(Clone)]
pub enum TableSource {
    /// Deterministic hash-generated values on the grid k/64,
    /// k ∈ [−128, 128): no memory footprint, exact f32 summation.
    Procedural {
        /// Seed decorrelating tables from each other.
        seed: u64,
    },
    /// Explicit row-major values (tests and user data).
    Dense(Arc<Vec<f32>>),
}

impl fmt::Debug for TableSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableSource::Procedural { seed } => {
                f.debug_struct("Procedural").field("seed", seed).finish()
            }
            TableSource::Dense(v) => f.debug_struct("Dense").field("values", &v.len()).finish(),
        }
    }
}

/// An embedding table: spec plus contents.
///
/// # Example
///
/// ```
/// use recssd_embedding::{EmbeddingTable, Quantization, TableSpec};
/// let t = EmbeddingTable::procedural(TableSpec::new(100, 8, Quantization::F32), 42);
/// let row = t.row_f32(7);
/// assert_eq!(row.len(), 8);
/// // Values lie on the exact-summation grid.
/// assert!(row.iter().all(|v| (v * 64.0).fract() == 0.0 && v.abs() < 2.0));
/// ```
#[derive(Debug, Clone)]
pub struct EmbeddingTable {
    spec: TableSpec,
    source: TableSource,
    /// Offset added to row indices before consulting `source`: a slice
    /// created by [`EmbeddingTable::slice`] views rows
    /// `base_row..base_row + spec.rows` of the parent table.
    base_row: u64,
    /// Row indirection applied *before* `base_row`: a gather view created
    /// by [`EmbeddingTable::select`] stores at local row `j` the contents
    /// of parent row `base_row + remap[j]`.
    remap: Option<Arc<Vec<u64>>>,
}

impl EmbeddingTable {
    /// A table with hash-generated contents.
    pub fn procedural(spec: TableSpec, seed: u64) -> Self {
        EmbeddingTable {
            spec,
            source: TableSource::Procedural { seed },
            base_row: 0,
            remap: None,
        }
    }

    /// A table with explicit row-major values.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != rows * dim`.
    pub fn dense(spec: TableSpec, values: Vec<f32>) -> Self {
        assert_eq!(
            values.len() as u64,
            spec.rows * spec.dim as u64,
            "dense table has wrong element count"
        );
        EmbeddingTable {
            spec,
            source: TableSource::Dense(Arc::new(values)),
            base_row: 0,
            remap: None,
        }
    }

    /// A zero-copy row-range view: local row `j` of the slice holds the
    /// exact contents of row `range.start + j` of this table. This is the
    /// primitive behind row-range sharding — each shard registers a slice
    /// of the full table, so shard-local lookups are bit-identical to the
    /// parent's rows.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or exceeds the table.
    ///
    /// # Example
    ///
    /// ```
    /// use recssd_embedding::{EmbeddingTable, Quantization, TableSpec};
    /// let t = EmbeddingTable::procedural(TableSpec::new(100, 8, Quantization::F32), 3);
    /// let s = t.slice(40..60);
    /// assert_eq!(s.spec().rows, 20);
    /// assert_eq!(s.row_f32(5), t.row_f32(45));
    /// ```
    pub fn slice(&self, range: std::ops::Range<u64>) -> EmbeddingTable {
        assert!(
            range.start < range.end && range.end <= self.spec.rows,
            "slice {range:?} out of range for a {}-row table",
            self.spec.rows
        );
        let spec = TableSpec {
            rows: range.end - range.start,
            ..self.spec
        };
        match &self.remap {
            // A contiguous slice of a gather view is itself a (smaller)
            // gather view over the same base.
            Some(m) => EmbeddingTable {
                spec,
                source: self.source.clone(),
                base_row: self.base_row,
                remap: Some(Arc::new(
                    m[range.start as usize..range.end as usize].to_vec(),
                )),
            },
            None => EmbeddingTable {
                spec,
                source: self.source.clone(),
                base_row: self.base_row + range.start,
                remap: None,
            },
        }
    }

    /// A zero-copy *gather* view: local row `j` of the view holds the
    /// exact contents of row `rows[j]` of this table. Rows may appear in
    /// any order (and may repeat), which makes this the primitive behind
    /// frequency-ordered placement — a packed on-flash image stores the
    /// same vectors as the logical table, just at permuted storage rows,
    /// and a host DRAM tier views exactly the pinned hot rows.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or any index is out of range.
    ///
    /// # Example
    ///
    /// ```
    /// use recssd_embedding::{EmbeddingTable, Quantization, TableSpec};
    /// let t = EmbeddingTable::procedural(TableSpec::new(100, 8, Quantization::F32), 3);
    /// let v = t.select(&[90, 7, 7]);
    /// assert_eq!(v.spec().rows, 3);
    /// assert_eq!(v.row_f32(0), t.row_f32(90));
    /// assert_eq!(v.row_f32(1), v.row_f32(2));
    /// ```
    pub fn select(&self, rows: &[u64]) -> EmbeddingTable {
        assert!(!rows.is_empty(), "gather view must select at least one row");
        let remap: Vec<u64> = rows
            .iter()
            .map(|&r| {
                assert!(
                    r < self.spec.rows,
                    "selected row {r} out of range for a {}-row table",
                    self.spec.rows
                );
                match &self.remap {
                    Some(m) => m[r as usize],
                    None => r,
                }
            })
            .collect();
        EmbeddingTable {
            spec: TableSpec {
                rows: rows.len() as u64,
                ..self.spec
            },
            source: self.source.clone(),
            base_row: self.base_row,
            remap: Some(Arc::new(remap)),
        }
    }

    /// First parent row this table views (0 unless created by
    /// [`EmbeddingTable::slice`]).
    pub fn base_row(&self) -> u64 {
        self.base_row
    }

    /// The table's spec.
    pub fn spec(&self) -> TableSpec {
        self.spec
    }

    /// Raw (pre-quantization) value at `(row, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `j` is out of range.
    pub fn raw_value(&self, row: u64, j: usize) -> f32 {
        assert!(row < self.spec.rows, "row out of range");
        assert!(j < self.spec.dim, "feature out of range");
        let row = match &self.remap {
            Some(m) => m[row as usize],
            None => row,
        };
        let row = self.base_row + row;
        match &self.source {
            TableSource::Procedural { seed } => {
                // Values on the grid k/64 with |k| <= 127: exactly
                // representable in f32, f16 *and* power-of-two-scaled
                // int8, so every execution path sums them exactly.
                let h = mix64(seed ^ (row.wrapping_mul(0x9E37_79B9_7F4A_7C15) + j as u64));
                ((h % 255) as i64 - 127) as f32 / 64.0
            }
            TableSource::Dense(v) => v[(row * self.spec.dim as u64) as usize + j],
        }
    }

    /// Raw row values into `vals` (cleared first; no allocation once the
    /// buffer has grown to `dim`).
    fn fill_raw_values(&self, row: u64, vals: &mut Vec<f32>) {
        vals.clear();
        vals.extend((0..self.spec.dim).map(|j| self.raw_value(row, j)));
    }

    /// Encodes `row` into its on-device byte format using `scratch` for
    /// the intermediate raw values (no allocation once warm).
    pub fn encode_row_with(&self, row: u64, scratch: &mut RowScratch, out: &mut [u8]) {
        self.fill_raw_values(row, &mut scratch.vals);
        self.spec.quant.encode(&scratch.vals, out);
    }

    /// Encodes `row` into its on-device byte format.
    pub fn encode_row(&self, row: u64, out: &mut [u8]) {
        self.encode_row_with(row, &mut RowScratch::default(), out);
    }

    /// Accumulates the *decoded* row (after the quantisation round trip)
    /// into `acc` without allocating once `scratch` is warm — the
    /// host-DRAM gather primitive of the DRAM reference and the static
    /// hot partition.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range or `acc.len() != dim`.
    pub fn accumulate_row(&self, row: u64, scratch: &mut RowScratch, acc: &mut [f32]) {
        assert_eq!(acc.len(), self.spec.dim, "accumulator has wrong dim");
        let row_bytes = self.spec.row_bytes();
        scratch.bytes.clear();
        scratch.bytes.resize(row_bytes, 0);
        // Split borrow: encode reads `vals`, writes `bytes`.
        let RowScratch { vals, bytes } = scratch;
        self.fill_raw_values(row, vals);
        self.spec.quant.encode(vals, bytes);
        self.spec.quant.decode_accumulate(bytes, acc);
    }

    /// The row as the *decoded* f32 vector — i.e. after the quantisation
    /// round trip, which is what every execution path (DRAM reference,
    /// baseline SSD, NDP) observes.
    pub fn row_f32(&self, row: u64) -> Vec<f32> {
        let mut out = vec![0.0f32; self.spec.dim];
        self.accumulate_row(row, &mut RowScratch::default(), &mut out);
        out
    }
}

/// Reusable buffers for per-row encode/decode round trips. One scratch
/// serves any table; its buffers grow to the largest row seen and stay.
#[derive(Debug, Default, Clone)]
pub struct RowScratch {
    vals: Vec<f32>,
    bytes: Vec<u8>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn procedural_values_are_deterministic_and_gridded() {
        let spec = TableSpec::new(1000, 16, Quantization::F32);
        let a = EmbeddingTable::procedural(spec, 7);
        let b = EmbeddingTable::procedural(spec, 7);
        let c = EmbeddingTable::procedural(spec, 8);
        for row in [0u64, 13, 999] {
            assert_eq!(a.row_f32(row), b.row_f32(row));
            for j in 0..16 {
                let v = a.raw_value(row, j);
                assert!((-2.0..2.0).contains(&v));
                assert_eq!((v * 64.0).fract(), 0.0, "on the 1/64 grid");
            }
        }
        assert_ne!(a.row_f32(0), c.row_f32(0), "different seeds differ");
    }

    #[test]
    fn dense_tables_return_their_values() {
        let spec = TableSpec::new(2, 3, Quantization::F32);
        let t = EmbeddingTable::dense(spec, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(t.row_f32(0), vec![1.0, 2.0, 3.0]);
        assert_eq!(t.row_f32(1), vec![4.0, 5.0, 6.0]);
        assert_eq!(t.raw_value(1, 2), 6.0);
    }

    #[test]
    fn quantized_row_f32_reflects_round_trip() {
        let spec16 = TableSpec::new(10, 8, Quantization::F16);
        let t = EmbeddingTable::procedural(spec16, 1);
        // Grid values survive f16 exactly.
        for j in 0..8 {
            assert_eq!(t.row_f32(3)[j], t.raw_value(3, j));
        }
    }

    #[test]
    fn encode_row_matches_manual_encoding() {
        let spec = TableSpec::new(4, 4, Quantization::F32);
        let t = EmbeddingTable::procedural(spec, 5);
        let mut buf = vec![0u8; spec.row_bytes()];
        t.encode_row(2, &mut buf);
        let dec = Quantization::F32.decode(&buf, 4);
        assert_eq!(dec, t.row_f32(2));
    }

    #[test]
    fn slices_view_parent_rows_exactly() {
        let t = EmbeddingTable::procedural(TableSpec::new(100, 4, Quantization::F32), 9);
        let s = t.slice(30..70);
        assert_eq!(s.spec().rows, 40);
        assert_eq!(s.base_row(), 30);
        for local in [0u64, 17, 39] {
            assert_eq!(s.row_f32(local), t.row_f32(30 + local));
        }
        // Slices of slices compose.
        let ss = s.slice(10..20);
        assert_eq!(ss.row_f32(3), t.row_f32(43));
        // Dense tables slice too.
        let d = EmbeddingTable::dense(
            TableSpec::new(3, 2, Quantization::F32),
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        );
        assert_eq!(d.slice(1..3).row_f32(1), vec![5.0, 6.0]);
    }

    #[test]
    fn select_gathers_arbitrary_rows() {
        let t = EmbeddingTable::procedural(TableSpec::new(100, 4, Quantization::F32), 9);
        let v = t.select(&[99, 0, 42, 42]);
        assert_eq!(v.spec().rows, 4);
        assert_eq!(v.row_f32(0), t.row_f32(99));
        assert_eq!(v.row_f32(1), t.row_f32(0));
        assert_eq!(v.row_f32(2), t.row_f32(42));
        assert_eq!(v.row_f32(3), t.row_f32(42));
        // Views compose: select of a slice, slice of a select, select of
        // a select all resolve to the same parent rows.
        let s = t.slice(30..70);
        assert_eq!(s.select(&[5]).row_f32(0), t.row_f32(35));
        assert_eq!(v.slice(2..4).row_f32(0), t.row_f32(42));
        assert_eq!(v.select(&[1]).row_f32(0), t.row_f32(0));
        // Dense tables gather too.
        let d = EmbeddingTable::dense(
            TableSpec::new(3, 2, Quantization::F32),
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        );
        assert_eq!(d.select(&[2, 0]).row_f32(0), vec![5.0, 6.0]);
        assert_eq!(d.select(&[2, 0]).row_f32(1), vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "selected row 5 out of range")]
    fn select_out_of_range_panics() {
        EmbeddingTable::procedural(TableSpec::new(5, 2, Quantization::F32), 0).select(&[0, 5]);
    }

    #[test]
    #[should_panic(expected = "at least one row")]
    fn select_empty_panics() {
        EmbeddingTable::procedural(TableSpec::new(5, 2, Quantization::F32), 0).select(&[]);
    }

    #[test]
    #[should_panic(expected = "out of range for a")]
    fn oversized_slice_panics() {
        EmbeddingTable::procedural(TableSpec::new(10, 2, Quantization::F32), 0).slice(5..11);
    }

    #[test]
    #[should_panic(expected = "row out of range")]
    fn out_of_range_row_panics() {
        let t = EmbeddingTable::procedural(TableSpec::new(2, 2, Quantization::F32), 0);
        t.raw_value(2, 0);
    }

    #[test]
    #[should_panic(expected = "wrong element count")]
    fn dense_wrong_size_panics() {
        EmbeddingTable::dense(TableSpec::new(2, 2, Quantization::F32), vec![0.0; 3]);
    }
}
