//! Property tests pinning the decode-path refactor: the allocation-free
//! `decode_into` / `decode_accumulate` variants must bit-match the legacy
//! `decode` across every quantization and dimension (odd dims included),
//! and the `TableImage` row accessors must agree with each other.

use proptest::prelude::*;
use recssd_embedding::{
    EmbeddingTable, PageLayout, Quantization, RowScratch, TableImage, TableSpec,
};
use recssd_sim::rng::Xoshiro256;

fn quant_from(k: u8) -> Quantization {
    match k % 3 {
        0 => Quantization::F32,
        1 => Quantization::F16,
        _ => Quantization::Int8,
    }
}

/// Random row values in (-4, 4) — wider than the procedural grid so the
/// equivalence holds for values that do *not* survive quantisation
/// exactly.
fn random_row(seed: u64, dim: usize) -> Vec<f32> {
    let mut rng = Xoshiro256::seed_from(seed);
    (0..dim)
        .map(|_| (rng.next_f64() * 8.0 - 4.0) as f32)
        .collect()
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// `decode_into` writes exactly what `decode` returns, bit for bit.
    #[test]
    fn decode_into_bit_matches_decode(qk in 0u8..3, dim in 1usize..67, seed in 0u64..100_000) {
        let q = quant_from(qk);
        let vals = random_row(seed, dim);
        let mut buf = vec![0u8; q.row_bytes(dim)];
        q.encode(&vals, &mut buf);

        let legacy = q.decode(&buf, dim);
        let mut into = vec![7.5f32; dim]; // poisoned: every slot must be overwritten
        q.decode_into(&buf, &mut into);
        prop_assert_eq!(bits(&legacy), bits(&into), "quant {:?} dim {}", q, dim);
    }

    /// `decode_accumulate` equals decode-then-add with the same operand
    /// order, bit for bit.
    #[test]
    fn decode_accumulate_bit_matches_decode_then_add(
        qk in 0u8..3,
        dim in 1usize..67,
        seed in 0u64..100_000,
    ) {
        let q = quant_from(qk);
        let vals = random_row(seed, dim);
        let mut buf = vec![0u8; q.row_bytes(dim)];
        q.encode(&vals, &mut buf);

        let base = random_row(seed ^ 0xABCD_EF01, dim);
        let mut fused = base.clone();
        q.decode_accumulate(&buf, &mut fused);

        let legacy = q.decode(&buf, dim);
        let manual: Vec<f32> = base.iter().zip(&legacy).map(|(a, v)| a + v).collect();
        prop_assert_eq!(bits(&manual), bits(&fused), "quant {:?} dim {}", q, dim);
    }

    /// The `TableImage` page-level accessors agree: `accumulate_row_at`
    /// on a zeroed accumulator equals `decode_row_at`, which equals the
    /// table's own round-tripped row.
    #[test]
    fn table_image_row_accessors_agree(qk in 0u8..3, dim in 1usize..33, seed in 0u64..1000) {
        let q = quant_from(qk);
        let rows = 64u64;
        let img = TableImage::new(
            EmbeddingTable::procedural(TableSpec::new(rows, dim, q), seed),
            PageLayout::Dense,
            4096,
        );
        let row = seed % rows;
        let (page, off) = img.page_of_row(row);
        let mut page_buf = vec![0u8; 4096];
        img.fill_relative_page(page, &mut page_buf);

        let legacy = img.decode_row_at(&page_buf, off);
        let mut via_into = vec![3.25f32; dim];
        img.decode_row_into(&page_buf, off, &mut via_into);
        let mut via_acc = vec![0.0f32; dim];
        img.accumulate_row_at(&page_buf, off, &mut via_acc);

        prop_assert_eq!(bits(&legacy), bits(&via_into));
        prop_assert_eq!(bits(&legacy), bits(&via_acc));
        prop_assert_eq!(bits(&legacy), bits(&img.table().row_f32(row)));
    }

    /// `EmbeddingTable::accumulate_row` with a reused scratch matches the
    /// allocating `row_f32`, for every quantization.
    #[test]
    fn table_accumulate_row_matches_row_f32(qk in 0u8..3, dim in 1usize..50, seed in 0u64..1000) {
        let q = quant_from(qk);
        let table = EmbeddingTable::procedural(TableSpec::new(32, dim, q), seed);
        let mut scratch = RowScratch::default();
        for row in [0u64, 13, 31] {
            let mut acc = vec![0.0f32; dim];
            table.accumulate_row(row, &mut scratch, &mut acc);
            prop_assert_eq!(bits(&acc), bits(&table.row_f32(row)));
        }
    }
}
