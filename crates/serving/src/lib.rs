//! **recssd-serving**: the sharded multi-device serving layer of the
//! RecSSD reproduction.
//!
//! The core simulator models *one* device answering *one* operator at a
//! time; production recommendation inference is many devices answering
//! concurrent, batched traffic. This crate adds that regime:
//!
//! * [`ServingRuntime`] — owns N independent [`recssd::System`]s (one per
//!   SSD shard) on one virtual timeline, row-range-shards every embedding
//!   table across them ([`ShardMap`] + `EmbeddingTable::slice`), splits
//!   each incoming request into per-shard sub-batches, and merges the
//!   partial `SlsOutput`s back — bit-identical to the unsharded
//!   `sls_reference` on all three execution paths, regardless of how
//!   completions interleave.
//! * **Operator pipelining** — each shard keeps up to
//!   [`ServingConfig::depth`] device operators in flight simultaneously
//!   (bounded co-simulation through `System::run_until`), so NVMe
//!   submission, firmware service and flash channel/die occupancy
//!   overlap across requests instead of draining between operators; at
//!   one shard, depth 4 roughly doubles NDP FIFO throughput and lifts
//!   flash channel utilisation from ~40% to ~75%.
//! * **Hybrid placement** — tables registered through
//!   [`ServingRuntime::add_table_placed`] carry a frequency-profiled
//!   `recssd_placement::TablePlacement`: their hottest rows are pinned
//!   into a host **DRAM tier** (one more pipelined server on the same
//!   timeline, always serving over the DRAM path), the cold tail is
//!   packed onto flash in heat order so co-hot rows share pages, and
//!   every request splits into a DRAM-tier partial plus per-shard device
//!   sub-batches — merged bit-identically to the unplaced path
//!   (property-tested in `tests/placement_equivalence.rs`).
//! * **Adaptive placement** — plans are versioned, live-swappable
//!   routing generations: [`ServingRuntime::refresh_placement`] binds a
//!   new plan into spare A/B registry slots, reads the promoted rows off
//!   the device as real migration operators, and flips admissions to the
//!   new plan only when that work drains (in-flight requests keep their
//!   generation, so outputs stay bit-identical across the boundary).
//!   [`ServingRuntime::enable_adaptive`] closes the loop under drifting
//!   skew: every [`AdaptivePolicy::epoch_requests`] admissions the
//!   runtime re-profiles live traffic (decayed EWMA + change-point
//!   flush), splits one global DRAM budget across tables by marginal hit
//!   rate, and refreshes any table whose rebuilt hot set is worth the
//!   migration.
//! * [`SchedulePolicy`] — FIFO, or size-capped micro-batching that
//!   coalesces *queued* sub-batches touching the same shard into one
//!   device operator (amortising per-command fixed costs, the
//!   RecNMP/MicroRec batching result); a shard with free operator
//!   capacity always dispatches immediately.
//! * [`ServingStats`] — per-request queue/service/e2e latency recorded in
//!   HDR-style log-bucket histograms (p50/p95/p99/p999), plus per-shard
//!   operator occupancy, flash channel-utilisation, DRAM-tier hit-rate /
//!   occupancy / per-tier service-latency and FTL page-cache telemetry
//!   ([`ServingRuntime::shard_occupancy`] /
//!   [`ServingRuntime::channel_utilisation`] /
//!   [`ServingRuntime::tier_occupancy`] /
//!   [`ServingRuntime::ftl_cache_stats`]).
//! * [`LoadGen`] — open-loop (Poisson/uniform arrivals) and closed-loop
//!   (client population) generators with Zipf-skewed per-table traffic.
//! * **Resilience** — [`ServingRuntime::inject_faults`] arms the device
//!   layers' deterministic, seeded fault plans (`recssd::FaultConfig`:
//!   transient ECC-retried reads, uncorrectable page errors, firmware
//!   stalls, shard brownouts) per shard, and [`FaultPolicy`] governs the
//!   host-side response: per-sub-batch retries with simulated-time
//!   exponential backoff, NDP→baseline path fallback, per-request
//!   deadlines, and a per-shard circuit breaker. Requests whose rows are
//!   unrecoverable complete *degraded* — missing rows counted and their
//!   output slots flagged ([`CompletedRequest::missing_slots`]), never
//!   silently wrong: every non-flagged slot stays bit-identical to
//!   `sls_reference` (property-tested in `tests/fault_injection.rs`,
//!   which also checks that an all-zero-rate fault plan reproduces the
//!   fault-free run bit-for-bit and that a seed replays identically).
//!
//! # Quickstart
//!
//! ```
//! use recssd_serving::{
//!     LoadGen, LoadMode, SchedulePolicy, ServingConfig, ServingRuntime, SlsPath, TrafficSpec,
//! };
//! use recssd_embedding::{EmbeddingTable, Quantization, TableSpec};
//! use recssd_sim::SimDuration;
//!
//! let cfg = ServingConfig::small_wide(2, SchedulePolicy::Fifo);
//! let mut rt = ServingRuntime::new(&cfg);
//! let table = rt.add_table(EmbeddingTable::procedural(
//!     TableSpec::new(512, 16, Quantization::F32),
//!     1,
//! ));
//!
//! let mut gen = LoadGen::new(
//!     &rt,
//!     vec![table],
//!     TrafficSpec { outputs: 2, lookups_per_output: 4, zipf_exponent: 1.2 },
//!     LoadMode::Closed { clients: 4, think: SimDuration::ZERO },
//!     7,
//! )
//! .with_verify_every(1);
//!
//! let report = gen.run(&mut rt, SlsPath::Ndp(Default::default()), 16);
//! assert_eq!(report.requests, 16);
//! assert_eq!(report.verified, 16); // bit-identical to sls_reference
//! assert!(report.e2e.p99 >= report.e2e.p50);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod loadgen;
mod par;
mod policy;
mod runtime;
mod shard;
mod telemetry;

pub use loadgen::{LoadGen, LoadMode, LoadReport, TrafficSpec};
pub use policy::SchedulePolicy;
pub use runtime::{
    AdaptivePolicy, CompletedRequest, ExecMode, FaultPolicy, RequestId, ServedTableId,
    ServingConfig, ServingError, ServingRuntime,
};
pub use shard::{ShardMap, SlsPath};
pub use telemetry::{PathAttribution, ServingStats};

// Per-channel engine-pool knobs (`cfg.system.ssd.ftl.engines`), so
// serving consumers can enable in-SSD compute engines without a
// device-crate dependency.
pub use recssd::{EnginePoolConfig, MergePlacement};

pub use recssd_obs::{
    bottleneck_report, chrome_trace_json, coverage_report, critical_path_report,
    request_critical_paths, utilization_timelines, validate_spans, BottleneckReport, CoverageGap,
    CriticalPathReport, MetricValue, PathHeadroom, PathProfile, Phase, RequestCoverage,
    RequestProfile, ResourceKind, ResourceUse, SpanRec, TraceCheck, UtilWindow,
    UtilizationTimeline, WallPhase, WallPhaseReport, WorkerProfile,
};
