//! Row-range sharding of embedding tables across devices.
//!
//! Each logical table is split into contiguous row ranges, one per shard;
//! shard `i` registers `table.slice(range_i)` with its own simulated
//! [`recssd::System`], so a global row `r` lives at local row
//! `r - range_i.start` on exactly one device. An incoming lookup batch is
//! split into per-shard *sub-batches* carrying local rows plus the global
//! output slot each local output folds into.

use recssd::{LookupBatch, SlsOptions, SpanId};
use recssd_sim::SimTime;

/// Where a request's embedding lookups execute — the three paths the paper
/// compares, here selectable per request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlsPath {
    /// Tables in host DRAM (the DRAM baseline).
    Dram,
    /// Conventional NVMe reads + host accumulation (COTS SSD).
    Baseline(SlsOptions),
    /// The RecSSD NDP offload.
    Ndp(SlsOptions),
}

impl SlsPath {
    /// Short label for reports.
    pub fn name(&self) -> &'static str {
        match self {
            SlsPath::Dram => "dram",
            SlsPath::Baseline(_) => "baseline",
            SlsPath::Ndp(_) => "ndp",
        }
    }
}

/// An even partition of `rows` into `shards` contiguous ranges (the first
/// `rows % shards` ranges get one extra row).
///
/// # Example
///
/// ```
/// use recssd_serving::ShardMap;
/// let m = ShardMap::new(10, 3);
/// assert_eq!(m.range(0), 0..4);
/// assert_eq!(m.range(1), 4..7);
/// assert_eq!(m.range(2), 7..10);
/// assert_eq!(m.shard_of(6), 1);
/// assert_eq!(m.local_row(6), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMap {
    rows: u64,
    shards: usize,
}

impl ShardMap {
    /// Creates a map of `rows` over `shards` ranges.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or exceeds `rows` (an empty shard would
    /// serve nothing).
    pub fn new(rows: u64, shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        assert!(
            shards as u64 <= rows,
            "cannot split {rows} rows over {shards} shards"
        );
        ShardMap { rows, shards }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Total rows sharded.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    fn base(&self) -> u64 {
        self.rows / self.shards as u64
    }

    fn rem(&self) -> u64 {
        self.rows % self.shards as u64
    }

    /// The contiguous row range owned by `shard`.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn range(&self, shard: usize) -> std::ops::Range<u64> {
        assert!(shard < self.shards, "shard out of range");
        let (base, rem) = (self.base(), self.rem());
        let s = shard as u64;
        let start = s * base + s.min(rem);
        let len = base + u64::from(s < rem);
        start..start + len
    }

    /// The shard owning global `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    #[inline]
    pub fn shard_of(&self, row: u64) -> usize {
        assert!(row < self.rows, "row out of range");
        let (base, rem) = (self.base(), self.rem());
        let fat = rem * (base + 1);
        if row < fat {
            (row / (base + 1)) as usize
        } else {
            (rem + (row - fat) / base) as usize
        }
    }

    /// The row index local to its owning shard.
    #[inline]
    pub fn local_row(&self, row: u64) -> u64 {
        row - self.range(self.shard_of(row)).start
    }
}

/// Whose partial sums a sub-batch carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SubOwner {
    /// A client request (by request id).
    Request(u64),
    /// Plan-migration work for the given served table: promoted rows
    /// being read off the device or loaded into the DRAM tier. Outputs
    /// are discarded; completion advances the table's pending plan.
    Migration(usize),
}

/// One shard's slice of a request: local rows per (local) output, plus the
/// global output slot each folds into.
#[derive(Debug, Clone)]
pub(crate) struct SubBatch {
    /// Whose work this is.
    pub owner: SubOwner,
    /// Logical (served) table index.
    pub table: usize,
    /// The routing generation (index into the served table's plan list)
    /// this sub-batch was split under. Local rows are meaningless under
    /// any other generation, so merging and device-table resolution key
    /// on it — the double-buffering that lets an old plan drain while a
    /// new one admits.
    pub plan: u32,
    /// Execution path (merge compatibility key with `table`).
    pub path: SlsPath,
    /// Local rows per local output slot (every entry non-empty).
    pub per_output: Vec<Vec<u64>>,
    /// Global output slot per local output.
    pub slots: Vec<u32>,
    /// Times this sub-batch has been dispatched and failed (drives the
    /// retry/backoff/fallback policy; 0 on first dispatch).
    pub attempts: u32,
    /// Trace span pre-allocated at admission (emitted when the sub-batch
    /// resolves: merged, dropped, or retired). `SpanId::NONE` untraced.
    pub span: SpanId,
    /// When the sub-batch was split off its request (= the arrival
    /// instant; migration subs are born at refresh time).
    pub born: SimTime,
    /// When it last entered a shard queue (advanced by retry re-queues)
    /// — the start of the traced `sub:wait` window.
    pub enqueued: SimTime,
}

/// Merge compatibility key: sub-batches coalesce only when they target
/// the same table under the same plan generation over the same path, and
/// migration work never merges into client operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct MergeKey {
    pub table: usize,
    pub plan: u32,
    pub path: SlsPath,
    pub migration: bool,
}

impl SubBatch {
    /// The merge compatibility key.
    pub fn merge_key(&self) -> MergeKey {
        MergeKey {
            table: self.table,
            plan: self.plan,
            path: self.path,
            migration: matches!(self.owner, SubOwner::Migration(_)),
        }
    }

    /// Total lookups carried.
    pub fn lookups(&self) -> usize {
        self.per_output.iter().map(|v| v.len()).sum()
    }
}

/// Sentinel in [`Routing::hot_index`] marking a row as cold
/// (device-resident).
pub(crate) const COLD: u32 = u32::MAX;

/// Placement routing state of one served table, frozen from a
/// [`recssd_placement::TablePlacement`] when the table is registered.
#[derive(Debug)]
pub(crate) struct Routing {
    /// Global row → tier-local row of the DRAM tier's gather view
    /// (position within the plan's heat-ordered hot list), dense per row
    /// with [`COLD`] for device-resident rows — the split consults this
    /// once per lookup, so it is an array access, not a hash probe.
    pub hot_index: Vec<u32>,
    /// Per device shard: shard-local logical row → packed storage row of
    /// the frequency-ordered on-flash image.
    pub storage: Vec<Vec<u32>>,
    /// The table's id within the tier [`recssd::System`] (`None` when the
    /// plan pinned nothing — packing still applies).
    pub tier_table: Option<recssd::TableId>,
}

/// Splits `batch` (global rows) into per-shard sub-batches, plus — when
/// `routing` carries a hot set — a DRAM-tier sub-batch of the hot rows
/// (always executed over [`SlsPath::Dram`], whatever the request path).
/// Device-shard rows are translated to packed storage rows so the
/// frequency-ordered on-flash image is addressed correctly. Returns the
/// optional tier sub-batch and one entry per device shard that owns at
/// least one looked-up row, in shard order.
pub(crate) fn split_batch(
    map: &ShardMap,
    routing: Option<&Routing>,
    req: u64,
    table: usize,
    plan: u32,
    path: SlsPath,
    batch: &LookupBatch,
) -> (Option<SubBatch>, Vec<(usize, SubBatch)>) {
    let mut tier: Option<SubBatch> = None;
    let mut per_shard: Vec<Option<SubBatch>> = (0..map.shards()).map(|_| None).collect();
    let new_sub = |path: SlsPath| SubBatch {
        owner: SubOwner::Request(req),
        table,
        plan,
        path,
        per_output: Vec::new(),
        slots: Vec::new(),
        attempts: 0,
        span: SpanId::NONE,
        born: SimTime::ZERO,
        enqueued: SimTime::ZERO,
    };
    for (slot, ids) in batch.per_output().iter().enumerate() {
        // Mark which shards this output touches while distributing ids.
        for &row in ids {
            let (sub, local) = match routing {
                Some(r) => match r.hot_index[row as usize] {
                    hot if hot != COLD => (
                        tier.get_or_insert_with(|| new_sub(SlsPath::Dram)),
                        u64::from(hot),
                    ),
                    _ => {
                        let shard = map.shard_of(row);
                        let local = r.storage[shard][map.local_row(row) as usize];
                        (
                            per_shard[shard].get_or_insert_with(|| new_sub(path)),
                            u64::from(local),
                        )
                    }
                },
                None => {
                    let shard = map.shard_of(row);
                    (
                        per_shard[shard].get_or_insert_with(|| new_sub(path)),
                        map.local_row(row),
                    )
                }
            };
            if sub.slots.last() != Some(&(slot as u32)) {
                sub.slots.push(slot as u32);
                sub.per_output.push(Vec::new());
            }
            sub.per_output.last_mut().expect("just ensured").push(local);
        }
    }
    let shards = per_shard
        .into_iter()
        .enumerate()
        .filter_map(|(shard, sub)| sub.map(|s| (shard, s)))
        .collect();
    (tier, shards)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_cover_rows_exactly_once() {
        for (rows, shards) in [(10u64, 1usize), (10, 3), (7, 7), (1000, 4), (5, 2)] {
            let m = ShardMap::new(rows, shards);
            let mut next = 0;
            for s in 0..shards {
                let r = m.range(s);
                assert_eq!(r.start, next, "gap before shard {s}");
                assert!(!r.is_empty(), "empty shard {s}");
                next = r.end;
            }
            assert_eq!(next, rows);
            for row in 0..rows {
                let s = m.shard_of(row);
                assert!(m.range(s).contains(&row));
                assert_eq!(m.range(s).start + m.local_row(row), row);
            }
        }
    }

    #[test]
    fn split_preserves_every_lookup() {
        let m = ShardMap::new(100, 3);
        let batch = LookupBatch::new(vec![vec![0, 50, 99, 50], vec![33, 34]]);
        let (tier, subs) = split_batch(&m, None, 7, 0, 0, SlsPath::Dram, &batch);
        assert!(tier.is_none(), "no routing, no tier sub-batch");
        let total: usize = subs.iter().map(|(_, s)| s.lookups()).sum();
        assert_eq!(total, batch.total_lookups());
        // Reassemble: every (global row, slot) pair appears exactly once
        // per occurrence.
        let mut pairs: Vec<(u64, u32)> = Vec::new();
        for (shard, sub) in &subs {
            let start = m.range(*shard).start;
            for (ids, &slot) in sub.per_output.iter().zip(&sub.slots) {
                for &local in ids {
                    pairs.push((start + local, slot));
                }
            }
        }
        pairs.sort_unstable();
        assert_eq!(
            pairs,
            vec![(0, 0), (33, 1), (34, 1), (50, 0), (50, 0), (99, 0)]
        );
    }

    #[test]
    fn routed_split_sends_hot_rows_to_the_tier_and_packs_cold_rows() {
        // Shards: 0..5, 5..10. Row 7 is hot (tier-local 0); storage is
        // reversed within each shard.
        let m = ShardMap::new(10, 2);
        let mut hot_index = vec![COLD; 10];
        hot_index[7] = 0;
        let routing = Routing {
            hot_index,
            storage: vec![vec![4, 3, 2, 1, 0], vec![4, 3, 2, 1, 0]],
            tier_table: None,
        };
        let batch = LookupBatch::new(vec![vec![7, 0, 9]]);
        let (tier, subs) = split_batch(&m, Some(&routing), 1, 0, 0, SlsPath::Dram, &batch);
        let tier = tier.expect("hot row routed to the tier");
        assert_eq!(tier.per_output, vec![vec![0]]);
        assert!(matches!(tier.path, SlsPath::Dram));
        // Row 0 → shard 0 local 0 → storage 4; row 9 → shard 1 local 4 → 0.
        assert_eq!(subs.len(), 2);
        assert_eq!(subs[0].1.per_output, vec![vec![4]]);
        assert_eq!(subs[1].1.per_output, vec![vec![0]]);
        let total: usize = subs.iter().map(|(_, s)| s.lookups()).sum::<usize>() + tier.lookups();
        assert_eq!(total, batch.total_lookups());
    }

    #[test]
    #[should_panic(expected = "cannot split")]
    fn more_shards_than_rows_rejected() {
        ShardMap::new(3, 4);
    }
}
