//! Closed- and open-loop load generation against the serving runtime.
//!
//! The generator produces Zipf-skewed lookup batches over the runtime's
//! registered tables (one decorrelated [`ZipfTrace`] per table, matching
//! the power-law access patterns of §3.1 of the paper) and drives the
//! runtime either *open-loop* — arrivals from an [`ArrivalProcess`],
//! regardless of how backed up the system is, the configuration that
//! exposes latency tails — or *closed-loop* — a fixed population of
//! clients, each issuing its next request when the previous one completes,
//! the configuration that measures saturated throughput.

use recssd::LookupBatch;
use recssd_sim::stats::Quantiles;
use recssd_sim::{SimDuration, SimTime};
use recssd_trace::{ArrivalProcess, RowStream, ZipfTrace};

use crate::{CompletedRequest, ServedTableId, ServingRuntime, SlsPath};

/// Shape of each generated request.
#[derive(Debug, Clone, Copy)]
pub struct TrafficSpec {
    /// Output (pooled) vectors per request.
    pub outputs: usize,
    /// Lookups summed into each output.
    pub lookups_per_output: usize,
    /// Zipf skew exponent of row popularity (must exceed 1).
    pub zipf_exponent: f64,
}

impl TrafficSpec {
    /// Lookups per request.
    pub fn lookups_per_request(&self) -> usize {
        self.outputs * self.lookups_per_output
    }
}

/// How requests are paced.
#[derive(Debug)]
pub enum LoadMode {
    /// Arrivals from the given process, independent of completions.
    Open(ArrivalProcess),
    /// `clients` concurrent issuers; each submits its next request
    /// `think` after its previous one completes.
    Closed {
        /// Concurrent client population.
        clients: usize,
        /// Per-client think time between completion and next request.
        /// Under [`crate::ExecMode::Parallel`] the effective think time
        /// is clamped up to the runtime's sync horizon
        /// ([`crate::ServingRuntime::sync_horizon`]): a faster feedback
        /// loop would react inside an already-swept lookahead window,
        /// which the runtime rejects at submission.
        think: SimDuration,
    },
}

/// Summary of one load-generation run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Requests completed.
    pub requests: u64,
    /// Lookups completed.
    pub lookups: u64,
    /// First arrival → last completion.
    pub makespan: SimDuration,
    /// Completed lookups per simulated second.
    pub lookups_per_sim_sec: f64,
    /// Mean sub-batches per dispatched device operator.
    pub batching_factor: f64,
    /// Queueing-latency quantiles (ns).
    pub queue: Quantiles,
    /// Service-latency quantiles (ns).
    pub service: Quantiles,
    /// End-to-end latency quantiles (ns).
    pub e2e: Quantiles,
    /// Requests verified bit-identical to `sls_reference`.
    pub verified: u64,
    /// Time-averaged in-flight operator count per shard (pipelining
    /// shows up as values above 1; see
    /// [`crate::ServingRuntime::shard_occupancy`]).
    pub occupancy: Vec<f64>,
    /// Mean flash channel-bus busy fraction per shard (see
    /// [`crate::ServingRuntime::channel_utilisation`]).
    pub channel_util: Vec<f64>,
    /// Fraction of placed-table lookups absorbed by the host DRAM tier
    /// (0 when the runtime serves no placed tables).
    pub tier_hit_rate: f64,
    /// Lookups the DRAM tier served.
    pub tier_lookups: u64,
    /// Time-averaged in-flight operator count of the DRAM tier.
    pub tier_occupancy: f64,
    /// Service-time quantiles of DRAM-tier operators (ns).
    pub tier_service: Quantiles,
    /// Service-time quantiles of device-shard operators (ns) — the other
    /// half of the per-tier latency split.
    pub device_service: Quantiles,
    /// Mean hit rate of the device shards' FTL page caches over the run —
    /// the counter frequency-ordered cold-tail packing is meant to raise.
    pub ftl_cache_hit_rate: f64,
    /// Mean resident fraction of the FTL page caches.
    pub ftl_cache_occupancy: f64,
    /// Placement-plan refreshes activated during the run (adaptive or
    /// explicit [`crate::ServingRuntime::refresh_placement`] calls).
    pub plan_refreshes: u64,
    /// Rows promoted into the DRAM tier across those refreshes.
    pub rows_promoted: u64,
    /// Rows demoted out of the DRAM tier across those refreshes.
    pub rows_demoted: u64,
    /// Device lookups spent reading promoted rows off flash — the modeled
    /// migration cost.
    pub migration_lookups: u64,
    /// Device operators harvested with a typed device error.
    pub faults: u64,
    /// Failed sub-batches re-queued for another attempt.
    pub retries: u64,
    /// Failed NDP sub-batches re-issued on the baseline path.
    pub fallbacks: u64,
    /// Per-shard circuit-breaker trips.
    pub breaker_trips: u64,
    /// Requests served degraded (missing rows explicitly flagged).
    pub degraded: u64,
    /// Lookups dropped from degraded requests.
    pub missing_lookups: u64,
}

impl LoadReport {
    /// Mean operator occupancy across shards.
    pub fn mean_occupancy(&self) -> f64 {
        mean(&self.occupancy)
    }

    /// Mean channel utilisation across shards.
    pub fn mean_channel_util(&self) -> f64 {
        mean(&self.channel_util)
    }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// The closed-/open-loop generator. One instance drives one run.
#[derive(Debug)]
pub struct LoadGen {
    mode: LoadMode,
    spec: TrafficSpec,
    tables: Vec<ServedTableId>,
    traces: Vec<RowStream>,
    next_table: usize,
    /// Verify every `n`-th completion against the unsharded reference
    /// (0 disables).
    verify_every: u64,
}

impl LoadGen {
    /// Creates a generator over `tables` (round-robin), with one
    /// decorrelated Zipf stream per table.
    ///
    /// # Panics
    ///
    /// Panics if `tables` is empty or the spec is degenerate.
    pub fn new(
        rt: &ServingRuntime,
        tables: Vec<ServedTableId>,
        spec: TrafficSpec,
        mode: LoadMode,
        seed: u64,
    ) -> Self {
        assert!(!tables.is_empty(), "need at least one table");
        assert!(
            spec.outputs > 0 && spec.lookups_per_output > 0,
            "degenerate traffic spec"
        );
        let traces = tables
            .iter()
            .enumerate()
            .map(|(i, &t)| {
                let rows = rt.shard_map(t).rows();
                RowStream::Zipf(ZipfTrace::new(
                    rows,
                    spec.zipf_exponent,
                    seed.wrapping_add(i as u64 * 7919),
                ))
            })
            .collect();
        LoadGen {
            mode,
            spec,
            tables,
            traces,
            next_table: 0,
            verify_every: 0,
        }
    }

    /// Replaces the per-table id streams (one per table, in table order)
    /// — how drifting-skew traffic ([`recssd_trace::DriftingZipf`]) is
    /// driven through the generator.
    ///
    /// # Panics
    ///
    /// Panics if the stream count does not match the table count.
    pub fn with_streams(mut self, streams: Vec<RowStream>) -> Self {
        assert_eq!(
            streams.len(),
            self.tables.len(),
            "one stream per table required"
        );
        self.traces = streams;
        self
    }

    /// Verifies every `n`-th completed request bit-matches the unsharded
    /// `sls_reference` (0 disables; 1 verifies everything).
    pub fn with_verify_every(mut self, n: u64) -> Self {
        self.verify_every = n;
        self
    }

    fn next_batch(&mut self) -> (ServedTableId, LookupBatch) {
        let i = self.next_table;
        self.next_table = (self.next_table + 1) % self.tables.len();
        let trace = &mut self.traces[i];
        let batch = LookupBatch::new(
            (0..self.spec.outputs)
                .map(|_| {
                    (0..self.spec.lookups_per_output)
                        .map(|_| trace.next_id())
                        .collect()
                })
                .collect(),
        );
        (self.tables[i], batch)
    }

    fn submit(&mut self, rt: &mut ServingRuntime, at: SimTime, client: u64, path: SlsPath) {
        let (table, batch) = self.next_batch();
        rt.submit_at(at, client, table, batch, path);
    }

    /// Issues `total_requests` over `path`, drives the runtime to
    /// completion and reports throughput plus latency quantiles. Runtime
    /// statistics are reset at the start so the report covers exactly this
    /// run.
    pub fn run(
        &mut self,
        rt: &mut ServingRuntime,
        path: SlsPath,
        total_requests: usize,
    ) -> LoadReport {
        rt.reset_stats();
        let mut verified = 0u64;
        let mut completed = 0u64;
        let start = rt.now();

        match &mut self.mode {
            LoadMode::Open(arrivals) => {
                let mut at = start;
                let mut times = Vec::with_capacity(total_requests);
                for _ in 0..total_requests {
                    at += arrivals.next_gap();
                    times.push(at);
                }
                for at in times {
                    self.submit(rt, at, 0, path);
                }
                while let Some(done) = rt.step().expect("serving runtime invariant violated") {
                    completed += 1;
                    verified += self.finish(rt, done);
                }
            }
            LoadMode::Closed { clients, think } => {
                let (clients, think) = (*clients, *think);
                // A closed-loop client is a feedback path: under parallel
                // execution it cannot legally react faster than the
                // conservative lookahead horizon, so the traffic model
                // clamps the think time up to it (deterministically — the
                // same clamped workload on every run). Sequential runs
                // keep the requested think time untouched.
                let think = match rt.exec_mode() {
                    crate::ExecMode::Parallel(_) => think.max(rt.sync_horizon()),
                    crate::ExecMode::Sequential => think,
                };
                // Exactly `total_requests` are issued: a population larger
                // than the request budget simply leaves some clients idle.
                let issue = total_requests;
                for c in 0..clients.min(issue) {
                    self.submit(rt, start, c as u64, path);
                }
                let mut issued = clients.min(issue);
                while let Some(done) = rt.step().expect("serving runtime invariant violated") {
                    completed += 1;
                    let client = done.client;
                    let next_at = done.finish + think;
                    verified += self.finish(rt, done);
                    if issued < issue {
                        self.submit(rt, next_at, client, path);
                        issued += 1;
                    }
                }
            }
        }
        assert_eq!(completed, rt.stats().requests.get(), "lost completions");

        let occupancy = rt.shard_occupancy();
        let channel_util = rt.channel_utilisation();
        let tier_occupancy = rt.tier_occupancy();
        let ftl = rt.ftl_cache_stats();
        let ftl_cache_hit_rate = {
            let (hits, accesses) = ftl
                .iter()
                .fold((0u64, 0u64), |(h, a), s| (h + s.hits(), a + s.accesses()));
            if accesses == 0 {
                0.0
            } else {
                hits as f64 / accesses as f64
            }
        };
        let ftl_cache_occupancy = mean(&rt.ftl_cache_occupancy());
        let stats = rt.stats();
        LoadReport {
            requests: stats.requests.get(),
            lookups: stats.lookups.get(),
            makespan: stats.makespan(),
            lookups_per_sim_sec: stats.lookups_per_sim_sec(),
            batching_factor: stats.batching_factor(),
            queue: stats.queue.quantiles(),
            service: stats.service.quantiles(),
            e2e: stats.e2e.quantiles(),
            verified,
            occupancy,
            channel_util,
            tier_hit_rate: stats.tier_hit_rate(),
            tier_lookups: stats.tier.hits(),
            tier_occupancy,
            tier_service: stats.tier_service.quantiles(),
            device_service: stats.device_service.quantiles(),
            ftl_cache_hit_rate,
            ftl_cache_occupancy,
            plan_refreshes: stats.plan_refreshes.get(),
            rows_promoted: stats.rows_promoted.get(),
            rows_demoted: stats.rows_demoted.get(),
            migration_lookups: stats.migration_lookups.get(),
            faults: stats.faults.get(),
            retries: stats.retries.get(),
            fallbacks: stats.fallbacks.get(),
            breaker_trips: stats.breaker_trips.get(),
            degraded: stats.degraded.get(),
            missing_lookups: stats.missing_lookups.get(),
        }
    }

    /// Optional verification + buffer recycling for one completion.
    fn finish(&mut self, rt: &mut ServingRuntime, done: CompletedRequest) -> u64 {
        let verify = self.verify_every > 0 && done.id.0.is_multiple_of(self.verify_every);
        if verify {
            rt.verify_bitmatch(&done);
        }
        rt.recycle_output(done.outputs);
        u64::from(verify)
    }
}
