//! Shard-queue scheduling policies.

/// How a shard's queue of sub-batches is turned into device operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulePolicy {
    /// One sub-batch per operator, strict arrival order. The baseline:
    /// every request pays the full per-operator fixed cost (driver
    /// software, NVMe command handling, NDP config processing).
    Fifo,
    /// Size-capped micro-batching: while a shard's operator slots are
    /// full, queued sub-batches that target the same table over the same
    /// path coalesce into one operator, up to `max_outputs` output slots.
    /// This amortises the per-operator fixed costs that dominate small
    /// requests (RecNMP/MicroRec-style request batching). A shard with
    /// free operator capacity dispatches *immediately* — deliberately
    /// holding a fast path idle waiting for co-batching material costs
    /// far more than it saves (the 4-shard DRAM anomaly: p95 209 µs vs
    /// 41 µs FIFO before immediate dispatch), so batches form only from
    /// genuine queueing.
    MicroBatch {
        /// Largest number of output slots per merged operator.
        max_outputs: usize,
    },
}

impl SchedulePolicy {
    /// A micro-batching configuration with a bounded merge size.
    ///
    /// # Panics
    ///
    /// Panics if `max_outputs` is zero.
    pub fn micro_batch(max_outputs: usize) -> Self {
        assert!(max_outputs > 0, "micro-batch needs at least one output");
        SchedulePolicy::MicroBatch { max_outputs }
    }

    /// Short label for reports.
    pub fn name(&self) -> &'static str {
        match self {
            SchedulePolicy::Fifo => "fifo",
            SchedulePolicy::MicroBatch { .. } => "microbatch",
        }
    }
}
