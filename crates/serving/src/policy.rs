//! Shard-queue scheduling policies.

use recssd_sim::SimDuration;

/// How a shard's queue of sub-batches is turned into device operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulePolicy {
    /// One sub-batch per operator, strict arrival order. The baseline:
    /// every request pays the full per-operator fixed cost (driver
    /// software, NVMe command handling, NDP config processing).
    Fifo,
    /// Size/deadline-aware micro-batching: while a shard is busy, queued
    /// sub-batches that target the same table over the same path coalesce
    /// into one operator, up to `max_outputs` output slots; an idle shard
    /// holds a sub-batch back for up to `max_delay` hoping to coalesce
    /// with concurrent arrivals. This amortises the per-operator fixed
    /// costs that dominate small requests (RecNMP/MicroRec-style request
    /// batching) at a bounded latency cost.
    MicroBatch {
        /// Largest number of output slots per merged operator.
        max_outputs: usize,
        /// Longest an idle shard defers the queue head waiting for more
        /// mergeable arrivals.
        max_delay: SimDuration,
    },
}

impl SchedulePolicy {
    /// A micro-batching configuration with sensible bounds.
    ///
    /// # Panics
    ///
    /// Panics if `max_outputs` is zero.
    pub fn micro_batch(max_outputs: usize, max_delay: SimDuration) -> Self {
        assert!(max_outputs > 0, "micro-batch needs at least one output");
        SchedulePolicy::MicroBatch {
            max_outputs,
            max_delay,
        }
    }

    /// Short label for reports.
    pub fn name(&self) -> &'static str {
        match self {
            SchedulePolicy::Fifo => "fifo",
            SchedulePolicy::MicroBatch { .. } => "microbatch",
        }
    }
}
