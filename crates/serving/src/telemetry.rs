//! Per-request latency telemetry of the serving runtime.

use recssd_sim::stats::{Counter, HitStats, LogHistogram, Quantiles};
use recssd_sim::{SimDuration, SimTime};

/// Aggregate serving statistics: request latency decomposed into queueing
/// (arrival → first sub-batch starts service) and service (first start →
/// last shard finished), each recorded into an HDR-style histogram so
/// p50/p95/p99/p999 are reportable per run.
#[derive(Debug, Default)]
pub struct ServingStats {
    /// Arrival → first shard begins serving the request.
    pub queue: LogHistogram,
    /// First service start → last shard partial merged.
    pub service: LogHistogram,
    /// Arrival → completion (queue + service).
    pub e2e: LogHistogram,
    /// Requests completed.
    pub requests: Counter,
    /// Embedding lookups completed.
    pub lookups: Counter,
    /// Device operators dispatched (merged sub-batches count once).
    pub ops_dispatched: Counter,
    /// Sub-batches dispatched (`/ ops_dispatched` = mean batching factor).
    pub subs_dispatched: Counter,
    /// Placement routing of lookups on *placed* tables: a hit is a lookup
    /// served by the host DRAM tier, a miss goes to a device shard.
    /// Unplaced tables never touch these counters.
    pub tier: HitStats,
    /// Service time of DRAM-tier operators (start → finish, per operator).
    pub tier_service: LogHistogram,
    /// Service time of device-shard operators (start → finish, per
    /// operator) — the NDP/baseline/DRAM-path half of the per-tier
    /// latency split.
    pub device_service: LogHistogram,
    /// Placement-plan refreshes *activated* (a refresh counts once its
    /// migration work has drained and new admissions route under it).
    pub plan_refreshes: Counter,
    /// Rows promoted into the DRAM tier across activated refreshes.
    pub rows_promoted: Counter,
    /// Rows demoted out of the DRAM tier across activated refreshes.
    pub rows_demoted: Counter,
    /// Device lookups issued as migration work (reading promoted rows off
    /// flash) — the modeled cost that makes a plan swap not a teleport.
    pub migration_lookups: Counter,
    // --- resilience telemetry ---
    /// Device operators harvested with a typed device error (uncorrectable
    /// media faults; transient faults are absorbed inside the device and
    /// never reach this counter).
    pub faults: Counter,
    /// Failed sub-batches re-queued for another attempt.
    pub retries: Counter,
    /// Failed NDP sub-batches re-issued on the baseline path.
    pub fallbacks: Counter,
    /// Per-shard circuit-breaker trips (closed/half-open → open).
    pub breaker_trips: Counter,
    /// Requests served degraded: completed with at least one missing row
    /// (retry budget exhausted or deadline expiry), explicitly flagged.
    pub degraded: Counter,
    /// Lookups dropped from degraded requests (never silently wrong —
    /// their output slots are flagged missing).
    pub missing_lookups: Counter,
    first_arrival: Option<SimTime>,
    last_finish: SimTime,
}

impl ServingStats {
    /// Records one completed request.
    pub(crate) fn record(
        &mut self,
        arrival: SimTime,
        queue: SimDuration,
        service: SimDuration,
        finish: SimTime,
        lookups: u64,
    ) {
        self.queue.record_duration(queue);
        self.service.record_duration(service);
        self.e2e.record_duration(queue + service);
        self.requests.inc();
        self.lookups.add(lookups);
        self.first_arrival = Some(match self.first_arrival {
            Some(t) => t.min(arrival),
            None => arrival,
        });
        self.last_finish = self.last_finish.max(finish);
    }

    /// First request arrival → last request completion.
    pub fn makespan(&self) -> SimDuration {
        match self.first_arrival {
            Some(t0) => self.last_finish.saturating_since(t0),
            None => SimDuration::ZERO,
        }
    }

    /// Completed lookups per simulated second over the makespan (0 if the
    /// makespan is empty).
    pub fn lookups_per_sim_sec(&self) -> f64 {
        let secs = self.makespan().as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.lookups.get() as f64 / secs
        }
    }

    /// Mean sub-batches per dispatched operator (1.0 = no coalescing).
    pub fn batching_factor(&self) -> f64 {
        if self.ops_dispatched.get() == 0 {
            0.0
        } else {
            self.subs_dispatched.get() as f64 / self.ops_dispatched.get() as f64
        }
    }

    /// End-to-end latency quantile summary.
    pub fn e2e_quantiles(&self) -> Quantiles {
        self.e2e.quantiles()
    }

    /// Fraction of placed-table lookups absorbed by the DRAM tier (0 when
    /// no placed table served traffic).
    pub fn tier_hit_rate(&self) -> f64 {
        if self.tier.accesses() == 0 {
            0.0
        } else {
            self.tier.hit_rate()
        }
    }

    /// Resets all statistics.
    pub fn reset(&mut self) {
        *self = ServingStats::default();
    }
}
