//! Per-request latency telemetry of the serving runtime.
//!
//! Every metric here is a shared handle into the runtime's unified
//! [`MetricsRegistry`] (see `recssd_obs::registry`): the hot path mutates
//! the handles directly, while the registry provides the single source of
//! truth behind `LoadReport`, the bench JSON, per-epoch JSONL snapshots
//! and the one registry-wide reset. A [`ServingStats`] built with
//! [`ServingStats::default`] is *unregistered* (handles exist but no
//! registry lists them) — the runtime always builds its stats through
//! [`ServingStats::registered`].

use recssd_obs::{CounterH, HistH, HitsH, MetricsRegistry};
use recssd_sim::stats::Quantiles;
use recssd_sim::{SimDuration, SimTime};

use crate::SlsPath;

/// Display names of the three serving paths, indexed by
/// [`path_index`].
pub(crate) const PATH_NAMES: [&str; 3] = ["dram", "baseline", "ndp"];

/// Dense index of a [`SlsPath`] into the per-path attribution arrays.
pub(crate) fn path_index(path: SlsPath) -> usize {
    match path {
        SlsPath::Dram => 0,
        SlsPath::Baseline(_) => 1,
        SlsPath::Ndp(_) => 2,
    }
}

/// Latency attribution of one serving path: where a request's time goes,
/// split into queueing (arrival → first sub-batch starts service) and
/// service (first start → last shard finished), as quantile summaries.
#[derive(Debug, Clone)]
pub struct PathAttribution {
    /// Path label (`"dram"` / `"baseline"` / `"ndp"`).
    pub path: &'static str,
    /// Requests completed on this path.
    pub requests: u64,
    /// Arrival → first service start.
    pub queue: Quantiles,
    /// First service start → completion.
    pub service: Quantiles,
    /// Arrival → completion.
    pub e2e: Quantiles,
}

/// Aggregate serving statistics: request latency decomposed into queueing
/// (arrival → first sub-batch starts service) and service (first start →
/// last shard finished), each recorded into an HDR-style histogram so
/// p50/p95/p99/p999 are reportable per run — globally and per serving
/// path ([`ServingStats::attribution`]).
#[derive(Debug, Default)]
pub struct ServingStats {
    /// Arrival → first shard begins serving the request.
    pub queue: HistH,
    /// First service start → last shard partial merged.
    pub service: HistH,
    /// Arrival → completion (queue + service).
    pub e2e: HistH,
    /// Requests completed.
    pub requests: CounterH,
    /// Embedding lookups completed.
    pub lookups: CounterH,
    /// Device operators dispatched (merged sub-batches count once).
    pub ops_dispatched: CounterH,
    /// Sub-batches dispatched (`/ ops_dispatched` = mean batching factor).
    pub subs_dispatched: CounterH,
    /// Placement routing of lookups on *placed* tables: a hit is a lookup
    /// served by the host DRAM tier, a miss goes to a device shard.
    /// Unplaced tables never touch these counters.
    pub tier: HitsH,
    /// Service time of DRAM-tier operators (start → finish, per operator).
    pub tier_service: HistH,
    /// Service time of device-shard operators (start → finish, per
    /// operator) — the NDP/baseline/DRAM-path half of the per-tier
    /// latency split.
    pub device_service: HistH,
    /// Placement-plan refreshes *activated* (a refresh counts once its
    /// migration work has drained and new admissions route under it).
    pub plan_refreshes: CounterH,
    /// Rows promoted into the DRAM tier across activated refreshes.
    pub rows_promoted: CounterH,
    /// Rows demoted out of the DRAM tier across activated refreshes.
    pub rows_demoted: CounterH,
    /// Device lookups issued as migration work (reading promoted rows off
    /// flash) — the modeled cost that makes a plan swap not a teleport.
    pub migration_lookups: CounterH,
    // --- resilience telemetry ---
    /// Device operators harvested with a typed device error (uncorrectable
    /// media faults; transient faults are absorbed inside the device and
    /// never reach this counter).
    pub faults: CounterH,
    /// Failed sub-batches re-queued for another attempt.
    pub retries: CounterH,
    /// Failed NDP sub-batches re-issued on the baseline path.
    pub fallbacks: CounterH,
    /// Per-shard circuit-breaker trips (closed/half-open → open).
    pub breaker_trips: CounterH,
    /// Requests served degraded: completed with at least one missing row
    /// (retry budget exhausted or deadline expiry), explicitly flagged.
    pub degraded: CounterH,
    /// Lookups dropped from degraded requests (never silently wrong —
    /// their output slots are flagged missing).
    pub missing_lookups: CounterH,
    /// Per-path latency attribution, indexed by [`path_index`].
    path_queue: [HistH; 3],
    path_service: [HistH; 3],
    path_e2e: [HistH; 3],
    path_requests: [CounterH; 3],
    first_arrival: Option<SimTime>,
    last_finish: SimTime,
}

impl ServingStats {
    /// Builds stats whose every metric is registered (by name + labels)
    /// in `reg`, so one [`MetricsRegistry::reset_all`] covers them and
    /// snapshots list them.
    pub fn registered(reg: &mut MetricsRegistry) -> Self {
        let per_path = |reg: &mut MetricsRegistry, name: &'static str| {
            [
                reg.hist(name, &[("path", PATH_NAMES[0])]),
                reg.hist(name, &[("path", PATH_NAMES[1])]),
                reg.hist(name, &[("path", PATH_NAMES[2])]),
            ]
        };
        let per_path_counter = |reg: &mut MetricsRegistry, name: &'static str| {
            [
                reg.counter(name, &[("path", PATH_NAMES[0])]),
                reg.counter(name, &[("path", PATH_NAMES[1])]),
                reg.counter(name, &[("path", PATH_NAMES[2])]),
            ]
        };
        ServingStats {
            queue: reg.hist("serving.queue_ns", &[]),
            service: reg.hist("serving.service_ns", &[]),
            e2e: reg.hist("serving.e2e_ns", &[]),
            requests: reg.counter("serving.requests", &[]),
            lookups: reg.counter("serving.lookups", &[]),
            ops_dispatched: reg.counter("serving.ops_dispatched", &[]),
            subs_dispatched: reg.counter("serving.subs_dispatched", &[]),
            tier: reg.hits("serving.tier_lookups", &[]),
            tier_service: reg.hist("serving.tier_service_ns", &[]),
            device_service: reg.hist("serving.device_service_ns", &[]),
            plan_refreshes: reg.counter("serving.plan_refreshes", &[]),
            rows_promoted: reg.counter("serving.rows_promoted", &[]),
            rows_demoted: reg.counter("serving.rows_demoted", &[]),
            migration_lookups: reg.counter("serving.migration_lookups", &[]),
            faults: reg.counter("serving.faults", &[]),
            retries: reg.counter("serving.retries", &[]),
            fallbacks: reg.counter("serving.fallbacks", &[]),
            breaker_trips: reg.counter("serving.breaker_trips", &[]),
            degraded: reg.counter("serving.degraded", &[]),
            missing_lookups: reg.counter("serving.missing_lookups", &[]),
            path_queue: per_path(reg, "serving.path.queue_ns"),
            path_service: per_path(reg, "serving.path.service_ns"),
            path_e2e: per_path(reg, "serving.path.e2e_ns"),
            path_requests: per_path_counter(reg, "serving.path.requests"),
            first_arrival: None,
            last_finish: SimTime::ZERO,
        }
    }

    /// Records one completed request (`path` = the path it was submitted
    /// on; tier partials of placed tables still count under it).
    pub(crate) fn record(
        &mut self,
        arrival: SimTime,
        queue: SimDuration,
        service: SimDuration,
        finish: SimTime,
        lookups: u64,
        path: SlsPath,
    ) {
        self.queue.record_duration(queue);
        self.service.record_duration(service);
        self.e2e.record_duration(queue + service);
        self.requests.inc();
        self.lookups.add(lookups);
        let p = path_index(path);
        self.path_queue[p].record_duration(queue);
        self.path_service[p].record_duration(service);
        self.path_e2e[p].record_duration(queue + service);
        self.path_requests[p].inc();
        self.first_arrival = Some(match self.first_arrival {
            Some(t) => t.min(arrival),
            None => arrival,
        });
        self.last_finish = self.last_finish.max(finish);
    }

    /// First request arrival → last request completion.
    pub fn makespan(&self) -> SimDuration {
        match self.first_arrival {
            Some(t0) => self.last_finish.saturating_since(t0),
            None => SimDuration::ZERO,
        }
    }

    /// Completed lookups per simulated second over the makespan (0 if the
    /// makespan is empty).
    pub fn lookups_per_sim_sec(&self) -> f64 {
        let secs = self.makespan().as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.lookups.get() as f64 / secs
        }
    }

    /// Mean sub-batches per dispatched operator (1.0 = no coalescing).
    pub fn batching_factor(&self) -> f64 {
        if self.ops_dispatched.get() == 0 {
            0.0
        } else {
            self.subs_dispatched.get() as f64 / self.ops_dispatched.get() as f64
        }
    }

    /// End-to-end latency quantile summary.
    pub fn e2e_quantiles(&self) -> Quantiles {
        self.e2e.quantiles()
    }

    /// Fraction of placed-table lookups absorbed by the DRAM tier (0 when
    /// no placed table served traffic).
    pub fn tier_hit_rate(&self) -> f64 {
        if self.tier.accesses() == 0 {
            0.0
        } else {
            self.tier.hit_rate()
        }
    }

    /// Per-path "time-goes-where" report: queue/service/e2e quantiles for
    /// each serving path that completed at least one request.
    pub fn attribution(&self) -> Vec<PathAttribution> {
        (0..3)
            .filter(|&p| self.path_requests[p].get() > 0)
            .map(|p| PathAttribution {
                path: PATH_NAMES[p],
                requests: self.path_requests[p].get(),
                queue: self.path_queue[p].quantiles(),
                service: self.path_service[p].quantiles(),
                e2e: self.path_e2e[p].quantiles(),
            })
            .collect()
    }

    /// Resets the makespan window (the registry-backed metrics are reset
    /// through [`MetricsRegistry::reset_all`]; for an unregistered stats
    /// block use [`ServingStats::reset`]).
    pub(crate) fn reset_window(&mut self) {
        self.first_arrival = None;
        self.last_finish = SimTime::ZERO;
    }

    /// Resets all statistics (metric handles and the makespan window).
    pub fn reset(&mut self) {
        self.queue.reset();
        self.service.reset();
        self.e2e.reset();
        self.requests.reset();
        self.lookups.reset();
        self.ops_dispatched.reset();
        self.subs_dispatched.reset();
        self.tier.reset();
        self.tier_service.reset();
        self.device_service.reset();
        self.plan_refreshes.reset();
        self.rows_promoted.reset();
        self.rows_demoted.reset();
        self.migration_lookups.reset();
        self.faults.reset();
        self.retries.reset();
        self.fallbacks.reset();
        self.breaker_trips.reset();
        self.degraded.reset();
        self.missing_lookups.reset();
        for p in 0..3 {
            self.path_queue[p].reset();
            self.path_service[p].reset();
            self.path_e2e[p].reset();
            self.path_requests[p].reset();
        }
        self.reset_window();
    }
}
