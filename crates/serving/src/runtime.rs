//! The sharded serving runtime: N simulated systems on one timeline.
//!
//! The runtime owns one [`System`] per shard and keeps them on a single
//! virtual clock. Shards are *pipelined servers*: up to
//! [`ServingConfig::depth`] operators are in flight on one device at a
//! time, so host-side NVMe submission, FTL service and flash channel/die
//! occupancy overlap across requests instead of draining between
//! operators (the RecSSD/RecNMP point that SLS throughput comes from
//! saturating the device's internal parallelism). The co-simulation
//! works by bounded stepping: a shard's system is only ever advanced to
//! the global instant with [`System::run_until`], completed operators
//! are harvested by polling [`System::try_take_result`], and a
//! *shard-tick* event is armed at the shard's next internal event time
//! so the global loop revisits it exactly when something happens.
//!
//! A request's lifecycle:
//!
//! 1. [`ServingRuntime::submit_at`] splits its batch into per-shard
//!    sub-batches of local rows ([`crate::ShardMap`]) and schedules the
//!    arrival.
//! 2. Each shard queue dispatches per the [`SchedulePolicy`] — FIFO, or
//!    micro-batching that coalesces queued sub-batches targeting the same
//!    table and path into one device operator — whenever the shard has a
//!    free operator slot.
//! 3. Each shard's partial [`SlsOutput`] is folded into the request's
//!    accumulator through the fused accumulate path (exact for the grid
//!    values of procedural tables, so sharded results bit-match the
//!    unsharded reference regardless of completion interleaving).
//! 4. When the last shard finishes, the request completes; queue/service/
//!    end-to-end latencies are recorded into the HDR-style histograms of
//!    [`ServingStats`], and per-shard operator occupancy plus flash
//!    channel utilisation are tracked so pipelining wins are visible.

use std::collections::VecDeque;

use recssd::{LookupBatch, OpId, OpKind, OpResult, RecSsdConfig, SlsOutput, System};
use recssd_embedding::{sls_reference_into, EmbeddingTable, PageLayout, TableImage};
use recssd_placement::TablePlacement;
use recssd_sim::stats::HitStats;
use recssd_sim::{EventQueue, FxHashMap, SimDuration, SimTime};

use crate::shard::{split_batch, Routing, SubBatch};
use crate::{SchedulePolicy, ServingStats, ShardMap, SlsPath};

/// Identifier of a submitted request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId(pub u64);

/// Identifier of a table registered with the runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ServedTableId(pub usize);

/// Configuration of the serving runtime.
#[derive(Debug, Clone)]
pub struct ServingConfig {
    /// Number of device shards (each a full simulated [`System`]).
    pub shards: usize,
    /// Operator queue depth per shard: how many device operators the
    /// runtime keeps in flight on one shard simultaneously. Depth 1 is
    /// the classic drain-between-operators regime; deeper pipelines
    /// overlap NVMe submission, firmware service and flash channel/die
    /// occupancy across operators.
    pub depth: usize,
    /// Per-shard system configuration.
    pub system: RecSsdConfig,
    /// Shard-queue scheduling policy.
    pub policy: SchedulePolicy,
    /// On-SSD layout of every registered table.
    pub layout: PageLayout,
}

impl ServingConfig {
    /// A small-geometry runtime with the full eight channels per shard
    /// and a depth-1 (unpipelined) operator queue.
    pub fn small_wide(shards: usize, policy: SchedulePolicy) -> Self {
        ServingConfig {
            shards,
            depth: 1,
            system: RecSsdConfig::small_wide(),
            policy,
            layout: PageLayout::Spread,
        }
    }

    /// Sets the per-shard operator queue depth.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn with_depth(mut self, depth: usize) -> Self {
        assert!(depth > 0, "queue depth must be at least 1");
        self.depth = depth;
        self
    }
}

/// A finished request, handed out by [`ServingRuntime::step`].
#[derive(Debug)]
pub struct CompletedRequest {
    /// The request's id.
    pub id: RequestId,
    /// Caller-supplied client tag (closed-loop generators key on it).
    pub client: u64,
    /// The served table.
    pub table: ServedTableId,
    /// When the request arrived.
    pub arrival: SimTime,
    /// When the last shard partial was merged.
    pub finish: SimTime,
    /// Arrival → first sub-batch began service.
    pub queue: SimDuration,
    /// First service start → completion.
    pub service: SimDuration,
    /// The original batch (global rows), for verification.
    pub batch: LookupBatch,
    /// The merged output vectors.
    pub outputs: SlsOutput,
}

impl CompletedRequest {
    /// End-to-end latency.
    pub fn e2e(&self) -> SimDuration {
        self.queue + self.service
    }
}

#[derive(Debug)]
struct Inflight {
    client: u64,
    table: usize,
    arrival: SimTime,
    first_start: Option<SimTime>,
    finish: SimTime,
    pending: usize,
    acc: SlsOutput,
    batch: LookupBatch,
}

/// One component of a (possibly merged) device operator: the owning
/// request, its global output slots, and its offset into the merged
/// output block.
#[derive(Debug)]
struct Part {
    req: u64,
    slots: Vec<u32>,
    offset: usize,
}

/// A device operator in flight on a shard, awaiting harvest.
#[derive(Debug)]
struct InflightOp {
    op: OpId,
    parts: Vec<Part>,
}

#[derive(Debug)]
struct Shard {
    sys: System,
    /// Operators submitted to `sys` and not yet harvested.
    inflight: Vec<InflightOp>,
    queue: VecDeque<SubBatch>,
    /// Earliest armed shard-tick not yet fired (ticks are only ever
    /// armed earlier, never cancelled; late duplicates are harmless).
    next_tick: Option<SimTime>,
    // --- occupancy / utilisation telemetry ---
    /// Time-integral of in-flight operator count, in op-nanoseconds.
    occ_weighted_ns: u64,
    /// Instant of the last occupancy change.
    occ_last: SimTime,
    /// Start of the current stats window.
    window_start: SimTime,
    /// Flash channel-busy total at the last stats reset (the flash
    /// counters are cumulative).
    chan_busy_base_ns: u64,
}

impl Shard {
    fn new(cfg: &RecSsdConfig) -> Self {
        Shard {
            sys: System::new(cfg.clone()),
            inflight: Vec::new(),
            queue: VecDeque::new(),
            next_tick: None,
            occ_weighted_ns: 0,
            occ_last: SimTime::ZERO,
            window_start: SimTime::ZERO,
            chan_busy_base_ns: 0,
        }
    }

    /// Accumulates the occupancy integral up to `at` (monotone per
    /// shard; out-of-window times saturate to zero-length intervals).
    fn note_occupancy(&mut self, at: SimTime) {
        let span = at.saturating_since(self.occ_last);
        self.occ_weighted_ns += self.inflight.len() as u64 * span.as_ns();
        self.occ_last = self.occ_last.max(at);
    }

    fn chan_busy_total_ns(&self) -> u64 {
        self.sys
            .device()
            .ftl()
            .flash()
            .stats()
            .channel_busy
            .iter()
            .map(|d| d.as_ns())
            .sum()
    }
}

/// Which execution resource a sub-batch is queued on: a device shard or
/// the host DRAM tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ix {
    Dev(usize),
    Tier,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    Arrival(u64),
    /// Revisit a shard (or the DRAM tier) at its next internal event
    /// time: advance its system clock, harvest finished operators,
    /// dispatch more.
    ShardTick(Ix),
    Completed(u64),
}

#[derive(Debug)]
struct ServedTable {
    /// Full-table contents (procedural tables make this cheap), kept for
    /// reference verification.
    table: EmbeddingTable,
    map: ShardMap,
    /// The table's id within each shard's [`System`].
    per_shard: Vec<recssd::TableId>,
    /// Placement routing (hot set + packed storage order), if the table
    /// was registered through [`ServingRuntime::add_table_placed`].
    routing: Option<Routing>,
}

/// The sharded serving runtime. See the [module docs](self) for the
/// architecture.
#[derive(Debug)]
pub struct ServingRuntime {
    policy: SchedulePolicy,
    depth: usize,
    layout: PageLayout,
    /// Per-shard system template, kept to spin up the DRAM tier lazily.
    system_cfg: RecSsdConfig,
    shards: Vec<Shard>,
    /// The host DRAM tier: one more pipelined server on the same
    /// timeline, created by the first placed table with a non-empty hot
    /// set. Its operators are always [`SlsPath::Dram`] gathers over the
    /// pinned hot rows.
    tier: Option<Shard>,
    tables: Vec<ServedTable>,
    events: EventQueue<Ev>,
    inflight: FxHashMap<u64, Inflight>,
    /// Sub-batches of requests whose arrival event has not fired yet.
    pending_arrivals: FxHashMap<u64, Vec<(Ix, SubBatch)>>,
    next_req: u64,
    completed: VecDeque<CompletedRequest>,
    stats: ServingStats,
    /// Free-list of request accumulators.
    out_pool: Vec<SlsOutput>,
    /// Reused reference scratch for [`ServingRuntime::verify_bitmatch`].
    ref_scratch: Vec<f32>,
    /// Reused harvest scratch (ops completed during one shard sync).
    harvest_scratch: Vec<(InflightOp, OpResult)>,
}

impl ServingRuntime {
    /// Builds a runtime of `cfg.shards` independent systems.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(cfg: &ServingConfig) -> Self {
        assert!(cfg.shards > 0, "need at least one shard");
        assert!(cfg.depth > 0, "queue depth must be at least 1");
        let shards = (0..cfg.shards).map(|_| Shard::new(&cfg.system)).collect();
        ServingRuntime {
            policy: cfg.policy,
            depth: cfg.depth,
            layout: cfg.layout,
            system_cfg: cfg.system.clone(),
            shards,
            tier: None,
            tables: Vec::new(),
            events: EventQueue::new(),
            inflight: FxHashMap::default(),
            pending_arrivals: FxHashMap::default(),
            next_req: 0,
            completed: VecDeque::new(),
            stats: ServingStats::default(),
            out_pool: Vec::new(),
            ref_scratch: Vec::new(),
            harvest_scratch: Vec::new(),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Per-shard operator queue depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The current global virtual time.
    pub fn now(&self) -> SimTime {
        self.events.now()
    }

    /// Serving statistics accumulated so far.
    pub fn stats(&self) -> &ServingStats {
        &self.stats
    }

    /// Resets serving statistics (between warm-up and measurement),
    /// re-basing the per-shard occupancy and channel-utilisation windows
    /// at the current instant and clearing the per-shard FTL page-cache
    /// counters so reported hit rates cover exactly the measured window.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
        let now = self.events.now();
        for s in self.shards.iter_mut().chain(self.tier.as_mut()) {
            s.occ_weighted_ns = 0;
            s.occ_last = s.occ_last.max(now);
            s.window_start = now;
            s.chan_busy_base_ns = s.chan_busy_total_ns();
            s.sys.device_mut().ftl_mut().reset_cache_stats();
        }
    }

    /// Time-averaged in-flight operator count per shard since the last
    /// stats reset (up to the current instant). With depth 1 this is the
    /// classic utilisation ρ; pipelining shows up as values above 1.
    pub fn shard_occupancy(&self) -> Vec<f64> {
        let now = self.events.now();
        self.shards
            .iter()
            .map(|s| {
                let window = now.saturating_since(s.window_start).as_ns();
                if window == 0 {
                    return 0.0;
                }
                // Extend the integral to `now` at the current count.
                let tail = now.saturating_since(s.occ_last).as_ns() * s.inflight.len() as u64;
                (s.occ_weighted_ns + tail) as f64 / window as f64
            })
            .collect()
    }

    /// Mean flash channel-bus busy fraction per shard since the last
    /// stats reset — the §2.2 resource whose saturation is the point of
    /// operator pipelining.
    pub fn channel_utilisation(&self) -> Vec<f64> {
        let now = self.events.now();
        self.shards
            .iter()
            .map(|s| {
                let window = now.saturating_since(s.window_start).as_ns();
                if window == 0 {
                    return 0.0;
                }
                let channels = s.sys.config().ssd.ftl.flash.geometry.channels as u64;
                let busy = s.chan_busy_total_ns() - s.chan_busy_base_ns;
                busy as f64 / (window * channels) as f64
            })
            .collect()
    }

    /// `true` once a placed table has pinned rows into the DRAM tier.
    pub fn has_tier(&self) -> bool {
        self.tier.is_some()
    }

    /// Time-averaged in-flight operator count of the DRAM tier since the
    /// last stats reset (0 when no tier exists).
    pub fn tier_occupancy(&self) -> f64 {
        let now = self.events.now();
        self.tier.as_ref().map_or(0.0, |s| {
            let window = now.saturating_since(s.window_start).as_ns();
            if window == 0 {
                return 0.0;
            }
            let tail = now.saturating_since(s.occ_last).as_ns() * s.inflight.len() as u64;
            (s.occ_weighted_ns + tail) as f64 / window as f64
        })
    }

    /// Hit/miss statistics of each device shard's FTL page cache since
    /// the last stats reset — where frequency-ordered cold-tail packing
    /// shows up (co-hot rows sharing pages raise this rate).
    pub fn ftl_cache_stats(&self) -> Vec<HitStats> {
        self.shards
            .iter()
            .map(|s| s.sys.device().ftl().cache_stats())
            .collect()
    }

    /// Resident fraction of each device shard's FTL page cache.
    pub fn ftl_cache_occupancy(&self) -> Vec<f64> {
        self.shards
            .iter()
            .map(|s| s.sys.device().ftl().cache_occupancy())
            .collect()
    }

    /// Direct access to one shard's [`System`] (cache/partition setup).
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn shard_system_mut(&mut self, shard: usize) -> &mut System {
        &mut self.shards[shard].sys
    }

    /// Row-range-shards `table` across every shard system and registers
    /// the slices on their devices.
    ///
    /// # Panics
    ///
    /// Panics if the table has fewer rows than there are shards.
    pub fn add_table(&mut self, table: EmbeddingTable) -> ServedTableId {
        let map = ShardMap::new(table.spec().rows, self.shards.len());
        let per_shard = self
            .shards
            .iter_mut()
            .enumerate()
            .map(|(i, shard)| {
                let slice = table.slice(map.range(i));
                let page_bytes = shard.sys.config().ssd.block_bytes();
                shard
                    .sys
                    .add_table(TableImage::new(slice, self.layout, page_bytes))
            })
            .collect();
        let id = ServedTableId(self.tables.len());
        self.tables.push(ServedTable {
            table,
            map,
            per_shard,
            routing: None,
        });
        id
    }

    /// Registers `table` under a frequency-profiled placement: the plan's
    /// hot rows are pinned into the host DRAM tier (a gather view served
    /// by an extra [`System`] on the same timeline, always over the DRAM
    /// path), and each shard's on-flash image is re-ordered by
    /// [`TablePlacement::pack_order`] so the hottest cold rows share
    /// flash pages. Requests against the table split into a DRAM-tier
    /// partial plus per-shard device sub-batches and merge bit-identically
    /// to the unplaced `sls_reference` path.
    ///
    /// # Panics
    ///
    /// Panics if the placement was built for a different row count or the
    /// table has fewer rows than there are shards.
    pub fn add_table_placed(
        &mut self,
        table: EmbeddingTable,
        placement: &TablePlacement,
    ) -> ServedTableId {
        assert_eq!(
            placement.rows(),
            table.spec().rows,
            "placement was built for a different table shape"
        );
        let map = ShardMap::new(table.spec().rows, self.shards.len());
        let mut storage = Vec::with_capacity(self.shards.len());
        let per_shard = self
            .shards
            .iter_mut()
            .enumerate()
            .map(|(i, shard)| {
                let range = map.range(i);
                let start = range.start;
                let pack = placement.pack_order(range);
                let mut inv = vec![0u32; pack.len()];
                for (slot, &local) in pack.iter().enumerate() {
                    inv[local as usize] = slot as u32;
                }
                storage.push(inv);
                let packed = table.slice(start..start + pack.len() as u64).select(&pack);
                let page_bytes = shard.sys.config().ssd.block_bytes();
                shard
                    .sys
                    .add_table(TableImage::new(packed, self.layout, page_bytes))
            })
            .collect();
        let tier_table = (placement.hot_count() > 0).then(|| {
            if self.tier.is_none() {
                self.tier = Some(Shard::new(&self.system_cfg));
            }
            let tier = self.tier.as_mut().expect("just ensured");
            let hot_view = table.select(placement.hot_rows());
            let page_bytes = tier.sys.config().ssd.block_bytes();
            // Dense layout keeps the tier's (never-read) flash image
            // within its registry slot whatever the hot count.
            tier.sys
                .add_table(TableImage::new(hot_view, PageLayout::Dense, page_bytes))
        });
        let mut hot_index = vec![crate::shard::COLD; placement.rows() as usize];
        for (i, &row) in placement.hot_rows().iter().enumerate() {
            hot_index[row as usize] = i as u32;
        }
        let id = ServedTableId(self.tables.len());
        self.tables.push(ServedTable {
            table,
            map,
            per_shard,
            routing: Some(Routing {
                hot_index,
                storage,
                tier_table,
            }),
        });
        id
    }

    /// The sharding of `table`.
    ///
    /// # Panics
    ///
    /// Panics if `table` was not issued by this runtime.
    pub fn shard_map(&self, table: ServedTableId) -> &ShardMap {
        &self.tables[table.0].map
    }

    /// Submits a request arriving at absolute time `at` (tagged `client`
    /// for closed-loop generators). Completions surface from
    /// [`ServingRuntime::step`].
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past or `table` is unknown.
    pub fn submit_at(
        &mut self,
        at: SimTime,
        client: u64,
        table: ServedTableId,
        batch: LookupBatch,
        path: SlsPath,
    ) -> RequestId {
        let t = &self.tables[table.0];
        let req = self.next_req;
        self.next_req += 1;
        let (tier_sub, shard_subs) =
            split_batch(&t.map, t.routing.as_ref(), req, table.0, path, &batch);
        if t.routing.is_some() {
            let hot: usize = tier_sub
                .as_ref()
                .map_or(0, |s| s.per_output.iter().map(|v| v.len()).sum());
            self.stats.tier.add_hits(hot as u64);
            self.stats
                .tier
                .add_misses((batch.total_lookups() - hot) as u64);
        }
        let mut subs: Vec<(Ix, SubBatch)> = Vec::with_capacity(shard_subs.len() + 1);
        subs.extend(tier_sub.map(|s| (Ix::Tier, s)));
        subs.extend(shard_subs.into_iter().map(|(i, s)| (Ix::Dev(i), s)));
        let mut acc = self.out_pool.pop().unwrap_or_default();
        acc.reset(batch.outputs(), t.table.spec().dim);
        self.inflight.insert(
            req,
            Inflight {
                client,
                table: table.0,
                arrival: at,
                first_start: None,
                finish: at,
                pending: subs.len(),
                acc,
                batch,
            },
        );
        self.pending_arrivals.insert(req, subs);
        self.events.push_at(at, Ev::Arrival(req));
        RequestId(req)
    }

    /// Returns a consumed request output to the accumulator pool.
    pub fn recycle_output(&mut self, outputs: SlsOutput) {
        if self.out_pool.len() < 4096 {
            self.out_pool.push(outputs);
        }
    }

    /// Computes the unsharded reference for `done` with
    /// [`sls_reference_into`] and asserts the merged sharded output is
    /// bit-identical.
    ///
    /// # Panics
    ///
    /// Panics on any mismatch.
    pub fn verify_bitmatch(&mut self, done: &CompletedRequest) {
        let table = &self.tables[done.table.0].table;
        let dim = table.spec().dim;
        self.ref_scratch.clear();
        self.ref_scratch.resize(done.batch.outputs() * dim, 0.0);
        sls_reference_into(table, &done.batch, &mut self.ref_scratch);
        assert_eq!(
            done.outputs.as_slice(),
            &self.ref_scratch[..],
            "request {:?}: sharded output diverged from sls_reference",
            done.id
        );
    }

    /// Advances the simulation until the next request completes, or until
    /// nothing is left to do. Completions are returned in finish-time
    /// order.
    pub fn step(&mut self) -> Option<CompletedRequest> {
        loop {
            if let Some(done) = self.completed.pop_front() {
                return Some(done);
            }
            let (now, ev) = self.events.pop()?;
            match ev {
                Ev::Arrival(req) => {
                    let subs = self
                        .pending_arrivals
                        .remove(&req)
                        .expect("arrival without sub-batches");
                    for (ix, sub) in subs {
                        self.shard_mut(ix).queue.push_back(sub);
                        self.pump_shard(ix, now);
                    }
                }
                Ev::ShardTick(ix) => {
                    if self.shard_mut(ix).next_tick == Some(now) {
                        self.shard_mut(ix).next_tick = None;
                    }
                    self.pump_shard(ix, now);
                }
                Ev::Completed(req) => {
                    let inf = self.inflight.remove(&req).expect("completed twice");
                    let first_start = inf.first_start.expect("served before completing");
                    let queue = first_start.saturating_since(inf.arrival);
                    let service = inf.finish.saturating_since(first_start);
                    self.stats.record(
                        inf.arrival,
                        queue,
                        service,
                        inf.finish,
                        inf.batch.total_lookups() as u64,
                    );
                    self.completed.push_back(CompletedRequest {
                        id: RequestId(req),
                        client: inf.client,
                        table: ServedTableId(inf.table),
                        arrival: inf.arrival,
                        finish: inf.finish,
                        queue,
                        service,
                        batch: inf.batch,
                        outputs: inf.acc,
                    });
                }
            }
        }
    }

    /// Runs until every submitted request has completed, returning the
    /// completions in finish order.
    pub fn run_until_idle(&mut self) -> Vec<CompletedRequest> {
        let mut done = Vec::new();
        while let Some(c) = self.step() {
            done.push(c);
        }
        assert!(
            self.inflight.is_empty(),
            "requests stuck with no pending events"
        );
        done
    }

    /// The shard (or DRAM tier) addressed by `ix`.
    fn shard_mut(&mut self, ix: Ix) -> &mut Shard {
        match ix {
            Ix::Dev(i) => &mut self.shards[i],
            Ix::Tier => self.tier.as_mut().expect("tier sub-batch without a tier"),
        }
    }

    /// One full visit of a shard at the global instant: merge clocks,
    /// harvest completed operators, dispatch while capacity allows, and
    /// re-arm the shard's wake-up tick.
    fn pump_shard(&mut self, ix: Ix, now: SimTime) {
        self.sync_shard(ix, now);
        while self.shard_mut(ix).inflight.len() < self.depth && !self.shard_mut(ix).queue.is_empty()
        {
            self.dispatch_one(ix, now);
        }
        self.arm_tick(ix, now);
    }

    /// Advances `ix`'s system to the global instant and folds every
    /// operator that completed at or before it into its owning requests.
    fn sync_shard(&mut self, ix: Ix, now: SimTime) {
        // Phase 1 (shard borrow): advance the clock, collect finished
        // operators, and settle the occupancy integral in completion-time
        // order so it is exact under arbitrary interleavings.
        let mut harvested = std::mem::take(&mut self.harvest_scratch);
        {
            let s = self.shard_mut(ix);
            s.sys.run_until(now);
            if s.inflight.is_empty() {
                self.harvest_scratch = harvested;
                return;
            }
            let mut i = 0;
            while i < s.inflight.len() {
                if let Some(result) = s.sys.try_take_result(s.inflight[i].op) {
                    harvested.push((s.inflight.swap_remove(i), result));
                } else {
                    i += 1;
                }
            }
            harvested.sort_by_key(|(_, r)| r.finished);
            // Walking completions oldest-first: before the k-th one, the
            // still-unfinished remainder plus every later harvest were
            // all in flight.
            let base = s.inflight.len() as u64;
            let n = harvested.len() as u64;
            for (k, (_, r)) in harvested.iter().enumerate() {
                let span = r.finished.saturating_since(s.occ_last);
                s.occ_weighted_ns += (base + n - k as u64) * span.as_ns();
                s.occ_last = s.occ_last.max(r.finished);
            }
        }

        // Phase 2: fold each harvested operator's partial sums into its
        // owning requests and schedule completions.
        for (infop, result) in harvested.drain(..) {
            let service = result.finished.saturating_since(result.started);
            match ix {
                Ix::Tier => self.stats.tier_service.record_duration(service),
                Ix::Dev(_) => self.stats.device_service.record_duration(service),
            }
            let outputs = result.outputs.expect("SLS ops produce outputs");
            for part in infop.parts {
                let inf = self.inflight.get_mut(&part.req).expect("in flight");
                for (i, &slot) in part.slots.iter().enumerate() {
                    let src = outputs.row(part.offset + i);
                    for (o, v) in inf.acc.row_mut(slot as usize).iter_mut().zip(src) {
                        *o += *v;
                    }
                }
                inf.first_start = Some(match inf.first_start {
                    Some(t) => t.min(result.started),
                    None => result.started,
                });
                inf.finish = inf.finish.max(result.finished);
                inf.pending -= 1;
                if inf.pending == 0 {
                    // `inf.finish <= now`: every contribution was
                    // harvested at a global instant at or after it.
                    self.events.push_at(now, Ev::Completed(part.req));
                }
            }
            self.shard_mut(ix).sys.recycle_outputs(outputs);
        }
        self.harvest_scratch = harvested;
    }

    /// Arms a wake-up tick at the shard's next internal event time.
    /// Ticks are monotone: one is only pushed when it is earlier than
    /// the earliest already armed, so the global queue sees at most a
    /// handful of (idempotent) ticks per shard event.
    fn arm_tick(&mut self, ix: Ix, now: SimTime) {
        let s = self.shard_mut(ix);
        if let Some(t) = s.sys.next_event_time() {
            let t = t.max(now);
            if s.next_tick.is_none_or(|armed| t < armed) {
                s.next_tick = Some(t);
                self.events.push_at(t, Ev::ShardTick(ix));
            }
        }
    }

    /// Merges the front of `shard`'s queue (plus, under micro-batching,
    /// every queued mergeable sub-batch up to the output cap) into one
    /// device operator and submits it — without draining the shard, so
    /// multiple operators pipeline on the device.
    fn dispatch_one(&mut self, ix: Ix, now: SimTime) {
        let policy = self.policy;
        let s = self.shard_mut(ix);
        // Select sub-batches: FIFO takes the head; micro-batching drains
        // every queued sub-batch mergeable with the head (in order) up to
        // the output cap.
        let head = s.queue.pop_front().expect("dispatch on empty queue");
        let key = head.merge_key();
        let mut cap = match policy {
            SchedulePolicy::Fifo => head.slots.len(),
            SchedulePolicy::MicroBatch { max_outputs, .. } => max_outputs.max(head.slots.len()),
        };
        cap -= head.slots.len();
        let mut taken = vec![head];
        if cap > 0 {
            let mut i = 0;
            while i < s.queue.len() && cap > 0 {
                if s.queue[i].merge_key() == key && s.queue[i].slots.len() <= cap {
                    let sub = s.queue.remove(i).expect("index checked");
                    cap -= sub.slots.len();
                    taken.push(sub);
                } else {
                    i += 1;
                }
            }
        }

        // Merge into one operator-sized batch; remember each component's
        // slice of the merged output block.
        let mut per_output: Vec<Vec<u64>> = Vec::new();
        let mut parts: Vec<Part> = Vec::new();
        let (table, path) = key;
        for sub in taken {
            parts.push(Part {
                req: sub.req,
                slots: sub.slots,
                offset: per_output.len(),
            });
            per_output.extend(sub.per_output);
        }
        let merged = LookupBatch::new(per_output);
        let device_table = match ix {
            Ix::Dev(shard) => self.tables[table].per_shard[shard],
            Ix::Tier => self.tables[table]
                .routing
                .as_ref()
                .and_then(|r| r.tier_table)
                .expect("tier sub-batch for a table with no hot set"),
        };
        let kind = match path {
            SlsPath::Dram => OpKind::dram_sls(device_table, merged),
            SlsPath::Baseline(opts) => OpKind::baseline_sls(device_table, merged, opts),
            SlsPath::Ndp(opts) => OpKind::ndp_sls(device_table, merged, opts),
        };

        // Submit onto the shard's system (already synced to `now` by the
        // caller) and leave it in flight; completions are harvested by
        // later shard syncs.
        let n_subs = parts.len() as u64;
        let s = self.shard_mut(ix);
        debug_assert_eq!(s.sys.now(), now, "dispatch on an unsynced shard");
        s.note_occupancy(now);
        let op = s.sys.submit(kind);
        s.inflight.push(InflightOp { op, parts });

        self.stats.ops_dispatched.inc();
        self.stats.subs_dispatched.add(n_subs);
    }
}
