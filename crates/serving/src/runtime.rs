//! The sharded serving runtime: N simulated systems on one timeline.
//!
//! The runtime owns one [`System`] per shard and keeps them on a single
//! virtual clock. Shards are *pipelined servers*: up to
//! [`ServingConfig::depth`] operators are in flight on one device at a
//! time, so host-side NVMe submission, FTL service and flash channel/die
//! occupancy overlap across requests instead of draining between
//! operators (the RecSSD/RecNMP point that SLS throughput comes from
//! saturating the device's internal parallelism). The co-simulation
//! works by bounded stepping: a shard's system is only ever advanced to
//! the global instant with [`System::run_until`], completed operators
//! are harvested by polling [`System::try_take_result`], and a
//! *shard-tick* event is armed at the shard's next internal event time
//! so the global loop revisits it exactly when something happens.
//!
//! A request's lifecycle:
//!
//! 1. [`ServingRuntime::submit_at`] splits its batch into per-shard
//!    sub-batches of local rows ([`crate::ShardMap`]) and schedules the
//!    arrival.
//! 2. Each shard queue dispatches per the [`SchedulePolicy`] — FIFO, or
//!    micro-batching that coalesces queued sub-batches targeting the same
//!    table and path into one device operator — whenever the shard has a
//!    free operator slot.
//! 3. Each shard's partial [`SlsOutput`] is folded into the request's
//!    accumulator through the fused accumulate path (exact for the grid
//!    values of procedural tables, so sharded results bit-match the
//!    unsharded reference regardless of completion interleaving).
//! 4. When the last shard finishes, the request completes; queue/service/
//!    end-to-end latencies are recorded into the HDR-style histograms of
//!    [`ServingStats`], and per-shard operator occupancy plus flash
//!    channel utilisation are tracked so pipelining wins are visible.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use recssd::{
    FaultConfig, FaultPlan, FaultStats, LookupBatch, OpId, OpKind, OpResult, RecSsdConfig,
    SlsOptions, SlsOutput, System,
};
use recssd_embedding::{sls_reference_into, EmbeddingTable, PageLayout, TableImage};
use recssd_obs::profile::WallPhaseReport;
use recssd_obs::trace::track;
use recssd_obs::{
    MetricValue, MetricsRegistry, SpanId, SpanRec, TraceSink, Tracer, WallPhase, WallProfile,
    WorkerProfile,
};
use recssd_placement::{allocate_global_budget, FreqProfiler, TablePlacement};
use recssd_sim::rng::mix64;
use recssd_sim::stats::HitStats;
use recssd_sim::{EventQueue, FxHashMap, SimDuration, SimTime};

use crate::par::WorkerPool;
use crate::shard::{split_batch, Routing, SubBatch, SubOwner};
use crate::telemetry::PathAttribution;
use crate::{SchedulePolicy, ServingStats, ShardMap, SlsPath};

/// Largest number of promoted rows carried by one migration operator —
/// migration work is chunked so it pipelines on the shard queues instead
/// of monopolising a device with one giant gather.
const MIGRATION_CHUNK_ROWS: usize = 64;

/// Identifier of a submitted request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId(pub u64);

/// Identifier of a table registered with the runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ServedTableId(pub usize);

/// How the co-simulation steps its shard [`System`]s.
///
/// Both modes produce **bit-identical** results (outputs, statistics,
/// traces): the parallel stepper is a *conservative* parallel
/// discrete-event scheme whose lookahead window is the cross-shard sync
/// horizon ([`System::sync_horizon`]), so no shard ever observes an
/// effect out of order. Parallel execution requires a closed-loop
/// reaction latency (client think time, retry backoff) of at least the
/// horizon — zero-lookahead feedback is rejected with a clear error
/// instead of silently diverging.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// One thread pops one global event at a time (the reference
    /// stepper; supports arbitrary, even zero-lookahead, feedback).
    Sequential,
    /// `n` worker threads sweep disjoint shards through lookahead
    /// windows between global events, with a barrier at every
    /// cross-shard interaction point. `Parallel(1)` exercises the full
    /// windowed machinery on a single worker (useful for determinism
    /// tests).
    Parallel(usize),
}

/// Configuration of the serving runtime.
#[derive(Debug, Clone)]
pub struct ServingConfig {
    /// Number of device shards (each a full simulated [`System`]).
    pub shards: usize,
    /// How shard systems are stepped (sequential reference stepper, or
    /// the conservative parallel stepper). Overridable at runtime
    /// construction by the `RECSSD_FORCE_EXEC` environment variable
    /// (`sequential` or `parallel:<n>`), so an existing test suite can
    /// be re-run under parallel execution without code changes.
    pub exec: ExecMode,
    /// Operator queue depth per shard: how many device operators the
    /// runtime keeps in flight on one shard simultaneously. Depth 1 is
    /// the classic drain-between-operators regime; deeper pipelines
    /// overlap NVMe submission, firmware service and flash channel/die
    /// occupancy across operators.
    pub depth: usize,
    /// Per-shard system configuration.
    pub system: RecSsdConfig,
    /// Shard-queue scheduling policy.
    pub policy: SchedulePolicy,
    /// On-SSD layout of every registered table.
    pub layout: PageLayout,
}

impl ServingConfig {
    /// A small-geometry runtime with the full eight channels per shard
    /// and a depth-1 (unpipelined) operator queue.
    pub fn small_wide(shards: usize, policy: SchedulePolicy) -> Self {
        ServingConfig {
            shards,
            exec: ExecMode::Sequential,
            depth: 1,
            system: RecSsdConfig::small_wide(),
            policy,
            layout: PageLayout::Spread,
        }
    }

    /// Sets the per-shard operator queue depth.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn with_depth(mut self, depth: usize) -> Self {
        assert!(depth > 0, "queue depth must be at least 1");
        self.depth = depth;
        self
    }

    /// Sets the execution mode (see [`ExecMode`]).
    ///
    /// # Panics
    ///
    /// Panics if `exec` is `Parallel(0)`.
    pub fn with_exec(mut self, exec: ExecMode) -> Self {
        if let ExecMode::Parallel(n) = exec {
            assert!(n > 0, "parallel execution needs at least one worker");
        }
        self.exec = exec;
        self
    }
}

/// Host-side recovery policy for device faults: per-sub-batch retry
/// budget with simulated-time exponential backoff, NDP→baseline path
/// fallback, an optional per-request deadline, and a per-shard circuit
/// breaker. Inert unless faults are injected (a fault-free run never
/// consults the retry or deadline machinery, so enabling the default
/// policy does not perturb the timeline).
#[derive(Debug, Clone, Copy)]
pub struct FaultPolicy {
    /// Failed sub-batch re-dispatches before its rows are given up on
    /// (the request then completes degraded, with the loss flagged).
    pub max_retries: u32,
    /// First-retry backoff; doubles per attempt (shift capped at 16).
    pub backoff_base: SimDuration,
    /// Hard per-request latency bound: when it expires the request is
    /// served immediately with whatever partials have merged, missing
    /// rows flagged. `None` waits for the retry budget to resolve.
    pub deadline: Option<SimDuration>,
    /// Attempt number from which a failing NDP sub-batch is re-issued on
    /// the conventional baseline path instead.
    pub fallback_after: u32,
    /// Sliding window (device operators) over which the breaker measures
    /// a shard's error rate.
    pub breaker_window: u32,
    /// Error fraction of the window that trips the breaker.
    pub breaker_threshold: f64,
    /// How long a tripped breaker redirects NDP work to the baseline
    /// path before letting one probe operator through.
    pub breaker_cooldown: SimDuration,
}

impl Default for FaultPolicy {
    fn default() -> Self {
        FaultPolicy {
            max_retries: 2,
            backoff_base: SimDuration::from_us(20),
            deadline: None,
            fallback_after: 2,
            breaker_window: 16,
            breaker_threshold: 0.5,
            breaker_cooldown: SimDuration::from_ms(1),
        }
    }
}

/// A bookkeeping invariant violation surfaced by [`ServingRuntime::step`]
/// instead of a panic: the simulated fleet state went inconsistent (an
/// event referenced a request the runtime does not know). These indicate
/// a runtime bug, not an injected device fault — injected faults are
/// handled by the retry/fallback/degradation machinery and never surface
/// here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServingError {
    /// An arrival event fired for a request with no pending submission.
    MissingArrival(u64),
    /// A completion event fired for a request that is not in flight.
    UnknownCompletion(u64),
    /// A request completed without any sub-batch ever starting service.
    ServedBeforeStart(u64),
}

impl std::fmt::Display for ServingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServingError::MissingArrival(r) => {
                write!(
                    f,
                    "arrival event for request {r} with no pending submission"
                )
            }
            ServingError::UnknownCompletion(r) => {
                write!(f, "completion event for request {r} that is not in flight")
            }
            ServingError::ServedBeforeStart(r) => {
                write!(f, "request {r} completed without starting service")
            }
        }
    }
}

impl std::error::Error for ServingError {}

/// A finished request, handed out by [`ServingRuntime::step`].
#[derive(Debug)]
pub struct CompletedRequest {
    /// The request's id.
    pub id: RequestId,
    /// Caller-supplied client tag (closed-loop generators key on it).
    pub client: u64,
    /// The served table.
    pub table: ServedTableId,
    /// When the request arrived.
    pub arrival: SimTime,
    /// When the last shard partial was merged.
    pub finish: SimTime,
    /// Arrival → first sub-batch began service.
    pub queue: SimDuration,
    /// First service start → completion.
    pub service: SimDuration,
    /// The original batch (global rows), for verification.
    pub batch: LookupBatch,
    /// The merged output vectors. Slots flagged in
    /// [`CompletedRequest::missing_slots`] hold partial (or zero)
    /// accumulations and must not be consumed as results.
    pub outputs: SlsOutput,
    /// Lookups that never merged: their sub-batches exhausted the retry
    /// budget or were still in flight when the deadline fired. Zero for
    /// a fully served request.
    pub missing_lookups: u64,
    /// Per output slot: `true` when at least one contribution is missing
    /// (empty when the request is fully served).
    pub missing_slots: Vec<bool>,
}

impl CompletedRequest {
    /// End-to-end latency.
    pub fn e2e(&self) -> SimDuration {
        self.queue + self.service
    }

    /// `true` when the request was served with missing rows (flagged
    /// degradation, never silently wrong bits).
    pub fn is_degraded(&self) -> bool {
        self.missing_lookups > 0
    }
}

/// A submitted request whose arrival event has not fired yet.
#[derive(Debug)]
struct PendingArrival {
    client: u64,
    table: usize,
    batch: LookupBatch,
    path: SlsPath,
}

#[derive(Debug)]
struct Inflight {
    client: u64,
    table: usize,
    /// The path the request was submitted on (attribution key).
    path: SlsPath,
    /// Request trace span, allocated at admission and emitted at
    /// completion (`SpanId::NONE` untraced).
    span: SpanId,
    arrival: SimTime,
    first_start: Option<SimTime>,
    finish: SimTime,
    pending: usize,
    acc: SlsOutput,
    batch: LookupBatch,
    /// Deadline fired and the request was already served degraded; the
    /// entry only lingers to absorb (and discard) late sub-batches.
    completed: bool,
    /// Per output slot: sub-batches still owing a contribution.
    slot_pending: Vec<u32>,
    /// Per output slot: a contribution was dropped (retry budget
    /// exhausted or deadline expiry) — the slot is partial.
    slot_missing: Vec<bool>,
    /// Lookups dropped so far.
    missing_lookups: u64,
    /// Lookups not yet folded in (drops to 0 as sub-batches merge).
    pending_lookups: u64,
}

/// A device operator in flight on a shard, awaiting harvest. The merged
/// operator keeps its component sub-batches intact (their slice of the
/// merged output block is implied by per-output counts, in order) so a
/// failed operator can re-queue each component for retry.
#[derive(Debug)]
struct InflightOp {
    op: OpId,
    /// Served table the operator addresses.
    table: usize,
    /// Routing generation every component was split under (merge never
    /// crosses generations).
    plan: usize,
    subs: Vec<SubBatch>,
}

/// Per-window products of one shard's lookahead sweep that must not
/// touch shared runtime state from a worker thread: harvested operators
/// (folded into requests at the sequential merge, in canonical order)
/// and deferred counter deltas. Buffers persist across windows so the
/// steady state allocates nothing.
#[derive(Debug, Default)]
pub(crate) struct SweepOut {
    /// Operators harvested during the sweep, in shard-local harvest
    /// order (nondecreasing finish time).
    harvested: Vec<(InflightOp, OpResult)>,
    /// Deferred `stats.ops_dispatched` delta.
    ops_dispatched: u64,
    /// Deferred `stats.subs_dispatched` delta.
    subs_dispatched: u64,
    /// Deferred `stats.breaker_trips` delta (the breaker itself is
    /// shard-local state and is updated live during the sweep).
    breaker_trips: u64,
}

#[derive(Debug)]
pub(crate) struct Shard {
    sys: System,
    /// Operators submitted to `sys` and not yet harvested.
    inflight: Vec<InflightOp>,
    queue: VecDeque<SubBatch>,
    /// Earliest armed shard-tick not yet fired (ticks are only ever
    /// armed earlier, never cancelled; late duplicates are harmless).
    next_tick: Option<SimTime>,
    // --- occupancy / utilisation telemetry ---
    /// Time-integral of in-flight operator count, in op-nanoseconds.
    occ_weighted_ns: u64,
    /// Instant of the last occupancy change.
    occ_last: SimTime,
    /// Start of the current stats window.
    window_start: SimTime,
    /// Flash channel-busy total at the last stats reset (the flash
    /// counters are cumulative).
    chan_busy_base_ns: u64,
    /// Circuit breaker over this shard's operator outcomes.
    breaker: Breaker,
    /// Host-track tracer (pid 0) writing into *this shard's* sink, so a
    /// worker thread can emit dispatch-side spans (`sub:wait`) without
    /// sharing a sink: per-shard sinks with namespaced span ids are what
    /// keep traces bit-identical across execution modes.
    host_tracer: Tracer,
    /// This shard's sweep products (parallel mode only).
    sweep: SweepOut,
}

impl Shard {
    fn new(cfg: &RecSsdConfig) -> Self {
        Shard {
            sys: System::new(cfg.clone()),
            inflight: Vec::new(),
            queue: VecDeque::new(),
            next_tick: None,
            occ_weighted_ns: 0,
            occ_last: SimTime::ZERO,
            window_start: SimTime::ZERO,
            chan_busy_base_ns: 0,
            breaker: Breaker::new(),
            host_tracer: Tracer::disabled(),
            sweep: SweepOut::default(),
        }
    }

    /// Accumulates the occupancy integral up to `at` (monotone per
    /// shard; out-of-window times saturate to zero-length intervals).
    fn note_occupancy(&mut self, at: SimTime) {
        let span = at.saturating_since(self.occ_last);
        self.occ_weighted_ns += self.inflight.len() as u64 * span.as_ns();
        self.occ_last = self.occ_last.max(at);
    }

    fn chan_busy_total_ns(&self) -> u64 {
        self.sys
            .device()
            .ftl()
            .flash()
            .stats()
            .channel_busy
            .iter()
            .map(|d| d.as_ns())
            .sum()
    }
}

/// Per-shard circuit breaker over harvested operator outcomes. Closed
/// counts errors over a sliding window of recent operators; crossing the
/// policy threshold opens the breaker, which redirects NDP dispatches to
/// the baseline path for the cooldown. After the cooldown one NDP probe
/// is let through (half-open); the next harvested outcome then closes or
/// re-opens it. (The resolving outcome may belong to an operator
/// dispatched before the trip — a deliberate simplification; a wrong
/// early close just re-trips on the next window.)
#[derive(Debug)]
struct Breaker {
    state: BreakerState,
    /// Most recent operator outcomes (`true` = error), bounded by the
    /// policy window.
    recent: VecDeque<bool>,
    errs: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BreakerState {
    Closed,
    Open { until: SimTime },
    HalfOpen,
}

impl Breaker {
    fn new() -> Self {
        Breaker {
            state: BreakerState::Closed,
            recent: VecDeque::new(),
            errs: 0,
        }
    }

    /// Folds one harvested operator outcome in; returns `true` when this
    /// outcome trips the breaker (Closed/HalfOpen → Open).
    fn record(&mut self, now: SimTime, error: bool, policy: &FaultPolicy) -> bool {
        match self.state {
            BreakerState::Open { .. } => false,
            BreakerState::HalfOpen => {
                if error {
                    self.state = BreakerState::Open {
                        until: now + policy.breaker_cooldown,
                    };
                    true
                } else {
                    self.state = BreakerState::Closed;
                    self.recent.clear();
                    self.errs = 0;
                    false
                }
            }
            BreakerState::Closed => {
                self.recent.push_back(error);
                if error {
                    self.errs += 1;
                }
                while self.recent.len() > policy.breaker_window as usize {
                    if self.recent.pop_front() == Some(true) {
                        self.errs -= 1;
                    }
                }
                let trip = self.errs > 0
                    && f64::from(self.errs)
                        >= policy.breaker_threshold * f64::from(policy.breaker_window);
                if trip {
                    self.state = BreakerState::Open {
                        until: now + policy.breaker_cooldown,
                    };
                    self.recent.clear();
                    self.errs = 0;
                }
                trip
            }
        }
    }

    /// Gates an NDP dispatch: closed always allows; open redirects until
    /// the cooldown elapses, then lets exactly one probe through.
    fn allows_ndp(&mut self, now: SimTime) -> bool {
        match self.state {
            BreakerState::Closed => true,
            BreakerState::HalfOpen => false,
            BreakerState::Open { until } => {
                if now >= until {
                    self.state = BreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }
}

/// Which execution resource a sub-batch is queued on: a device shard or
/// the host DRAM tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Ix {
    Dev(usize),
    Tier,
}

/// Global serving events. Request completion is *not* an event: finished
/// requests enter a canonical ready-queue ordered by `(finish, id)` and
/// are delivered as soon as no pending event could still precede them —
/// the property that makes completion order independent of how shard
/// harvests interleave (and therefore of the execution mode).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    Arrival(u64),
    /// Revisit a shard (or the DRAM tier) at its next internal event
    /// time: advance its system clock, harvest finished operators,
    /// dispatch more.
    ShardTick(Ix),
    /// Re-enqueue a parked (failed) sub-batch after its backoff.
    Retry(u64),
    /// A request's latency deadline: serve it degraded if incomplete.
    Deadline(u64),
}

/// One routing generation of a served table: which device tables its
/// sub-batches address and how rows split between tier and shards.
#[derive(Debug)]
struct PlanState {
    /// The table's id within each shard's [`System`] under this plan.
    per_shard: Vec<recssd::TableId>,
    /// Placement routing (hot set + packed storage order); `None` for
    /// tables registered without a placement.
    routing: Option<Routing>,
    /// Hot rows (global ids) of this plan, for delta computation.
    hot_rows: Vec<u64>,
    /// Which A/B registry slot the plan's device (and tier) tables
    /// occupy. A refresh re-binds the *other* slot, so the outgoing plan
    /// keeps serving its in-flight work untouched.
    slot: usize,
    /// Sub-batches split under this plan and not yet harvested. A slot
    /// can only be re-bound when every plan previously bound to it has
    /// fully drained.
    inflight_subs: usize,
}

impl PlanState {
    /// Drops the O(rows) routing state once the plan stops admitting:
    /// `hot_index`/`storage`/`hot_rows` are only consulted at split time,
    /// so a deactivated generation keeps just its device/tier table ids
    /// (needed to drain queued work and to re-bind its slot later).
    fn retire(&mut self) {
        if let Some(r) = self.routing.as_mut() {
            r.hot_index = Vec::new();
            r.storage = Vec::new();
        }
        self.hot_rows = Vec::new();
    }
}

/// A refresh whose migration work is still in flight. The new plan is
/// registered (double-buffered beside the active one) but admissions
/// keep routing under the old plan until `remaining` hits zero.
#[derive(Debug)]
struct PendingPlan {
    plan: usize,
    remaining: usize,
    promoted: u64,
    demoted: u64,
}

#[derive(Debug)]
pub(crate) struct ServedTable {
    /// Full-table contents (procedural tables make this cheap), kept for
    /// reference verification.
    table: EmbeddingTable,
    map: ShardMap,
    /// Every routing generation registered so far (old plans stay until
    /// their slot is re-bound; in-flight sub-batches pin their own
    /// generation by index).
    plans: Vec<PlanState>,
    /// The generation new admissions split under.
    active: usize,
    /// Refresh awaiting migration completion, if any.
    pending: Option<PendingPlan>,
    /// Per device shard: which plan index currently owns registry slot
    /// A/B (`usize::MAX` = slot never used).
    shard_slots: [usize; 2],
    /// Same for the DRAM tier's registry.
    tier_slots: [usize; 2],
}

/// Configuration of the runtime's *online adaptation loop*: feed every
/// admitted request into a decayed [`FreqProfiler`], and every
/// `epoch_requests` admissions rebuild the placement under a global DRAM
/// budget split by marginal hit rate, refreshing any table whose hot set
/// moved by at least `min_delta_rows`.
#[derive(Debug, Clone)]
pub struct AdaptivePolicy {
    /// Admissions between re-planning passes.
    pub epoch_requests: u64,
    /// EWMA factor applied to the profiler at each epoch boundary
    /// (`0` = only the last epoch counts, `1` = never forget).
    pub decay: f64,
    /// Global DRAM row budget split across tables by marginal hit rate.
    pub budget_rows: usize,
    /// Hysteresis: refresh a table only when the rebuilt hot set would
    /// absorb at least this much more of the *currently profiled* traffic
    /// than the active one (fraction of profiled accesses). Swapping
    /// equal-heat tail rows gains nothing and still pays migration, so
    /// gain-based hysteresis kills plan thrash without dulling the
    /// response to genuine drift.
    pub min_hit_gain: f64,
}

/// Absolute drop in the active plan's hit mass (this epoch's fresh
/// counts vs the long-memory ranking) that declares a distribution
/// shift — the change-point trigger that lets a slow, well-sampled
/// ranking still react to a rotation within one epoch.
const DRIFT_RESET_DROP: f64 = 0.2;

/// Extra decay applied to the long-memory ranking when a shift is
/// detected: a *soft* flush. Rows that stayed hot across the shift
/// re-assert themselves immediately, while the displaced history is too
/// weak to outvote the new regime.
const DRIFT_FLUSH_DECAY: f64 = 0.2;

/// Weight of one observation in the adaptive profilers. Counts are
/// integers and the EWMA decay truncates, so unweighted small counts
/// would vanish after a single epoch; weighting keeps fractional decay
/// meaningful (16 → 12 → 9 → 7 … instead of 1 → 0).
const ADAPTIVE_WEIGHT: u64 = 16;

/// Minimum *weighted* count before a row can enter the hot set through
/// the adaptive loop: two full (undecayed) observations — one hit in a
/// thin online sample is statistically indistinguishable from an
/// incumbent row that merely went unobserved, and swapping them is pure
/// migration churn. Incumbent rows additionally win every tie.
const MIN_EVIDENCE: u64 = 2 * ADAPTIVE_WEIGHT;

#[derive(Debug)]
struct AdaptiveState {
    policy: AdaptivePolicy,
    /// Long-memory ranking: `ewma = ewma * decay + fresh` per epoch.
    ewma: FreqProfiler,
    /// The current epoch's observations only.
    fresh: FreqProfiler,
    /// Served-table index per profiler table (profile order).
    tables: Vec<usize>,
    arrivals: u64,
    epochs: u64,
}

/// Parses the `RECSSD_FORCE_EXEC` override (`sequential` or
/// `parallel:<n>`); unset or unparsable values mean "no override".
fn exec_mode_from_env() -> Option<ExecMode> {
    let v = std::env::var("RECSSD_FORCE_EXEC").ok()?;
    let v = v.trim().to_ascii_lowercase();
    if v == "sequential" {
        return Some(ExecMode::Sequential);
    }
    let n = v.strip_prefix("parallel:")?.parse::<usize>().ok()?;
    (n > 0).then_some(ExecMode::Parallel(n))
}

/// One harvested operator queued for the canonical post-window merge:
/// sorted by `(finish, unit, intra-unit order)`, the order that makes
/// the fold independent of worker interleaving (and, because a shard is
/// only ever harvested *at* an operator's finish instant, identical to
/// the sequential stepper's fold order).
#[derive(Debug)]
struct MergeItem {
    fin_ns: u64,
    unit: u32,
    seq: u32,
    ix: Ix,
    op: InflightOp,
    result: OpResult,
}

/// The sharded serving runtime. See the [module docs](self) for the
/// architecture.
#[derive(Debug)]
pub struct ServingRuntime {
    policy: SchedulePolicy,
    depth: usize,
    /// Execution mode after any `RECSSD_FORCE_EXEC` override.
    exec: ExecMode,
    /// Conservative lookahead window width: [`System::sync_horizon`] of
    /// the shard configuration.
    horizon: SimDuration,
    /// Worker pool for [`ExecMode::Parallel`] (absent in sequential).
    pool: Option<WorkerPool>,
    /// Finished requests awaiting delivery, keyed `(finish_ns, id)` —
    /// the canonical, mode-independent completion order.
    ready: BinaryHeap<Reverse<(u64, u64)>>,
    /// Pending non-tick event times (arrivals, retries, deadlines):
    /// cross-shard interaction points that bound parallel windows.
    /// Maintained only under [`ExecMode::Parallel`].
    nontick: BinaryHeap<Reverse<u64>>,
    /// Reused canonical-merge scratch (parallel mode).
    merge_scratch: Vec<MergeItem>,
    layout: PageLayout,
    /// Per-shard system template, kept to spin up the DRAM tier lazily.
    system_cfg: RecSsdConfig,
    shards: Vec<Shard>,
    /// The host DRAM tier: one more pipelined server on the same
    /// timeline, created by the first placed table with a non-empty hot
    /// set. Its operators are always [`SlsPath::Dram`] gathers over the
    /// pinned hot rows.
    tier: Option<Shard>,
    tables: Vec<ServedTable>,
    events: EventQueue<Ev>,
    inflight: FxHashMap<u64, Inflight>,
    /// Requests whose arrival event has not fired yet. Splitting happens
    /// *at the arrival instant* under the then-active plan — the property
    /// that makes "old plan serves in-flight work, new plan takes new
    /// admissions" well-defined on the simulated timeline.
    pending_arrivals: FxHashMap<u64, PendingArrival>,
    /// The online adaptation loop, if enabled.
    adaptive: Option<AdaptiveState>,
    next_req: u64,
    completed: VecDeque<CompletedRequest>,
    stats: ServingStats,
    /// Free-list of request accumulators.
    out_pool: Vec<SlsOutput>,
    /// Reused reference scratch for [`ServingRuntime::verify_bitmatch`].
    ref_scratch: Vec<f32>,
    /// Reused harvest scratch (ops completed during one shard sync).
    harvest_scratch: Vec<(InflightOp, OpResult)>,
    /// Host-side fault recovery policy (inert without injected faults).
    fault_policy: FaultPolicy,
    /// Failed sub-batches waiting out their backoff, keyed by the
    /// sequence number carried in [`Ev::Retry`].
    retry_park: FxHashMap<u64, (Ix, SubBatch)>,
    next_retry: u64,
    /// The unified metrics registry behind [`ServingStats`] (and any
    /// future per-shard metrics): one reset, one snapshot surface.
    registry: MetricsRegistry,
    /// Span sinks when tracing is enabled (empty = disabled): index 0 is
    /// the serving/host sink, `1..=shards` the per-shard sinks,
    /// `shards + 1` the DRAM tier's (created with the tier). Distinct id
    /// namespaces keep merged span ids collision-free and bit-identical
    /// across execution modes.
    sinks: Vec<TraceSink>,
    /// Serving-level tracer (pid 0, host track); disabled by default.
    tracer: Tracer,
    /// Wall-clock self-profile of the simulator loop (off by default).
    wall: WallProfile,
    /// Accumulated per-epoch JSONL metric snapshots.
    epoch_log: String,
    /// Whether adaptive epochs append to `epoch_log`.
    log_epochs: bool,
}

impl ServingRuntime {
    /// Builds a runtime of `cfg.shards` independent systems.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(cfg: &ServingConfig) -> Self {
        assert!(cfg.shards > 0, "need at least one shard");
        assert!(cfg.depth > 0, "queue depth must be at least 1");
        let exec = exec_mode_from_env().unwrap_or(cfg.exec);
        let horizon =
            SimDuration::from_ns(cfg.system.host.sw_cmd_ns + cfg.system.host.op_overhead_ns);
        let pool = match exec {
            ExecMode::Sequential => None,
            ExecMode::Parallel(n) => {
                assert!(n > 0, "parallel execution needs at least one worker");
                assert!(
                    horizon > SimDuration::ZERO,
                    "ExecMode::Parallel requires a non-zero cross-shard sync horizon \
                     (host.sw_cmd_ns + host.op_overhead_ns): zero lookahead degenerates \
                     to one-event-at-a-time barriers — use ExecMode::Sequential for \
                     such configs"
                );
                Some(WorkerPool::new(n))
            }
        };
        let shards = (0..cfg.shards).map(|_| Shard::new(&cfg.system)).collect();
        let mut registry = MetricsRegistry::new();
        let stats = ServingStats::registered(&mut registry);
        let rt = ServingRuntime {
            policy: cfg.policy,
            depth: cfg.depth,
            exec,
            horizon,
            pool,
            ready: BinaryHeap::new(),
            nontick: BinaryHeap::new(),
            merge_scratch: Vec::new(),
            layout: cfg.layout,
            system_cfg: cfg.system.clone(),
            shards,
            tier: None,
            tables: Vec::new(),
            events: EventQueue::new(),
            inflight: FxHashMap::default(),
            pending_arrivals: FxHashMap::default(),
            adaptive: None,
            next_req: 0,
            completed: VecDeque::new(),
            stats,
            out_pool: Vec::new(),
            ref_scratch: Vec::new(),
            harvest_scratch: Vec::new(),
            fault_policy: FaultPolicy::default(),
            retry_park: FxHashMap::default(),
            next_retry: 0,
            registry,
            sinks: Vec::new(),
            tracer: Tracer::disabled(),
            wall: WallProfile::new(),
            epoch_log: String::new(),
            log_epochs: false,
        };
        rt.check_fault_policy_lookahead();
        rt
    }

    /// The conservative lookahead window width the parallel stepper uses
    /// between barriers: [`System::sync_horizon`] of the shard config.
    pub fn sync_horizon(&self) -> SimDuration {
        self.horizon
    }

    /// The execution mode this runtime actually runs under (after any
    /// `RECSSD_FORCE_EXEC` override).
    pub fn exec_mode(&self) -> ExecMode {
        self.exec
    }

    /// Per-worker wall-clock self-profiles of the parallel stepper
    /// (advance vs barrier-wait time per worker; empty under
    /// [`ExecMode::Sequential`]). Barrier-wait skew across workers is
    /// the shard-imbalance signal.
    pub fn worker_profiles(&self) -> Vec<WorkerProfile> {
        self.pool.as_ref().map_or_else(Vec::new, |p| p.profiles())
    }

    /// Under parallel execution the retry backoff must not react faster
    /// than the lookahead horizon, or a retry could target an instant a
    /// worker has already swept past.
    fn check_fault_policy_lookahead(&self) {
        if matches!(self.exec, ExecMode::Parallel(_)) {
            assert!(
                self.fault_policy.backoff_base >= self.horizon,
                "ExecMode::Parallel requires FaultPolicy::backoff_base ({:?}) >= the \
                 cross-shard sync horizon ({:?}): a faster reaction would land inside \
                 an already-swept lookahead window (see System::sync_horizon)",
                self.fault_policy.backoff_base,
                self.horizon,
            );
        }
    }

    /// Turns on sim-time span tracing across the whole stack: the runtime
    /// records request/sub-batch spans on pid 0, every device shard's
    /// host phases + firmware + flash spans on pid `shard + 1`, and the
    /// DRAM tier on pid [`track::PID_TIER`]. Drain the spans with
    /// [`ServingRuntime::take_trace`]. Tracing must not change simulated
    /// results (CI-checks bit-identity); the disabled default performs no
    /// work and no allocation on the hot path.
    pub fn enable_tracing(&mut self) {
        // One sink per independently stepped component, each in its own
        // span-id namespace: a component's ids then depend only on its
        // own event order, never on cross-shard (or cross-thread)
        // interleaving, which is what keeps traces bit-identical between
        // execution modes. Namespace 0 = serving/host, `i + 1` = shard
        // `i`, `shards + 1` = the DRAM tier.
        let host = TraceSink::new();
        self.tracer = host.tracer(0, track::TID_HOST);
        self.sinks = vec![host];
        for i in 0..self.shards.len() {
            let sink = TraceSink::namespaced(i as u32 + 1);
            let s = &mut self.shards[i];
            s.sys.set_tracer(sink.tracer(i as u32 + 1, track::TID_HOST));
            s.host_tracer = sink.tracer(0, track::TID_HOST);
            self.sinks.push(sink);
        }
        if let Some(tier) = self.tier.as_mut() {
            let sink = TraceSink::namespaced(self.shards.len() as u32 + 1);
            tier.sys
                .set_tracer(sink.tracer(track::PID_TIER, track::TID_HOST));
            tier.host_tracer = sink.tracer(0, track::TID_HOST);
            self.sinks.push(sink);
        }
    }

    /// `true` while span tracing is on.
    pub fn tracing_enabled(&self) -> bool {
        !self.sinks.is_empty()
    }

    /// Drains every span recorded since the last call (empty when tracing
    /// was never enabled), merged across the per-component sinks into
    /// one canonical order — `(start, end, id)` — so the result is
    /// deterministic and identical across execution modes. Export with
    /// `recssd_obs::chrome_trace_json`.
    pub fn take_trace(&mut self) -> Vec<SpanRec> {
        let mut spans: Vec<SpanRec> = self.sinks.iter().flat_map(|s| s.take_spans()).collect();
        spans.sort_by_key(|s| (s.start_ns, s.end_ns, s.id));
        spans
    }

    /// Clones every span recorded so far *without* draining the sinks,
    /// in the same canonical `(start, end, id)` order as
    /// [`ServingRuntime::take_trace`]. This is the read path for the
    /// live analysis APIs below: a pure observer that leaves a later
    /// export untouched.
    pub fn snapshot_trace(&self) -> Vec<SpanRec> {
        let mut spans: Vec<SpanRec> = self.sinks.iter().flat_map(|s| s.snapshot_spans()).collect();
        spans.sort_by_key(|s| (s.start_ns, s.end_ns, s.id));
        spans
    }

    /// Extracts the per-request critical paths from the spans recorded
    /// so far and aggregates them per serving path (see
    /// [`recssd_obs::analysis`]): e2e latency segmented into named
    /// phases with a conservation check. Requires tracing to be on;
    /// returns an empty report otherwise. Pure observer — calling this
    /// mid-run perturbs nothing (property-tested in
    /// `tests/observability.rs`).
    pub fn critical_path_report(&self) -> recssd_obs::CriticalPathReport {
        recssd_obs::critical_path_report(&self.snapshot_trace())
    }

    /// Per-resource busy/idle/wait decomposition of the spans recorded
    /// so far — firmware core and flash array per shard, per-shard
    /// operator queues, the DRAM tier — bucketed into `window`-wide
    /// sim-time windows with Little's-law-consistent queueing stats.
    /// Requires tracing to be on; empty otherwise. Pure observer.
    pub fn utilization_timelines(
        &self,
        window: SimDuration,
    ) -> Vec<recssd_obs::UtilizationTimeline> {
        recssd_obs::utilization_timelines(&self.snapshot_trace(), window.as_ns().max(1))
    }

    /// Ranks the simulated resources by busy-time saturation and
    /// estimates per-path capacity headroom from the measured service
    /// demands (see [`recssd_obs::analysis::bottleneck_report`]).
    /// Requires tracing to be on; empty otherwise. Pure observer.
    pub fn bottleneck_report(&self) -> recssd_obs::BottleneckReport {
        recssd_obs::bottleneck_report(&self.snapshot_trace())
    }

    /// Turns on wall-clock self-profiling of the simulator loop (where
    /// the *simulator's own* time goes: admission, event dispatch, device
    /// stepping, harvest) — the single-thread baseline for parallel
    /// stepping work.
    pub fn enable_self_profiling(&mut self) {
        self.wall.enable();
    }

    /// Wall-clock self-profile totals per phase (all zero unless
    /// [`ServingRuntime::enable_self_profiling`] was called).
    pub fn wall_profile(&self) -> Vec<WallPhaseReport> {
        self.wall.report()
    }

    /// Makes every adaptive epoch append one JSONL metrics snapshot to
    /// the epoch log ([`ServingRuntime::take_epoch_log`]).
    pub fn enable_epoch_log(&mut self) {
        self.log_epochs = true;
    }

    /// Drains the accumulated per-epoch JSONL metric snapshots (one
    /// `{"epoch":…,"sim_ns":…,"metrics":{…}}` object per line).
    pub fn take_epoch_log(&mut self) -> String {
        std::mem::take(&mut self.epoch_log)
    }

    /// Current value of every registered metric, keyed `name{k=v,…}` —
    /// the audit surface for registry-wide resets and the bench's
    /// one-source-of-truth export.
    pub fn metrics_snapshot(&self) -> Vec<(String, MetricValue)> {
        self.registry.samples()
    }

    /// Per-path latency attribution (queue/service/e2e quantiles for
    /// each serving path that completed at least one request).
    pub fn attribution(&self) -> Vec<PathAttribution> {
        self.stats.attribution()
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Per-shard operator queue depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The current global virtual time: the furthest instant any
    /// component of the co-simulation has reached. Under
    /// [`ExecMode::Sequential`] this is exactly the event clock; under
    /// [`ExecMode::Parallel`] shard clocks can lead the event clock by
    /// up to one lookahead window, and at quiesce points (a drained
    /// run) this maximum lands on the same instant the sequential
    /// stepper reports — keeping wall-clock-independent metrics
    /// bit-identical across execution modes.
    pub fn now(&self) -> SimTime {
        self.host_now()
    }

    fn host_now(&self) -> SimTime {
        let mut t = self.events.now();
        for s in self.shards.iter().chain(self.tier.as_ref()) {
            t = t.max(s.sys.now());
        }
        t
    }

    /// Serving statistics accumulated so far.
    pub fn stats(&self) -> &ServingStats {
        &self.stats
    }

    /// Resets every statistic in the stack (between warm-up and
    /// measurement): one registry-wide reset covers all serving metrics,
    /// then each shard cascades down through host, device, firmware, FTL
    /// cache, flash and fault-injection counters (fault *schedules* and
    /// RNG state are untouched — injection timing stays replayable), and
    /// the per-shard occupancy and channel-utilisation windows re-base at
    /// the current instant.
    pub fn reset_stats(&mut self) {
        self.registry.reset_all();
        self.stats.reset_window();
        let now = self.host_now();
        for s in self.shards.iter_mut().chain(self.tier.as_mut()) {
            s.occ_weighted_ns = 0;
            s.occ_last = s.occ_last.max(now);
            s.window_start = now;
            // The cascade zeroes the flash channel-busy integral, so the
            // utilisation window's base must be zero *after* the reset.
            s.sys.reset_stats();
            s.chan_busy_base_ns = 0;
        }
    }

    /// Time-averaged in-flight operator count per shard since the last
    /// stats reset (up to the current instant). With depth 1 this is the
    /// classic utilisation ρ; pipelining shows up as values above 1.
    pub fn shard_occupancy(&self) -> Vec<f64> {
        // `host_now`, not the event clock: under parallel execution the
        // occupancy integrals extend to shard-local clocks that can
        // lead the event clock, so the reporting window must too.
        let now = self.host_now();
        self.shards
            .iter()
            .map(|s| {
                let window = now.saturating_since(s.window_start).as_ns();
                if window == 0 {
                    return 0.0;
                }
                // Extend the integral to `now` at the current count.
                let tail = now.saturating_since(s.occ_last).as_ns() * s.inflight.len() as u64;
                (s.occ_weighted_ns + tail) as f64 / window as f64
            })
            .collect()
    }

    /// Mean flash channel-bus busy fraction per shard since the last
    /// stats reset — the §2.2 resource whose saturation is the point of
    /// operator pipelining.
    pub fn channel_utilisation(&self) -> Vec<f64> {
        // See `shard_occupancy` for why this is `host_now`.
        let now = self.host_now();
        self.shards
            .iter()
            .map(|s| {
                let window = now.saturating_since(s.window_start).as_ns();
                if window == 0 {
                    return 0.0;
                }
                let channels = s.sys.config().ssd.ftl.flash.geometry.channels as u64;
                let busy = s.chan_busy_total_ns() - s.chan_busy_base_ns;
                busy as f64 / (window * channels) as f64
            })
            .collect()
    }

    /// `true` once a placed table has pinned rows into the DRAM tier.
    pub fn has_tier(&self) -> bool {
        self.tier.is_some()
    }

    /// Time-averaged in-flight operator count of the DRAM tier since the
    /// last stats reset (0 when no tier exists).
    pub fn tier_occupancy(&self) -> f64 {
        // See `shard_occupancy` for why this is `host_now`.
        let now = self.host_now();
        self.tier.as_ref().map_or(0.0, |s| {
            let window = now.saturating_since(s.window_start).as_ns();
            if window == 0 {
                return 0.0;
            }
            let tail = now.saturating_since(s.occ_last).as_ns() * s.inflight.len() as u64;
            (s.occ_weighted_ns + tail) as f64 / window as f64
        })
    }

    /// Hit/miss statistics of each device shard's FTL page cache since
    /// the last stats reset — where frequency-ordered cold-tail packing
    /// shows up (co-hot rows sharing pages raise this rate).
    pub fn ftl_cache_stats(&self) -> Vec<HitStats> {
        self.shards
            .iter()
            .map(|s| s.sys.device().ftl().cache_stats())
            .collect()
    }

    /// Resident fraction of each device shard's FTL page cache.
    pub fn ftl_cache_occupancy(&self) -> Vec<f64> {
        self.shards
            .iter()
            .map(|s| s.sys.device().ftl().cache_occupancy())
            .collect()
    }

    /// Direct access to one shard's [`System`] (cache/partition setup).
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn shard_system_mut(&mut self, shard: usize) -> &mut System {
        &mut self.shards[shard].sys
    }

    /// Arms deterministic fault injection on every device shard. Each
    /// shard gets its own replayable fault plan seeded from
    /// `mix64(cfg.seed ^ shard)`, so per-shard schedules are independent
    /// but the whole fleet replays bit-identically from one seed. The
    /// DRAM tier never faults (host memory is out of the fault model).
    pub fn inject_faults(&mut self, cfg: &FaultConfig) {
        for i in 0..self.shards.len() {
            let mut per = cfg.clone();
            per.seed = mix64(cfg.seed ^ i as u64);
            self.shards[i].sys.set_fault_plan(Some(FaultPlan::new(per)));
        }
    }

    /// Arms fault injection on one shard only (e.g. a single-shard
    /// brownout), with `cfg.seed` used as-is.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn inject_faults_on_shard(&mut self, shard: usize, cfg: &FaultConfig) {
        self.shards[shard]
            .sys
            .set_fault_plan(Some(FaultPlan::new(cfg.clone())));
    }

    /// Sets the host-side recovery policy (retries, backoff, deadline,
    /// fallback, circuit breaker). The policy is inert unless faults are
    /// injected.
    pub fn set_fault_policy(&mut self, policy: FaultPolicy) {
        self.fault_policy = policy;
        self.check_fault_policy_lookahead();
    }

    /// The active recovery policy.
    pub fn fault_policy(&self) -> FaultPolicy {
        self.fault_policy
    }

    /// Per-shard injected-fault totals (`None` for shards without an
    /// armed fault plan).
    pub fn shard_fault_stats(&self) -> Vec<Option<FaultStats>> {
        self.shards.iter().map(|s| s.sys.fault_stats()).collect()
    }

    /// Row-range-shards `table` across every shard system and registers
    /// the slices on their devices.
    ///
    /// # Panics
    ///
    /// Panics if the table has fewer rows than there are shards.
    pub fn add_table(&mut self, table: EmbeddingTable) -> ServedTableId {
        let map = ShardMap::new(table.spec().rows, self.shards.len());
        let per_shard = self
            .shards
            .iter_mut()
            .enumerate()
            .map(|(i, shard)| {
                let slice = table.slice(map.range(i));
                let page_bytes = shard.sys.config().ssd.block_bytes();
                shard
                    .sys
                    .add_table(TableImage::new(slice, self.layout, page_bytes))
            })
            .collect();
        let id = ServedTableId(self.tables.len());
        self.tables.push(ServedTable {
            table,
            map,
            plans: vec![PlanState {
                per_shard,
                routing: None,
                hot_rows: Vec::new(),
                slot: 0,
                inflight_subs: 0,
            }],
            active: 0,
            pending: None,
            shard_slots: [0, usize::MAX],
            tier_slots: [usize::MAX; 2],
        });
        id
    }

    /// Registers `table` under a frequency-profiled placement: the plan's
    /// hot rows are pinned into the host DRAM tier (a gather view served
    /// by an extra [`System`] on the same timeline, always over the DRAM
    /// path), and each shard's on-flash image is re-ordered by
    /// [`TablePlacement::pack_order`] so the hottest cold rows share
    /// flash pages. Requests against the table split into a DRAM-tier
    /// partial plus per-shard device sub-batches and merge bit-identically
    /// to the unplaced `sls_reference` path.
    ///
    /// # Panics
    ///
    /// Panics if the placement was built for a different row count or the
    /// table has fewer rows than there are shards.
    pub fn add_table_placed(
        &mut self,
        table: EmbeddingTable,
        placement: &TablePlacement,
    ) -> ServedTableId {
        assert_eq!(
            placement.rows(),
            table.spec().rows,
            "placement was built for a different table shape"
        );
        let map = ShardMap::new(table.spec().rows, self.shards.len());
        let id = ServedTableId(self.tables.len());
        self.tables.push(ServedTable {
            table,
            map,
            plans: Vec::new(),
            active: 0,
            pending: None,
            shard_slots: [usize::MAX; 2],
            tier_slots: [usize::MAX; 2],
        });
        let plan = self.bind_plan(id.0, placement, 0);
        let t = &mut self.tables[id.0];
        t.plans.push(plan);
        t.shard_slots[0] = 0;
        if t.plans[0]
            .routing
            .as_ref()
            .is_some_and(|r| r.tier_table.is_some())
        {
            t.tier_slots[0] = 0;
        }
        id
    }

    /// Builds and registers one routing generation of table `t_idx` under
    /// `placement`, (re)binding registry slot `slot` on every shard (and
    /// the tier, when the plan pins rows). Does not touch the table's
    /// plan list or active index — the caller decides when (and whether)
    /// the generation takes over admissions.
    fn bind_plan(&mut self, t_idx: usize, placement: &TablePlacement, slot: usize) -> PlanState {
        let t = &self.tables[t_idx];
        let map = t.map;
        let reuse_shard = t.shard_slots[slot] != usize::MAX;
        let shard_table_of =
            |plans: &Vec<PlanState>, plan: usize, shard: usize| plans[plan].per_shard[shard];
        let table_data = t.table.clone();
        let mut storage = Vec::with_capacity(self.shards.len());
        let mut per_shard = Vec::with_capacity(self.shards.len());
        for (i, shard) in self.shards.iter_mut().enumerate() {
            let range = map.range(i);
            let start = range.start;
            let pack = placement.pack_order(range);
            let mut inv = vec![0u32; pack.len()];
            for (s, &local) in pack.iter().enumerate() {
                inv[local as usize] = s as u32;
            }
            storage.push(inv);
            let packed = table_data
                .slice(start..start + pack.len() as u64)
                .select(&pack);
            let page_bytes = shard.sys.config().ssd.block_bytes();
            let image = TableImage::new(packed, self.layout, page_bytes);
            let dev_id = if reuse_shard {
                let existing = shard_table_of(
                    &self.tables[t_idx].plans,
                    self.tables[t_idx].shard_slots[slot],
                    i,
                );
                shard.sys.replace_table(existing, image);
                existing
            } else {
                shard.sys.add_table(image)
            };
            per_shard.push(dev_id);
        }
        let tier_table = (placement.hot_count() > 0).then(|| {
            if self.tier.is_none() {
                let now = self.host_now();
                let mut tier = Shard::new(&self.system_cfg);
                tier.sys.advance_clock(now);
                tier.occ_last = now;
                tier.window_start = now;
                if !self.sinks.is_empty() {
                    let sink = TraceSink::namespaced(self.shards.len() as u32 + 1);
                    tier.sys
                        .set_tracer(sink.tracer(track::PID_TIER, track::TID_HOST));
                    tier.host_tracer = sink.tracer(0, track::TID_HOST);
                    self.sinks.push(sink);
                }
                self.tier = Some(tier);
            }
            let tier = self.tier.as_mut().expect("just ensured");
            let hot_view = table_data.select(placement.hot_rows());
            let page_bytes = tier.sys.config().ssd.block_bytes();
            // Dense layout keeps the tier's (never-read) flash image
            // within its registry slot whatever the hot count.
            let image = TableImage::new(hot_view, PageLayout::Dense, page_bytes);
            let t = &self.tables[t_idx];
            if t.tier_slots[slot] != usize::MAX {
                let existing = t.plans[t.tier_slots[slot]]
                    .routing
                    .as_ref()
                    .and_then(|r| r.tier_table)
                    .expect("tier slot owner has a tier table");
                tier.sys.replace_table(existing, image);
                existing
            } else {
                tier.sys.add_table(image)
            }
        });
        let mut hot_index = vec![crate::shard::COLD; placement.rows() as usize];
        for (i, &row) in placement.hot_rows().iter().enumerate() {
            hot_index[row as usize] = i as u32;
        }
        PlanState {
            per_shard,
            routing: Some(Routing {
                hot_index,
                storage,
                tier_table,
            }),
            hot_rows: placement.hot_rows().to_vec(),
            slot,
            inflight_subs: 0,
        }
    }

    /// The sharding of `table`.
    ///
    /// # Panics
    ///
    /// Panics if `table` was not issued by this runtime.
    pub fn shard_map(&self, table: ServedTableId) -> &ShardMap {
        &self.tables[table.0].map
    }

    /// Submits a request arriving at absolute time `at` (tagged `client`
    /// for closed-loop generators). The batch is routed *when the arrival
    /// fires*, under whatever plan is active at that instant — not at
    /// submission. Completions surface from [`ServingRuntime::step`].
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past (below the co-simulation's leading
    /// edge, [`ServingRuntime::now`]) or `table` is unknown. Under
    /// [`ExecMode::Parallel`] shard clocks lead the event clock by up
    /// to one lookahead window, so a reaction faster than
    /// [`System::sync_horizon`] (e.g. a closed-loop client with think
    /// time below the horizon) can land below a swept shard's clock —
    /// that violates the conservative lookahead contract, cannot be
    /// simulated bit-identically, and panics; use
    /// `ExecMode::Sequential` for zero-lookahead feedback.
    pub fn submit_at(
        &mut self,
        at: SimTime,
        client: u64,
        table: ServedTableId,
        batch: LookupBatch,
        path: SlsPath,
    ) -> RequestId {
        assert!(table.0 < self.tables.len(), "unknown table");
        // The causal floor: no unit's local clock may rewind. Under
        // `ExecMode::Sequential` this is exactly the event clock; under
        // `ExecMode::Parallel` shard clocks lead it by up to one
        // lookahead window, so a reaction faster than the sync horizon
        // (e.g. a closed-loop client with think time below
        // `System::sync_horizon`) lands below a swept shard's clock and
        // is rejected loudly — it cannot be simulated bit-identically.
        let floor = self.host_now();
        assert!(
            at >= floor,
            "submission at {at:?} is below the co-simulation's leading edge \
             ({floor:?}): reactions under ExecMode::Parallel must lag the \
             cross-shard sync horizon ({:?}) — see System::sync_horizon",
            self.horizon,
        );
        let req = self.next_req;
        self.next_req += 1;
        self.pending_arrivals.insert(
            req,
            PendingArrival {
                client,
                table: table.0,
                batch,
                path,
            },
        );
        self.events.push_at(at, Ev::Arrival(req));
        self.note_nontick(at);
        RequestId(req)
    }

    /// Records a pending non-tick (cross-shard interaction) event time;
    /// parallel windows never sweep past the earliest of these.
    fn note_nontick(&mut self, at: SimTime) {
        if self.pool.is_some() {
            self.nontick.push(Reverse(at.as_ns()));
        }
    }

    /// Retires one pending non-tick entry at `now` (its event was just
    /// popped).
    fn retire_nontick(&mut self, now: SimTime) {
        if self.pool.is_some() {
            let popped = self.nontick.pop();
            debug_assert_eq!(popped, Some(Reverse(now.as_ns())), "non-tick ledger drift");
        }
    }

    /// Routes one arrived request under the table's active plan and
    /// enqueues its sub-batches.
    fn admit(&mut self, now: SimTime, req: u64, arrival: PendingArrival) {
        let PendingArrival {
            client,
            table,
            batch,
            path,
        } = arrival;
        if let Some(mut ad) = self.adaptive.take() {
            if let Some(prof_ix) = ad.tables.iter().position(|&t| t == table) {
                for ids in batch.per_output() {
                    for &row in ids {
                        ad.fresh.observe_count(prof_ix, row, ADAPTIVE_WEIGHT);
                    }
                }
            }
            ad.arrivals += 1;
            let due = ad.arrivals >= ad.policy.epoch_requests;
            if due {
                ad.arrivals = 0;
                ad.epochs += 1;
                self.run_adaptive_epoch(&mut ad);
            }
            self.adaptive = Some(ad);
        }
        let t_admit = self.wall.begin();
        let t = &mut self.tables[table];
        let plan_ix = t.active;
        let plan = &mut t.plans[plan_ix];
        let (tier_sub, shard_subs) = split_batch(
            &t.map,
            plan.routing.as_ref(),
            req,
            table,
            plan_ix as u32,
            path,
            &batch,
        );
        if plan.routing.is_some() {
            let hot: usize = tier_sub
                .as_ref()
                .map_or(0, |s| s.per_output.iter().map(|v| v.len()).sum());
            self.stats.tier.add_hits(hot as u64);
            self.stats
                .tier
                .add_misses((batch.total_lookups() - hot) as u64);
        }
        let mut subs: Vec<(Ix, SubBatch)> = Vec::with_capacity(shard_subs.len() + 1);
        subs.extend(tier_sub.map(|s| (Ix::Tier, s)));
        subs.extend(shard_subs.into_iter().map(|(i, s)| (Ix::Dev(i), s)));
        plan.inflight_subs += subs.len();
        let req_span = self.tracer.alloc_id();
        if self.tracer.enabled() {
            for (_, sub) in subs.iter_mut() {
                sub.span = self.tracer.alloc_id();
                sub.born = now;
                sub.enqueued = now;
            }
        }
        let mut acc = self.out_pool.pop().unwrap_or_default();
        acc.reset(batch.outputs(), t.table.spec().dim);
        let mut slot_pending = vec![0u32; batch.outputs()];
        for (_, sub) in &subs {
            for &slot in &sub.slots {
                slot_pending[slot as usize] += 1;
            }
        }
        let pending_lookups = batch.total_lookups() as u64;
        self.inflight.insert(
            req,
            Inflight {
                client,
                table,
                path,
                span: req_span,
                arrival: now,
                first_start: None,
                finish: now,
                pending: subs.len(),
                acc,
                slot_missing: vec![false; batch.outputs()],
                slot_pending,
                missing_lookups: 0,
                pending_lookups,
                completed: false,
                batch,
            },
        );
        if let Some(deadline) = self.fault_policy.deadline {
            self.events.push_at(now + deadline, Ev::Deadline(req));
            self.note_nontick(now + deadline);
        }
        self.wall.end(WallPhase::Admit, t_admit);
        for (ix, sub) in subs {
            self.shard_mut(ix).queue.push_back(sub);
            self.pump_shard(ix, now);
        }
    }

    /// Swaps `table`'s placement to `placement` *live on the simulated
    /// timeline*. The new plan is registered beside the active one
    /// (double-buffered A/B registry slots); promoted rows are read off
    /// the device shards as real migration operators (and gathered into
    /// the DRAM tier), competing with client traffic for the same queues;
    /// only when that work drains does the new plan take over admissions.
    /// Requests split under the old plan keep their routing and drain
    /// bit-identically.
    ///
    /// Returns the new plan's generation index, or `None` when the
    /// refresh must be deferred — either a previous refresh is still
    /// migrating, or the registry slot the new plan needs still has
    /// in-flight work from the plan it would replace (retry after more
    /// traffic drains).
    ///
    /// # Panics
    ///
    /// Panics if `table` is unknown or `placement` was built for a
    /// different row count.
    pub fn refresh_placement(
        &mut self,
        table: ServedTableId,
        placement: &TablePlacement,
    ) -> Option<usize> {
        let t_idx = table.0;
        assert_eq!(
            placement.rows(),
            self.tables[t_idx].table.spec().rows,
            "placement was built for a different table shape"
        );
        if self.tables[t_idx].pending.is_some() {
            return None;
        }
        let slot = 1 - self.tables[t_idx].plans[self.tables[t_idx].active].slot;
        // The slot's previous owners must have fully drained: re-binding
        // swaps the flash image under any operator still addressing it.
        let busy = self.tables[t_idx]
            .plans
            .iter()
            .any(|p| p.slot == slot && p.inflight_subs > 0);
        if busy {
            return None;
        }
        let plan = self.bind_plan(t_idx, placement, slot);
        // Host-initiated work dispatches at the co-simulation's leading
        // edge: under parallel execution shard clocks can lead the
        // event clock, and a device operator cannot start in a shard's
        // local past. At quiesce points this is the same instant the
        // sequential stepper would use.
        let now = self.host_now();
        let t = &mut self.tables[t_idx];
        let old_ix = t.active;
        let new_ix = t.plans.len();
        let has_tier = plan
            .routing
            .as_ref()
            .is_some_and(|r| r.tier_table.is_some());
        t.plans.push(plan);
        t.shard_slots[slot] = new_ix;
        if has_tier {
            t.tier_slots[slot] = new_ix;
        }

        // Promotions = hot rows the old plan served from the device,
        // paired with their tier-local position in the new hot view.
        let old_routing = t.plans[old_ix].routing.as_ref();
        let promoted: Vec<(u64, u64)> = placement
            .hot_rows()
            .iter()
            .enumerate()
            .filter(|(_, &r)| match old_routing {
                Some(routing) => routing.hot_index[r as usize] == crate::shard::COLD,
                None => true,
            })
            .map(|(j, &r)| (j as u64, r))
            .collect();
        let demoted = t.plans[old_ix]
            .hot_rows
            .iter()
            .filter(|&&r| !placement.is_hot(r))
            .count() as u64;

        if promoted.is_empty() {
            // Nothing to move: the swap is pure routing state.
            t.active = new_ix;
            t.plans[old_ix].retire();
            self.stats.plan_refreshes.inc();
            self.stats.rows_demoted.add(demoted);
            return Some(new_ix);
        }

        // Migration work: read each promoted row off its shard (old plan
        // coordinates — that is where the row physically lives right now)
        // and gather it into the new tier view. Chunked so it pipelines.
        let map = t.map;
        let mut subs: Vec<(Ix, SubBatch)> = Vec::new();
        let mut per_shard_rows: Vec<Vec<u64>> = vec![Vec::new(); self.shards.len()];
        for &(_, row) in &promoted {
            let shard = map.shard_of(row);
            let local = map.local_row(row);
            let storage = match old_routing {
                Some(routing) => u64::from(routing.storage[shard][local as usize]),
                None => local,
            };
            per_shard_rows[shard].push(storage);
        }
        for (shard, rows) in per_shard_rows.into_iter().enumerate() {
            for chunk in rows.chunks(MIGRATION_CHUNK_ROWS) {
                subs.push((
                    Ix::Dev(shard),
                    SubBatch {
                        owner: SubOwner::Migration(t_idx),
                        table: t_idx,
                        plan: old_ix as u32,
                        // Promoted rows come off flash through the NDP
                        // gather — the device's bulk-read mechanism —
                        // rather than one conventional read per page.
                        path: SlsPath::Ndp(SlsOptions::default()),
                        per_output: chunk.iter().map(|&r| vec![r]).collect(),
                        slots: (0..chunk.len() as u32).collect(),
                        attempts: 0,
                        span: SpanId::NONE,
                        born: SimTime::ZERO,
                        enqueued: SimTime::ZERO,
                    },
                ));
            }
        }
        // Tier load: the promoted rows' write into host DRAM, modeled as
        // a gather over the new tier view.
        let tier_locals: Vec<u64> = promoted.iter().map(|&(j, _)| j).collect();
        for chunk in tier_locals.chunks(MIGRATION_CHUNK_ROWS) {
            subs.push((
                Ix::Tier,
                SubBatch {
                    owner: SubOwner::Migration(t_idx),
                    table: t_idx,
                    plan: new_ix as u32,
                    path: SlsPath::Dram,
                    per_output: chunk.iter().map(|&r| vec![r]).collect(),
                    slots: (0..chunk.len() as u32).collect(),
                    attempts: 0,
                    span: SpanId::NONE,
                    born: SimTime::ZERO,
                    enqueued: SimTime::ZERO,
                },
            ));
        }
        let t = &mut self.tables[t_idx];
        t.pending = Some(PendingPlan {
            plan: new_ix,
            remaining: subs.len(),
            promoted: promoted.len() as u64,
            demoted,
        });
        self.stats.migration_lookups.add(promoted.len() as u64);
        for (ix, mut sub) in subs {
            if self.tracer.enabled() {
                sub.span = self.tracer.alloc_id();
                sub.born = now;
                sub.enqueued = now;
            }
            let plan = sub.plan as usize;
            self.tables[t_idx].plans[plan].inflight_subs += 1;
            self.shard_mut(ix).queue.push_back(sub);
            self.pump_shard(ix, now);
        }
        Some(new_ix)
    }

    /// Turns on the online adaptation loop over every table registered so
    /// far: each admitted request feeds a decayed [`FreqProfiler`], and
    /// every [`AdaptivePolicy::epoch_requests`] admissions the runtime
    /// rebuilds the placement under the policy's global DRAM budget
    /// (split by marginal hit rate) and live-refreshes any table whose
    /// hot set moved by at least the hysteresis threshold.
    ///
    /// # Panics
    ///
    /// Panics if no tables are registered or the policy is degenerate.
    pub fn enable_adaptive(&mut self, policy: AdaptivePolicy) {
        assert!(!self.tables.is_empty(), "no tables to adapt");
        assert!(policy.epoch_requests > 0, "epoch must cover requests");
        assert!(
            (0.0..=1.0).contains(&policy.decay),
            "decay factor must lie in [0, 1]"
        );
        let mut ewma = FreqProfiler::new();
        let mut fresh = FreqProfiler::new();
        let tables: Vec<usize> = (0..self.tables.len()).collect();
        for &t in &tables {
            ewma.add_table(self.tables[t].table.spec().rows);
            fresh.add_table(self.tables[t].table.spec().rows);
        }
        self.adaptive = Some(AdaptiveState {
            policy,
            ewma,
            fresh,
            tables,
            arrivals: 0,
            epochs: 0,
        });
    }

    /// Number of completed adaptation epochs (0 when adaptivity is off).
    pub fn adaptive_epochs(&self) -> u64 {
        self.adaptive.as_ref().map_or(0, |a| a.epochs)
    }

    /// `true` while `table` has a refresh whose migration is in flight.
    pub fn refresh_pending(&self, table: ServedTableId) -> bool {
        self.tables[table.0].pending.is_some()
    }

    /// Routing generations registered for `table` (1 = never refreshed).
    pub fn plan_generations(&self, table: ServedTableId) -> usize {
        self.tables[table.0].plans.len()
    }

    /// One adaptation epoch. Change-point detection first: if the active
    /// plan's hit mass under this epoch's *fresh* counts collapsed
    /// relative to what the long-memory ranking promised, the traffic
    /// distribution shifted — flush the EWMA so the stale history cannot
    /// outvote the new regime. Then fold the epoch into the EWMA, split
    /// the global budget by marginal hit rate, and refresh every table
    /// whose rebuilt hot set would absorb enough extra traffic.
    fn run_adaptive_epoch(&mut self, ad: &mut AdaptiveState) {
        let hit_mass = |heat: &recssd_placement::TableHeat, rows: &[u64]| -> f64 {
            if heat.total() == 0 {
                return 0.0;
            }
            rows.iter().map(|&r| heat.count(r)).sum::<u64>() as f64 / heat.total() as f64
        };
        for (prof_ix, &t_idx) in ad.tables.iter().enumerate() {
            let t = &self.tables[t_idx];
            let active = &t.plans[t.active];
            let fresh = ad.fresh.heat(prof_ix);
            let remembered = ad.ewma.heat(prof_ix);
            let shifted = fresh.total() > 0
                && remembered.total() > 0
                && hit_mass(remembered, &active.hot_rows) - hit_mass(fresh, &active.hot_rows)
                    >= DRIFT_RESET_DROP;
            // The flush is per table: one table's rotation must not erase
            // the well-sampled history of tables that did not move.
            let factor = if shifted {
                DRIFT_FLUSH_DECAY
            } else {
                ad.policy.decay
            };
            ad.ewma.decay_table(prof_ix, factor);
        }
        ad.ewma.merge(&ad.fresh);
        ad.fresh.decay(0.0);

        let budgets = allocate_global_budget(&ad.ewma, ad.policy.budget_rows);
        for (prof_ix, &t_idx) in ad.tables.iter().enumerate() {
            let heat = ad.ewma.heat(prof_ix);
            if heat.total() == 0 {
                continue;
            }
            let t = &self.tables[t_idx];
            let active = &t.plans[t.active];
            // Rebuild the hot set with *evidence-aware incumbency*: a row
            // enters on at least MIN_EVIDENCE observations, and incumbent
            // rows are never displaced by mere absence of evidence — the
            // online sample is thin, so an unobserved pinned row and a
            // one-hit stranger are statistically indistinguishable, and
            // swapping them is pure migration churn.
            let routing = active.routing.as_ref();
            let is_pinned = |row: u64| match routing {
                Some(r) => r.hot_index[row as usize] != crate::shard::COLD,
                None => false,
            };
            let mut cand: Vec<(u64, bool, u64)> = (0..heat.rows())
                .filter_map(|row| {
                    let c = heat.count(row);
                    let evid = if c >= MIN_EVIDENCE { c } else { 0 };
                    let pinned = is_pinned(row);
                    (evid > 0 || pinned).then_some((evid, pinned, row))
                })
                .collect();
            cand.sort_by(|a, b| b.0.cmp(&a.0).then(b.1.cmp(&a.1)).then(a.2.cmp(&b.2)));
            cand.truncate(budgets[prof_ix]);
            let hot: Vec<u64> = cand.into_iter().map(|(_, _, row)| row).collect();
            // Marginal gain of swapping plans, measured on the current
            // ranking: how much more traffic the rebuilt hot set would
            // have absorbed than the one serving right now.
            let gain = hit_mass(heat, &hot) - hit_mass(heat, &active.hot_rows);
            if gain >= ad.policy.min_hit_gain {
                let placement = TablePlacement::build_with_hot_rows(heat, hot);
                let _ = self.refresh_placement(ServedTableId(t_idx), &placement);
            }
        }
        if self.log_epochs {
            let line = self.registry.snapshot_jsonl(ad.epochs, self.events.now());
            self.epoch_log.push_str(&line);
            self.epoch_log.push('\n');
        }
    }

    /// Returns a consumed request output to the accumulator pool.
    pub fn recycle_output(&mut self, outputs: SlsOutput) {
        if self.out_pool.len() < 4096 {
            self.out_pool.push(outputs);
        }
    }

    /// Computes the unsharded reference for `done` with
    /// [`sls_reference_into`] and asserts the merged sharded output is
    /// bit-identical. Slots flagged missing on a degraded completion are
    /// skipped — they are explicitly not results — so the property
    /// checked is *no silently wrong bits*: every slot the runtime
    /// claims to have served must bit-match the reference.
    ///
    /// # Panics
    ///
    /// Panics on any mismatch in a non-missing slot.
    pub fn verify_bitmatch(&mut self, done: &CompletedRequest) {
        let table = &self.tables[done.table.0].table;
        let dim = table.spec().dim;
        self.ref_scratch.clear();
        self.ref_scratch.resize(done.batch.outputs() * dim, 0.0);
        sls_reference_into(table, &done.batch, &mut self.ref_scratch);
        if done.missing_slots.is_empty() {
            assert_eq!(
                done.outputs.as_slice(),
                &self.ref_scratch[..],
                "request {:?}: sharded output diverged from sls_reference",
                done.id
            );
            return;
        }
        for slot in 0..done.batch.outputs() {
            if done.missing_slots[slot] {
                continue;
            }
            assert_eq!(
                done.outputs.row(slot),
                &self.ref_scratch[slot * dim..(slot + 1) * dim],
                "request {:?} slot {slot}: served (non-missing) output \
                 diverged from sls_reference",
                done.id
            );
        }
    }

    /// Advances the simulation until the next request completes, or until
    /// nothing is left to do. Completions are returned in finish-time
    /// order.
    ///
    /// # Errors
    ///
    /// Returns a [`ServingError`] when the event stream references a
    /// request the runtime's bookkeeping does not know — an internal
    /// invariant violation, never a consequence of injected device
    /// faults (those are absorbed by the retry/degradation machinery).
    pub fn step(&mut self) -> Result<Option<CompletedRequest>, ServingError> {
        loop {
            if let Some(done) = self.completed.pop_front() {
                return Ok(Some(done));
            }
            // Deliver ready completions first, in canonical
            // `(finish, id)` order, as soon as no pending event could
            // still precede them. This replaces a per-request
            // completion event: the delivery order depends only on
            // finish times, never on how shard harvests interleaved —
            // which is what makes it identical across execution modes.
            if let Some(&Reverse((fin, req))) = self.ready.peek() {
                if self.events.peek_time().is_none_or(|t| fin <= t.as_ns()) {
                    self.ready.pop();
                    self.finalize_request(req)?;
                    continue;
                }
            }
            let Some(next) = self.events.peek_time() else {
                return Ok(None);
            };
            if let Some(window) = self.parallel_window(next) {
                self.run_window(window);
                continue;
            }
            let (now, ev) = self.events.pop().expect("peeked a pending event");
            match ev {
                Ev::Arrival(req) => {
                    self.retire_nontick(now);
                    let Some(arrival) = self.pending_arrivals.remove(&req) else {
                        return Err(ServingError::MissingArrival(req));
                    };
                    self.admit(now, req, arrival);
                }
                Ev::ShardTick(ix) => {
                    if self.shard_mut(ix).next_tick == Some(now) {
                        self.shard_mut(ix).next_tick = None;
                    }
                    self.pump_shard(ix, now);
                }
                Ev::Retry(seq) => {
                    self.retire_nontick(now);
                    let (ix, mut sub) = self
                        .retry_park
                        .remove(&seq)
                        .expect("retry event without a parked sub-batch");
                    // Re-base the queue-wait span at the re-queue instant
                    // (the backoff itself is not queueing).
                    sub.enqueued = now;
                    self.shard_mut(ix).queue.push_back(sub);
                    self.pump_shard(ix, now);
                }
                Ev::Deadline(req) => {
                    self.retire_nontick(now);
                    self.expire_deadline(now, req);
                }
            }
        }
    }

    /// Retires a finished request from the in-flight table into the
    /// completion deque: stats, request span, degradation flags.
    fn finalize_request(&mut self, req: u64) -> Result<(), ServingError> {
        let t0 = self.wall.begin();
        let Some(inf) = self.inflight.remove(&req) else {
            return Err(ServingError::UnknownCompletion(req));
        };
        let Some(first_start) = inf.first_start else {
            return Err(ServingError::ServedBeforeStart(req));
        };
        let queue = first_start.saturating_since(inf.arrival);
        let service = inf.finish.saturating_since(first_start);
        self.stats.record(
            inf.arrival,
            queue,
            service,
            inf.finish,
            inf.batch.total_lookups() as u64,
            inf.path,
        );
        if self.tracer.enabled() && inf.span.is_some() {
            self.tracer.emit(
                inf.span,
                "request",
                inf.arrival,
                inf.finish,
                SpanId::NONE,
                "degraded",
                (inf.missing_lookups > 0) as u64,
                inf.path.name(),
            );
        }
        let missing_slots = if inf.missing_lookups > 0 {
            self.stats.degraded.inc();
            self.stats.missing_lookups.add(inf.missing_lookups);
            inf.slot_missing
        } else {
            Vec::new()
        };
        self.completed.push_back(CompletedRequest {
            id: RequestId(req),
            client: inf.client,
            table: ServedTableId(inf.table),
            arrival: inf.arrival,
            finish: inf.finish,
            queue,
            service,
            batch: inf.batch,
            outputs: inf.acc,
            missing_lookups: inf.missing_lookups,
            missing_slots,
        });
        self.wall.end(WallPhase::EventDispatch, t0);
        Ok(())
    }

    /// Serves request `req` degraded *right now* because its deadline
    /// fired: whatever partials have merged are returned with every
    /// still-owed slot flagged missing. The inflight entry lingers
    /// (marked completed) to absorb and discard late sub-batches.
    fn expire_deadline(&mut self, now: SimTime, req: u64) {
        // The deadline may fire after the request finished (entry gone)
        // or in the same instant as its completion event (pending == 0):
        // both mean it was served in time.
        let Some(inf) = self.inflight.get_mut(&req) else {
            return;
        };
        if inf.completed || inf.pending == 0 {
            return;
        }
        inf.completed = true;
        for (slot, &owed) in inf.slot_pending.iter().enumerate() {
            if owed > 0 {
                inf.slot_missing[slot] = true;
            }
        }
        inf.missing_lookups += inf.pending_lookups;
        inf.pending_lookups = 0;
        let (queue, service) = match inf.first_start {
            Some(fs) => (fs.saturating_since(inf.arrival), now.saturating_since(fs)),
            None => (now.saturating_since(inf.arrival), SimDuration::ZERO),
        };
        let outputs = std::mem::take(&mut inf.acc);
        let missing_slots = std::mem::take(&mut inf.slot_missing);
        let done = CompletedRequest {
            id: RequestId(req),
            client: inf.client,
            table: ServedTableId(inf.table),
            arrival: inf.arrival,
            finish: now,
            queue,
            service,
            batch: inf.batch.clone(),
            outputs,
            missing_lookups: inf.missing_lookups,
            missing_slots,
        };
        let arrival = inf.arrival;
        let lookups = inf.batch.total_lookups() as u64;
        let missing = inf.missing_lookups;
        let path = inf.path;
        let span = inf.span;
        self.stats
            .record(arrival, queue, service, now, lookups, path);
        self.stats.degraded.inc();
        self.stats.missing_lookups.add(missing);
        if self.tracer.enabled() && span.is_some() {
            // Late sub-batches that resolve after this instant re-parent
            // to the root (the request span is already closed).
            self.tracer.emit(
                span,
                "request",
                arrival,
                now,
                SpanId::NONE,
                "degraded",
                1,
                path.name(),
            );
        }
        self.completed.push_back(done);
    }

    /// Runs until every submitted request has completed, returning the
    /// completions in finish order.
    ///
    /// # Panics
    ///
    /// Panics on a [`ServingError`] (use [`ServingRuntime::step`]
    /// directly to observe it) or when work is stuck with no pending
    /// events.
    pub fn run_until_idle(&mut self) -> Vec<CompletedRequest> {
        let mut done = Vec::new();
        while let Some(c) = self.step().expect("serving runtime invariant violated") {
            done.push(c);
        }
        assert!(
            self.inflight.is_empty(),
            "requests stuck with no pending events"
        );
        assert!(
            self.tables.iter().all(|t| t.pending.is_none()),
            "plan migration stuck with no pending events"
        );
        done
    }

    /// The shard (or DRAM tier) addressed by `ix`.
    fn shard_mut(&mut self, ix: Ix) -> &mut Shard {
        match ix {
            Ix::Dev(i) => &mut self.shards[i],
            Ix::Tier => self.tier.as_mut().expect("tier sub-batch without a tier"),
        }
    }

    /// One full visit of a shard at the global instant: merge clocks,
    /// harvest completed operators, dispatch while capacity allows, and
    /// re-arm the shard's wake-up tick.
    fn pump_shard(&mut self, ix: Ix, now: SimTime) {
        self.sync_shard(ix, now);
        loop {
            let s = match ix {
                Ix::Dev(i) => &mut self.shards[i],
                Ix::Tier => self.tier.as_mut().expect("tier sub-batch without a tier"),
            };
            if s.inflight.len() >= self.depth || s.queue.is_empty() {
                break;
            }
            let n_subs = dispatch_on(s, ix, now, &self.tables, self.policy);
            self.stats.ops_dispatched.inc();
            self.stats.subs_dispatched.add(n_subs);
        }
        self.arm_tick(ix, now);
    }

    /// Advances `ix`'s system to the global instant and folds every
    /// operator that completed at or before it into its owning requests.
    fn sync_shard(&mut self, ix: Ix, now: SimTime) {
        let t_dev = self.wall.begin();
        self.shard_mut(ix).sys.run_until(now);
        self.wall.end(WallPhase::DeviceStep, t_dev);
        let mut harvested = std::mem::take(&mut self.harvest_scratch);
        collect_harvest(self.shard_mut(ix), &mut harvested);
        if harvested.is_empty() {
            self.harvest_scratch = harvested;
            return;
        }
        if let Ix::Dev(_) = ix {
            let policy = self.fault_policy;
            let s = self.shard_mut(ix);
            let mut trips = 0u64;
            for (_, r) in &harvested {
                if s.breaker.record(r.finished, r.error.is_some(), &policy) {
                    trips += 1;
                }
            }
            self.stats.breaker_trips.add(trips);
        }
        let t_harvest = self.wall.begin();
        for (infop, result) in harvested.drain(..) {
            self.fold_one(ix, infop, result);
        }
        self.harvest_scratch = harvested;
        self.wall.end(WallPhase::Harvest, t_harvest);
    }

    /// Folds one harvested operator's partial sums into its owning
    /// requests (or retires migration work) and queues completions on
    /// the ready-queue. Failed operators instead route every component
    /// sub-batch through the retry/fallback/degradation policy.
    ///
    /// All per-op times derive from the operator's own finish instant —
    /// a shard is only ever harvested *at* that instant (its completion
    /// surfaces as a shard event there), so this matches the sequential
    /// stepper exactly while staying meaningful when a parallel window's
    /// harvests are folded after the fact.
    fn fold_one(&mut self, ix: Ix, infop: InflightOp, result: OpResult) {
        let now = result.finished;
        let service = result.finished.saturating_since(result.started);
        match ix {
            Ix::Tier => self.stats.tier_service.record_duration(service),
            Ix::Dev(_) => self.stats.device_service.record_duration(service),
        }
        if result.error.is_some() {
            self.stats.faults.inc();
            self.handle_failed_op(ix, now, infop, &result);
            if let Some(outputs) = result.outputs {
                self.shard_mut(ix).sys.recycle_outputs(outputs);
            }
            return;
        }
        let outputs = result.outputs.expect("SLS ops produce outputs");
        let mut offset = 0usize;
        for sub in infop.subs {
            let width = sub.per_output.len();
            self.tables[infop.table].plans[infop.plan].inflight_subs -= 1;
            match sub.owner {
                SubOwner::Request(req) => {
                    let inf = self.inflight.get_mut(&req).expect("in flight");
                    if inf.completed {
                        // Deadline already served this request
                        // degraded; the late partial is discarded.
                        // Its span becomes a root — the request span
                        // closed at the deadline, before this end.
                        if self.tracer.enabled() && sub.span.is_some() {
                            self.tracer.emit(
                                sub.span,
                                "sub",
                                sub.born,
                                result.finished,
                                SpanId::NONE,
                                "late",
                                1,
                                sub.path.name(),
                            );
                        }
                        inf.pending -= 1;
                        if inf.pending == 0 {
                            self.inflight.remove(&req);
                        }
                    } else {
                        for (i, &slot) in sub.slots.iter().enumerate() {
                            let src = outputs.row(offset + i);
                            for (o, v) in inf.acc.row_mut(slot as usize).iter_mut().zip(src) {
                                *o += *v;
                            }
                            inf.slot_pending[slot as usize] -= 1;
                        }
                        inf.pending_lookups -= sub.lookups() as u64;
                        inf.first_start = Some(match inf.first_start {
                            Some(t) => t.min(result.started),
                            None => result.started,
                        });
                        inf.finish = inf.finish.max(result.finished);
                        if self.tracer.enabled() && sub.span.is_some() {
                            self.tracer.emit(
                                sub.span,
                                "sub",
                                sub.born,
                                result.finished,
                                inf.span,
                                "lookups",
                                sub.lookups() as u64,
                                sub.path.name(),
                            );
                        }
                        inf.pending -= 1;
                        if inf.pending == 0 {
                            self.ready.push(Reverse((inf.finish.as_ns(), req)));
                        }
                    }
                }
                SubOwner::Migration(t_idx) => {
                    // Migration partials are discarded — the read
                    // itself was the cost. The last one activates the
                    // pending plan for all admissions from `now` on.
                    if self.tracer.enabled() && sub.span.is_some() {
                        self.tracer.emit(
                            sub.span,
                            "migration",
                            sub.born,
                            result.finished,
                            SpanId::NONE,
                            "lookups",
                            sub.lookups() as u64,
                            sub.path.name(),
                        );
                    }
                    self.migration_sub_done(t_idx);
                }
            }
            offset += width;
        }
        self.shard_mut(ix).sys.recycle_outputs(outputs);
    }

    /// Routes every component of a failed device operator through the
    /// recovery policy: re-queue with backoff (optionally falling back
    /// from the NDP to the baseline path) while the retry budget lasts,
    /// then give the sub-batch up — requests serve degraded with the
    /// loss flagged, migration chunks are abandoned (they model movement
    /// cost only, so giving up is safe).
    fn handle_failed_op(&mut self, ix: Ix, now: SimTime, infop: InflightOp, result: &OpResult) {
        let policy = self.fault_policy;
        for mut sub in infop.subs {
            sub.attempts += 1;
            match sub.owner {
                SubOwner::Request(req) => {
                    let inf = self.inflight.get_mut(&req).expect("in flight");
                    if inf.completed {
                        // Deadline already served this request degraded;
                        // drop the straggler instead of retrying it.
                        self.tables[infop.table].plans[infop.plan].inflight_subs -= 1;
                        if self.tracer.enabled() && sub.span.is_some() {
                            self.tracer.emit(
                                sub.span,
                                "sub",
                                sub.born,
                                result.finished,
                                SpanId::NONE,
                                "dropped",
                                sub.lookups() as u64,
                                sub.path.name(),
                            );
                        }
                        let inf = self.inflight.get_mut(&req).expect("in flight");
                        inf.pending -= 1;
                        if inf.pending == 0 {
                            self.inflight.remove(&req);
                        }
                        continue;
                    }
                    // The failed attempt still occupied the device: it
                    // counts toward the request's service time.
                    inf.first_start = Some(match inf.first_start {
                        Some(t) => t.min(result.started),
                        None => result.started,
                    });
                    if sub.attempts > policy.max_retries {
                        // Budget exhausted: serve without these rows.
                        inf.finish = inf.finish.max(result.finished);
                        let dropped = sub.lookups() as u64;
                        inf.missing_lookups += dropped;
                        inf.pending_lookups -= dropped;
                        for &slot in &sub.slots {
                            inf.slot_pending[slot as usize] -= 1;
                            inf.slot_missing[slot as usize] = true;
                        }
                        inf.pending -= 1;
                        let completed = inf.pending == 0;
                        let fin_ns = inf.finish.as_ns();
                        let parent = inf.span;
                        self.tables[infop.table].plans[infop.plan].inflight_subs -= 1;
                        if self.tracer.enabled() && sub.span.is_some() {
                            self.tracer.emit(
                                sub.span,
                                "sub",
                                sub.born,
                                result.finished,
                                parent,
                                "dropped",
                                dropped,
                                sub.path.name(),
                            );
                        }
                        if completed {
                            self.ready.push(Reverse((fin_ns, req)));
                        }
                        continue;
                    }
                    self.schedule_retry(ix, now, sub, &policy);
                }
                SubOwner::Migration(t_idx) => {
                    if sub.attempts > policy.max_retries {
                        self.tables[infop.table].plans[infop.plan].inflight_subs -= 1;
                        if self.tracer.enabled() && sub.span.is_some() {
                            self.tracer.emit(
                                sub.span,
                                "migration",
                                sub.born,
                                result.finished,
                                SpanId::NONE,
                                "dropped",
                                sub.lookups() as u64,
                                sub.path.name(),
                            );
                        }
                        self.migration_sub_done(t_idx);
                        continue;
                    }
                    self.schedule_retry(ix, now, sub, &policy);
                }
            }
        }
    }

    /// Parks a failed sub-batch for re-dispatch after its exponential
    /// backoff, falling back from the NDP to the baseline path once the
    /// policy's attempt threshold is reached. The sub-batch keeps its
    /// plan pin, so its routing generation cannot be re-bound under it.
    fn schedule_retry(&mut self, ix: Ix, now: SimTime, mut sub: SubBatch, policy: &FaultPolicy) {
        self.stats.retries.inc();
        if sub.attempts >= policy.fallback_after {
            if let crate::SlsPath::Ndp(opts) = sub.path {
                sub.path = crate::SlsPath::Baseline(opts);
                self.stats.fallbacks.inc();
            }
        }
        let shift = (sub.attempts - 1).min(16);
        let backoff = policy.backoff_base * (1u64 << shift);
        let seq = self.next_retry;
        self.next_retry += 1;
        self.retry_park.insert(seq, (ix, sub));
        // `now` is the failed operator's finish instant. Because parallel
        // execution requires `backoff_base >= sync_horizon`, the retry
        // always lands at or beyond the current lookahead window; the
        // clamp is a never-firing safety net for the event queue's
        // no-past invariant.
        let at = (now + backoff).max(self.events.now());
        self.events.push_at(at, Ev::Retry(seq));
        self.note_nontick(at);
    }

    /// Retires one migration sub-batch; the last one activates the
    /// pending plan for all admissions from now on.
    fn migration_sub_done(&mut self, t_idx: usize) {
        let t = &mut self.tables[t_idx];
        let pending = t.pending.as_mut().expect("migration without refresh");
        pending.remaining -= 1;
        if pending.remaining == 0 {
            let done = t.pending.take().expect("just checked");
            let outgoing = t.active;
            t.active = done.plan;
            t.plans[outgoing].retire();
            self.stats.plan_refreshes.inc();
            self.stats.rows_promoted.add(done.promoted);
            self.stats.rows_demoted.add(done.demoted);
        }
    }

    /// Arms a wake-up tick at the shard's next internal event time.
    /// Ticks are monotone: one is only pushed when it is earlier than
    /// the earliest already armed, so the global queue sees at most a
    /// handful of (idempotent) ticks per shard event.
    fn arm_tick(&mut self, ix: Ix, now: SimTime) {
        let s = self.shard_mut(ix);
        if let Some(t) = s.sys.next_event_time() {
            let t = t.max(now);
            if s.next_tick.is_none_or(|armed| t < armed) {
                s.next_tick = Some(t);
                self.events.push_at(t, Ev::ShardTick(ix));
            }
        }
    }

    /// Decides whether the stepper may run a parallel lookahead window
    /// instead of popping the next event (`next` = its time). Possible
    /// only under [`ExecMode::Parallel`] and only when the earliest
    /// pending *non-tick* event — a cross-shard interaction point
    /// (arrival, retry, deadline) — lies strictly beyond `next`: until
    /// then every pending event is a shard tick, which a shard-local
    /// sweep subsumes. The window extends one sync horizon past `next`,
    /// clipped at that interaction point.
    fn parallel_window(&mut self, next: SimTime) -> Option<SimTime> {
        self.pool.as_ref()?;
        let t0 = next.as_ns();
        let nt = self.nontick.peek().map(|&Reverse(ns)| ns);
        if nt.is_some_and(|ns| ns <= t0) {
            return None;
        }
        let mut w = t0.saturating_add(self.horizon.as_ns());
        if let Some(ns) = nt {
            w = w.min(ns);
        }
        Some(SimTime::ZERO + SimDuration::from_ns(w))
    }

    /// Executes one conservative lookahead window ending at `w_end`:
    /// consumes the (all-tick) events inside it, sweeps every device
    /// shard and the DRAM tier through their internal events on the
    /// worker pool, then folds the harvests in the canonical
    /// `(finish, unit, intra-unit order)` order. Because a shard is only
    /// ever harvested *at* an operator's finish instant, that order is
    /// exactly the sequential stepper's fold order — the heart of the
    /// bit-identity guarantee.
    fn run_window(&mut self, w_end: SimTime) {
        // Every event before the window end is a shard tick (non-tick
        // events bound the window); the sweeps subsume their work.
        while self.events.peek_time().is_some_and(|t| t < w_end) {
            let (_, ev) = self.events.pop().expect("peeked a pending event");
            debug_assert!(
                matches!(ev, Ev::ShardTick(_)),
                "non-tick event inside a lookahead window"
            );
        }
        // Ticks pointing into the window were just consumed; clear them
        // so re-arming starts fresh. Armed ticks at or beyond the window
        // end stay valid.
        for s in self.shards.iter_mut().chain(self.tier.as_mut()) {
            if s.next_tick.is_some_and(|t| t < w_end) {
                s.next_tick = None;
            }
        }

        let ctx = SweepCtx {
            tables: self.tables.as_ptr(),
            n_tables: self.tables.len(),
            policy: self.policy,
            depth: self.depth,
            fault_policy: self.fault_policy,
            w_end,
        };
        let t_dev = self.wall.begin();
        let mut units: Vec<SweepUnit> = Vec::with_capacity(self.shards.len() + 1);
        for (i, s) in self.shards.iter_mut().enumerate() {
            units.push(SweepUnit {
                shard: s,
                ix: Ix::Dev(i),
            });
        }
        if let Some(t) = self.tier.as_mut() {
            units.push(SweepUnit {
                shard: t,
                ix: Ix::Tier,
            });
        }
        self.pool
            .as_ref()
            .expect("run_window without a worker pool")
            .run(&units, &ctx);
        drop(units);
        self.wall.end(WallPhase::DeviceStep, t_dev);

        // Canonical merge: drain every unit's harvest, tag each operator
        // with `(finish, unit, intra-unit order)`, fold in sorted order,
        // and apply the deferred counter deltas (order-independent).
        let t_harvest = self.wall.begin();
        let mut scratch = std::mem::take(&mut self.merge_scratch);
        let n_shards = self.shards.len();
        let (mut d_ops, mut d_subs, mut d_trips) = (0u64, 0u64, 0u64);
        for (u, s) in self.shards.iter_mut().chain(self.tier.as_mut()).enumerate() {
            let ix = if u < n_shards { Ix::Dev(u) } else { Ix::Tier };
            d_ops += std::mem::take(&mut s.sweep.ops_dispatched);
            d_subs += std::mem::take(&mut s.sweep.subs_dispatched);
            d_trips += std::mem::take(&mut s.sweep.breaker_trips);
            for (seq, (op, result)) in s.sweep.harvested.drain(..).enumerate() {
                scratch.push(MergeItem {
                    fin_ns: result.finished.as_ns(),
                    unit: u as u32,
                    seq: seq as u32,
                    ix,
                    op,
                    result,
                });
            }
        }
        self.stats.ops_dispatched.add(d_ops);
        self.stats.subs_dispatched.add(d_subs);
        self.stats.breaker_trips.add(d_trips);
        scratch.sort_unstable_by_key(|m| (m.fin_ns, m.unit, m.seq));
        for m in scratch.drain(..) {
            self.fold_one(m.ix, m.op, m.result);
        }
        self.merge_scratch = scratch;
        self.wall.end(WallPhase::Harvest, t_harvest);

        // Re-arm every unit's wake-up tick at its next internal event
        // (necessarily at or beyond the window end).
        let now = self.events.now();
        for i in 0..n_shards {
            self.arm_tick(Ix::Dev(i), now);
        }
        if self.tier.is_some() {
            self.arm_tick(Ix::Tier, now);
        }
    }
}

/// Read-only context shared by every unit sweep of one lookahead window.
/// The table/plan state is carried as a raw slice because the runtime
/// simultaneously hands out `&mut Shard`s to the workers; nothing writes
/// the tables while a window runs.
pub(crate) struct SweepCtx {
    tables: *const ServedTable,
    n_tables: usize,
    policy: SchedulePolicy,
    depth: usize,
    fault_policy: FaultPolicy,
    w_end: SimTime,
}

// SAFETY: the pointer target (the runtime's table array) is alive and
// unmutated for the whole window — `WorkerPool::run` blocks until every
// worker finished with the context.
unsafe impl Send for SweepCtx {}
unsafe impl Sync for SweepCtx {}

/// One unit of window work: a device shard (or the DRAM tier) to sweep.
/// Built fresh per window from exclusive borrows; the raw pointer is
/// only dereferenced by the single worker that owns `ix` for the window.
pub(crate) struct SweepUnit {
    shard: *mut Shard,
    ix: Ix,
}

// SAFETY: disjoint shards, one owner per window (workers partition the
// unit list by index), and `WorkerPool::run` joins the window before the
// borrows the pointers came from end.
unsafe impl Send for SweepUnit {}
unsafe impl Sync for SweepUnit {}

impl SweepUnit {
    /// The unit's shard pointer and identity, for the worker loop.
    pub(crate) fn parts(&self) -> (*mut Shard, Ix) {
        (self.shard, self.ix)
    }
}

/// Advances one shard through every internal event before `ctx.w_end`:
/// at each such instant it harvests finished operators (breaker applied
/// shard-locally, in completion order) and dispatches while capacity
/// allows — exactly the per-tick work the sequential stepper would do,
/// minus every fold into shared runtime state, which is deferred into
/// the shard's [`SweepOut`] for the canonical post-window merge. Runs on
/// worker threads.
pub(crate) fn sweep_unit(s: &mut Shard, ix: Ix, ctx: &SweepCtx) {
    let tables = unsafe { std::slice::from_raw_parts(ctx.tables, ctx.n_tables) };
    while let Some(t) = s.sys.next_event_time() {
        if t >= ctx.w_end {
            break;
        }
        s.sys.run_until(t);
        let mut out = std::mem::take(&mut s.sweep.harvested);
        let start = out.len();
        collect_harvest(s, &mut out);
        if matches!(ix, Ix::Dev(_)) {
            for (_, r) in &out[start..] {
                if s.breaker
                    .record(r.finished, r.error.is_some(), &ctx.fault_policy)
                {
                    s.sweep.breaker_trips += 1;
                }
            }
        }
        s.sweep.harvested = out;
        while s.inflight.len() < ctx.depth && !s.queue.is_empty() {
            let n_subs = dispatch_on(s, ix, t, tables, ctx.policy);
            s.sweep.ops_dispatched += 1;
            s.sweep.subs_dispatched += n_subs;
        }
    }
}

/// Polls `s`'s system for finished operators, appends them to `out` in
/// completion-time order, and settles the shard's occupancy integral in
/// that order (exact under arbitrary interleavings): before the k-th of
/// `n` new completions, the still-unfinished remainder plus every later
/// harvest were all in flight.
fn collect_harvest(s: &mut Shard, out: &mut Vec<(InflightOp, OpResult)>) {
    if s.inflight.is_empty() {
        return;
    }
    let start = out.len();
    let mut i = 0;
    while i < s.inflight.len() {
        if let Some(result) = s.sys.try_take_result(s.inflight[i].op) {
            out.push((s.inflight.swap_remove(i), result));
        } else {
            i += 1;
        }
    }
    out[start..].sort_by_key(|(_, r)| r.finished);
    let base = s.inflight.len() as u64;
    let n = (out.len() - start) as u64;
    for (k, (_, r)) in out[start..].iter().enumerate() {
        let span = r.finished.saturating_since(s.occ_last);
        s.occ_weighted_ns += (base + n - k as u64) * span.as_ns();
        s.occ_last = s.occ_last.max(r.finished);
    }
}

/// Merges the front of `s`'s queue (plus, under micro-batching, every
/// queued mergeable sub-batch up to the output cap) into one device
/// operator and submits it — without draining the shard, so multiple
/// operators pipeline on the device. Returns the number of merged
/// sub-batches; the caller accounts the dispatch counters (directly in
/// sequential mode, deferred via [`SweepOut`] in a sweep). Touches only
/// the shard plus the read-only table state, so it is safe on a worker
/// thread; trace spans go through the shard's own host-track tracer.
fn dispatch_on(
    s: &mut Shard,
    ix: Ix,
    now: SimTime,
    tables: &[ServedTable],
    policy: SchedulePolicy,
) -> u64 {
    // Select sub-batches: FIFO takes the head; micro-batching drains
    // every queued sub-batch mergeable with the head (in order) up to
    // the output cap.
    let head = s.queue.pop_front().expect("dispatch on empty queue");
    let key = head.merge_key();
    let mut cap = match policy {
        SchedulePolicy::Fifo => head.slots.len(),
        SchedulePolicy::MicroBatch { max_outputs, .. } => max_outputs.max(head.slots.len()),
    };
    cap -= head.slots.len();
    let mut taken = vec![head];
    if cap > 0 {
        let mut i = 0;
        while i < s.queue.len() && cap > 0 {
            if s.queue[i].merge_key() == key && s.queue[i].slots.len() <= cap {
                let sub = s.queue.remove(i).expect("index checked");
                cap -= sub.slots.len();
                taken.push(sub);
            } else {
                i += 1;
            }
        }
    }

    // Merge into one operator-sized batch. The component sub-batches
    // are kept intact (their slice of the merged output block is
    // implied by per-output counts, in order) so a failed operator
    // can re-queue each component for retry.
    let mut per_output: Vec<Vec<u64>> = Vec::new();
    let (table, plan) = (key.table, key.plan as usize);
    for sub in &taken {
        per_output.extend(sub.per_output.iter().cloned());
    }
    let merged = LookupBatch::new(per_output);
    let plan_state = &tables[table].plans[plan];
    let device_table = match ix {
        Ix::Dev(shard) => plan_state.per_shard[shard],
        Ix::Tier => plan_state
            .routing
            .as_ref()
            .and_then(|r| r.tier_table)
            .expect("tier sub-batch for a table with no hot set"),
    };
    // A tripped circuit breaker redirects NDP operators onto the
    // conventional baseline path for this dispatch only — the
    // sub-batches keep their own path, so later retries (and the
    // half-open probe) re-evaluate the breaker.
    let mut path = key.path;
    if let (SlsPath::Ndp(opts), Ix::Dev(_)) = (path, ix) {
        if !s.breaker.allows_ndp(now) {
            path = SlsPath::Baseline(opts);
        }
    }
    let kind = match path {
        SlsPath::Dram => OpKind::dram_sls(device_table, merged),
        SlsPath::Baseline(opts) => OpKind::baseline_sls(device_table, merged, opts),
        SlsPath::Ndp(opts) => OpKind::ndp_sls(device_table, merged, opts),
    };

    // Submit onto the shard's system (already synced to `now` by the
    // caller) and leave it in flight; completions are harvested by
    // later shard syncs.
    let n_subs = taken.len() as u64;
    if s.host_tracer.enabled() {
        // Queue-wait of each merged component, child of its sub span;
        // the device operator itself parents under the head sub. The
        // `shard` argument carries the resource pid so offline analysis
        // can tie a sub-batch to the shard that served it even when
        // micro-batching parents the op under a different request.
        let res_pid = match ix {
            Ix::Dev(i) => i as u64 + 1,
            Ix::Tier => track::PID_TIER as u64,
        };
        for sub in &taken {
            if sub.span.is_some() {
                s.host_tracer
                    .span_arg("sub:wait", sub.enqueued, now, sub.span, "shard", res_pid);
            }
        }
    }
    let op_parent = taken[0].span;
    debug_assert_eq!(s.sys.now(), now, "dispatch on an unsynced shard");
    s.note_occupancy(now);
    let op = s.sys.submit_traced(kind, op_parent);
    s.inflight.push(InflightOp {
        op,
        table,
        plan,
        subs: taken,
    });
    n_subs
}
