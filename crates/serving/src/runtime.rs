//! The sharded serving runtime: N simulated systems on one timeline.
//!
//! The runtime owns one [`System`] per shard and keeps them on a single
//! virtual clock: shards are *non-preemptive servers* — a dispatched
//! operator runs to completion on its shard (whose internal event loop
//! models the device's full concurrency) while later arrivals queue at the
//! runtime level. Dispatch re-anchors the idle shard's clock to the global
//! instant with [`System::advance_clock`], so queueing delay, service time
//! and end-to-end latency all live on one comparable timeline.
//!
//! A request's lifecycle:
//!
//! 1. [`ServingRuntime::submit_at`] splits its batch into per-shard
//!    sub-batches of local rows ([`crate::ShardMap`]) and schedules the
//!    arrival.
//! 2. Each shard queue dispatches per the [`SchedulePolicy`] — FIFO, or
//!    micro-batching that coalesces queued sub-batches targeting the same
//!    table and path into one device operator.
//! 3. Each shard's partial [`SlsOutput`] is folded into the request's
//!    accumulator through the fused accumulate path (exact for the grid
//!    values of procedural tables, so sharded results bit-match the
//!    unsharded reference).
//! 4. When the last shard finishes, the request completes; queue/service/
//!    end-to-end latencies are recorded into the HDR-style histograms of
//!    [`ServingStats`].

use std::collections::VecDeque;

use recssd::{LookupBatch, OpKind, RecSsdConfig, SlsOutput, System};
use recssd_embedding::{sls_reference_into, EmbeddingTable, PageLayout, TableImage};
use recssd_sim::{EventQueue, FxHashMap, SimDuration, SimTime};

use crate::shard::{split_batch, SubBatch};
use crate::{SchedulePolicy, ServingStats, ShardMap, SlsPath};

/// Identifier of a submitted request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId(pub u64);

/// Identifier of a table registered with the runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ServedTableId(pub usize);

/// Configuration of the serving runtime.
#[derive(Debug, Clone)]
pub struct ServingConfig {
    /// Number of device shards (each a full simulated [`System`]).
    pub shards: usize,
    /// Per-shard system configuration.
    pub system: RecSsdConfig,
    /// Shard-queue scheduling policy.
    pub policy: SchedulePolicy,
    /// On-SSD layout of every registered table.
    pub layout: PageLayout,
}

impl ServingConfig {
    /// A small-geometry runtime with the full eight channels per shard.
    pub fn small_wide(shards: usize, policy: SchedulePolicy) -> Self {
        ServingConfig {
            shards,
            system: RecSsdConfig::small_wide(),
            policy,
            layout: PageLayout::Spread,
        }
    }
}

/// A finished request, handed out by [`ServingRuntime::step`].
#[derive(Debug)]
pub struct CompletedRequest {
    /// The request's id.
    pub id: RequestId,
    /// Caller-supplied client tag (closed-loop generators key on it).
    pub client: u64,
    /// The served table.
    pub table: ServedTableId,
    /// When the request arrived.
    pub arrival: SimTime,
    /// When the last shard partial was merged.
    pub finish: SimTime,
    /// Arrival → first sub-batch began service.
    pub queue: SimDuration,
    /// First service start → completion.
    pub service: SimDuration,
    /// The original batch (global rows), for verification.
    pub batch: LookupBatch,
    /// The merged output vectors.
    pub outputs: SlsOutput,
}

impl CompletedRequest {
    /// End-to-end latency.
    pub fn e2e(&self) -> SimDuration {
        self.queue + self.service
    }
}

#[derive(Debug)]
struct Inflight {
    client: u64,
    table: usize,
    arrival: SimTime,
    first_start: Option<SimTime>,
    finish: SimTime,
    pending: usize,
    acc: SlsOutput,
    batch: LookupBatch,
}

#[derive(Debug)]
struct Shard {
    sys: System,
    busy: bool,
    queue: VecDeque<SubBatch>,
    deadline_armed: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    Arrival(u64),
    ShardReady(usize),
    Deadline(usize),
    Completed(u64),
}

#[derive(Debug)]
struct ServedTable {
    /// Full-table contents (procedural tables make this cheap), kept for
    /// reference verification.
    table: EmbeddingTable,
    map: ShardMap,
    /// The table's id within each shard's [`System`].
    per_shard: Vec<recssd::TableId>,
}

/// The sharded serving runtime. See the [module docs](self) for the
/// architecture.
#[derive(Debug)]
pub struct ServingRuntime {
    policy: SchedulePolicy,
    layout: PageLayout,
    shards: Vec<Shard>,
    tables: Vec<ServedTable>,
    events: EventQueue<Ev>,
    inflight: FxHashMap<u64, Inflight>,
    /// Sub-batches of requests whose arrival event has not fired yet.
    pending_arrivals: FxHashMap<u64, Vec<(usize, SubBatch)>>,
    next_req: u64,
    completed: VecDeque<CompletedRequest>,
    stats: ServingStats,
    /// Free-list of request accumulators.
    out_pool: Vec<SlsOutput>,
    /// Reused reference scratch for [`ServingRuntime::verify_bitmatch`].
    ref_scratch: Vec<f32>,
}

impl ServingRuntime {
    /// Builds a runtime of `cfg.shards` independent systems.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(cfg: &ServingConfig) -> Self {
        assert!(cfg.shards > 0, "need at least one shard");
        let shards = (0..cfg.shards)
            .map(|_| Shard {
                sys: System::new(cfg.system.clone()),
                busy: false,
                queue: VecDeque::new(),
                deadline_armed: false,
            })
            .collect();
        ServingRuntime {
            policy: cfg.policy,
            layout: cfg.layout,
            shards,
            tables: Vec::new(),
            events: EventQueue::new(),
            inflight: FxHashMap::default(),
            pending_arrivals: FxHashMap::default(),
            next_req: 0,
            completed: VecDeque::new(),
            stats: ServingStats::default(),
            out_pool: Vec::new(),
            ref_scratch: Vec::new(),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The current global virtual time.
    pub fn now(&self) -> SimTime {
        self.events.now()
    }

    /// Serving statistics accumulated so far.
    pub fn stats(&self) -> &ServingStats {
        &self.stats
    }

    /// Resets serving statistics (between warm-up and measurement).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Direct access to one shard's [`System`] (cache/partition setup).
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn shard_system_mut(&mut self, shard: usize) -> &mut System {
        &mut self.shards[shard].sys
    }

    /// Row-range-shards `table` across every shard system and registers
    /// the slices on their devices.
    ///
    /// # Panics
    ///
    /// Panics if the table has fewer rows than there are shards.
    pub fn add_table(&mut self, table: EmbeddingTable) -> ServedTableId {
        let map = ShardMap::new(table.spec().rows, self.shards.len());
        let per_shard = self
            .shards
            .iter_mut()
            .enumerate()
            .map(|(i, shard)| {
                let slice = table.slice(map.range(i));
                let page_bytes = shard.sys.config().ssd.block_bytes();
                shard
                    .sys
                    .add_table(TableImage::new(slice, self.layout, page_bytes))
            })
            .collect();
        let id = ServedTableId(self.tables.len());
        self.tables.push(ServedTable {
            table,
            map,
            per_shard,
        });
        id
    }

    /// The sharding of `table`.
    ///
    /// # Panics
    ///
    /// Panics if `table` was not issued by this runtime.
    pub fn shard_map(&self, table: ServedTableId) -> &ShardMap {
        &self.tables[table.0].map
    }

    /// Submits a request arriving at absolute time `at` (tagged `client`
    /// for closed-loop generators). Completions surface from
    /// [`ServingRuntime::step`].
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past or `table` is unknown.
    pub fn submit_at(
        &mut self,
        at: SimTime,
        client: u64,
        table: ServedTableId,
        batch: LookupBatch,
        path: SlsPath,
    ) -> RequestId {
        let t = &self.tables[table.0];
        let req = self.next_req;
        self.next_req += 1;
        let subs = split_batch(&t.map, req, table.0, path, &batch, at);
        let mut acc = self.out_pool.pop().unwrap_or_default();
        acc.reset(batch.outputs(), t.table.spec().dim);
        self.inflight.insert(
            req,
            Inflight {
                client,
                table: table.0,
                arrival: at,
                first_start: None,
                finish: at,
                pending: subs.len(),
                acc,
                batch,
            },
        );
        self.pending_arrivals.insert(req, subs);
        self.events.push_at(at, Ev::Arrival(req));
        RequestId(req)
    }

    /// Returns a consumed request output to the accumulator pool.
    pub fn recycle_output(&mut self, outputs: SlsOutput) {
        if self.out_pool.len() < 4096 {
            self.out_pool.push(outputs);
        }
    }

    /// Computes the unsharded reference for `done` with
    /// [`sls_reference_into`] and asserts the merged sharded output is
    /// bit-identical.
    ///
    /// # Panics
    ///
    /// Panics on any mismatch.
    pub fn verify_bitmatch(&mut self, done: &CompletedRequest) {
        let table = &self.tables[done.table.0].table;
        let dim = table.spec().dim;
        self.ref_scratch.clear();
        self.ref_scratch.resize(done.batch.outputs() * dim, 0.0);
        sls_reference_into(table, &done.batch, &mut self.ref_scratch);
        assert_eq!(
            done.outputs.as_slice(),
            &self.ref_scratch[..],
            "request {:?}: sharded output diverged from sls_reference",
            done.id
        );
    }

    /// Advances the simulation until the next request completes, or until
    /// nothing is left to do. Completions are returned in finish-time
    /// order.
    pub fn step(&mut self) -> Option<CompletedRequest> {
        loop {
            if let Some(done) = self.completed.pop_front() {
                return Some(done);
            }
            let (now, ev) = self.events.pop()?;
            match ev {
                Ev::Arrival(req) => {
                    let subs = self
                        .pending_arrivals
                        .remove(&req)
                        .expect("arrival without sub-batches");
                    for (shard, sub) in subs {
                        self.shards[shard].queue.push_back(sub);
                        self.try_dispatch(shard, now);
                    }
                }
                Ev::ShardReady(shard) => {
                    self.shards[shard].busy = false;
                    self.try_dispatch(shard, now);
                }
                Ev::Deadline(shard) => {
                    // The armed deadline may be stale (its sub-batch was
                    // size-triggered earlier); re-evaluate the policy for
                    // whatever fronts the queue now — try_dispatch only
                    // dispatches if the *current* front's window expired,
                    // and re-arms otherwise. A queued sub's own deadline
                    // is never earlier than any previously armed one
                    // (queues are FIFO), so nothing over-waits.
                    self.shards[shard].deadline_armed = false;
                    self.try_dispatch(shard, now);
                }
                Ev::Completed(req) => {
                    let inf = self.inflight.remove(&req).expect("completed twice");
                    let first_start = inf.first_start.expect("served before completing");
                    let queue = first_start.saturating_since(inf.arrival);
                    let service = inf.finish.saturating_since(first_start);
                    self.stats.record(
                        inf.arrival,
                        queue,
                        service,
                        inf.finish,
                        inf.batch.total_lookups() as u64,
                    );
                    self.completed.push_back(CompletedRequest {
                        id: RequestId(req),
                        client: inf.client,
                        table: ServedTableId(inf.table),
                        arrival: inf.arrival,
                        finish: inf.finish,
                        queue,
                        service,
                        batch: inf.batch,
                        outputs: inf.acc,
                    });
                }
            }
        }
    }

    /// Runs until every submitted request has completed, returning the
    /// completions in finish order.
    pub fn run_until_idle(&mut self) -> Vec<CompletedRequest> {
        let mut done = Vec::new();
        while let Some(c) = self.step() {
            done.push(c);
        }
        assert!(
            self.inflight.is_empty(),
            "requests stuck with no pending events"
        );
        done
    }

    /// Dispatches from `shard`'s queue if the policy is satisfied.
    fn try_dispatch(&mut self, shard: usize, now: SimTime) {
        let s = &self.shards[shard];
        if s.busy || s.queue.is_empty() {
            return;
        }
        match self.policy {
            SchedulePolicy::Fifo => self.dispatch(shard, now),
            SchedulePolicy::MicroBatch {
                max_outputs,
                max_delay,
            } => {
                let front = s.queue.front().expect("checked non-empty");
                let key = front.merge_key();
                let ready: usize = s
                    .queue
                    .iter()
                    .filter(|sub| sub.merge_key() == key)
                    .map(|sub| sub.slots.len())
                    .sum();
                let deadline = front.enqueued + max_delay;
                if ready >= max_outputs || now >= deadline {
                    self.dispatch(shard, now);
                } else if !s.deadline_armed {
                    self.shards[shard].deadline_armed = true;
                    self.events.push_at(deadline, Ev::Deadline(shard));
                }
            }
        }
    }

    /// Merges the front of `shard`'s queue into one device operator, runs
    /// it to completion on the shard's system, and folds the partial
    /// outputs into the owning requests.
    fn dispatch(&mut self, shard: usize, now: SimTime) {
        let s = &mut self.shards[shard];
        // Select sub-batches: FIFO takes the head; micro-batching drains
        // every queued sub-batch mergeable with the head (in order) up to
        // the output cap.
        let head = s.queue.pop_front().expect("dispatch on empty queue");
        let key = head.merge_key();
        let mut cap = match self.policy {
            SchedulePolicy::Fifo => head.slots.len(),
            SchedulePolicy::MicroBatch { max_outputs, .. } => max_outputs.max(head.slots.len()),
        };
        cap -= head.slots.len();
        let mut taken = vec![head];
        if cap > 0 {
            let mut i = 0;
            while i < s.queue.len() && cap > 0 {
                if s.queue[i].merge_key() == key && s.queue[i].slots.len() <= cap {
                    let sub = s.queue.remove(i).expect("index checked");
                    cap -= sub.slots.len();
                    taken.push(sub);
                } else {
                    i += 1;
                }
            }
        }

        // Merge into one operator-sized batch; remember each component's
        // slice of the merged output block.
        let mut per_output: Vec<Vec<u64>> = Vec::new();
        let mut parts: Vec<(u64, Vec<u32>, usize)> = Vec::new(); // (req, global slots, offset)
        let (table, path) = key;
        for sub in taken {
            parts.push((sub.req, sub.slots, per_output.len()));
            per_output.extend(sub.per_output);
        }
        let merged = LookupBatch::new(per_output);
        let device_table = self.tables[table].per_shard[shard];
        let kind = match path {
            SlsPath::Dram => OpKind::dram_sls(device_table, merged),
            SlsPath::Baseline(opts) => OpKind::baseline_sls(device_table, merged, opts),
            SlsPath::Ndp(opts) => OpKind::ndp_sls(device_table, merged, opts),
        };

        // Run the operator on the shard's own system, re-anchored to the
        // global instant; its virtual finish time is the service endpoint.
        s.sys.advance_clock(now);
        let start = s.sys.now();
        let op = s.sys.submit(kind);
        s.sys.run_until_idle();
        let finish = s.sys.now();
        let result = s.sys.take_result(op);
        let outputs = result.outputs.expect("SLS ops produce outputs");

        self.stats.ops_dispatched.inc();
        self.stats.subs_dispatched.add(parts.len() as u64);

        // Fold each component's rows into its request accumulator via the
        // flat fused-accumulate path, then recycle the shard buffer.
        for (req, slots, offset) in parts {
            let inf = self.inflight.get_mut(&req).expect("in flight");
            for (i, &slot) in slots.iter().enumerate() {
                let src = outputs.row(offset + i);
                for (o, v) in inf.acc.row_mut(slot as usize).iter_mut().zip(src) {
                    *o += *v;
                }
            }
            inf.first_start = Some(match inf.first_start {
                Some(t) => t.min(start),
                None => start,
            });
            inf.finish = inf.finish.max(finish);
            inf.pending -= 1;
            if inf.pending == 0 {
                let at = inf.finish;
                self.events.push_at(at, Ev::Completed(req));
            }
        }
        s.sys.recycle_outputs(outputs);

        let s = &mut self.shards[shard];
        s.busy = true;
        self.events.push_at(finish, Ev::ShardReady(shard));
    }
}
