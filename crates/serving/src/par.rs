//! A persistent worker pool for the conservative parallel stepper.
//!
//! std-only (no rayon/crossbeam): a [`Mutex`]-guarded epoch counter with
//! two [`Condvar`]s. The main thread arms a *window* (a slice of
//! [`SweepUnit`]s plus a shared [`SweepCtx`]) and blocks until every
//! worker reports done; worker `k` of `n` sweeps units `k, k + n, …`, a
//! deterministic partition so each shard has exactly one owner per
//! window. Because [`WorkerPool::run`] does not return until all workers
//! are finished, the `&mut` borrows behind the unit pointers outlive
//! every worker access — the safety argument for the `Send`/`Sync`
//! impls on [`SweepUnit`]/[`SweepCtx`].
//!
//! Each worker keeps a [`WorkerProfile`]: wall time spent advancing
//! shards (useful work) vs waiting for the next window (barrier +
//! main-thread merge time). Barrier-wait skew across workers is the
//! shard-imbalance signal.

use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use recssd_obs::WorkerProfile;

use crate::runtime::{sweep_unit, SweepCtx, SweepUnit};

/// One armed window, type-erased so [`State`] stays `'static`. The
/// pointees are guaranteed alive for the window by the blocking
/// handshake in [`WorkerPool::run`].
#[derive(Clone, Copy)]
struct Job {
    units: usize,
    n_units: usize,
    ctx: usize,
}

struct State {
    /// Window counter; bumping it (with `job` set) releases the workers.
    epoch: u64,
    /// Workers still running the current window.
    remaining: usize,
    job: Option<Job>,
    shutdown: bool,
    profiles: Vec<WorkerProfile>,
}

struct Shared {
    state: Mutex<State>,
    /// Signals workers: new window armed (or shutdown).
    go: Condvar,
    /// Signals the main thread: a worker finished the window.
    done: Condvar,
}

/// The persistent worker pool behind [`crate::ExecMode::Parallel`].
/// Threads are spawned once and parked between windows; dropping the
/// pool shuts them down and joins them.
pub(crate) struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    workers: usize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers)
            .finish_non_exhaustive()
    }
}

impl WorkerPool {
    /// Spawns `workers` parked worker threads.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub(crate) fn new(workers: usize) -> Self {
        assert!(workers > 0, "worker pool needs at least one thread");
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                epoch: 0,
                remaining: 0,
                job: None,
                shutdown: false,
                profiles: (0..workers)
                    .map(|worker| WorkerProfile {
                        worker,
                        ..WorkerProfile::default()
                    })
                    .collect(),
            }),
            go: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|k| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("recssd-sweep-{k}"))
                    .spawn(move || worker_loop(&shared, k, workers))
                    .expect("spawn sweep worker")
            })
            .collect();
        WorkerPool {
            shared,
            handles,
            workers,
        }
    }

    /// Runs one window: every worker sweeps its share of `units` under
    /// `ctx`. Blocks until all workers are done — the pointees of
    /// `units`/`ctx` are therefore never accessed after this returns.
    pub(crate) fn run(&self, units: &[SweepUnit], ctx: &SweepCtx) {
        if units.is_empty() {
            return;
        }
        let mut st = self.shared.state.lock().expect("worker pool poisoned");
        debug_assert_eq!(st.remaining, 0, "overlapping windows");
        st.job = Some(Job {
            units: units.as_ptr() as usize,
            n_units: units.len(),
            ctx: std::ptr::from_ref(ctx) as usize,
        });
        st.remaining = self.workers;
        st.epoch += 1;
        self.shared.go.notify_all();
        while st.remaining > 0 {
            st = self.shared.done.wait(st).expect("worker pool poisoned");
        }
        st.job = None;
    }

    /// Snapshot of every worker's accumulated self-profile.
    pub(crate) fn profiles(&self) -> Vec<WorkerProfile> {
        self.shared
            .state
            .lock()
            .expect("worker pool poisoned")
            .profiles
            .clone()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("worker pool poisoned");
            st.shutdown = true;
        }
        self.shared.go.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared, k: usize, n: usize) {
    let mut seen = 0u64;
    loop {
        let t_wait = Instant::now();
        let job = {
            let mut st = shared.state.lock().expect("worker pool poisoned");
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch > seen {
                    seen = st.epoch;
                    break st.job.expect("armed window without a job");
                }
                st = shared.go.wait(st).expect("worker pool poisoned");
            }
        };
        let barrier_ns = t_wait.elapsed().as_nanos() as u64;
        let t_adv = Instant::now();
        // SAFETY: `WorkerPool::run` blocks until `remaining` hits zero,
        // so the slices live for the whole window; worker `k` touches
        // only units `k, k + n, …` — a disjoint partition, so every
        // `&mut Shard` is exclusive.
        let units =
            unsafe { std::slice::from_raw_parts(job.units as *const SweepUnit, job.n_units) };
        let ctx = unsafe { &*(job.ctx as *const SweepCtx) };
        let mut i = k;
        while i < job.n_units {
            let (shard, ix) = units[i].parts();
            sweep_unit(unsafe { &mut *shard }, ix, ctx);
            i += n;
        }
        let advance_ns = t_adv.elapsed().as_nanos() as u64;
        let mut st = shared.state.lock().expect("worker pool poisoned");
        let p = &mut st.profiles[k];
        p.advance_ns += advance_ns;
        p.barrier_ns += barrier_ns;
        p.windows += 1;
        st.remaining -= 1;
        if st.remaining == 0 {
            shared.done.notify_all();
        }
    }
}
