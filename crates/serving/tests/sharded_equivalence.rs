//! The serving tentpole's correctness contract: **any** row-range
//! sharding of a table produces bit-identical `SlsOutput`s to the
//! single-`System` unsharded path, on all three execution backends
//! (DRAM / baseline SSD / NDP), under both scheduling policies.
//!
//! Procedural tables hold values on the 1/64 grid, so f32 accumulation is
//! exact and any association of the per-shard partial sums reproduces the
//! reference bit for bit — the property that makes sharding transparent.

use proptest::prelude::*;
use recssd::{LookupBatch, OpKind, SlsOptions, System};
use recssd_embedding::{
    sls_reference, EmbeddingTable, PageLayout, Quantization, TableImage, TableSpec,
};
use recssd_serving::{SchedulePolicy, ServingConfig, ServingRuntime, SlsPath};
use recssd_sim::rng::Xoshiro256;
use recssd_sim::SimTime;

fn batch_of(rng: &mut Xoshiro256, rows: u64, outputs: usize, lookups: usize) -> LookupBatch {
    LookupBatch::new(
        (0..outputs)
            .map(|_| (0..lookups).map(|_| rng.gen_range(0..rows)).collect())
            .collect(),
    )
}

fn paths() -> [SlsPath; 3] {
    [
        SlsPath::Dram,
        SlsPath::Baseline(SlsOptions::default()),
        SlsPath::Ndp(SlsOptions::default()),
    ]
}

/// Runs `batches` through a sharded runtime and returns each request's
/// merged output as nested vectors.
fn run_sharded(
    shards: usize,
    policy: SchedulePolicy,
    layout: PageLayout,
    table: &EmbeddingTable,
    batches: &[LookupBatch],
    path: SlsPath,
) -> Vec<Vec<Vec<f32>>> {
    let mut cfg = ServingConfig::small_wide(shards, policy);
    cfg.layout = layout;
    let mut rt = ServingRuntime::new(&cfg);
    let t = rt.add_table(table.clone());
    for (i, b) in batches.iter().enumerate() {
        // Stagger arrivals so queues form and merging has material.
        rt.submit_at(SimTime::from_us(i as u64), i as u64, t, b.clone(), path);
    }
    let mut done = rt.run_until_idle();
    done.sort_by_key(|d| d.id);
    done.iter().map(|d| d.outputs.to_nested()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Sharded == unsharded == reference, bit for bit, every backend.
    #[test]
    fn any_sharding_bit_matches_the_unsharded_path(
        rows in 16u64..400,
        dim in 1usize..24,
        shards in 2usize..5,
        outputs in 1usize..4,
        lookups in 1usize..8,
        n_batches in 1usize..4,
        seed in 0u64..10_000,
        dense in proptest::bool::ANY,
    ) {
        let shards = shards.min(rows as usize);
        let layout = if dense { PageLayout::Dense } else { PageLayout::Spread };
        let table = EmbeddingTable::procedural(
            TableSpec::new(rows, dim, Quantization::F32),
            seed,
        );
        let mut rng = Xoshiro256::seed_from(seed ^ 0xABCD);
        let batches: Vec<LookupBatch> = (0..n_batches)
            .map(|_| batch_of(&mut rng, rows, outputs, lookups))
            .collect();
        let reference: Vec<Vec<Vec<f32>>> =
            batches.iter().map(|b| sls_reference(&table, b)).collect();

        for path in paths() {
            for policy in [
                SchedulePolicy::Fifo,
                SchedulePolicy::micro_batch(8),
            ] {
                let sharded = run_sharded(shards, policy, layout, &table, &batches, path);
                prop_assert_eq!(
                    &sharded, &reference,
                    "{} path, {} policy, {} shards diverged from sls_reference",
                    path.name(), policy.name(), shards
                );
                let single = run_sharded(1, policy, layout, &table, &batches, path);
                prop_assert_eq!(
                    &sharded, &single,
                    "{} path: {}-shard output != single-shard output",
                    path.name(), shards
                );
            }
        }
    }
}

/// The single-`System` unsharded submit path agrees with the runtime too
/// (guards against the runtime drifting from the core API semantics).
#[test]
fn runtime_single_shard_matches_direct_system_submission() {
    let rows = 300u64;
    let table = EmbeddingTable::procedural(TableSpec::new(rows, 8, Quantization::F32), 5);
    let mut rng = Xoshiro256::seed_from(99);
    let batch = batch_of(&mut rng, rows, 3, 6);

    // Direct submission to one System.
    let mut sys = System::new(recssd::RecSsdConfig::small_wide());
    let t = sys.add_table(TableImage::new(
        table.clone(),
        PageLayout::Spread,
        sys.config().ssd.block_bytes(),
    ));
    let op = sys.submit(OpKind::ndp_sls(t, batch.clone(), SlsOptions::default()));
    sys.run_until_idle();
    let direct = sys.result(op).outputs.as_ref().unwrap().to_nested();

    // Same batch through a 3-shard runtime.
    let out = run_sharded(
        3,
        SchedulePolicy::Fifo,
        PageLayout::Spread,
        &table,
        std::slice::from_ref(&batch),
        SlsPath::Ndp(SlsOptions::default()),
    );
    assert_eq!(out[0], direct);
}
