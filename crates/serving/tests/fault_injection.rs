//! Resilience contract of the serving stack under deterministic fault
//! injection:
//!
//! * a zero-rate fault plan is **bit-identical** — results, timings and
//!   stats — to running with no plan at all, on every path and policy
//!   (the plumbing itself must not perturb the simulation);
//! * a seeded fault schedule **replays** bit-identically;
//! * under randomized fault schedules every *served* (non-flagged) slot
//!   stays bit-identical to `sls_reference` — degradation is always
//!   explicit, never silently wrong bits;
//! * exhausted retry budgets, deadlines and full-shard brownouts all
//!   degrade gracefully: the fleet keeps serving, flagged, without
//!   panicking or hanging.

use recssd::{BrownoutWindow, FaultConfig, LookupBatch, SlsOptions};
use recssd_embedding::{EmbeddingTable, Quantization, TableSpec};
use recssd_serving::{
    FaultPolicy, LoadGen, LoadMode, SchedulePolicy, ServingConfig, ServingRuntime, SlsPath,
    TrafficSpec,
};
use recssd_sim::rng::Xoshiro256;
use recssd_sim::{SimDuration, SimTime};

const ROWS: u64 = 1024;

fn table() -> EmbeddingTable {
    EmbeddingTable::procedural(TableSpec::new(ROWS, 16, Quantization::F32), 5)
}

fn paths() -> [SlsPath; 3] {
    [
        SlsPath::Dram,
        SlsPath::Baseline(SlsOptions::default()),
        SlsPath::Ndp(SlsOptions::default()),
    ]
}

fn batches(seed: u64, n: usize) -> Vec<LookupBatch> {
    let mut rng = Xoshiro256::seed_from(seed);
    (0..n)
        .map(|_| {
            LookupBatch::new(
                (0..3)
                    .map(|_| (0..6).map(|_| rng.gen_range(0..ROWS)).collect())
                    .collect(),
            )
        })
        .collect()
}

/// Everything observable about one completion, for bit-exact comparison.
#[derive(Debug, PartialEq)]
struct Snap {
    id: u64,
    finish_ns: u64,
    queue_ns: u64,
    service_ns: u64,
    outputs: Vec<f32>,
    missing_lookups: u64,
}

/// Stats fingerprint of one run.
#[derive(Debug, PartialEq)]
struct StatsSnap {
    requests: u64,
    lookups: u64,
    ops: u64,
    subs: u64,
    faults: u64,
    retries: u64,
    fallbacks: u64,
    breaker_trips: u64,
    degraded: u64,
    missing: u64,
}

fn run_workload(
    shards: usize,
    sched: SchedulePolicy,
    path: SlsPath,
    faults: Option<&FaultConfig>,
    policy: Option<FaultPolicy>,
    work: &[LookupBatch],
) -> (Vec<Snap>, StatsSnap) {
    let cfg = ServingConfig::small_wide(shards, sched);
    let mut rt = ServingRuntime::new(&cfg);
    let t = rt.add_table(table());
    if let Some(cfg) = faults {
        rt.inject_faults(cfg);
    }
    if let Some(p) = policy {
        rt.set_fault_policy(p);
    }
    for (i, b) in work.iter().enumerate() {
        rt.submit_at(SimTime::from_us(i as u64), i as u64, t, b.clone(), path);
    }
    let done = rt.run_until_idle();
    for d in &done {
        rt.verify_bitmatch(d);
    }
    let snaps = done
        .iter()
        .map(|d| Snap {
            id: d.id.0,
            finish_ns: d.finish.as_ns(),
            queue_ns: d.queue.as_ns(),
            service_ns: d.service.as_ns(),
            outputs: d.outputs.as_slice().to_vec(),
            missing_lookups: d.missing_lookups,
        })
        .collect();
    let s = rt.stats();
    let stats = StatsSnap {
        requests: s.requests.get(),
        lookups: s.lookups.get(),
        ops: s.ops_dispatched.get(),
        subs: s.subs_dispatched.get(),
        faults: s.faults.get(),
        retries: s.retries.get(),
        fallbacks: s.fallbacks.get(),
        breaker_trips: s.breaker_trips.get(),
        degraded: s.degraded.get(),
        missing: s.missing_lookups.get(),
    };
    (snaps, stats)
}

/// Satellite: a fault subsystem armed with all-zero probabilities is
/// bit-identical — results, timings, stats — to not arming it, on all
/// three paths and both scheduling policies. The RNG draws advance but
/// must never perturb the simulated timeline.
#[test]
fn zero_rate_fault_plan_is_bit_identical_to_disabled() {
    let work = batches(11, 24);
    for path in paths() {
        for sched in [SchedulePolicy::Fifo, SchedulePolicy::micro_batch(8)] {
            let (base_snaps, base_stats) = run_workload(2, sched, path, None, None, &work);
            let quiet = FaultConfig::quiet(0xDEAD_BEEF);
            let (fault_snaps, fault_stats) = run_workload(
                2,
                sched,
                path,
                Some(&quiet),
                Some(FaultPolicy::default()),
                &work,
            );
            assert_eq!(base_snaps, fault_snaps, "{path:?}/{sched:?} diverged");
            assert_eq!(base_stats, fault_stats, "{path:?}/{sched:?} stats diverged");
            assert_eq!(fault_stats.faults, 0);
            assert_eq!(fault_stats.degraded, 0);
        }
    }
}

/// Satellite: the same seed replays the same fault schedule — two runs
/// are bit-identical down to retry counts and completion timings.
#[test]
fn seeded_fault_schedule_replays_identically() {
    let work = batches(23, 32);
    let mut cfg = FaultConfig::quiet(7);
    cfg.transient_read_error_rate = 0.05;
    cfg.uncorrectable_rate = 0.02;
    cfg.stall_rate = 0.05;
    let policy = FaultPolicy::default();
    for path in [
        SlsPath::Baseline(SlsOptions::default()),
        SlsPath::Ndp(SlsOptions::default()),
    ] {
        let a = run_workload(
            2,
            SchedulePolicy::Fifo,
            path,
            Some(&cfg),
            Some(policy),
            &work,
        );
        let b = run_workload(
            2,
            SchedulePolicy::Fifo,
            path,
            Some(&cfg),
            Some(policy),
            &work,
        );
        assert_eq!(a, b, "{path:?}: same seed must replay identically");
    }
}

/// Tentpole property: under a randomized uncorrectable-fault schedule,
/// every completed request still verifies — served slots bit-match
/// `sls_reference`, missing rows are explicitly flagged. Retries and
/// fallbacks absorb most faults; nothing hangs.
#[test]
fn randomized_faults_never_serve_wrong_bits() {
    let mut cfg = FaultConfig::quiet(101);
    cfg.transient_read_error_rate = 0.02;
    cfg.uncorrectable_rate = 0.05;
    let rt_cfg = ServingConfig::small_wide(2, SchedulePolicy::micro_batch(8)).with_depth(2);
    let mut rt = ServingRuntime::new(&rt_cfg);
    let t = rt.add_table(table());
    rt.inject_faults(&cfg);
    rt.set_fault_policy(FaultPolicy::default());
    let spec = TrafficSpec {
        outputs: 3,
        lookups_per_output: 6,
        zipf_exponent: 1.2,
    };
    let mode = LoadMode::Closed {
        clients: 8,
        think: SimDuration::ZERO,
    };
    // verify_every(1): LoadGen bit-verifies every completion internally.
    let mut gen = LoadGen::new(&rt, vec![t], spec, mode, 3).with_verify_every(1);
    let report = gen.run(&mut rt, SlsPath::Ndp(SlsOptions::default()), 64);
    assert_eq!(report.requests, 64, "every request must complete");
    assert_eq!(report.verified, 64, "every completion must verify");
    assert!(report.faults > 0, "schedule should inject op-level faults");
    assert!(report.retries > 0, "faults should drive retries");
}

/// Transient (ECC-correctable) faults are absorbed inside the device:
/// they cost latency but never surface as host-visible errors, so the
/// serving layer sees zero faults and zero degradation.
#[test]
fn transient_faults_stay_invisible_to_serving() {
    let work = batches(31, 24);
    let mut cfg = FaultConfig::quiet(13);
    cfg.transient_read_error_rate = 0.5;
    let (snaps, stats) = run_workload(
        2,
        SchedulePolicy::Fifo,
        SlsPath::Ndp(SlsOptions::default()),
        Some(&cfg),
        Some(FaultPolicy::default()),
        &work,
    );
    assert_eq!(stats.requests, 24);
    assert_eq!(stats.faults, 0, "transient faults must not surface");
    assert_eq!(stats.degraded, 0);
    assert!(snaps.iter().all(|s| s.missing_lookups == 0));
}

/// When every retry and the baseline fallback fail too (100%
/// uncorrectable rate), requests complete *degraded*: all lost rows are
/// counted, their slots flagged, nothing panics or hangs, and the
/// flagged-slot-aware verifier accepts the result.
#[test]
fn exhausted_retries_serve_degraded_flagged() {
    let work = batches(47, 12);
    let mut cfg = FaultConfig::quiet(29);
    cfg.uncorrectable_rate = 1.0;
    let policy = FaultPolicy {
        max_retries: 1,
        fallback_after: 1,
        ..FaultPolicy::default()
    };
    let (snaps, stats) = run_workload(
        2,
        SchedulePolicy::Fifo,
        SlsPath::Ndp(SlsOptions::default()),
        Some(&cfg),
        Some(policy),
        &work,
    );
    assert_eq!(stats.requests, 12, "fleet must keep serving");
    assert_eq!(stats.degraded, 12, "every request loses its device rows");
    assert!(stats.fallbacks > 0, "NDP subs must fall back to baseline");
    let total: u64 = work.iter().map(|b| b.total_lookups() as u64).sum();
    assert_eq!(stats.missing, total, "all device rows are lost");
    for s in &snaps {
        assert!(s.missing_lookups > 0, "degradation must be flagged");
    }
}

/// Tentpole acceptance: a full-shard brownout combined with a burst of
/// uncorrectable errors trips that shard's circuit breaker; the fleet
/// keeps serving (degraded, flagged) through the window without
/// panicking or hanging, and healthy shards stay correct.
#[test]
fn brownout_trips_breaker_and_fleet_keeps_serving() {
    let rt_cfg = ServingConfig::small_wide(2, SchedulePolicy::Fifo).with_depth(2);
    let mut rt = ServingRuntime::new(&rt_cfg);
    let t = rt.add_table(table());
    let mut sick = FaultConfig::quiet(57);
    sick.uncorrectable_rate = 1.0;
    sick.brownouts = vec![BrownoutWindow {
        start: SimTime::ZERO,
        end: SimTime::from_ms(10),
        factor: 4,
    }];
    rt.inject_faults_on_shard(0, &sick);
    rt.set_fault_policy(FaultPolicy {
        max_retries: 1,
        fallback_after: 1,
        breaker_window: 4,
        breaker_threshold: 0.5,
        breaker_cooldown: SimDuration::from_us(200),
        deadline: Some(SimDuration::from_ms(5)),
        ..FaultPolicy::default()
    });
    let work = batches(71, 32);
    for (i, b) in work.iter().enumerate() {
        rt.submit_at(
            SimTime::from_us(4 * i as u64),
            i as u64,
            t,
            b.clone(),
            SlsPath::Ndp(SlsOptions::default()),
        );
    }
    let done = rt.run_until_idle();
    assert_eq!(done.len(), 32, "fleet must serve through the brownout");
    for d in &done {
        rt.verify_bitmatch(d); // non-flagged slots stay bit-exact
    }
    let s = rt.stats();
    assert!(s.breaker_trips.get() >= 1, "error burst must trip breaker");
    assert!(s.degraded.get() > 0, "sick-shard rows are lost, flagged");
    // The healthy shard's partials survive in aggregate: losses stay
    // strictly below the offered lookups. (A late request can lose its
    // healthy-shard rows too when the deadline fires while they are
    // still queued behind the congested fleet — that is the deadline
    // doing its job, so no per-request bound holds.)
    assert!(s.missing_lookups.get() < s.lookups.get());
}

/// A request whose device work outlives its deadline is served at the
/// deadline with whatever merged: still-owed slots are flagged missing,
/// latency is capped at the deadline, and the late completion is
/// discarded silently (exactly one completion per request).
#[test]
fn deadline_serves_partial_results_on_time() {
    let rt_cfg = ServingConfig::small_wide(1, SchedulePolicy::Fifo);
    let mut rt = ServingRuntime::new(&rt_cfg);
    let t = rt.add_table(table());
    // Pure slowdown, no errors: a brownout stretching every device
    // latency far past the deadline.
    let mut slow = FaultConfig::quiet(91);
    slow.brownouts = vec![BrownoutWindow {
        start: SimTime::ZERO,
        end: SimTime::from_ms(200),
        factor: 1000,
    }];
    rt.inject_faults_on_shard(0, &slow);
    let deadline = SimDuration::from_ms(2);
    rt.set_fault_policy(FaultPolicy {
        deadline: Some(deadline),
        ..FaultPolicy::default()
    });
    let work = batches(83, 4);
    for (i, b) in work.iter().enumerate() {
        rt.submit_at(
            SimTime::from_us(i as u64),
            i as u64,
            t,
            b.clone(),
            SlsPath::Ndp(SlsOptions::default()),
        );
    }
    let done = rt.run_until_idle();
    assert_eq!(done.len(), 4, "exactly one completion per request");
    for (i, d) in done.iter().enumerate() {
        assert!(d.is_degraded(), "device rows cannot make the deadline");
        assert_eq!(
            d.finish.as_ns(),
            SimTime::from_us(i as u64).as_ns() + deadline.as_ns(),
            "served exactly at the deadline"
        );
        assert_eq!(d.e2e(), deadline, "latency capped at the deadline");
        rt.verify_bitmatch(d);
    }
    assert_eq!(rt.stats().degraded.get(), 4);
    assert_eq!(rt.stats().breaker_trips.get(), 0, "slowdown is not error");
}
