//! Observability contract of the serving stack:
//!
//! * sim-time span traces reconstruct each request — parents resolve,
//!   children nest temporally, and the direct children of every
//!   non-degraded `request` span cover ≥ 99 % of its end-to-end latency;
//! * traces are **deterministic**: the same seed yields bit-identical
//!   Chrome-trace JSON across runs;
//! * tracing is an observer: enabling it must not perturb the simulated
//!   results, timings or stats by a single bit;
//! * the unified metrics registry resets *everything* in one call —
//!   serving counters/histograms, fault and breaker counters, FTL cache
//!   stats — verified by an all-zeros snapshot after `reset_stats`;
//! * per-epoch JSONL snapshots and the per-path latency attribution come
//!   from the same registry.

use recssd::{FaultConfig, LookupBatch, SlsOptions};
use recssd_embedding::{EmbeddingTable, Quantization, TableSpec};
use recssd_serving::{
    chrome_trace_json, validate_spans, AdaptivePolicy, ExecMode, FaultPolicy, LoadGen, LoadMode,
    MetricValue, SchedulePolicy, ServingConfig, ServingRuntime, SlsPath, TrafficSpec,
};
use recssd_sim::rng::Xoshiro256;
use recssd_sim::{SimDuration, SimTime};

const ROWS: u64 = 1024;

fn table(seed: u64) -> EmbeddingTable {
    EmbeddingTable::procedural(TableSpec::new(ROWS, 16, Quantization::F32), seed)
}

fn paths() -> [SlsPath; 3] {
    [
        SlsPath::Dram,
        SlsPath::Baseline(SlsOptions::default()),
        SlsPath::Ndp(SlsOptions::default()),
    ]
}

fn batches(seed: u64, n: usize) -> Vec<LookupBatch> {
    let mut rng = Xoshiro256::seed_from(seed);
    (0..n)
        .map(|_| {
            LookupBatch::new(
                (0..3)
                    .map(|_| (0..6).map(|_| rng.gen_range(0..ROWS)).collect())
                    .collect(),
            )
        })
        .collect()
}

/// Everything observable about one completion, for bit-exact comparison.
#[derive(Debug, PartialEq)]
struct Snap {
    id: u64,
    finish_ns: u64,
    queue_ns: u64,
    service_ns: u64,
    outputs: Vec<f32>,
    missing_lookups: u64,
}

fn snaps(done: &[recssd_serving::CompletedRequest]) -> Vec<Snap> {
    done.iter()
        .map(|d| Snap {
            id: d.id.0,
            finish_ns: d.finish.as_ns(),
            queue_ns: d.queue.as_ns(),
            service_ns: d.service.as_ns(),
            outputs: d.outputs.as_slice().to_vec(),
            missing_lookups: d.missing_lookups,
        })
        .collect()
}

/// Mixed-path workload on a 2-shard runtime; returns the runtime after
/// it drained and the completion snapshots.
fn run_mixed(trace: bool, faults: bool) -> (ServingRuntime, Vec<Snap>) {
    let cfg = ServingConfig::small_wide(2, SchedulePolicy::micro_batch(8)).with_depth(2);
    let mut rt = ServingRuntime::new(&cfg);
    if trace {
        rt.enable_tracing();
    }
    let t = rt.add_table(table(5));
    if faults {
        let mut fc = FaultConfig::quiet(77);
        fc.transient_read_error_rate = 0.05;
        fc.uncorrectable_rate = 0.02;
        rt.inject_faults(&fc);
        rt.set_fault_policy(FaultPolicy::default());
    }
    let work = batches(13, 30);
    let ps = paths();
    for (i, b) in work.iter().enumerate() {
        let path = ps[i % ps.len()];
        rt.submit_at(SimTime::from_us(i as u64), i as u64, t, b.clone(), path);
    }
    let done = rt.run_until_idle();
    let s = snaps(&done);
    (rt, s)
}

/// Tentpole: traced spans form a causally-linked tree whose direct
/// children reconstruct ≥ 99 % of every non-degraded request's
/// end-to-end latency, across all three serving paths at once.
#[test]
fn trace_reconstructs_requests_and_passes_invariants() {
    let (mut rt, _) = run_mixed(true, false);
    let spans = rt.take_trace();
    assert!(!spans.is_empty(), "tracing produced no spans");
    let check = validate_spans(&spans).expect("span invariants hold");
    assert_eq!(check.requests, 30, "one request span per submission");
    assert!(
        check.min_coverage >= 0.99,
        "children cover >= 99% of each request, got {}",
        check.min_coverage
    );
    // Every layer shows up: serving, host phases, firmware, flash.
    for name in [
        "request",
        "sub",
        "sub:wait",
        "op",
        "op:queue",
        "ndp:merge",
        "fw:exec",
    ] {
        assert!(
            spans.iter().any(|s| s.name == name),
            "no '{name}' span in the trace"
        );
    }
    // Device spans live on per-shard tracks, serving spans on pid 0.
    assert!(spans.iter().any(|s| s.pid == 0));
    assert!(spans.iter().any(|s| s.pid == 1) && spans.iter().any(|s| s.pid == 2));
}

/// Same seed, same workload → bit-identical Chrome-trace JSON. The
/// trace is as replayable as the simulation it observes.
#[test]
fn same_seed_traces_are_bit_identical() {
    let (mut a, _) = run_mixed(true, true);
    let (mut b, _) = run_mixed(true, true);
    let ja = chrome_trace_json(&a.take_trace());
    let jb = chrome_trace_json(&b.take_trace());
    assert!(!ja.is_empty());
    assert_eq!(ja, jb, "trace JSON diverged across identical runs");
}

/// Tracing is a pure observer: results, timings and stats of a traced
/// run are bit-identical to the untraced run (with and without faults).
#[test]
fn tracing_does_not_perturb_the_simulation() {
    for faults in [false, true] {
        let (rt_off, snaps_off) = run_mixed(false, faults);
        let (rt_on, snaps_on) = run_mixed(true, faults);
        assert_eq!(snaps_off, snaps_on, "faults={faults}: results diverged");
        let key = |v: &(String, MetricValue)| format!("{:?}", v);
        let off: Vec<String> = rt_off.metrics_snapshot().iter().map(key).collect();
        let on: Vec<String> = rt_on.metrics_snapshot().iter().map(key).collect();
        assert_eq!(off, on, "faults={faults}: metrics diverged");
    }
}

/// Satellite: one `reset_stats` zeroes *every* registered metric —
/// including the fault, retry and breaker counters and the per-path
/// histograms — and the FTL cache stats underneath.
#[test]
fn reset_stats_zeroes_every_registered_metric() {
    let (mut rt, _) = run_mixed(false, true);
    // The run populated a broad slice of the registry.
    let touched = rt
        .metrics_snapshot()
        .iter()
        .filter(|(_, v)| !metric_is_zero(v))
        .count();
    assert!(touched > 10, "workload touched only {touched} metrics");
    rt.reset_stats();
    for (name, v) in rt.metrics_snapshot() {
        assert!(metric_is_zero(&v), "metric '{name}' survived reset: {v:?}");
    }
    for cs in rt.ftl_cache_stats() {
        assert_eq!(cs.accesses(), 0, "FTL cache stats survived reset");
    }
    for f in rt.shard_fault_stats().into_iter().flatten() {
        let injected = f.transient.get() + f.uncorrectable.get() + f.stalls.get();
        assert_eq!(injected, 0, "fault stats survived reset");
    }
}

fn metric_is_zero(v: &MetricValue) -> bool {
    match v {
        MetricValue::Counter(c) => *c == 0,
        MetricValue::Gauge(g) => *g == 0.0,
        MetricValue::Hist(q) => q.count == 0 && q.max == 0,
        MetricValue::Hits { hits, misses } => *hits == 0 && *misses == 0,
    }
}

/// The adaptive loop appends one parsable JSONL metrics snapshot per
/// epoch, stamped with the epoch ordinal and sim time.
#[test]
fn epoch_log_emits_one_line_per_epoch() {
    let cfg = ServingConfig::small_wide(2, SchedulePolicy::Fifo).with_depth(2);
    let mut rt = ServingRuntime::new(&cfg);
    rt.enable_epoch_log();
    let t = rt.add_table(table(9));
    rt.enable_adaptive(AdaptivePolicy {
        epoch_requests: 16,
        decay: 0.5,
        budget_rows: 128,
        min_hit_gain: 0.02,
    });
    let mut gen = LoadGen::new(
        &rt,
        vec![t],
        TrafficSpec {
            outputs: 4,
            lookups_per_output: 8,
            zipf_exponent: 1.2,
        },
        LoadMode::Closed {
            clients: 4,
            think: SimDuration::ZERO,
        },
        3,
    );
    gen.run(&mut rt, SlsPath::Ndp(SlsOptions::default()), 64);
    let epochs = rt.adaptive_epochs();
    assert!(epochs > 0, "workload completed no adaptive epochs");
    let log = rt.take_epoch_log();
    let lines: Vec<&str> = log.lines().collect();
    assert_eq!(lines.len() as u64, epochs, "one JSONL line per epoch");
    for (i, line) in lines.iter().enumerate() {
        assert!(
            line.starts_with(&format!("{{\"epoch\":{}", i + 1)),
            "line {i} is not an epoch snapshot: {line}"
        );
        assert!(line.ends_with("}}") && line.contains("\"metrics\":{"));
    }
    assert!(rt.take_epoch_log().is_empty(), "take drains the log");
}

/// Per-path latency attribution reports exactly the paths that served
/// traffic, with internally consistent quantiles.
#[test]
fn attribution_reports_each_served_path() {
    let (rt, _) = run_mixed(false, false);
    let attr = rt.attribution();
    assert_eq!(attr.len(), 3, "all three paths served requests");
    let mut seen: Vec<&str> = attr.iter().map(|a| a.path).collect();
    seen.sort_unstable();
    assert_eq!(seen, ["baseline", "dram", "ndp"]);
    let total: u64 = attr.iter().map(|a| a.requests).sum();
    assert_eq!(total, rt.stats().requests.get());
    for a in &attr {
        assert_eq!(a.e2e.count, a.requests);
        assert!(a.e2e.p99 >= a.e2e.p50);
        assert!(
            a.service.max > 0,
            "{}: service time must be nonzero",
            a.path
        );
    }
}

/// Mixed-path run with the analysis APIs exercised both mid-stream and
/// after the drain; returns everything a bit-exact comparison needs.
fn run_mixed_analyzed(exec: Option<ExecMode>) -> (Vec<Snap>, Vec<String>, String) {
    let mut cfg = ServingConfig::small_wide(2, SchedulePolicy::micro_batch(8)).with_depth(2);
    if let Some(e) = exec {
        cfg = cfg.with_exec(e);
    }
    let mut rt = ServingRuntime::new(&cfg);
    rt.enable_tracing();
    let t = rt.add_table(table(5));
    let work = batches(13, 30);
    let ps = paths();
    for (i, b) in work.iter().enumerate() {
        rt.submit_at(
            SimTime::from_us(i as u64),
            i as u64,
            t,
            b.clone(),
            ps[i % ps.len()],
        );
        if i == 15 {
            // Mid-stream analysis must be a pure observer.
            let _ = rt.critical_path_report();
            let _ = rt.bottleneck_report();
            let _ = rt.utilization_timelines(SimDuration::from_us(10));
        }
    }
    let done = rt.run_until_idle();
    let s = snaps(&done);
    let reports = vec![
        rt.critical_path_report().render(),
        rt.bottleneck_report().render(),
        rt.utilization_timelines(SimDuration::from_us(10))
            .iter()
            .map(|tl| tl.snapshot_jsonl())
            .collect::<Vec<_>>()
            .join(""),
    ];
    let trace_json = chrome_trace_json(&rt.take_trace());
    (s, reports, trace_json)
}

/// Tentpole: analysis is a pure observer. Running the critical-path /
/// bottleneck / timeline extractors mid-run and post-run leaves the
/// simulation, the stats and the exported trace bit-identical to a run
/// that never analyzed anything.
#[test]
fn analysis_is_a_pure_observer() {
    let (mut rt_plain, snaps_plain) = run_mixed(true, false);
    let (snaps_analyzed, _, trace_analyzed) = run_mixed_analyzed(None);
    assert_eq!(snaps_plain, snaps_analyzed, "analysis perturbed results");
    let trace_plain = chrome_trace_json(&rt_plain.take_trace());
    assert_eq!(
        trace_plain, trace_analyzed,
        "analysis perturbed (or drained) the trace"
    );
}

/// Tentpole: reports are bit-identical across execution modes — the
/// sequential stepper and the parallel sweeper feed the analysis the
/// same canonical trace, so every rendered report and JSONL series
/// matches byte for byte.
#[test]
fn analysis_reports_identical_sequential_vs_parallel() {
    let (snaps_seq, reports_seq, trace_seq) = run_mixed_analyzed(Some(ExecMode::Sequential));
    let (snaps_par, reports_par, trace_par) = run_mixed_analyzed(Some(ExecMode::Parallel(2)));
    assert_eq!(snaps_seq, snaps_par, "results diverged across exec modes");
    assert_eq!(trace_seq, trace_par, "traces diverged across exec modes");
    assert_eq!(reports_seq.len(), reports_par.len());
    for (a, b) in reports_seq.iter().zip(&reports_par) {
        assert_eq!(a, b, "analysis reports diverged across exec modes");
    }
}

/// Tentpole: the phase decomposition explains ≥ 95 % of e2e latency on
/// all three serving paths (the CI conservation gate), and the
/// decomposition's resources show up in the bottleneck ranking and the
/// utilization timelines.
#[test]
fn critical_path_conserves_e2e_on_all_paths() {
    let (rt, _) = run_mixed(true, false);
    let report = rt.critical_path_report();
    assert_eq!(report.requests, 30);
    assert_eq!(report.degraded, 0);
    let mut seen: Vec<&str> = report.paths.iter().map(|p| p.path.as_str()).collect();
    seen.sort_unstable();
    assert_eq!(seen, ["baseline", "dram", "ndp"]);
    for p in &report.paths {
        assert!(
            p.conservation() >= 0.95,
            "path {}: phases explain only {:.1}% of e2e",
            p.path,
            p.conservation() * 100.0
        );
        assert!(p.e2e.count == p.requests && p.e2e.max_ns > 0);
    }
    assert!(report.min_conservation >= 0.95);

    let bn = rt.bottleneck_report();
    assert!(bn.top().is_some(), "no resources ranked");
    assert!(bn.ranked.iter().any(|r| r.resource.starts_with("fw:core")));
    assert!(!bn.headroom.is_empty());
    for h in &bn.headroom {
        assert!(h.sustainable_rps > 0.0 && h.observed_rps > 0.0);
    }

    let tls = rt.utilization_timelines(SimDuration::from_us(10));
    assert!(tls.iter().any(|t| t.resource.starts_with("fw:core")));
    assert!(tls.iter().any(|t| t.resource.starts_with("queue[shard=")));
    for t in &tls {
        assert!(
            t.littles_law_residual() < 1e-9,
            "{}: L != lambda*W",
            t.resource
        );
        assert!(t.utilization() <= 1.0 + 1e-12);
    }
}

/// Satellite: per-worker wall profiles under `Parallel(n)` sum
/// coherently — every worker saw the same number of sweep windows, its
/// advance/barrier split is sane, and no worker's accounted time
/// exceeds the loop's own device-step wall time (with slack for timer
/// noise).
#[test]
fn wall_profile_parallel_workers_sum_coherently() {
    let cfg = ServingConfig::small_wide(2, SchedulePolicy::micro_batch(8))
        .with_depth(2)
        .with_exec(ExecMode::Parallel(2));
    let mut rt = ServingRuntime::new(&cfg);
    rt.enable_self_profiling();
    let t = rt.add_table(table(5));
    let ps = paths();
    for (i, b) in batches(13, 30).iter().enumerate() {
        rt.submit_at(
            SimTime::from_us(i as u64),
            i as u64,
            t,
            b.clone(),
            ps[i % ps.len()],
        );
    }
    rt.run_until_idle();
    let workers = rt.worker_profiles();
    if !matches!(rt.exec_mode(), ExecMode::Parallel(_)) {
        // RECSSD_FORCE_EXEC=sequential demotes the run; nothing to check.
        assert!(workers.is_empty());
        return;
    }
    assert!(!workers.is_empty(), "parallel run reported no workers");
    let windows = workers[0].windows;
    assert!(windows > 0, "no sweep windows profiled");
    for w in &workers {
        assert_eq!(w.windows, windows, "workers disagree on window count");
        assert!(w.advance_ns + w.barrier_ns > 0, "worker did no work");
        let u = w.utilization();
        assert!((0.0..=1.0).contains(&u), "utilization {u} out of range");
    }
    let dev = rt
        .wall_profile()
        .into_iter()
        .find(|p| p.phase == "device_step")
        .expect("device_step phase");
    assert!(dev.nanos > 0);
    for w in &workers {
        assert!(
            w.advance_ns + w.barrier_ns <= dev.nanos.saturating_mul(2),
            "worker accounted more than the whole loop: {} > {}",
            w.advance_ns + w.barrier_ns,
            dev.nanos
        );
    }
}

/// Wall-clock self-profiling is off (all-zero) by default and
/// accumulates into every phase once enabled.
#[test]
fn wall_profile_is_opt_in_and_covers_the_loop() {
    let (rt, _) = run_mixed(false, false);
    assert!(
        rt.wall_profile()
            .iter()
            .all(|p| p.nanos == 0 && p.count == 0),
        "profiling must be off by default"
    );
    let cfg = ServingConfig::small_wide(2, SchedulePolicy::Fifo).with_depth(2);
    let mut rt = ServingRuntime::new(&cfg);
    rt.enable_self_profiling();
    let t = rt.add_table(table(5));
    for (i, b) in batches(13, 12).iter().enumerate() {
        rt.submit_at(
            SimTime::from_us(i as u64),
            i as u64,
            t,
            b.clone(),
            SlsPath::Ndp(SlsOptions::default()),
        );
    }
    rt.run_until_idle();
    let prof = rt.wall_profile();
    for p in &prof {
        assert!(p.count > 0, "phase '{}' never sampled", p.phase);
    }
    let dev = prof.iter().find(|p| p.phase == "device_step").unwrap();
    assert!(dev.nanos > 0, "device stepping took no wall time?");
}
