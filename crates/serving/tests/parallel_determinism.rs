//! Determinism stress tests for the conservative parallel stepper: the
//! execution mode is a *performance knob*, never an observable one.
//! A same-seed workload must produce bit-identical completion streams,
//! metric registries, end-of-run telemetry and Chrome-trace JSON under
//! [`ExecMode::Sequential`], `Parallel(2)` and `Parallel(8)` — with
//! tracing enabled, and with deterministic fault injection at zero rate
//! and at a 1 % transient-read-error rate.
//!
//! These runs request explicit `with_exec` modes. Under a
//! `RECSSD_FORCE_EXEC` sweep the override wins (that is its job) and
//! the comparisons degrade to same-seed replay checks of the forced
//! mode; the default test run exercises the real cross-mode boundary.

use recssd::{FaultConfig, LookupBatch, SlsOptions};
use recssd_embedding::{EmbeddingTable, Quantization, TableSpec};
use recssd_serving::{
    chrome_trace_json, ExecMode, FaultPolicy, MetricValue, SchedulePolicy, ServingConfig,
    ServingRuntime, SlsPath,
};
use recssd_sim::rng::Xoshiro256;
use recssd_sim::SimTime;

const ROWS: u64 = 600;

#[derive(Debug, PartialEq)]
struct RunDigest {
    /// Completion stream in delivery order: id, timings (ns), raw
    /// output bits, degradation accounting.
    completions: Vec<(u64, u64, u64, u64, Vec<u32>, u64)>,
    /// Every registry metric, stringified.
    metrics: Vec<String>,
    /// End-of-run telemetry as raw bits.
    occupancy: Vec<u64>,
    channel_util: Vec<u64>,
    tier_occupancy: u64,
    /// The full Chrome-trace export.
    trace_json: String,
}

/// How hard the deterministic fault plan leans on the run.
#[derive(Clone, Copy, Debug)]
enum Faults {
    None,
    ZeroRate,
    OnePercentTransient,
}

/// A mixed-path, 4-shard, depth-2 workload with tracing on, run to
/// idle under `exec`.
fn run_under(exec: ExecMode, faults: Faults) -> RunDigest {
    let cfg = ServingConfig::small_wide(4, SchedulePolicy::micro_batch(8))
        .with_depth(2)
        .with_exec(exec);
    let mut rt = ServingRuntime::new(&cfg);
    rt.enable_tracing();
    let t = rt.add_table(EmbeddingTable::procedural(
        TableSpec::new(ROWS, 12, Quantization::F32),
        9,
    ));
    match faults {
        Faults::None => {}
        Faults::ZeroRate => {
            // An armed all-zero-rate plan must be as invisible as no
            // plan at all — in every execution mode.
            rt.inject_faults(&FaultConfig::quiet(0x5EED));
            rt.set_fault_policy(FaultPolicy::default());
        }
        Faults::OnePercentTransient => {
            let mut fc = FaultConfig::quiet(0x5EED);
            fc.transient_read_error_rate = 0.01;
            rt.inject_faults(&fc);
            rt.set_fault_policy(FaultPolicy::default());
        }
    }
    let mut rng = Xoshiro256::seed_from(0xD15C);
    let paths = [
        SlsPath::Dram,
        SlsPath::Baseline(SlsOptions::default()),
        SlsPath::Ndp(SlsOptions::default()),
    ];
    for i in 0..36u64 {
        let batch = LookupBatch::new(
            (0..3)
                .map(|_| (0..6).map(|_| rng.gen_range(0..ROWS)).collect())
                .collect(),
        );
        rt.submit_at(
            SimTime::from_us(i * 3),
            i,
            t,
            batch,
            paths[i as usize % paths.len()],
        );
    }
    let completions = rt
        .run_until_idle()
        .iter()
        .map(|d| {
            (
                d.id.0,
                d.finish.as_ns(),
                d.queue.as_ns(),
                d.service.as_ns(),
                d.outputs.as_slice().iter().map(|v| v.to_bits()).collect(),
                d.missing_lookups,
            )
        })
        .collect();
    let key = |v: &(String, MetricValue)| format!("{v:?}");
    RunDigest {
        completions,
        metrics: rt.metrics_snapshot().iter().map(key).collect(),
        occupancy: rt.shard_occupancy().iter().map(|v| v.to_bits()).collect(),
        channel_util: rt
            .channel_utilisation()
            .iter()
            .map(|v| v.to_bits())
            .collect(),
        tier_occupancy: rt.tier_occupancy().to_bits(),
        trace_json: chrome_trace_json(&rt.take_trace()),
    }
}

fn assert_mode_invariant(faults: Faults) {
    let seq = run_under(ExecMode::Sequential, faults);
    assert!(
        !seq.trace_json.is_empty() && !seq.completions.is_empty(),
        "reference run produced nothing to compare"
    );
    for workers in [2usize, 8] {
        let par = run_under(ExecMode::Parallel(workers), faults);
        assert_eq!(
            par, seq,
            "{faults:?}: Parallel({workers}) diverged from Sequential"
        );
    }
}

/// Fault-free: completion stream, metrics, telemetry and trace JSON are
/// bit-identical across Sequential / Parallel(2) / Parallel(8).
#[test]
fn parallel_runs_bit_match_sequential_without_faults() {
    assert_mode_invariant(Faults::None);
}

/// An armed zero-rate fault plan stays invisible in every mode.
#[test]
fn parallel_runs_bit_match_sequential_with_zero_rate_faults() {
    assert_mode_invariant(Faults::ZeroRate);
}

/// 1 % transient read errors exercise the retry/backoff machinery; the
/// whole recovery path must replay identically across modes.
#[test]
fn parallel_runs_bit_match_sequential_with_transient_faults() {
    assert_mode_invariant(Faults::OnePercentTransient);
}

/// Same seed, same mode → bit-identical digest; the parallel stepper is
/// as replayable as the sequential one despite worker scheduling being
/// OS-nondeterministic.
#[test]
fn parallel_same_seed_replays_bit_identically() {
    let a = run_under(ExecMode::Parallel(8), Faults::OnePercentTransient);
    let b = run_under(ExecMode::Parallel(8), Faults::OnePercentTransient);
    assert_eq!(a, b, "same-seed Parallel(8) runs diverged");
}
