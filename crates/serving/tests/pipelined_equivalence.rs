//! The pipelining tentpole's correctness contract: running a shard with
//! operator queue depth > 1 changes *when* operators execute and how
//! their completions interleave, but never *what* they compute. Merged
//! outputs must stay bit-identical to depth-1 FIFO execution (and to the
//! unsharded `sls_reference`) on all three backends, and every request
//! must report exactly the lookups it submitted.
//!
//! Procedural tables hold values on the 1/64 grid, so f32 accumulation
//! is exact and any association of partial sums reproduces the reference
//! bit for bit — which is what makes completion interleaving invisible.

use proptest::prelude::*;
use recssd::{LookupBatch, SlsOptions};
use recssd_embedding::{sls_reference, EmbeddingTable, Quantization, TableSpec};
use recssd_serving::{
    ExecMode, LoadGen, LoadMode, SchedulePolicy, ServingConfig, ServingRuntime, SlsPath,
    TrafficSpec,
};
use recssd_sim::rng::Xoshiro256;
use recssd_sim::{SimDuration, SimTime};

fn batch_of(rng: &mut Xoshiro256, rows: u64, outputs: usize, lookups: usize) -> LookupBatch {
    LookupBatch::new(
        (0..outputs)
            .map(|_| (0..lookups).map(|_| rng.gen_range(0..rows)).collect())
            .collect(),
    )
}

fn paths() -> [SlsPath; 3] {
    [
        SlsPath::Dram,
        SlsPath::Baseline(SlsOptions::default()),
        SlsPath::Ndp(SlsOptions::default()),
    ]
}

/// Runs `batches` (with per-request arrival offsets) through a runtime at
/// the given depth and returns each request's merged output plus its
/// reported lookup count, in request order.
fn run_at_depth(
    shards: usize,
    depth: usize,
    policy: SchedulePolicy,
    table: &EmbeddingTable,
    batches: &[(LookupBatch, u64)],
    path: SlsPath,
) -> Vec<(Vec<Vec<f32>>, usize)> {
    let cfg = ServingConfig::small_wide(shards, policy).with_depth(depth);
    let mut rt = ServingRuntime::new(&cfg);
    let t = rt.add_table(table.clone());
    for (i, (b, offset_us)) in batches.iter().enumerate() {
        rt.submit_at(SimTime::from_us(*offset_us), i as u64, t, b.clone(), path);
    }
    let mut done = rt.run_until_idle();
    done.sort_by_key(|d| d.id);
    done.iter()
        .map(|d| (d.outputs.to_nested(), d.batch.total_lookups()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Depth>1 == depth-1 FIFO == reference, bit for bit, every backend,
    /// under randomized arrival staggering (which randomizes how
    /// operator completions interleave on the pipelined device).
    #[test]
    fn any_queue_depth_bit_matches_depth_one_fifo(
        rows in 16u64..300,
        dim in 1usize..20,
        shards in 1usize..4,
        depth in 2usize..9,
        outputs in 1usize..4,
        lookups in 1usize..8,
        n_batches in 2usize..7,
        seed in 0u64..10_000,
    ) {
        let shards = shards.min(rows as usize);
        let table = EmbeddingTable::procedural(
            TableSpec::new(rows, dim, Quantization::F32),
            seed,
        );
        let mut rng = Xoshiro256::seed_from(seed ^ 0x51C0);
        // Randomized arrival times create runs where the pipeline is
        // full, half-full and empty, shuffling completion interleavings.
        let batches: Vec<(LookupBatch, u64)> = (0..n_batches)
            .map(|_| {
                let b = batch_of(&mut rng, rows, outputs, lookups);
                (b, rng.gen_range(0..200))
            })
            .collect();
        let reference: Vec<Vec<Vec<f32>>> =
            batches.iter().map(|(b, _)| sls_reference(&table, b)).collect();

        for path in paths() {
            let baseline = run_at_depth(
                shards, 1, SchedulePolicy::Fifo, &table, &batches, path,
            );
            for policy in [
                SchedulePolicy::Fifo,
                SchedulePolicy::micro_batch(8),
            ] {
                let piped = run_at_depth(shards, depth, policy, &table, &batches, path);
                for (i, ((out, lookups_done), reference)) in
                    piped.iter().zip(&reference).enumerate()
                {
                    prop_assert_eq!(
                        out, reference,
                        "{} path, {} policy, depth {}, request {}: diverged from sls_reference",
                        path.name(), policy.name(), depth, i
                    );
                    prop_assert_eq!(
                        *lookups_done, batches[i].0.total_lookups(),
                        "request {} lost lookups", i
                    );
                }
                prop_assert_eq!(
                    &piped, &baseline,
                    "{} path, {} policy: depth-{} run != depth-1 FIFO",
                    path.name(), policy.name(), depth
                );
            }
        }
    }
}

/// Pipelining must actually pipeline: at one shard, depth 4 keeps more
/// than one operator in flight on average under a saturating closed loop
/// and beats depth-1 FIFO throughput on the NDP path.
#[test]
fn depth_four_pipelines_and_outruns_depth_one_on_ndp() {
    let run = |depth: usize| {
        let cfg = ServingConfig::small_wide(1, SchedulePolicy::Fifo).with_depth(depth);
        let mut rt = ServingRuntime::new(&cfg);
        let table = rt.add_table(EmbeddingTable::procedural(
            TableSpec::new(2048, 16, Quantization::F32),
            3,
        ));
        let mut gen = LoadGen::new(
            &rt,
            vec![table],
            TrafficSpec {
                outputs: 4,
                lookups_per_output: 8,
                zipf_exponent: 1.2,
            },
            LoadMode::Closed {
                clients: 12,
                think: SimDuration::ZERO,
            },
            5,
        )
        .with_verify_every(4);
        let report = gen.run(&mut rt, SlsPath::Ndp(SlsOptions::default()), 48);
        assert!(report.verified > 0, "bit-match went unchecked");
        report
    };
    let d1 = run(1);
    let d4 = run(4);
    assert!(
        d1.mean_occupancy() <= 1.0 + 1e-9,
        "depth 1 cannot exceed one op in flight (got {})",
        d1.mean_occupancy()
    );
    assert!(
        d4.mean_occupancy() > 1.2,
        "depth 4 never pipelined: mean occupancy {}",
        d4.mean_occupancy()
    );
    assert!(
        d4.mean_channel_util() > d1.mean_channel_util(),
        "pipelining should raise channel utilisation ({} vs {})",
        d4.mean_channel_util(),
        d1.mean_channel_util()
    );
    assert!(
        d4.lookups_per_sim_sec >= 1.5 * d1.lookups_per_sim_sec,
        "depth 4 gained only {:.2}x over depth 1 ({:.0} vs {:.0} lookups/sim-sec)",
        d4.lookups_per_sim_sec / d1.lookups_per_sim_sec,
        d4.lookups_per_sim_sec,
        d1.lookups_per_sim_sec
    );
}

/// One run's full observable surface under an explicit [`ExecMode`]:
/// the delivered completion stream *in delivery order* with every
/// timing field, plus the end-of-run telemetry the BENCH blocks
/// publish (occupancy and channel utilisation, compared as raw bits).
#[allow(clippy::type_complexity)]
fn run_digest(
    shards: usize,
    depth: usize,
    policy: SchedulePolicy,
    exec: ExecMode,
    table: &EmbeddingTable,
    batches: &[(LookupBatch, u64)],
    path: SlsPath,
) -> (
    Vec<(u64, u64, u64, u64, u64, Vec<Vec<f32>>, u64)>,
    Vec<u64>,
    Vec<u64>,
) {
    let cfg = ServingConfig::small_wide(shards, policy)
        .with_depth(depth)
        .with_exec(exec);
    let mut rt = ServingRuntime::new(&cfg);
    let t = rt.add_table(table.clone());
    for (i, (b, offset_us)) in batches.iter().enumerate() {
        rt.submit_at(SimTime::from_us(*offset_us), i as u64, t, b.clone(), path);
    }
    let stream = rt
        .run_until_idle()
        .iter()
        .map(|d| {
            (
                d.id.0,
                d.arrival.as_ns(),
                d.finish.as_ns(),
                d.queue.as_ns(),
                d.service.as_ns(),
                d.outputs.to_nested(),
                d.missing_lookups,
            )
        })
        .collect();
    let occ = rt.shard_occupancy().iter().map(|v| v.to_bits()).collect();
    let chan = rt
        .channel_utilisation()
        .iter()
        .map(|v| v.to_bits())
        .collect();
    (stream, occ, chan)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The parallel-stepper tentpole contract: a conservative windowed
    /// run on `workers` threads delivers the *same completion stream*
    /// (same order, same nanosecond timings, same bits) and the same
    /// end-of-run telemetry as the sequential stepper — every backend,
    /// both scheduling policies, randomized thread counts. (Under a
    /// `RECSSD_FORCE_EXEC` override both runs share the forced mode;
    /// the default test run exercises the real boundary.)
    #[test]
    fn parallel_stepper_bit_matches_sequential(
        rows in 16u64..300,
        dim in 1usize..20,
        shards in 1usize..6,
        depth in 1usize..5,
        workers in 1usize..9,
        outputs in 1usize..4,
        lookups in 1usize..8,
        n_batches in 2usize..8,
        seed in 0u64..10_000,
    ) {
        let shards = shards.min(rows as usize);
        let table = EmbeddingTable::procedural(
            TableSpec::new(rows, dim, Quantization::F32),
            seed,
        );
        let mut rng = Xoshiro256::seed_from(seed ^ 0xBA11AD);
        let batches: Vec<(LookupBatch, u64)> = (0..n_batches)
            .map(|_| {
                let b = batch_of(&mut rng, rows, outputs, lookups);
                (b, rng.gen_range(0..200))
            })
            .collect();

        for path in paths() {
            for policy in [SchedulePolicy::Fifo, SchedulePolicy::micro_batch(8)] {
                let seq = run_digest(
                    shards, depth, policy, ExecMode::Sequential, &table, &batches, path,
                );
                let par = run_digest(
                    shards, depth, policy, ExecMode::Parallel(workers), &table, &batches, path,
                );
                prop_assert_eq!(
                    &par, &seq,
                    "{} path, {} policy, {} workers: parallel run diverged from sequential",
                    path.name(), policy.name(), workers
                );
            }
        }
    }
}
