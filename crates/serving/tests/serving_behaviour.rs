//! Behavioural contracts of the serving runtime: queueing discipline,
//! micro-batch coalescing, telemetry accounting, shard scaling and the
//! load generator's two pacing modes.

use recssd::SlsOptions;
use recssd_embedding::{EmbeddingTable, Quantization, TableSpec};
use recssd_serving::{
    LoadGen, LoadMode, SchedulePolicy, ServingConfig, ServingRuntime, SlsPath, TrafficSpec,
};
use recssd_sim::{SimDuration, SimTime};
use recssd_trace::ArrivalProcess;

fn runtime(
    shards: usize,
    policy: SchedulePolicy,
) -> (ServingRuntime, recssd_serving::ServedTableId) {
    let cfg = ServingConfig::small_wide(shards, policy);
    let mut rt = ServingRuntime::new(&cfg);
    let table = rt.add_table(EmbeddingTable::procedural(
        TableSpec::new(2048, 16, Quantization::F32),
        3,
    ));
    (rt, table)
}

fn spec() -> TrafficSpec {
    TrafficSpec {
        outputs: 4,
        lookups_per_output: 8,
        zipf_exponent: 1.2,
    }
}

#[test]
fn closed_loop_serves_every_request_and_records_latency() {
    let (mut rt, table) = runtime(2, SchedulePolicy::Fifo);
    let mut gen = LoadGen::new(
        &rt,
        vec![table],
        spec(),
        LoadMode::Closed {
            clients: 4,
            think: SimDuration::ZERO,
        },
        11,
    )
    .with_verify_every(1);
    let report = gen.run(&mut rt, SlsPath::Ndp(SlsOptions::default()), 24);
    assert_eq!(report.requests, 24);
    assert_eq!(report.verified, 24);
    assert_eq!(report.lookups, 24 * spec().lookups_per_request() as u64);
    assert!(report.makespan > SimDuration::ZERO);
    assert!(report.lookups_per_sim_sec > 0.0);
    // Quantiles are ordered and the mean lies within [p50-ish, max].
    assert!(report.e2e.p50 <= report.e2e.p95);
    assert!(report.e2e.p95 <= report.e2e.p99);
    assert!(report.e2e.p99 <= report.e2e.p999);
    assert!(report.e2e.p999 <= report.e2e.max);
    // With 4 clients against 2 shards, someone queued.
    assert!(
        report.queue.max > 0,
        "no queueing under 2x oversubscription"
    );
}

#[test]
fn open_loop_overload_shows_tail_growth() {
    // A slow path (baseline SSD) hammered at a rate far above capacity:
    // later requests must queue, so p99 >> p50.
    let (mut rt, table) = runtime(1, SchedulePolicy::Fifo);
    let mut gen = LoadGen::new(
        &rt,
        vec![table],
        spec(),
        LoadMode::Open(ArrivalProcess::poisson(5_000.0, 7)),
        13,
    );
    let report = gen.run(&mut rt, SlsPath::Baseline(SlsOptions::default()), 32);
    assert_eq!(report.requests, 32);
    assert!(
        report.e2e.p99 > report.e2e.p50 * 2,
        "overload should stretch the tail: p50 {} p99 {}",
        report.e2e.p50,
        report.e2e.p99
    );
}

#[test]
fn micro_batching_coalesces_and_amortises() {
    // Eight requests arrive together; FIFO serves them as eight operators,
    // micro-batching folds mergeable sub-batches into fewer operators and
    // finishes sooner on the command-cost-dominated NDP path.
    let run = |policy| {
        let (mut rt, table) = runtime(2, policy);
        let mut gen = LoadGen::new(
            &rt,
            vec![table],
            spec(),
            LoadMode::Closed {
                clients: 8,
                think: SimDuration::ZERO,
            },
            21,
        )
        .with_verify_every(1);
        let report = gen.run(&mut rt, SlsPath::Ndp(SlsOptions::default()), 32);
        assert_eq!(report.verified, 32, "merged outputs must stay bit-exact");
        report
    };
    let fifo = run(SchedulePolicy::Fifo);
    let micro = run(SchedulePolicy::micro_batch(16));
    assert!(
        (fifo.batching_factor - 1.0).abs() < 1e-9,
        "FIFO never merges"
    );
    assert!(
        micro.batching_factor > 1.2,
        "micro-batching never coalesced (factor {})",
        micro.batching_factor
    );
    assert!(
        micro.lookups_per_sim_sec > fifo.lookups_per_sim_sec,
        "batching should raise throughput: fifo {} vs micro {}",
        fifo.lookups_per_sim_sec,
        micro.lookups_per_sim_sec
    );
}

#[test]
fn ndp_throughput_scales_with_shard_count() {
    // The acceptance bar of the serving subsystem: under a fixed closed
    // -loop population, aggregate NDP throughput at 4 shards is at least
    // 2x the 1-shard figure.
    let run = |shards| {
        let (mut rt, table) = runtime(shards, SchedulePolicy::Fifo);
        let mut gen = LoadGen::new(
            &rt,
            vec![table],
            spec(),
            LoadMode::Closed {
                clients: 12,
                think: SimDuration::ZERO,
            },
            5,
        );
        gen.run(&mut rt, SlsPath::Ndp(SlsOptions::default()), 48)
            .lookups_per_sim_sec
    };
    let one = run(1);
    let four = run(4);
    assert!(
        four >= one * 2.0,
        "1→4 shards scaled only {:.2}x ({one:.0} → {four:.0} lookups/s)",
        four / one
    );
}

#[test]
fn idle_micro_batching_shard_dispatches_immediately() {
    // A request hitting a shard with free operator capacity must begin
    // service at once — holding a fast path idle hoping for co-batching
    // material was the 4-shard DRAM anomaly (p95 209 µs vs 41 µs FIFO).
    let (mut rt, table) = runtime(1, SchedulePolicy::micro_batch(64));
    let batch = recssd::LookupBatch::new(vec![vec![1, 2, 3]]);
    rt.submit_at(SimTime::ZERO, 0, table, batch, SlsPath::Dram);
    let done = rt.run_until_idle();
    assert_eq!(done.len(), 1);
    assert_eq!(
        done[0].queue,
        SimDuration::ZERO,
        "idle shard deferred an immediately serveable batch by {}",
        done[0].queue
    );
}

#[test]
fn mixed_tables_and_paths_interleave_without_cross_merging() {
    // Two tables' requests never merge into one operator, but both are
    // served and verified.
    let cfg = ServingConfig::small_wide(2, SchedulePolicy::micro_batch(32));
    let mut rt = ServingRuntime::new(&cfg);
    let a = rt.add_table(EmbeddingTable::procedural(
        TableSpec::new(512, 8, Quantization::F32),
        1,
    ));
    let b = rt.add_table(EmbeddingTable::procedural(
        TableSpec::new(1024, 8, Quantization::F32),
        2,
    ));
    let mut gen = LoadGen::new(
        &rt,
        vec![a, b],
        spec(),
        LoadMode::Closed {
            clients: 6,
            think: SimDuration::ZERO,
        },
        31,
    )
    .with_verify_every(1);
    let report = gen.run(&mut rt, SlsPath::Ndp(SlsOptions::default()), 30);
    assert_eq!(report.requests, 30);
    assert_eq!(report.verified, 30);
}

#[test]
fn closed_loop_issues_exactly_the_requested_count() {
    // A client population larger than the request budget must not inflate
    // the run: exactly `total_requests` are issued and reported.
    let (mut rt, table) = runtime(2, SchedulePolicy::Fifo);
    let mut gen = LoadGen::new(
        &rt,
        vec![table],
        spec(),
        LoadMode::Closed {
            clients: 32,
            think: SimDuration::ZERO,
        },
        3,
    );
    let report = gen.run(&mut rt, SlsPath::Dram, 10);
    assert_eq!(report.requests, 10);
}

#[test]
fn saturated_shard_coalesces_queued_mergeable_arrivals() {
    // Batches form from genuine queueing, not idle waiting: the first
    // arrival dispatches immediately; three more arriving while the
    // depth-1 shard is occupied coalesce into one merged operator when
    // the slot frees.
    let (mut rt, table) = runtime(1, SchedulePolicy::micro_batch(16));
    let batch = || recssd::LookupBatch::new(vec![vec![1, 2], vec![3]]);
    let path = SlsPath::Ndp(SlsOptions::default());
    rt.submit_at(SimTime::ZERO, 0, table, batch(), path);
    for c in 1..4u64 {
        rt.submit_at(SimTime::from_us(c), c, table, batch(), path);
    }
    let done = rt.run_until_idle();
    assert_eq!(done.len(), 4);
    assert_eq!(
        rt.stats().ops_dispatched.get(),
        2,
        "expected one immediate dispatch plus one merged operator"
    );
    assert_eq!(rt.stats().subs_dispatched.get(), 4);
    let first = done.iter().find(|d| d.client == 0).expect("served");
    assert_eq!(
        first.queue,
        SimDuration::ZERO,
        "head dispatch must not wait"
    );
}
