//! The placement subsystem's correctness contract: hybrid DRAM-tier +
//! packed-flash serving produces **bit-identical** outputs to the
//! unplaced `sls_reference` path — for any profile, any hot budget, any
//! sharding, any layout, on all three execution backends and both
//! scheduling policies, regardless of how tier and shard partials
//! interleave.
//!
//! Procedural tables hold values on the 1/64 grid, so f32 accumulation
//! is exact and any association of DRAM-tier + per-shard partial sums
//! reproduces the reference bit for bit.

use proptest::prelude::*;
use recssd::{LookupBatch, SlsOptions};
use recssd_embedding::{sls_reference, EmbeddingTable, PageLayout, Quantization, TableSpec};
use recssd_placement::{FreqProfiler, PlacementPlan, PlacementPolicy};
use recssd_serving::{SchedulePolicy, ServingConfig, ServingRuntime, SlsPath};
use recssd_sim::rng::Xoshiro256;
use recssd_sim::SimTime;

fn batch_of(rng: &mut Xoshiro256, rows: u64, outputs: usize, lookups: usize) -> LookupBatch {
    LookupBatch::new(
        (0..outputs)
            .map(|_| (0..lookups).map(|_| rng.gen_range(0..rows)).collect())
            .collect(),
    )
}

fn paths() -> [SlsPath; 3] {
    [
        SlsPath::Dram,
        SlsPath::Baseline(SlsOptions::default()),
        SlsPath::Ndp(SlsOptions::default()),
    ]
}

/// A skewed profile: a small scattered hot set plus a uniform tail, the
/// §3.1 shape placement exists to exploit.
fn skewed_profile(rows: u64, seed: u64) -> FreqProfiler {
    let mut prof = FreqProfiler::new();
    let t = prof.add_table(rows);
    let mut rng = Xoshiro256::seed_from(seed);
    let hot_set = (rows / 8).max(1);
    for _ in 0..2_000 {
        let row = if rng.gen_bool(0.75) {
            rng.gen_range(0..hot_set) * 7919 % rows
        } else {
            rng.gen_range(0..rows)
        };
        prof.observe(t, row);
    }
    prof
}

fn run_placed(
    shards: usize,
    policy: SchedulePolicy,
    layout: PageLayout,
    table: &EmbeddingTable,
    plan: Option<&PlacementPlan>,
    batches: &[LookupBatch],
    path: SlsPath,
) -> Vec<Vec<Vec<f32>>> {
    let mut cfg = ServingConfig::small_wide(shards, policy);
    cfg.layout = layout;
    let mut rt = ServingRuntime::new(&cfg);
    let t = match plan {
        Some(plan) => rt.add_table_placed(table.clone(), plan.table(0)),
        None => rt.add_table(table.clone()),
    };
    for (i, b) in batches.iter().enumerate() {
        // Stagger arrivals so queues form and merging has material.
        rt.submit_at(SimTime::from_us(i as u64), i as u64, t, b.clone(), path);
    }
    let mut done = rt.run_until_idle();
    done.sort_by_key(|d| d.id);
    for d in &done {
        rt.verify_bitmatch(d);
    }
    done.iter().map(|d| d.outputs.to_nested()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Hybrid placement == unplaced sharding == reference, bit for bit,
    /// every backend, every policy, every layout.
    #[test]
    fn any_placement_bit_matches_the_unplaced_path(
        rows in 16u64..300,
        dim in 1usize..20,
        shards in 2usize..5,
        hot_tenths in 0u32..11,
        outputs in 1usize..4,
        lookups in 1usize..8,
        n_batches in 1usize..4,
        seed in 0u64..10_000,
        dense in proptest::bool::ANY,
    ) {
        let shards = shards.min(rows as usize);
        let layout = if dense { PageLayout::Dense } else { PageLayout::Spread };
        let table = EmbeddingTable::procedural(
            TableSpec::new(rows, dim, Quantization::F32),
            seed,
        );
        let prof = skewed_profile(rows, seed ^ 0x5EED);
        let policy = PlacementPolicy::hot_fraction(hot_tenths as f64 / 10.0);
        let plan = PlacementPlan::build(&prof, &policy);

        let mut rng = Xoshiro256::seed_from(seed ^ 0xABCD);
        let batches: Vec<LookupBatch> = (0..n_batches)
            .map(|_| batch_of(&mut rng, rows, outputs, lookups))
            .collect();
        let reference: Vec<Vec<Vec<f32>>> =
            batches.iter().map(|b| sls_reference(&table, b)).collect();

        for path in paths() {
            for sched in [SchedulePolicy::Fifo, SchedulePolicy::micro_batch(8)] {
                let placed = run_placed(
                    shards, sched, layout, &table, Some(&plan), &batches, path,
                );
                prop_assert_eq!(
                    &placed, &reference,
                    "{} path, {} policy, {} shards, hot {}/10: placed output \
                     diverged from sls_reference",
                    path.name(), sched.name(), shards, hot_tenths
                );
                let unplaced = run_placed(
                    shards, sched, layout, &table, None, &batches, path,
                );
                prop_assert_eq!(
                    &placed, &unplaced,
                    "{} path: placed output != unplaced output",
                    path.name()
                );
            }
        }
    }
}

/// With every accessed row pinned hot, the DRAM tier absorbs all the
/// traffic it was profiled on and the device shards see none of it.
#[test]
fn full_hot_coverage_routes_everything_to_the_tier() {
    let rows = 256u64;
    let table = EmbeddingTable::procedural(TableSpec::new(rows, 8, Quantization::F32), 2);
    let mut prof = FreqProfiler::new();
    let t = prof.add_table(rows);
    prof.profile_stream(t, 0..rows); // every row accessed once
    let plan = PlacementPlan::build(&prof, &PlacementPolicy::hot_fraction(1.0));

    let cfg = ServingConfig::small_wide(2, SchedulePolicy::Fifo);
    let mut rt = ServingRuntime::new(&cfg);
    let id = rt.add_table_placed(table, plan.table(0));
    assert!(rt.has_tier());
    let mut rng = Xoshiro256::seed_from(9);
    for i in 0..8u64 {
        let batch = batch_of(&mut rng, rows, 2, 6);
        rt.submit_at(
            SimTime::from_us(i),
            i,
            id,
            batch,
            SlsPath::Ndp(SlsOptions::default()),
        );
    }
    let done = rt.run_until_idle();
    assert_eq!(done.len(), 8);
    for d in &done {
        rt.verify_bitmatch(d);
    }
    let stats = rt.stats();
    assert_eq!(stats.tier.misses(), 0, "no lookup may reach a device shard");
    assert_eq!(stats.tier.hits(), 8 * 2 * 6);
    assert_eq!(stats.tier_hit_rate(), 1.0);
    assert!(stats.tier_service.quantiles().count > 0);
    assert_eq!(stats.device_service.quantiles().count, 0);
}

/// A zero hot budget still packs the flash image (and still bit-matches);
/// the runtime never spins up a tier for it.
#[test]
fn zero_budget_packs_without_a_tier() {
    let rows = 128u64;
    let table = EmbeddingTable::procedural(TableSpec::new(rows, 4, Quantization::F32), 3);
    let prof = skewed_profile(rows, 77);
    let plan = PlacementPlan::build(&prof, &PlacementPolicy::hot_fraction(0.0));

    let mut cfg = ServingConfig::small_wide(2, SchedulePolicy::Fifo);
    cfg.layout = PageLayout::Dense;
    let mut rt = ServingRuntime::new(&cfg);
    let id = rt.add_table_placed(table.clone(), plan.table(0));
    assert!(!rt.has_tier());
    let mut rng = Xoshiro256::seed_from(1);
    let batch = batch_of(&mut rng, rows, 3, 10);
    let reference = sls_reference(&table, &batch);
    rt.submit_at(
        SimTime::ZERO,
        0,
        id,
        batch,
        SlsPath::Ndp(SlsOptions::default()),
    );
    let done = rt.run_until_idle();
    assert_eq!(done[0].outputs.to_nested(), reference);
    assert_eq!(rt.stats().tier.hits(), 0);
    assert_eq!(rt.stats().tier_hit_rate(), 0.0);
}
