//! The placement subsystem's correctness contract: hybrid DRAM-tier +
//! packed-flash serving produces **bit-identical** outputs to the
//! unplaced `sls_reference` path — for any profile, any hot budget, any
//! sharding, any layout, on all three execution backends and both
//! scheduling policies, regardless of how tier and shard partials
//! interleave.
//!
//! Procedural tables hold values on the 1/64 grid, so f32 accumulation
//! is exact and any association of DRAM-tier + per-shard partial sums
//! reproduces the reference bit for bit.

use proptest::prelude::*;
use recssd::{LookupBatch, SlsOptions};
use recssd_embedding::{sls_reference, EmbeddingTable, PageLayout, Quantization, TableSpec};
use recssd_placement::{FreqProfiler, PlacementPlan, PlacementPolicy};
use recssd_serving::{
    AdaptivePolicy, LoadGen, LoadMode, SchedulePolicy, ServingConfig, ServingRuntime, SlsPath,
    TrafficSpec,
};
use recssd_sim::rng::Xoshiro256;
use recssd_sim::{SimDuration, SimTime};
use recssd_trace::{DriftingZipf, RowStream};

fn batch_of(rng: &mut Xoshiro256, rows: u64, outputs: usize, lookups: usize) -> LookupBatch {
    LookupBatch::new(
        (0..outputs)
            .map(|_| (0..lookups).map(|_| rng.gen_range(0..rows)).collect())
            .collect(),
    )
}

fn paths() -> [SlsPath; 3] {
    [
        SlsPath::Dram,
        SlsPath::Baseline(SlsOptions::default()),
        SlsPath::Ndp(SlsOptions::default()),
    ]
}

/// A skewed profile: a small scattered hot set plus a uniform tail, the
/// §3.1 shape placement exists to exploit.
fn skewed_profile(rows: u64, seed: u64) -> FreqProfiler {
    let mut prof = FreqProfiler::new();
    let t = prof.add_table(rows);
    let mut rng = Xoshiro256::seed_from(seed);
    let hot_set = (rows / 8).max(1);
    for _ in 0..2_000 {
        let row = if rng.gen_bool(0.75) {
            rng.gen_range(0..hot_set) * 7919 % rows
        } else {
            rng.gen_range(0..rows)
        };
        prof.observe(t, row);
    }
    prof
}

fn run_placed(
    shards: usize,
    policy: SchedulePolicy,
    layout: PageLayout,
    table: &EmbeddingTable,
    plan: Option<&PlacementPlan>,
    batches: &[LookupBatch],
    path: SlsPath,
) -> Vec<Vec<Vec<f32>>> {
    let mut cfg = ServingConfig::small_wide(shards, policy);
    cfg.layout = layout;
    let mut rt = ServingRuntime::new(&cfg);
    let t = match plan {
        Some(plan) => rt.add_table_placed(table.clone(), plan.table(0)),
        None => rt.add_table(table.clone()),
    };
    for (i, b) in batches.iter().enumerate() {
        // Stagger arrivals so queues form and merging has material.
        rt.submit_at(SimTime::from_us(i as u64), i as u64, t, b.clone(), path);
    }
    let mut done = rt.run_until_idle();
    done.sort_by_key(|d| d.id);
    for d in &done {
        rt.verify_bitmatch(d);
    }
    done.iter().map(|d| d.outputs.to_nested()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Hybrid placement == unplaced sharding == reference, bit for bit,
    /// every backend, every policy, every layout.
    #[test]
    fn any_placement_bit_matches_the_unplaced_path(
        rows in 16u64..300,
        dim in 1usize..20,
        shards in 2usize..5,
        hot_tenths in 0u32..11,
        outputs in 1usize..4,
        lookups in 1usize..8,
        n_batches in 1usize..4,
        seed in 0u64..10_000,
        dense in proptest::bool::ANY,
    ) {
        let shards = shards.min(rows as usize);
        let layout = if dense { PageLayout::Dense } else { PageLayout::Spread };
        let table = EmbeddingTable::procedural(
            TableSpec::new(rows, dim, Quantization::F32),
            seed,
        );
        let prof = skewed_profile(rows, seed ^ 0x5EED);
        let policy = PlacementPolicy::hot_fraction(hot_tenths as f64 / 10.0);
        let plan = PlacementPlan::build(&prof, &policy);

        let mut rng = Xoshiro256::seed_from(seed ^ 0xABCD);
        let batches: Vec<LookupBatch> = (0..n_batches)
            .map(|_| batch_of(&mut rng, rows, outputs, lookups))
            .collect();
        let reference: Vec<Vec<Vec<f32>>> =
            batches.iter().map(|b| sls_reference(&table, b)).collect();

        for path in paths() {
            for sched in [SchedulePolicy::Fifo, SchedulePolicy::micro_batch(8)] {
                let placed = run_placed(
                    shards, sched, layout, &table, Some(&plan), &batches, path,
                );
                prop_assert_eq!(
                    &placed, &reference,
                    "{} path, {} policy, {} shards, hot {}/10: placed output \
                     diverged from sls_reference",
                    path.name(), sched.name(), shards, hot_tenths
                );
                let unplaced = run_placed(
                    shards, sched, layout, &table, None, &batches, path,
                );
                prop_assert_eq!(
                    &placed, &unplaced,
                    "{} path: placed output != unplaced output",
                    path.name()
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The migration correctness contract: requests straddling a live
    /// `refresh_placement` — split under the old plan, completing after
    /// the new one activates, interleaved with the migration operators
    /// themselves — stay bit-identical to `sls_reference` on all three
    /// paths and both policies.
    #[test]
    fn requests_straddling_a_refresh_stay_bit_identical(
        rows in 24u64..200,
        dim in 1usize..16,
        shards in 2usize..4,
        hot_tenths_a in 0u32..11,
        hot_tenths_b in 0u32..11,
        outputs in 1usize..3,
        lookups in 1usize..6,
        n_before in 2usize..5,
        n_after in 1usize..4,
        seed in 0u64..10_000,
        dense in proptest::bool::ANY,
    ) {
        let shards = shards.min(rows as usize);
        let layout = if dense { PageLayout::Dense } else { PageLayout::Spread };
        let table = EmbeddingTable::procedural(
            TableSpec::new(rows, dim, Quantization::F32),
            seed,
        );
        // Two genuinely different generations: independent profiles and
        // independent budgets, so promote/demote sets are non-trivial.
        let plan_a = PlacementPlan::build(
            &skewed_profile(rows, seed ^ 0x5EED),
            &PlacementPolicy::hot_fraction(hot_tenths_a as f64 / 10.0),
        );
        let plan_b = PlacementPlan::build(
            &skewed_profile(rows, seed ^ 0xB0B0),
            &PlacementPolicy::hot_fraction(hot_tenths_b as f64 / 10.0),
        );

        let mut rng = Xoshiro256::seed_from(seed ^ 0xABCD);
        let before: Vec<LookupBatch> = (0..n_before)
            .map(|_| batch_of(&mut rng, rows, outputs, lookups))
            .collect();
        let after: Vec<LookupBatch> = (0..n_after)
            .map(|_| batch_of(&mut rng, rows, outputs, lookups))
            .collect();
        let reference: Vec<Vec<Vec<f32>>> = before
            .iter()
            .chain(after.iter())
            .map(|b| sls_reference(&table, b))
            .collect();

        for path in paths() {
            for sched in [SchedulePolicy::Fifo, SchedulePolicy::micro_batch(8)] {
                let mut cfg = ServingConfig::small_wide(shards, sched);
                cfg.layout = layout;
                let mut rt = ServingRuntime::new(&cfg);
                let t = rt.add_table_placed(table.clone(), plan_a.table(0));
                for (i, b) in before.iter().enumerate() {
                    rt.submit_at(SimTime::from_us(i as u64), i as u64, t, b.clone(), path);
                }
                // Drain part of the backlog so the refresh lands with
                // requests genuinely in flight under the old plan.
                let mut done = Vec::new();
                for _ in 0..n_before / 2 {
                    if let Some(c) = rt.step().expect("runtime invariant") {
                        done.push(c);
                    }
                }
                let refreshed = rt.refresh_placement(t, plan_b.table(0));
                prop_assert!(refreshed.is_some(), "first refresh cannot be deferred");
                let now = rt.now();
                for (i, b) in after.iter().enumerate() {
                    rt.submit_at(
                        now + SimDuration::from_us(i as u64 + 1),
                        1_000 + i as u64,
                        t,
                        b.clone(),
                        path,
                    );
                }
                done.extend(rt.run_until_idle());
                done.sort_by_key(|d| d.id);
                for d in &done {
                    rt.verify_bitmatch(d);
                }
                let outputs: Vec<Vec<Vec<f32>>> =
                    done.iter().map(|d| d.outputs.to_nested()).collect();
                prop_assert_eq!(
                    &outputs, &reference,
                    "{} path, {} policy: outputs diverged across the refresh boundary",
                    path.name(), sched.name()
                );
            }
        }
    }
}

/// Registry-slot reuse: the third generation re-binds the first one's
/// A/B slot (replacing the flash image and invalidating stale FTL-cached
/// pages), and results stay bit-identical throughout. Dense layout + the
/// NDP path keep the FTL page cache hot, so a stale-cache bug would
/// surface here.
#[test]
fn slot_reuse_across_three_generations_stays_bit_identical() {
    let rows = 192u64;
    let table = EmbeddingTable::procedural(TableSpec::new(rows, 8, Quantization::F32), 9);
    let plans: Vec<PlacementPlan> = [0x5EEDu64, 0xB0B0, 0xCAFE]
        .iter()
        .enumerate()
        .map(|(i, &s)| {
            PlacementPlan::build(
                &skewed_profile(rows, s),
                &PlacementPolicy::hot_fraction(0.1 * (i as f64 + 1.0)),
            )
        })
        .collect();

    let mut cfg = ServingConfig::small_wide(2, SchedulePolicy::Fifo);
    cfg.layout = PageLayout::Dense;
    let mut rt = ServingRuntime::new(&cfg);
    let t = rt.add_table_placed(table.clone(), plans[0].table(0));
    let mut rng = Xoshiro256::seed_from(3);
    let mut client = 0u64;
    let mut serve_round = |rt: &mut ServingRuntime| {
        let start = rt.now();
        for i in 0..6u64 {
            let batch = batch_of(&mut rng, rows, 2, 5);
            client += 1;
            rt.submit_at(
                start + SimDuration::from_us(i),
                client,
                t,
                batch,
                SlsPath::Ndp(SlsOptions::default()),
            );
        }
        for d in rt.run_until_idle() {
            rt.verify_bitmatch(&d);
        }
    };
    serve_round(&mut rt);
    assert!(rt.refresh_placement(t, plans[1].table(0)).is_some());
    serve_round(&mut rt);
    // Generation 3 reuses generation 1's registry slot (drained by now).
    assert!(rt.refresh_placement(t, plans[2].table(0)).is_some());
    serve_round(&mut rt);
    assert_eq!(rt.plan_generations(t), 3);
    assert_eq!(rt.stats().plan_refreshes.get(), 2);
}

/// A refresh converts an *unplaced* table: promoted rows migrate off the
/// identity-mapped image, then admissions route hybrid.
#[test]
fn refresh_adopts_an_unplaced_table() {
    let rows = 128u64;
    let table = EmbeddingTable::procedural(TableSpec::new(rows, 8, Quantization::F32), 4);
    let plan = PlacementPlan::build(
        &skewed_profile(rows, 0x77),
        &PlacementPolicy::hot_fraction(0.25),
    );
    let cfg = ServingConfig::small_wide(2, SchedulePolicy::Fifo);
    let mut rt = ServingRuntime::new(&cfg);
    let t = rt.add_table(table.clone());
    assert!(!rt.has_tier());
    assert!(rt.refresh_placement(t, plan.table(0)).is_some());
    assert!(rt.refresh_pending(t), "promotions must cost migration work");
    let mut rng = Xoshiro256::seed_from(5);
    for i in 0..8u64 {
        let batch = batch_of(&mut rng, rows, 2, 6);
        rt.submit_at(
            SimTime::from_us(i),
            i,
            t,
            batch,
            SlsPath::Ndp(SlsOptions::default()),
        );
    }
    for d in rt.run_until_idle() {
        rt.verify_bitmatch(&d);
    }
    assert!(rt.has_tier());
    assert!(!rt.refresh_pending(t));
    {
        let stats = rt.stats();
        assert_eq!(stats.plan_refreshes.get(), 1);
        assert_eq!(stats.rows_promoted.get(), plan.table(0).hot_count() as u64);
        assert_eq!(
            stats.migration_lookups.get(),
            plan.table(0).hot_count() as u64
        );
    }
    // A second round admitted after activation routes hybrid.
    let start = rt.now();
    for i in 0..8u64 {
        let batch = batch_of(&mut rng, rows, 2, 6);
        rt.submit_at(
            start + SimDuration::from_us(i),
            100 + i,
            t,
            batch,
            SlsPath::Ndp(SlsOptions::default()),
        );
    }
    for d in rt.run_until_idle() {
        rt.verify_bitmatch(&d);
    }
    assert!(
        rt.stats().tier.hits() > 0,
        "post-activation admissions hit the tier"
    );
}

/// The full online loop under drifting skew: the adaptive runtime
/// re-profiles, refreshes plans (with real migration cost) and keeps the
/// DRAM tier's hit rate up while a stale static plan would have decayed —
/// every output still bit-identical to the reference.
#[test]
fn adaptive_runtime_refreshes_under_drift_and_stays_exact() {
    let rows = 1024u64;
    let cfg = ServingConfig::small_wide(2, SchedulePolicy::Fifo).with_depth(2);
    let mut rt = ServingRuntime::new(&cfg);
    let table = EmbeddingTable::procedural(TableSpec::new(rows, 16, Quantization::F32), 11);
    let t = rt.add_table(table);
    rt.enable_adaptive(AdaptivePolicy {
        epoch_requests: 16,
        decay: 0.5,
        budget_rows: 128,
        min_hit_gain: 0.02,
    });
    // Rotating hot set: 64 requests x 16 lookups per phase.
    let drift = DriftingZipf::new(rows, 1.3, 21, 64 * 16);
    let mut gen = LoadGen::new(
        &rt,
        vec![t],
        TrafficSpec {
            outputs: 4,
            lookups_per_output: 4,
            zipf_exponent: 1.3,
        },
        LoadMode::Closed {
            clients: 8,
            think: SimDuration::ZERO,
        },
        7,
    )
    .with_streams(vec![RowStream::Drifting(drift)])
    .with_verify_every(1);
    let report = gen.run(&mut rt, SlsPath::Ndp(SlsOptions::default()), 192);
    assert_eq!(report.verified, 192, "every output bit-matched");
    assert!(
        report.plan_refreshes >= 2,
        "adaptation must refresh across rotations (got {})",
        report.plan_refreshes
    );
    assert!(report.rows_promoted > 0);
    assert!(report.migration_lookups > 0);
    assert!(
        report.tier_hit_rate > 0.2,
        "adaptive tier must absorb traffic despite drift (hit rate {})",
        report.tier_hit_rate
    );
    assert!(rt.adaptive_epochs() >= 2);
}

/// With every accessed row pinned hot, the DRAM tier absorbs all the
/// traffic it was profiled on and the device shards see none of it.
#[test]
fn full_hot_coverage_routes_everything_to_the_tier() {
    let rows = 256u64;
    let table = EmbeddingTable::procedural(TableSpec::new(rows, 8, Quantization::F32), 2);
    let mut prof = FreqProfiler::new();
    let t = prof.add_table(rows);
    prof.profile_stream(t, 0..rows); // every row accessed once
    let plan = PlacementPlan::build(&prof, &PlacementPolicy::hot_fraction(1.0));

    let cfg = ServingConfig::small_wide(2, SchedulePolicy::Fifo);
    let mut rt = ServingRuntime::new(&cfg);
    let id = rt.add_table_placed(table, plan.table(0));
    assert!(rt.has_tier());
    let mut rng = Xoshiro256::seed_from(9);
    for i in 0..8u64 {
        let batch = batch_of(&mut rng, rows, 2, 6);
        rt.submit_at(
            SimTime::from_us(i),
            i,
            id,
            batch,
            SlsPath::Ndp(SlsOptions::default()),
        );
    }
    let done = rt.run_until_idle();
    assert_eq!(done.len(), 8);
    for d in &done {
        rt.verify_bitmatch(d);
    }
    let stats = rt.stats();
    assert_eq!(stats.tier.misses(), 0, "no lookup may reach a device shard");
    assert_eq!(stats.tier.hits(), 8 * 2 * 6);
    assert_eq!(stats.tier_hit_rate(), 1.0);
    assert!(stats.tier_service.quantiles().count > 0);
    assert_eq!(stats.device_service.quantiles().count, 0);
}

/// A zero hot budget still packs the flash image (and still bit-matches);
/// the runtime never spins up a tier for it.
#[test]
fn zero_budget_packs_without_a_tier() {
    let rows = 128u64;
    let table = EmbeddingTable::procedural(TableSpec::new(rows, 4, Quantization::F32), 3);
    let prof = skewed_profile(rows, 77);
    let plan = PlacementPlan::build(&prof, &PlacementPolicy::hot_fraction(0.0));

    let mut cfg = ServingConfig::small_wide(2, SchedulePolicy::Fifo);
    cfg.layout = PageLayout::Dense;
    let mut rt = ServingRuntime::new(&cfg);
    let id = rt.add_table_placed(table.clone(), plan.table(0));
    assert!(!rt.has_tier());
    let mut rng = Xoshiro256::seed_from(1);
    let batch = batch_of(&mut rng, rows, 3, 10);
    let reference = sls_reference(&table, &batch);
    rt.submit_at(
        SimTime::ZERO,
        0,
        id,
        batch,
        SlsPath::Ndp(SlsOptions::default()),
    );
    let done = rt.run_until_idle();
    assert_eq!(done[0].outputs.to_nested(), reference);
    assert_eq!(rt.stats().tier.hits(), 0);
    assert_eq!(rt.stats().tier_hit_rate(), 0.0);
}
