//! Multi-engine in-SSD compute correctness contract: enabling a
//! per-channel engine pool is a pure *timing* change. For **any** pool
//! size, merge placement, scheduling policy, and execution backend, the
//! NDP path's outputs stay bit-identical to `sls_reference` — the
//! transparent-splitter guarantee that lets the engines ship with no
//! host-visible API change.
//!
//! Procedural tables hold values on the 1/64 grid, so f32 accumulation
//! is exact and any partition of the page list across engines (plus the
//! fixed-order merge fold) reproduces the reference bit for bit.

use proptest::prelude::*;
use recssd::{EnginePoolConfig, LookupBatch, MergePlacement, SlsOptions};
use recssd_embedding::{sls_reference, EmbeddingTable, PageLayout, Quantization, TableSpec};
use recssd_serving::{ExecMode, SchedulePolicy, ServingConfig, ServingRuntime, SlsPath};
use recssd_sim::rng::Xoshiro256;
use recssd_sim::SimTime;

fn batch_of(rng: &mut Xoshiro256, rows: u64, outputs: usize, lookups: usize) -> LookupBatch {
    LookupBatch::new(
        (0..outputs)
            .map(|_| (0..lookups).map(|_| rng.gen_range(0..rows)).collect())
            .collect(),
    )
}

/// Runs `batches` through an NDP-path runtime with the given engine pool
/// (or the serial firmware core when `engines` is `None`).
fn run_ndp(
    shards: usize,
    policy: SchedulePolicy,
    exec: ExecMode,
    engines: Option<EnginePoolConfig>,
    table: &EmbeddingTable,
    batches: &[LookupBatch],
) -> Vec<Vec<Vec<f32>>> {
    let mut cfg = ServingConfig::small_wide(shards, policy);
    cfg.exec = exec;
    cfg.system.ssd.ftl.engines = engines;
    let mut rt = ServingRuntime::new(&cfg);
    let t = rt.add_table(table.clone());
    for (i, b) in batches.iter().enumerate() {
        rt.submit_at(
            SimTime::from_us(i as u64),
            i as u64,
            t,
            b.clone(),
            SlsPath::Ndp(SlsOptions::default()),
        );
    }
    let mut done = rt.run_until_idle();
    done.sort_by_key(|d| d.id);
    done.iter().map(|d| d.outputs.to_nested()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Any engine-pool configuration bit-matches `sls_reference` and the
    /// engine-less serial path, under both policies.
    #[test]
    fn engine_pools_bit_match_the_reference(
        rows in 16u64..400,
        dim in 1usize..24,
        shards in 1usize..4,
        outputs in 1usize..4,
        lookups in 1usize..8,
        n_batches in 1usize..4,
        seed in 0u64..10_000,
        engines in 1usize..9,
        merge_on_engine in proptest::bool::ANY,
    ) {
        let table = EmbeddingTable::procedural(
            TableSpec::new(rows, dim, Quantization::F32),
            seed,
        );
        let mut rng = Xoshiro256::seed_from(seed ^ 0x5A5A);
        let batches: Vec<LookupBatch> = (0..n_batches)
            .map(|_| batch_of(&mut rng, rows, outputs, lookups))
            .collect();
        let reference: Vec<Vec<Vec<f32>>> =
            batches.iter().map(|b| sls_reference(&table, b)).collect();
        let merge = if merge_on_engine {
            MergePlacement::Engine((engines as u32) - 1)
        } else {
            MergePlacement::FwCore
        };
        let pool = EnginePoolConfig {
            engines,
            rate_pct: 100,
            merge,
        };
        for policy in [SchedulePolicy::Fifo, SchedulePolicy::micro_batch(8)] {
            let pooled = run_ndp(
                shards, policy, ExecMode::Sequential, Some(pool), &table, &batches,
            );
            prop_assert_eq!(
                &pooled, &reference,
                "{} engines ({:?} merge) diverged from sls_reference", engines, merge
            );
            let serial = run_ndp(
                shards, policy, ExecMode::Sequential, None, &table, &batches,
            );
            prop_assert_eq!(
                &pooled, &serial,
                "{} engines: pooled output != serial fw-core output", engines
            );
        }
    }
}

/// Parallel shard stepping with engines enabled stays deterministic and
/// bit-identical to the sequential reference stepper: engine completion
/// tags are ordered the same way regardless of worker count.
#[test]
fn parallel_stepping_with_engines_matches_sequential() {
    let rows = 300u64;
    let table = EmbeddingTable::procedural(TableSpec::new(rows, 12, Quantization::F32), 7);
    let mut rng = Xoshiro256::seed_from(0xE17);
    let batches: Vec<LookupBatch> = (0..6).map(|_| batch_of(&mut rng, rows, 3, 6)).collect();
    let pool = EnginePoolConfig {
        engines: 8,
        rate_pct: 100,
        merge: MergePlacement::FwCore,
    };
    let sequential = run_ndp(
        4,
        SchedulePolicy::Fifo,
        ExecMode::Sequential,
        Some(pool),
        &table,
        &batches,
    );
    for workers in [1, 2, 4] {
        let parallel = run_ndp(
            4,
            SchedulePolicy::Fifo,
            ExecMode::Parallel(workers),
            Some(pool),
            &table,
            &batches,
        );
        assert_eq!(
            parallel, sequential,
            "Parallel({workers}) diverged from the sequential stepper with engines enabled"
        );
    }
}

/// With per-channel engines the translation work leaves the firmware
/// core: the engines accrue busy time and the request still completes
/// with exact results. (Timing-level sanity for the splitter.)
#[test]
fn engines_absorb_translation_work() {
    use recssd::{OpKind, RecSsdConfig, System};
    use recssd_embedding::TableImage;

    let rows = 600u64;
    let table = EmbeddingTable::procedural(TableSpec::new(rows, 16, Quantization::F32), 21);
    let mut rng = Xoshiro256::seed_from(3);
    let batch = batch_of(&mut rng, rows, 4, 16);

    let run = |engines: Option<EnginePoolConfig>| {
        let mut cfg = RecSsdConfig::small_wide();
        cfg.ssd.ftl.engines = engines;
        let mut sys = System::new(cfg);
        let t = sys.add_table(TableImage::new(
            table.clone(),
            PageLayout::Spread,
            sys.config().ssd.block_bytes(),
        ));
        let op = sys.submit(OpKind::ndp_sls(t, batch.clone(), SlsOptions::default()));
        sys.run_until_idle();
        let out = sys.result(op).outputs.as_ref().unwrap().to_nested();
        let fw_busy = sys.device().ftl().firmware_busy();
        let eng_busy = sys.device().ftl().engines_busy_total();
        (out, fw_busy, eng_busy)
    };

    let (serial_out, serial_fw, serial_eng) = run(None);
    let (pooled_out, pooled_fw, pooled_eng) = run(Some(EnginePoolConfig {
        engines: 8,
        rate_pct: 100,
        merge: MergePlacement::FwCore,
    }));
    assert_eq!(pooled_out, serial_out);
    assert_eq!(serial_out, sls_reference(&table, &batch));
    assert_eq!(serial_eng, recssd_sim::SimDuration::ZERO);
    assert!(
        pooled_fw < serial_fw,
        "engine pool should shed translation from the fw core: {pooled_fw} vs {serial_fw}"
    );
    assert!(
        pooled_eng > recssd_sim::SimDuration::ZERO,
        "engines should accrue translation busy time"
    );
}
