//! NVMe interface model for the RecSSD reproduction.
//!
//! Provides the pieces of the NVMe protocol the paper's design touches:
//!
//! * [`NvmeCommand`] — read/write commands addressing 16 KB logical
//!   blocks, plus the single spare command bit RecSSD claims: "our custom
//!   interface maintains complete compatibility with the existing NVMe
//!   protocol, utilizing a single unused command bit to indicate embedding
//!   commands" (§4.3). An NDP *write-like* command carries the SLS
//!   configuration; an NDP *read-like* command collects result pages. The
//!   request id is embedded in the starting LBA exactly as §4.3 describes.
//! * [`QueuePair`] — bounded submission/completion rings. The UNVMe-style
//!   host driver polls completions; multiple I/O queues let SLS worker
//!   threads drive the device concurrently (§4.2 "We match our SLS worker
//!   count to the number of independent available I/O queues").
//! * [`PcieLink`] — a shared, serialising DMA resource with Gen2 ×8-class
//!   bandwidth. Every payload moved between host and device occupies the
//!   link; this is the "round-trip data communication overhead" that NDP
//!   avoids by returning only reduced vectors.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod pcie;
mod queue;
mod types;

pub use pcie::{PcieConfig, PcieEvent, PcieLink, PcieStats, XferDirection, XferId};
pub use queue::{QueueError, QueuePair};
pub use types::{NvmeCommand, NvmeCompletion, NvmeOpcode, NvmeStatus};
