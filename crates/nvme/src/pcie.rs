//! PCIe link model: a shared, serialising DMA resource.

use std::collections::VecDeque;

use recssd_sim::stats::Counter;
use recssd_sim::{SimDuration, SimTime};

/// Link speed parameters.
///
/// The Cosmos+ OpenSSD attaches over PCIe Gen2 ×8; the preset reflects its
/// effective DMA throughput. Command fetch and completion writes are *not*
/// modelled on the link — their cost is folded into the device's
/// per-command firmware charge — only data payloads occupy it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PcieConfig {
    /// Payload bandwidth in bytes per second.
    pub bytes_per_sec: f64,
    /// Fixed per-transfer setup latency.
    pub setup_ns: u64,
}

impl PcieConfig {
    /// PCIe Gen2 ×8-class link (≈3.2 GB/s effective).
    pub fn gen2_x8() -> Self {
        PcieConfig {
            bytes_per_sec: 3.2e9,
            setup_ns: 1_000,
        }
    }

    /// Time for one DMA of `bytes`.
    pub fn transfer_time(&self, bytes: usize) -> SimDuration {
        let ns = (bytes as f64 / self.bytes_per_sec) * 1e9;
        SimDuration::from_ns(self.setup_ns + ns.round() as u64)
    }
}

/// Identifier of an in-flight DMA transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct XferId(u64);

/// Direction of a DMA transfer (for statistics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum XferDirection {
    /// Host memory → device (command payloads, NDP configs).
    HostToDevice,
    /// Device → host memory (read data, NDP results).
    DeviceToHost,
}

/// Events the link schedules for itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PcieEvent {
    /// The transfer at the head of the link finished.
    XferDone {
        /// Completed transfer.
        xfer: XferId,
    },
}

/// Aggregate link statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct PcieStats {
    /// Completed transfers.
    pub transfers: Counter,
    /// Total payload bytes moved.
    pub bytes: Counter,
    /// Accumulated link-busy time in nanoseconds.
    pub busy_ns: Counter,
}

/// The serialising DMA engine: one transfer at a time, FIFO arbitration.
///
/// # Example
///
/// ```
/// use recssd_nvme::{PcieConfig, PcieEvent, PcieLink, XferDirection};
/// use recssd_sim::EventQueue;
///
/// let mut link = PcieLink::new(PcieConfig::gen2_x8());
/// let mut q: EventQueue<PcieEvent> = EventQueue::new();
/// let id = link.request(q.now(), 16 * 1024, XferDirection::DeviceToHost,
///                       &mut |d, e| q.push_after(d, e));
/// let (now, ev) = q.pop().unwrap();
/// assert_eq!(link.handle(now, ev, &mut |_, _| {}), id);
/// assert!(now.as_us_f64() > 5.0); // 16 KB at ~3.2 GB/s + setup
/// ```
#[derive(Debug)]
pub struct PcieLink {
    config: PcieConfig,
    busy: bool,
    waiters: VecDeque<(XferId, SimDuration)>,
    next_id: u64,
    stats: PcieStats,
}

impl PcieLink {
    /// Creates an idle link.
    pub fn new(config: PcieConfig) -> Self {
        PcieLink {
            config,
            busy: false,
            waiters: VecDeque::new(),
            next_id: 0,
            stats: PcieStats::default(),
        }
    }

    /// The link's configuration.
    pub fn config(&self) -> PcieConfig {
        self.config
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> PcieStats {
        self.stats
    }

    /// `true` when no transfer is active or queued.
    pub fn idle(&self) -> bool {
        !self.busy && self.waiters.is_empty()
    }

    /// Requests a DMA of `bytes`. The returned id is reported back by
    /// [`PcieLink::handle`] when the transfer completes.
    pub fn request(
        &mut self,
        _now: SimTime,
        bytes: usize,
        direction: XferDirection,
        sched: &mut dyn FnMut(SimDuration, PcieEvent),
    ) -> XferId {
        let _ = direction; // direction currently affects stats only
        let id = XferId(self.next_id);
        self.next_id += 1;
        let dur = self.config.transfer_time(bytes);
        self.stats.bytes.add(bytes as u64);
        self.stats.busy_ns.add(dur.as_ns());
        if self.busy {
            self.waiters.push_back((id, dur));
        } else {
            self.busy = true;
            sched(dur, PcieEvent::XferDone { xfer: id });
        }
        id
    }

    /// Processes a completion event, starting the next queued transfer.
    /// Returns the finished transfer's id.
    pub fn handle(
        &mut self,
        _now: SimTime,
        ev: PcieEvent,
        sched: &mut dyn FnMut(SimDuration, PcieEvent),
    ) -> XferId {
        let PcieEvent::XferDone { xfer } = ev;
        self.stats.transfers.inc();
        if let Some((next, dur)) = self.waiters.pop_front() {
            sched(dur, PcieEvent::XferDone { xfer: next });
        } else {
            self.busy = false;
        }
        xfer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recssd_sim::EventQueue;

    fn drive(link: &mut PcieLink, q: &mut EventQueue<PcieEvent>) -> Vec<(SimTime, XferId)> {
        let mut done = Vec::new();
        while let Some((now, ev)) = q.pop() {
            let mut fresh = Vec::new();
            let id = link.handle(now, ev, &mut |d, e| fresh.push((d, e)));
            for (d, e) in fresh {
                q.push_after(d, e);
            }
            done.push((now, id));
        }
        done
    }

    #[test]
    fn transfer_time_has_setup_plus_bandwidth() {
        let cfg = PcieConfig::gen2_x8();
        let t = cfg.transfer_time(16 * 1024);
        // 16384 / 3.2e9 s = 5.12 us, plus 1 us setup.
        assert_eq!(t.as_ns(), 1_000 + 5_120);
        assert_eq!(cfg.transfer_time(0).as_ns(), 1_000);
    }

    #[test]
    fn transfers_serialise_fifo() {
        let mut link = PcieLink::new(PcieConfig::gen2_x8());
        let mut q = EventQueue::new();
        let a = link.request(
            q.now(),
            16 * 1024,
            XferDirection::DeviceToHost,
            &mut |d, e| q.push_after(d, e),
        );
        let b = link.request(
            q.now(),
            16 * 1024,
            XferDirection::DeviceToHost,
            &mut |d, e| q.push_after(d, e),
        );
        let done = drive(&mut link, &mut q);
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].1, a);
        assert_eq!(done[1].1, b);
        // Second finishes one transfer-time after the first.
        let per = PcieConfig::gen2_x8().transfer_time(16 * 1024);
        assert_eq!(done[0].0, SimTime::ZERO + per);
        assert_eq!(done[1].0, SimTime::ZERO + per + per);
        assert!(link.idle());
    }

    #[test]
    fn stats_accumulate() {
        let mut link = PcieLink::new(PcieConfig::gen2_x8());
        let mut q = EventQueue::new();
        link.request(q.now(), 1000, XferDirection::HostToDevice, &mut |d, e| {
            q.push_after(d, e)
        });
        link.request(q.now(), 2000, XferDirection::DeviceToHost, &mut |d, e| {
            q.push_after(d, e)
        });
        drive(&mut link, &mut q);
        assert_eq!(link.stats().transfers.get(), 2);
        assert_eq!(link.stats().bytes.get(), 3000);
        assert!(link.stats().busy_ns.get() > 2_000);
    }
}
