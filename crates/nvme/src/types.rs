//! NVMe command and completion structures.

use std::fmt;

/// NVMe I/O opcode (the subset the reproduction needs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NvmeOpcode {
    /// Read `nlb` logical blocks starting at `slba`.
    Read,
    /// Write `nlb` logical blocks starting at `slba`.
    Write,
}

/// Completion status.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NvmeStatus {
    /// Command completed successfully.
    Success,
    /// Starting LBA + length exceeds the namespace.
    LbaOutOfRange,
    /// Malformed command (e.g. NDP bit set with an unknown layout).
    InvalidField,
    /// Device-internal failure.
    InternalError,
    /// Unrecovered media error: a read hit an uncorrectable flash error.
    MediaError,
}

/// An NVMe submission-queue entry.
///
/// `ndp` is the spare command bit of §4.3: with `ndp = true`, a
/// [`NvmeOpcode::Write`] carries SLS configuration data ("a special
/// write-like command, which initiates embedding processing") and a
/// [`NvmeOpcode::Read`] collects the accumulated result pages. The SLS
/// request id is folded into `slba` (see [`NvmeCommand::ndp_slba`]).
///
/// # Example
///
/// ```
/// use recssd_nvme::NvmeCommand;
/// let cmd = NvmeCommand::read(1, 0x40, 8);
/// assert_eq!(cmd.nlb, 8);
/// assert!(!cmd.ndp);
/// let cfg = NvmeCommand::ndp_write(2, NvmeCommand::ndp_slba(0x1000, 3, 0x100), vec![0u8; 64]);
/// assert!(cfg.ndp);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NvmeCommand {
    /// Command identifier, unique within its queue.
    pub cid: u16,
    /// The opcode.
    pub opcode: NvmeOpcode,
    /// The spare bit marking embedding (NDP) commands.
    pub ndp: bool,
    /// Starting logical block address (in 16 KB blocks).
    pub slba: u64,
    /// Number of logical blocks.
    pub nlb: u32,
    /// Host payload for write-like commands.
    pub payload: Option<Vec<u8>>,
}

impl NvmeCommand {
    /// A conventional read of `nlb` blocks at `slba`.
    pub fn read(cid: u16, slba: u64, nlb: u32) -> Self {
        NvmeCommand {
            cid,
            opcode: NvmeOpcode::Read,
            ndp: false,
            slba,
            nlb,
            payload: None,
        }
    }

    /// A conventional write of the given payload at `slba` (`nlb` derived
    /// by the caller; one block per page image).
    pub fn write(cid: u16, slba: u64, nlb: u32, payload: Vec<u8>) -> Self {
        NvmeCommand {
            cid,
            opcode: NvmeOpcode::Write,
            ndp: false,
            slba,
            nlb,
            payload: Some(payload),
        }
    }

    /// The NDP config-write command: ships SLS parameters to the FTL.
    pub fn ndp_write(cid: u16, slba: u64, config: Vec<u8>) -> Self {
        NvmeCommand {
            cid,
            opcode: NvmeOpcode::Write,
            ndp: true,
            slba,
            nlb: config.len().div_ceil(16 * 1024).max(1) as u32,
            payload: Some(config),
        }
    }

    /// The NDP result-read command: collects `nlb` result blocks.
    pub fn ndp_read(cid: u16, slba: u64, nlb: u32) -> Self {
        NvmeCommand {
            cid,
            opcode: NvmeOpcode::Read,
            ndp: true,
            slba,
            nlb,
            payload: None,
        }
    }

    /// Encodes an SLS request id into a starting LBA, per §4.3: "The SLBA
    /// is set as the starting address of the targeted embedding table added
    /// with the unique request ID. By assuming a minimum table size and
    /// alignment constraints, the two inputs can be separated within the
    /// SSD system using the modulus operator."
    ///
    /// # Panics
    ///
    /// Panics if `request_id` does not fit below the alignment.
    pub fn ndp_slba(table_base: u64, request_id: u64, table_align: u64) -> u64 {
        assert!(
            table_base.is_multiple_of(table_align),
            "table base must be aligned to the agreed table alignment"
        );
        assert!(
            request_id < table_align,
            "request id {request_id} exceeds alignment {table_align}"
        );
        table_base + request_id
    }

    /// Decodes `(table_base, request_id)` from an NDP SLBA.
    pub fn ndp_slba_decode(slba: u64, table_align: u64) -> (u64, u64) {
        (slba / table_align * table_align, slba % table_align)
    }

    /// Payload length in bytes (zero for reads).
    pub fn payload_len(&self) -> usize {
        self.payload.as_ref().map_or(0, |p| p.len())
    }
}

/// An NVMe completion-queue entry.
#[derive(Debug, Clone, PartialEq)]
pub struct NvmeCompletion {
    /// The command this completes.
    pub cid: u16,
    /// Outcome status.
    pub status: NvmeStatus,
    /// Data returned to the host (for read-like commands).
    pub data: Option<Vec<u8>>,
}

impl NvmeCompletion {
    /// A successful completion carrying optional data.
    pub fn success(cid: u16, data: Option<Vec<u8>>) -> Self {
        NvmeCompletion {
            cid,
            status: NvmeStatus::Success,
            data,
        }
    }

    /// An error completion.
    pub fn error(cid: u16, status: NvmeStatus) -> Self {
        NvmeCompletion {
            cid,
            status,
            data: None,
        }
    }
}

impl fmt::Display for NvmeStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NvmeStatus::Success => "success",
            NvmeStatus::LbaOutOfRange => "LBA out of range",
            NvmeStatus::InvalidField => "invalid field in command",
            NvmeStatus::InternalError => "internal device error",
            NvmeStatus::MediaError => "unrecovered media error",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_fields() {
        let r = NvmeCommand::read(9, 100, 4);
        assert_eq!(
            (r.cid, r.opcode, r.ndp, r.slba, r.nlb),
            (9, NvmeOpcode::Read, false, 100, 4)
        );
        assert_eq!(r.payload_len(), 0);

        let w = NvmeCommand::write(1, 5, 1, vec![1, 2, 3]);
        assert_eq!(w.opcode, NvmeOpcode::Write);
        assert_eq!(w.payload_len(), 3);

        let nw = NvmeCommand::ndp_write(2, 0, vec![0u8; 40_000]);
        assert!(nw.ndp);
        assert_eq!(nw.nlb, 3, "config spanning three 16K blocks");

        let nr = NvmeCommand::ndp_read(3, 0, 2);
        assert!(nr.ndp);
        assert_eq!(nr.opcode, NvmeOpcode::Read);
    }

    #[test]
    fn ndp_slba_round_trips() {
        let align = 1 << 20; // minimum table alignment in blocks
        for (base, req) in [(0u64, 0u64), (1 << 20, 77), (5 << 20, 1_048_575)] {
            let slba = NvmeCommand::ndp_slba(base, req, align);
            assert_eq!(NvmeCommand::ndp_slba_decode(slba, align), (base, req));
        }
    }

    #[test]
    #[should_panic(expected = "exceeds alignment")]
    fn oversized_request_id_rejected() {
        NvmeCommand::ndp_slba(0, 1 << 20, 1 << 20);
    }

    #[test]
    #[should_panic(expected = "must be aligned")]
    fn unaligned_table_base_rejected() {
        NvmeCommand::ndp_slba(12345, 0, 1 << 20);
    }

    #[test]
    fn completion_helpers() {
        let ok = NvmeCompletion::success(4, Some(vec![9]));
        assert_eq!(ok.status, NvmeStatus::Success);
        assert_eq!(ok.data.as_deref(), Some(&[9u8][..]));
        let err = NvmeCompletion::error(4, NvmeStatus::LbaOutOfRange);
        assert_eq!(err.status.to_string(), "LBA out of range");
        assert!(err.data.is_none());
    }
}
