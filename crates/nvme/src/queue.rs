//! Bounded submission/completion queue pairs.

use std::collections::VecDeque;

use recssd_sim::stats::Counter;

use crate::{NvmeCommand, NvmeCompletion};

/// Errors surfaced by queue operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueError {
    /// The submission queue is full; the host must back off and poll.
    SubmissionFull,
}

impl std::fmt::Display for QueueError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueueError::SubmissionFull => f.write_str("submission queue full"),
        }
    }
}

impl std::error::Error for QueueError {}

/// One NVMe I/O queue pair: a bounded submission ring the host fills and a
/// completion ring the host polls.
///
/// The UNVMe userspace driver the paper builds on uses "the maximum number
/// of threads/command queues" with polling completion; the `ssd` crate
/// instantiates one `QueuePair` per simulated SLS worker.
///
/// # Example
///
/// ```
/// use recssd_nvme::{NvmeCommand, NvmeCompletion, QueuePair};
/// let mut qp = QueuePair::new(0, 4);
/// qp.submit(NvmeCommand::read(1, 0, 1))?;
/// let cmd = qp.fetch().expect("device sees the command");
/// qp.complete(NvmeCompletion::success(cmd.cid, None));
/// assert_eq!(qp.poll().unwrap().cid, 1);
/// # Ok::<(), recssd_nvme::QueueError>(())
/// ```
#[derive(Debug)]
pub struct QueuePair {
    qid: u16,
    depth: usize,
    sq: VecDeque<NvmeCommand>,
    cq: VecDeque<NvmeCompletion>,
    /// Commands fetched by the device but not yet completed.
    outstanding: usize,
    submitted: Counter,
    completed: Counter,
}

impl QueuePair {
    /// Creates a queue pair with the given id and ring depth.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn new(qid: u16, depth: usize) -> Self {
        assert!(depth > 0, "queue depth must be positive");
        QueuePair {
            qid,
            depth,
            sq: VecDeque::with_capacity(depth),
            cq: VecDeque::with_capacity(depth),
            outstanding: 0,
            submitted: Counter::new(),
            completed: Counter::new(),
        }
    }

    /// Queue id.
    pub fn qid(&self) -> u16 {
        self.qid
    }

    /// Ring depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Host side: enqueues a command.
    ///
    /// # Errors
    ///
    /// [`QueueError::SubmissionFull`] when `depth` commands are already
    /// in flight (submitted or outstanding).
    pub fn submit(&mut self, cmd: NvmeCommand) -> Result<(), QueueError> {
        if self.sq.len() + self.outstanding >= self.depth {
            return Err(QueueError::SubmissionFull);
        }
        self.sq.push_back(cmd);
        self.submitted.inc();
        Ok(())
    }

    /// Device side: fetches the oldest submitted command.
    pub fn fetch(&mut self) -> Option<NvmeCommand> {
        let cmd = self.sq.pop_front()?;
        self.outstanding += 1;
        Some(cmd)
    }

    /// Device side: posts a completion for a previously fetched command.
    ///
    /// # Panics
    ///
    /// Panics if there is no outstanding command to complete.
    pub fn complete(&mut self, completion: NvmeCompletion) {
        assert!(
            self.outstanding > 0,
            "completion without outstanding command"
        );
        self.outstanding -= 1;
        self.completed.inc();
        self.cq.push_back(completion);
    }

    /// Host side: polls for one completion.
    pub fn poll(&mut self) -> Option<NvmeCompletion> {
        self.cq.pop_front()
    }

    /// Commands submitted but not yet fetched by the device.
    pub fn submitted_pending(&self) -> usize {
        self.sq.len()
    }

    /// Commands fetched but not yet completed.
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// Completions waiting to be polled.
    pub fn completions_pending(&self) -> usize {
        self.cq.len()
    }

    /// `true` when nothing is queued or in flight.
    pub fn quiescent(&self) -> bool {
        self.sq.is_empty() && self.cq.is_empty() && self.outstanding == 0
    }

    /// Total commands ever submitted.
    pub fn total_submitted(&self) -> u64 {
        self.submitted.get()
    }

    /// Total completions ever posted.
    pub fn total_completed(&self) -> u64 {
        self.completed.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NvmeStatus;

    #[test]
    fn fifo_command_flow() {
        let mut qp = QueuePair::new(1, 8);
        qp.submit(NvmeCommand::read(10, 0, 1)).unwrap();
        qp.submit(NvmeCommand::read(11, 1, 1)).unwrap();
        assert_eq!(qp.submitted_pending(), 2);
        let a = qp.fetch().unwrap();
        let b = qp.fetch().unwrap();
        assert_eq!((a.cid, b.cid), (10, 11));
        assert_eq!(qp.outstanding(), 2);
        qp.complete(NvmeCompletion::success(10, None));
        qp.complete(NvmeCompletion::success(11, None));
        assert_eq!(qp.poll().unwrap().cid, 10);
        assert_eq!(qp.poll().unwrap().cid, 11);
        assert!(qp.poll().is_none());
        assert!(qp.quiescent());
        assert_eq!(qp.total_submitted(), 2);
        assert_eq!(qp.total_completed(), 2);
    }

    #[test]
    fn submission_backpressure_counts_outstanding() {
        let mut qp = QueuePair::new(0, 2);
        qp.submit(NvmeCommand::read(0, 0, 1)).unwrap();
        qp.submit(NvmeCommand::read(1, 0, 1)).unwrap();
        assert_eq!(
            qp.submit(NvmeCommand::read(2, 0, 1)),
            Err(QueueError::SubmissionFull)
        );
        // Fetching does not free a slot — the command is still in flight.
        qp.fetch().unwrap();
        assert_eq!(
            qp.submit(NvmeCommand::read(2, 0, 1)),
            Err(QueueError::SubmissionFull)
        );
        // Completion frees the slot.
        qp.complete(NvmeCompletion::error(0, NvmeStatus::InternalError));
        qp.submit(NvmeCommand::read(2, 0, 1)).unwrap();
    }

    #[test]
    #[should_panic(expected = "without outstanding")]
    fn completion_without_fetch_panics() {
        let mut qp = QueuePair::new(0, 2);
        qp.complete(NvmeCompletion::success(0, None));
    }

    #[test]
    #[should_panic(expected = "depth must be positive")]
    fn zero_depth_panics() {
        QueuePair::new(0, 0);
    }
}
