//! Fast deterministic hashing for hot simulator maps.
//!
//! The standard library's `HashMap` defaults to SipHash-1-3 behind a
//! per-process random seed. Both properties are wrong for this workspace:
//! the simulator is single-threaded and never hashes attacker-controlled
//! keys, so DoS hardening is pure overhead on the per-page and per-command
//! maps of the FTL, the NDP engine and the host runtime — and the random
//! seed makes iteration order (and therefore any accidental
//! order-dependence) vary between runs. [`FxHasher`] is the Firefox /
//! rustc word-at-a-time multiply-xor hash: a handful of cycles per `u64`
//! key, fully deterministic across runs and platforms.
//!
//! # Example
//!
//! ```
//! use recssd_sim::hash::FxHashMap;
//!
//! let mut m: FxHashMap<u64, &str> = FxHashMap::default();
//! m.insert(7, "page");
//! assert_eq!(m.get(&7), Some(&"page"));
//! ```

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant (the 64-bit golden-ratio fraction, forced odd).
const SEED: u64 = 0x51_7C_C1_B7_27_22_0A_95;
const ROTATE: u32 = 5;

/// The Fx word-at-a-time hash. Each ingested word is folded into the
/// state with a rotate, xor and multiply; trailing bytes are read in the
/// widest units available so short keys stay cheap.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.state = (self.state.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            self.add_word(u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes")));
            bytes = &bytes[8..];
        }
        if bytes.len() >= 4 {
            self.add_word(u32::from_le_bytes(bytes[..4].try_into().expect("4 bytes")) as u64);
            bytes = &bytes[4..];
        }
        for &b in bytes {
            self.add_word(b as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_word(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_word(v as u64);
    }
}

/// `BuildHasher` producing [`FxHasher`]s (zero-sized, deterministic).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed with the Fx hash — drop-in for hot simulator maps.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with the Fx hash.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_hasher_instances() {
        for k in [0u64, 1, 7, u64::MAX, 0x9E37_79B9] {
            assert_eq!(hash_of(&k), hash_of(&k));
        }
    }

    #[test]
    fn distinct_keys_rarely_collide() {
        let mut seen = std::collections::HashSet::new();
        for k in 0u64..10_000 {
            seen.insert(hash_of(&k));
        }
        assert_eq!(seen.len(), 10_000, "sequential u64 keys must not collide");
    }

    #[test]
    fn byte_stream_matches_word_writes_for_structure() {
        // Tuples and slices must hash consistently with themselves.
        let a = (3u64, 4u32);
        assert_eq!(hash_of(&a), hash_of(&a));
        let s: &[u8] = &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11];
        assert_eq!(hash_of(&s), hash_of(&s));
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<(u16, u16), u64> = FxHashMap::default();
        m.insert((1, 2), 3);
        assert_eq!(m[&(1, 2)], 3);
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(9));
        assert!(!s.insert(9));
    }

    #[test]
    fn small_keys_separate() {
        // (Zero hashes to zero — a fixed point the real Fx hash shares —
        // but any non-zero key must separate from it and from each other.)
        assert_ne!(hash_of(&0u64), hash_of(&1u64));
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
    }
}
