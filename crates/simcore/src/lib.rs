//! Discrete-event simulation kernel for the RecSSD reproduction.
//!
//! Every hardware component in this workspace (NAND flash channels, the FTL
//! firmware loop, the NVMe frontend, the host CPU model) advances a single
//! shared *virtual clock* measured in nanoseconds. This crate provides the
//! building blocks they share:
//!
//! * [`SimTime`] / [`SimDuration`] — newtypes for instants and spans on the
//!   virtual clock (nanosecond resolution).
//! * [`EventQueue`] — a deterministic priority queue of timestamped events
//!   with FIFO tie-breaking, so simulations are exactly reproducible.
//! * [`stats`] — counters, log-scale histograms, latency breakdowns and
//!   sample collections used to report the paper's figures.
//! * [`rng`] — small, dependency-free deterministic generators
//!   (SplitMix64 / xoshiro256**) so traces and table contents are stable
//!   across platforms and toolchain versions.
//! * [`hash`] — the Fx multiply-xor hash plus [`hash::FxHashMap`] /
//!   [`hash::FxHashSet`] aliases for the simulator's hot maps, which key
//!   on small integers and need neither SipHash's DoS hardening nor its
//!   per-process random seed.
//!
//! # Example
//!
//! ```
//! use recssd_sim::{EventQueue, SimDuration, SimTime};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { PageReadDone(u32) }
//!
//! let mut q = EventQueue::new();
//! q.push_after(SimDuration::from_us(60), Ev::PageReadDone(7));
//! let (t, ev) = q.pop().expect("one event pending");
//! assert_eq!(t, SimTime::from_us(60));
//! assert_eq!(ev, Ev::PageReadDone(7));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod queue;
mod time;

pub mod alloc_count;
pub mod hash;
pub mod rng;
pub mod stats;

pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use queue::EventQueue;
pub use time::{SimDuration, SimTime};
