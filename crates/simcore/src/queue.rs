//! Deterministic timestamped event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::{SimDuration, SimTime};

/// A priority queue of events ordered by firing time.
///
/// Ties (events scheduled for the same instant) pop in insertion order, so a
/// simulation driven by an `EventQueue` is fully deterministic regardless of
/// the event payload type.
///
/// The queue tracks the current simulation time: [`EventQueue::pop`] advances
/// `now()` to the popped event's timestamp. Scheduling into the past panics —
/// a component that "responds" earlier than the current instant is always a
/// model bug.
///
/// # Example
///
/// ```
/// use recssd_sim::{EventQueue, SimDuration, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push_at(SimTime::from_us(5), "late");
/// q.push_at(SimTime::from_us(1), "early");
/// q.push_at(SimTime::from_us(1), "early-second");
///
/// assert_eq!(q.pop(), Some((SimTime::from_us(1), "early")));
/// assert_eq!(q.pop(), Some((SimTime::from_us(1), "early-second")));
/// assert_eq!(q.now(), SimTime::from_us(1));
/// assert_eq!(q.pop(), Some((SimTime::from_us(5), "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: SimTime,
}

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) wins.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

impl<E> std::fmt::Debug for Entry<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Entry")
            .field("time", &self.time)
            .field("seq", &self.seq)
            .finish_non_exhaustive()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with `now() == SimTime::ZERO`.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current simulation instant (timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than [`EventQueue::now`].
    pub fn push_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={at} now={}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry {
            time: at,
            seq,
            event,
        });
    }

    /// Schedules `event` to fire `delay` after the current instant.
    pub fn push_after(&mut self, delay: SimDuration, event: E) {
        self.push_at(self.now + delay, event);
    }

    /// Advances the clock to `at` without popping anything — how a host
    /// runtime re-anchors an idle component's clock to an external
    /// (wall-of-simulation) instant before handing it new work. Moving
    /// backwards is a no-op.
    ///
    /// # Panics
    ///
    /// Panics if an event is pending before `at` (skipping scheduled work
    /// would corrupt the simulation).
    pub fn advance_to(&mut self, at: SimTime) {
        if at <= self.now {
            return;
        }
        if let Some(t) = self.peek_time() {
            assert!(
                at <= t,
                "advance_to({at}) would skip an event pending at {t}"
            );
        }
        self.now = at;
    }

    /// Pops the earliest event and advances the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| {
            self.now = e.time;
            (e.time, e.event)
        })
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Discards all pending events without advancing the clock.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push_at(SimTime::from_ns(30), 3);
        q.push_at(SimTime::from_ns(10), 1);
        q.push_at(SimTime::from_ns(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push_at(SimTime::from_ns(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pop_advances_now() {
        let mut q = EventQueue::new();
        q.push_at(SimTime::from_us(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_us(7));
    }

    #[test]
    fn push_after_uses_current_time() {
        let mut q = EventQueue::new();
        q.push_at(SimTime::from_us(10), "a");
        q.pop();
        q.push_after(SimDuration::from_us(5), "b");
        assert_eq!(q.pop(), Some((SimTime::from_us(15), "b")));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.push_at(SimTime::from_us(10), ());
        q.pop();
        q.push_at(SimTime::from_us(9), ());
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push_at(SimTime::from_ns(1), ());
        q.push_at(SimTime::from_ns(2), ());
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn interleaved_push_pop_is_deterministic() {
        let mut q = EventQueue::new();
        q.push_at(SimTime::from_ns(10), 0u32);
        let mut popped = Vec::new();
        while let Some((t, e)) = q.pop() {
            popped.push(e);
            if e < 5 {
                // Self-rescheduling pattern used by firmware polling loops.
                q.push_at(t + SimDuration::from_ns(10), e + 1);
                q.push_at(t + SimDuration::from_ns(10), e + 100);
            }
        }
        assert_eq!(popped[0], 0);
        assert!(popped.contains(&5));
        // Same-time siblings preserve insertion order: e+1 before e+100.
        let i1 = popped.iter().position(|&x| x == 1).unwrap();
        let i100 = popped.iter().position(|&x| x == 100).unwrap();
        assert!(i1 < i100);
    }
}
