//! Small deterministic random number generators.
//!
//! The whole reproduction must be bit-reproducible across runs and
//! platforms: embedding-table contents, synthetic traces and sampled index
//! lists all come from these generators, seeded explicitly. We implement
//! [SplitMix64](https://prng.di.unimi.it/splitmix64.c) (for seeding and
//! cheap streams) and [xoshiro256\*\*](https://prng.di.unimi.it/) (the
//! general-purpose generator) rather than depending on an external crate
//! whose stream might change between versions.

/// SplitMix64: a tiny, fast 64-bit generator.
///
/// Primarily used to expand a single `u64` seed into the larger state of
/// [`Xoshiro256`], and for cheap decorrelated streams (e.g. hashing an id
/// into a cache set).
///
/// # Example
///
/// ```
/// use recssd_sim::rng::SplitMix64;
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// One-shot stateless mix of a 64-bit value (a single SplitMix64 step).
///
/// Useful for turning structured ids into well-distributed hash values,
/// e.g. direct-mapped cache indexing.
pub fn mix64(x: u64) -> u64 {
    SplitMix64::new(x).next_u64()
}

/// xoshiro256\*\*: the workhorse deterministic generator.
///
/// # Example
///
/// ```
/// use recssd_sim::rng::Xoshiro256;
/// let mut rng = Xoshiro256::seed_from(7);
/// let x = rng.gen_range(0..10);
/// assert!(x < 10);
/// let f = rng.next_f64();
/// assert!((0.0..1.0).contains(&f));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator by expanding `seed` with SplitMix64.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256 {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[range.start, range.end)` using Lemire's
    /// nearly-divisionless method.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        let span = range
            .end
            .checked_sub(range.start)
            .filter(|&s| s > 0)
            .expect("gen_range called with an empty range");
        // Lemire rejection sampling for an unbiased draw.
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(span as u128);
        let mut low = m as u64;
        if low < span {
            let threshold = span.wrapping_neg() % span;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(span as u128);
                low = m as u64;
            }
        }
        range.start + (m >> 64) as u64
    }

    /// A Bernoulli draw: `true` with probability `p` (clamped to `[0,1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// An exponentially distributed `f64` with the given rate parameter
    /// `lambda` (mean `1/lambda`).
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is not strictly positive.
    pub fn next_exp(&mut self, lambda: f64) -> f64 {
        assert!(lambda > 0.0, "exponential rate must be positive");
        // Inverse transform; 1-U avoids ln(0).
        -(1.0 - self.next_f64()).ln() / lambda
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_range(0..(i as u64 + 1)) as usize;
            xs.swap(i, j);
        }
    }

    /// Fills a byte slice with random data.
    pub fn fill_bytes(&mut self, out: &mut [u8]) {
        for chunk in out.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // First outputs for seed 0, from the reference implementation.
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(sm.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(sm.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn xoshiro_is_deterministic() {
        let mut a = Xoshiro256::seed_from(123);
        let mut b = Xoshiro256::seed_from(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Xoshiro256::seed_from(124);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Xoshiro256::seed_from(1);
        for _ in 0..10_000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_bounds_and_coverage() {
        let mut rng = Xoshiro256::seed_from(2);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.gen_range(5..15);
            assert!((5..15).contains(&v));
            seen[(v - 5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values in range should appear");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn gen_range_empty_panics() {
        Xoshiro256::seed_from(0).gen_range(3..3);
    }

    #[test]
    fn gen_bool_probability_roughly_holds() {
        let mut rng = Xoshiro256::seed_from(3);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.01, "rate was {rate}");
    }

    #[test]
    fn exponential_mean_roughly_holds() {
        let mut rng = Xoshiro256::seed_from(4);
        let lambda = 2.0;
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.next_exp(lambda)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean was {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Xoshiro256::seed_from(5);
        let mut xs: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, (0..100).collect::<Vec<_>>(), "shuffle changed order");
    }

    #[test]
    fn fill_bytes_fills_everything() {
        let mut rng = Xoshiro256::seed_from(6);
        let mut buf = [0u8; 37];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        let mut rng2 = Xoshiro256::seed_from(6);
        let mut buf2 = [0u8; 37];
        rng2.fill_bytes(&mut buf2);
        assert_eq!(buf, buf2);
    }

    #[test]
    fn mix64_spreads_consecutive_inputs() {
        let a = mix64(1);
        let b = mix64(2);
        assert_ne!(a, b);
        // Hamming distance should be substantial for avalanche behaviour.
        assert!((a ^ b).count_ones() > 10);
    }
}
