//! A counting global allocator for allocation-discipline tests and the
//! throughput harness.
//!
//! The SLS datapath promises *zero heap allocations per gathered vector*
//! in steady state. That claim is only trustworthy if it is measured, so
//! this module provides a [`CountingAllocator`] that wraps the system
//! allocator and counts allocation events (allocs and reallocs — frees
//! are tracked separately). Install it in a test binary or behind a
//! feature flag:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: recssd_sim::alloc_count::CountingAllocator =
//!     recssd_sim::alloc_count::CountingAllocator;
//! ```
//!
//! then bracket the region of interest with [`allocation_count`] reads.
//! Counters are process-global; measurements are only meaningful in a
//! single-threaded section (e.g. a one-`#[test]` integration binary).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static FREES: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static TRAP: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// Pass-through allocator that counts events. Zero-cost when not
/// installed; a couple of relaxed atomic increments per event when it is.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingAllocator;

// SAFETY: defers entirely to `System`, which upholds the GlobalAlloc
// contract; the atomic counters have no effect on the returned memory.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        // `swap` disarms the trap before panicking, so the panic
        // machinery's own allocations pass through.
        if TRAP.swap(false, Ordering::Relaxed) {
            panic!("trapped allocation of {} bytes", layout.size());
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        FREES.fetch_add(1, Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        if TRAP.swap(false, Ordering::Relaxed) {
            panic!("trapped reallocation to {new_size} bytes");
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Allocation events (allocs + reallocs) since process start.
pub fn allocation_count() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Free events since process start.
pub fn free_count() -> u64 {
    FREES.load(Ordering::Relaxed)
}

/// Bytes requested across all allocation events since process start.
pub fn allocated_bytes() -> u64 {
    ALLOC_BYTES.load(Ordering::Relaxed)
}

/// Arms a one-shot trap: the next allocation event panics (with the
/// trap disarmed first, so the panic itself can allocate). Run with
/// `RUST_BACKTRACE=1` to see exactly who allocated in a region that
/// promises not to — the debugging companion to [`allocations_during`].
pub fn trap_next_allocation() {
    TRAP.store(true, Ordering::Relaxed);
}

/// Allocation events performed by `f` (meaningful only single-threaded,
/// with the [`CountingAllocator`] installed).
pub fn allocations_during<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = allocation_count();
    let r = f();
    (allocation_count() - before, r)
}
