//! Measurement primitives: counters, histograms, latency breakdowns.
//!
//! The paper reports average latencies over many batches (§5 "We average
//! latency results across many batches"), per-component breakdowns of time
//! spent inside the FTL (Fig. 8), and cache hit rates (Fig. 10). The types
//! here back all of those reports.

use std::collections::BTreeMap;
use std::fmt;

use crate::SimDuration;

/// A monotonically increasing event counter.
///
/// # Example
///
/// ```
/// use recssd_sim::stats::Counter;
/// let mut hits = Counter::new();
/// hits.inc();
/// hits.add(2);
/// assert_eq!(hits.get(), 3);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter at zero.
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Adds one.
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Resets to zero.
    pub fn reset(&mut self) {
        self.0 = 0;
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Hit/miss accounting for any cache-like structure.
///
/// # Example
///
/// ```
/// use recssd_sim::stats::HitStats;
/// let mut s = HitStats::new();
/// s.hit();
/// s.hit();
/// s.miss();
/// assert_eq!(s.accesses(), 3);
/// assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HitStats {
    hits: u64,
    misses: u64,
}

impl HitStats {
    /// Creates empty statistics.
    pub const fn new() -> Self {
        HitStats { hits: 0, misses: 0 }
    }

    /// Records a hit.
    pub fn hit(&mut self) {
        self.hits += 1;
    }

    /// Records a miss.
    pub fn miss(&mut self) {
        self.misses += 1;
    }

    /// Records `n` hits at once.
    pub fn add_hits(&mut self, n: u64) {
        self.hits += n;
    }

    /// Records `n` misses at once.
    pub fn add_misses(&mut self, n: u64) {
        self.misses += n;
    }

    /// Number of hits recorded.
    pub const fn hits(self) -> u64 {
        self.hits
    }

    /// Number of misses recorded.
    pub const fn misses(self) -> u64 {
        self.misses
    }

    /// Total accesses.
    pub const fn accesses(self) -> u64 {
        self.hits + self.misses
    }

    /// Hit fraction in `[0, 1]`; zero when no accesses were recorded.
    pub fn hit_rate(self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses() as f64
        }
    }

    /// Resets both counters.
    pub fn reset(&mut self) {
        *self = HitStats::new();
    }

    /// Sums another `HitStats` into this one.
    pub fn merge(&mut self, other: HitStats) {
        self.hits += other.hits;
        self.misses += other.misses;
    }
}

/// A power-of-two bucketed histogram of `u64` samples (typically
/// nanosecond latencies), with exact count/sum/min/max.
///
/// Percentiles are approximate (bucket upper bound); mean is exact.
///
/// # Example
///
/// ```
/// use recssd_sim::stats::Histogram;
/// let mut h = Histogram::new();
/// for v in [100, 200, 400, 800] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.mean(), 375.0);
/// assert_eq!(h.min(), Some(100));
/// assert_eq!(h.max(), Some(800));
/// assert!(h.percentile(50.0).unwrap() >= 200);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    // buckets[i] counts samples whose value v satisfies 2^(i-1) <= v < 2^i,
    // with bucket 0 counting v == 0.
    buckets: [u64; 65],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Records a [`SimDuration`] sample in nanoseconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_ns());
    }

    /// Number of samples recorded.
    pub const fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all samples.
    pub const fn sum(&self) -> u128 {
        self.sum
    }

    /// Exact arithmetic mean, or `0.0` if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded sample, if any.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample, if any.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Approximate percentile (`p` in `[0, 100]`): the upper bound of the
    /// bucket containing the `p`-th percentile sample, clamped to the exact
    /// max. Returns `None` if empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
        if self.count == 0 {
            return None;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let upper = if i == 0 { 0 } else { (1u128 << i) - 1 };
                return Some((upper as u64).min(self.max));
            }
        }
        Some(self.max)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Resets the histogram to empty.
    pub fn reset(&mut self) {
        *self = Histogram::new();
    }
}

/// Number of linear sub-buckets per power-of-two octave in
/// [`LogHistogram`]: 32 sub-buckets bound the relative quantile error at
/// ~3 %, HDR-histogram style.
const LOG_SUB_BITS: u32 = 5;
const LOG_SUB: usize = 1 << LOG_SUB_BITS;
const LOG_BUCKETS: usize = (64 - LOG_SUB_BITS as usize + 1) * LOG_SUB;

/// An HDR-style histogram: power-of-two octaves split into [`LOG_SUB`]
/// linear sub-buckets, so quantiles carry ~two significant digits across
/// the full `u64` range at a fixed ~15 KB footprint. This is the
/// tail-latency recorder of the serving runtime (p50/p95/p99/p999 per
/// request), where the plain [`Histogram`]'s power-of-two buckets are too
/// coarse to separate a p99 from a p999.
///
/// Count, sum, min and max are exact; quantiles are bucket upper bounds
/// clamped to the exact max.
///
/// # Example
///
/// ```
/// use recssd_sim::stats::LogHistogram;
/// let mut h = LogHistogram::new();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// let q = h.quantiles();
/// assert_eq!(q.count, 1000);
/// assert!(q.p50 >= 490 && q.p50 <= 520, "p50 = {}", q.p50);
/// assert!(q.p99 >= 975 && q.p99 <= 1000, "p99 = {}", q.p99);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    buckets: Box<[u64; LOG_BUCKETS]>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

/// A quantile summary snapshot of a [`LogHistogram`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Quantiles {
    /// Number of samples.
    pub count: u64,
    /// Exact arithmetic mean (0 if empty).
    pub mean: f64,
    /// Median (approximate, ~3 % relative error).
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
    /// Exact largest sample (0 if empty).
    pub max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

impl LogHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            buckets: Box::new([0; LOG_BUCKETS]),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    #[inline]
    fn index(value: u64) -> usize {
        if value < LOG_SUB as u64 {
            return value as usize;
        }
        let msb = 63 - value.leading_zeros();
        let shift = msb - LOG_SUB_BITS;
        let sub = ((value >> shift) as usize) & (LOG_SUB - 1);
        (((msb - LOG_SUB_BITS + 1) as usize) << LOG_SUB_BITS) | sub
    }

    /// Largest value mapping to bucket `idx` (inclusive). Computed in
    /// `u128`: the topmost bucket's exclusive bound is 2^64, which would
    /// wrap in `u64`.
    fn bucket_upper(idx: usize) -> u64 {
        let octave = idx >> LOG_SUB_BITS;
        let sub = (idx & (LOG_SUB - 1)) as u128;
        if octave == 0 {
            return sub as u64;
        }
        let shift = octave as u32 - 1;
        let upper = ((LOG_SUB as u128 + sub + 1) << shift) - 1;
        upper.min(u64::MAX as u128) as u64
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::index(value)] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Records a [`SimDuration`] sample in nanoseconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_ns());
    }

    /// Number of samples recorded.
    pub const fn count(&self) -> u64 {
        self.count
    }

    /// Exact arithmetic mean, or `0.0` if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded sample, if any.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample, if any.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Approximate percentile (`p` in `[0, 100]`): the upper bound of the
    /// bucket containing the `p`-th percentile sample, clamped to the
    /// exact min/max. Returns `None` if empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
        if self.count == 0 {
            return None;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Self::bucket_upper(i).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// The standard serving-latency summary: p50/p95/p99/p999 plus exact
    /// count, mean and max.
    pub fn quantiles(&self) -> Quantiles {
        Quantiles {
            count: self.count,
            mean: self.mean(),
            p50: self.percentile(50.0).unwrap_or(0),
            p95: self.percentile(95.0).unwrap_or(0),
            p99: self.percentile(99.0).unwrap_or(0),
            p999: self.percentile(99.9).unwrap_or(0),
            max: self.max().unwrap_or(0),
        }
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Resets the histogram to empty.
    pub fn reset(&mut self) {
        *self = LogHistogram::new();
    }
}

/// Per-component accumulation of simulated time, keyed by a caller-supplied
/// label type (typically an enum). Used for the Fig. 8 FTL breakdowns
/// (Config Write / Config Process / Translation / Flash Read).
///
/// # Example
///
/// ```
/// use recssd_sim::stats::Breakdown;
/// use recssd_sim::SimDuration;
///
/// #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
/// enum Phase { Read, Compute }
///
/// let mut b = Breakdown::new();
/// b.add(Phase::Read, SimDuration::from_us(10));
/// b.add(Phase::Compute, SimDuration::from_us(5));
/// b.add(Phase::Read, SimDuration::from_us(1));
/// assert_eq!(b.get(Phase::Read), SimDuration::from_us(11));
/// assert_eq!(b.total(), SimDuration::from_us(16));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Breakdown<K> {
    parts: BTreeMap<K, SimDuration>,
}

impl<K: Ord + Copy> Breakdown<K> {
    /// Creates an empty breakdown.
    pub fn new() -> Self {
        Breakdown {
            parts: BTreeMap::new(),
        }
    }

    /// Accumulates `d` against component `key`.
    pub fn add(&mut self, key: K, d: SimDuration) {
        *self.parts.entry(key).or_insert(SimDuration::ZERO) += d;
    }

    /// Accumulated time for `key` (zero if never recorded).
    pub fn get(&self, key: K) -> SimDuration {
        self.parts.get(&key).copied().unwrap_or(SimDuration::ZERO)
    }

    /// Sum over all components.
    pub fn total(&self) -> SimDuration {
        self.parts.values().copied().sum()
    }

    /// Iterates components in key order.
    pub fn iter(&self) -> impl Iterator<Item = (K, SimDuration)> + '_ {
        self.parts.iter().map(|(&k, &v)| (k, v))
    }

    /// Merges another breakdown into this one.
    pub fn merge(&mut self, other: &Breakdown<K>) {
        for (k, v) in other.iter() {
            self.add(k, v);
        }
    }

    /// Divides every component by `n` (for averaging over `n` requests).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn scaled_down(&self, n: u64) -> Breakdown<K> {
        assert!(n > 0, "cannot scale a breakdown down by zero");
        Breakdown {
            parts: self.parts.iter().map(|(&k, &v)| (k, v / n)).collect(),
        }
    }

    /// Removes all components.
    pub fn reset(&mut self) {
        self.parts.clear();
    }
}

impl<K: Ord + Copy> Default for Breakdown<K> {
    fn default() -> Self {
        Breakdown::new()
    }
}

/// A collection of raw samples with exact order statistics, for the
/// "average latency across many batches" reporting style of the paper.
///
/// # Example
///
/// ```
/// use recssd_sim::stats::Samples;
/// let mut s = Samples::new();
/// for v in [3.0, 1.0, 2.0] {
///     s.push(v);
/// }
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.percentile(50.0), 2.0);
/// assert_eq!(s.max(), 3.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Samples {
    values: Vec<f64>,
    sorted: bool,
}

impl Samples {
    /// Creates an empty collection.
    pub fn new() -> Self {
        Samples {
            values: Vec::new(),
            sorted: true,
        }
    }

    /// Adds one sample.
    pub fn push(&mut self, v: f64) {
        self.values.push(v);
        self.sorted = false;
    }

    /// Adds a duration sample, stored as microseconds.
    pub fn push_duration_us(&mut self, d: SimDuration) {
        self.push(d.as_us_f64());
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Arithmetic mean (zero if empty).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    fn sorted_values(&mut self) -> &[f64] {
        if !self.sorted {
            self.values
                .sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
            self.sorted = true;
        }
        &self.values
    }

    /// Exact percentile by nearest-rank (zero if empty).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]` or any sample is NaN.
    pub fn percentile(&mut self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
        let n = self.values.len();
        if n == 0 {
            return 0.0;
        }
        let vs = self.sorted_values();
        let rank = ((p / 100.0) * n as f64).ceil().max(1.0) as usize;
        vs[rank - 1]
    }

    /// Largest sample (zero if empty).
    pub fn max(&self) -> f64 {
        self.values.iter().copied().fold(0.0, f64::max)
    }

    /// Smallest sample (zero if empty).
    pub fn min(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().copied().fold(f64::INFINITY, f64::min)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
        c.reset();
        assert_eq!(c.get(), 0);
        assert_eq!(Counter::default().get(), 0);
    }

    #[test]
    fn hit_stats_rate() {
        let mut s = HitStats::new();
        assert_eq!(s.hit_rate(), 0.0);
        s.add_hits(84);
        s.add_misses(16);
        assert!((s.hit_rate() - 0.84).abs() < 1e-12);
        let mut t = HitStats::new();
        t.hit();
        t.merge(s);
        assert_eq!(t.hits(), 85);
        assert_eq!(t.accesses(), 101);
        t.reset();
        assert_eq!(t.accesses(), 0);
    }

    #[test]
    fn histogram_exact_moments() {
        let mut h = Histogram::new();
        assert_eq!(h.percentile(50.0), None);
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.mean(), 500.5);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(1000));
    }

    #[test]
    fn histogram_percentile_bucket_bounds() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(1024);
        // p0..p33 land in the low buckets, p100 in the top one.
        assert_eq!(h.percentile(1.0), Some(0));
        assert_eq!(h.percentile(100.0), Some(1024));
        let p50 = h.percentile(50.0).unwrap();
        assert!((1..1024).contains(&p50), "p50 was {p50}");
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(20);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), Some(10));
        assert_eq!(a.max(), Some(20));
        assert_eq!(a.sum(), 30);
    }

    #[test]
    fn histogram_duration_recording() {
        let mut h = Histogram::new();
        h.record_duration(SimDuration::from_us(1));
        assert_eq!(h.max(), Some(1000));
    }

    #[test]
    fn log_histogram_quantiles_are_tight() {
        let mut h = LogHistogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        // Sub-bucketed octaves keep the relative error within ~1/32.
        for (p, exact) in [(50.0, 50_000u64), (95.0, 95_000), (99.0, 99_000)] {
            let got = h.percentile(p).unwrap();
            assert!(
                got >= exact && got as f64 <= exact as f64 * 1.04,
                "p{p}: got {got}, exact {exact}"
            );
        }
        assert_eq!(h.count(), 100_000);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(100_000));
    }

    #[test]
    fn log_histogram_handles_extreme_values() {
        let mut h = LogHistogram::new();
        h.record(0);
        h.record(u64::MAX); // tops the last bucket: must not overflow
        assert_eq!(h.percentile(1.0), Some(0));
        assert_eq!(h.percentile(100.0), Some(u64::MAX));
        let q = h.quantiles();
        assert_eq!(q.count, 2);
        assert_eq!(q.max, u64::MAX);
    }

    #[test]
    fn log_histogram_empty_edge_cases() {
        let h = LogHistogram::new();
        assert_eq!(h.percentile(0.0), None);
        assert_eq!(h.percentile(50.0), None);
        assert_eq!(h.percentile(100.0), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), 0.0);
        // quantiles() zero-fills instead of panicking on an empty histogram.
        assert_eq!(h.quantiles(), Quantiles::default());
        // Merging an empty histogram into an empty one stays empty (the
        // u64::MAX min sentinel must not leak out as a value).
        let mut a = LogHistogram::new();
        a.merge(&LogHistogram::new());
        assert_eq!(a.count(), 0);
        assert_eq!(a.min(), None);
        assert_eq!(a.quantiles(), Quantiles::default());
    }

    #[test]
    fn log_histogram_single_sample_is_exact_at_every_percentile() {
        for v in [0u64, 1, 31, 32, 1_000_003, u64::MAX] {
            let mut h = LogHistogram::new();
            h.record(v);
            // min == max clamps the bucket upper bound to the exact value.
            for p in [0.0, 50.0, 99.0, 99.9, 100.0] {
                assert_eq!(h.percentile(p), Some(v), "p{p} of single sample {v}");
            }
            let q = h.quantiles();
            assert_eq!((q.count, q.p50, q.p999, q.max), (1, v, v, v));
            assert_eq!(q.mean, v as f64);
        }
    }

    #[test]
    fn log_histogram_saturating_top_bucket_does_not_overflow() {
        // Values at and around the top octave all land in the saturating
        // last bucket whose exclusive upper bound (2^64) would wrap in u64.
        let mut h = LogHistogram::new();
        for v in [u64::MAX, u64::MAX - 1, u64::MAX / 2 + 1] {
            h.record(v);
        }
        assert_eq!(h.percentile(100.0), Some(u64::MAX));
        let p1 = h.percentile(1.0).unwrap();
        assert!(p1 >= h.min().unwrap(), "clamped to exact min");
        assert!(h.quantiles().p50 >= p1, "quantiles stay monotone");
    }

    #[test]
    fn log_histogram_fleet_merge_matches_single_recorder() {
        // Per-shard histograms merged must quantile like one fleet-wide
        // recorder fed every sample — the fleet-level aggregation path.
        let mut shard_a = LogHistogram::new();
        let mut shard_b = LogHistogram::new();
        let mut fleet = LogHistogram::new();
        for v in 1..=1000u64 {
            if v % 2 == 0 {
                shard_a.record(v);
            } else {
                shard_b.record(v);
            }
            fleet.record(v);
        }
        let mut merged = shard_a.clone();
        merged.merge(&shard_b);
        assert_eq!(merged.count(), fleet.count());
        assert_eq!(merged.min(), fleet.min());
        assert_eq!(merged.max(), fleet.max());
        assert_eq!(merged.quantiles(), fleet.quantiles());
        // Merging an empty shard is a no-op.
        let before = merged.quantiles();
        merged.merge(&LogHistogram::new());
        assert_eq!(merged.quantiles(), before);
    }

    #[test]
    fn log_histogram_merge_and_reset() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        a.record(10);
        b.record_duration(SimDuration::from_us(1));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), Some(10));
        assert_eq!(a.max(), Some(1000));
        a.reset();
        assert_eq!(a.quantiles(), Quantiles::default());
    }

    #[test]
    fn breakdown_accumulates_and_scales() {
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        enum P {
            A,
            B,
        }
        let mut b = Breakdown::new();
        b.add(P::A, SimDuration::from_ns(100));
        b.add(P::A, SimDuration::from_ns(100));
        b.add(P::B, SimDuration::from_ns(50));
        assert_eq!(b.get(P::A).as_ns(), 200);
        assert_eq!(b.total().as_ns(), 250);
        let avg = b.scaled_down(2);
        assert_eq!(avg.get(P::A).as_ns(), 100);
        assert_eq!(avg.get(P::B).as_ns(), 25);
        let mut c = Breakdown::new();
        c.merge(&b);
        assert_eq!(c.total(), b.total());
        c.reset();
        assert_eq!(c.total(), SimDuration::ZERO);
    }

    #[test]
    fn samples_order_statistics() {
        let mut s = Samples::new();
        assert!(s.is_empty());
        for v in [5.0, 1.0, 4.0, 2.0, 3.0] {
            s.push(v);
        }
        assert_eq!(s.len(), 5);
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.percentile(50.0), 3.0);
        assert_eq!(s.percentile(100.0), 5.0);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 5.0);
    }

    #[test]
    fn samples_duration_push() {
        let mut s = Samples::new();
        s.push_duration_us(SimDuration::from_ms(2));
        assert_eq!(s.mean(), 2000.0);
    }
}
