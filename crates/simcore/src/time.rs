//! Virtual-clock instants and durations.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulation clock, in nanoseconds since simulation start.
///
/// `SimTime` is an absolute point in virtual time; spans between instants are
/// [`SimDuration`]s. Keeping the two types distinct prevents the classic bug
/// of adding two absolute timestamps.
///
/// # Example
///
/// ```
/// use recssd_sim::{SimDuration, SimTime};
/// let t = SimTime::from_us(100) + SimDuration::from_us(60);
/// assert_eq!(t.as_ns(), 160_000);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// # Example
///
/// ```
/// use recssd_sim::SimDuration;
/// let d = SimDuration::from_us(3) * 4;
/// assert_eq!(d.as_us_f64(), 12.0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; useful as an "infinitely far"
    /// sentinel for idle components.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `ns` nanoseconds after simulation start.
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates an instant `us` microseconds after simulation start.
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates an instant `ms` milliseconds after simulation start.
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates an instant `s` seconds after simulation start.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Microseconds since simulation start, as a float.
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Milliseconds since simulation start, as a float.
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Seconds since simulation start, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Span from `earlier` to `self`, or [`SimDuration::ZERO`] if `earlier`
    /// is actually later (never panics).
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Span from `earlier` to `self`, or `None` if `earlier` is later.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The longest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// A span of `ns` nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// A span of `us` microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// A span of `ms` milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// A span of `s` seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// A span computed from a float number of microseconds, rounded to the
    /// nearest nanosecond (negative inputs clamp to zero).
    pub fn from_us_f64(us: f64) -> Self {
        SimDuration((us * 1e3).max(0.0).round() as u64)
    }

    /// A span computed from a float number of seconds, rounded to the
    /// nearest nanosecond (negative inputs clamp to zero).
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s * 1e9).max(0.0).round() as u64)
    }

    /// The span in whole nanoseconds.
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// The span in microseconds, as a float.
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// The span in milliseconds, as a float.
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The span in seconds, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// `true` if the span is empty.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction of two spans.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// The longer of two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// The shorter of two spans.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Span between two instants.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(rhs.0 <= self.0, "SimTime subtraction went negative");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(rhs.0 <= self.0, "SimDuration subtraction went negative");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

fn fmt_ns(ns: u64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if ns >= 1_000_000_000 {
        write!(f, "{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        write!(f, "{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        write!(f, "{:.3}us", ns as f64 / 1e3)
    } else {
        write!(f, "{ns}ns")
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime(")?;
        fmt_ns(self.0, f)?;
        write!(f, ")")
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ns(self.0, f)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimDuration(")?;
        fmt_ns(self.0, f)?;
        write!(f, ")")
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ns(self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_units_agree() {
        assert_eq!(SimTime::from_us(1).as_ns(), 1_000);
        assert_eq!(SimTime::from_ms(1).as_ns(), 1_000_000);
        assert_eq!(SimTime::from_secs(1).as_ns(), 1_000_000_000);
        assert_eq!(SimDuration::from_us(2).as_ns(), 2_000);
        assert_eq!(SimDuration::from_ms(2).as_ns(), 2_000_000);
        assert_eq!(SimDuration::from_secs(2).as_ns(), 2_000_000_000);
    }

    #[test]
    fn instant_plus_duration() {
        let t = SimTime::from_ns(10) + SimDuration::from_ns(5);
        assert_eq!(t, SimTime::from_ns(15));
        let mut t2 = t;
        t2 += SimDuration::from_ns(1);
        assert_eq!(t2.as_ns(), 16);
    }

    #[test]
    fn instant_difference_is_duration() {
        let a = SimTime::from_us(10);
        let b = SimTime::from_us(4);
        assert_eq!(a - b, SimDuration::from_us(6));
        assert_eq!(b.saturating_since(a), SimDuration::ZERO);
        assert_eq!(a.checked_since(b), Some(SimDuration::from_us(6)));
        assert_eq!(b.checked_since(a), None);
    }

    #[test]
    fn duration_arithmetic() {
        let d = SimDuration::from_ns(100);
        assert_eq!(d * 3, SimDuration::from_ns(300));
        assert_eq!(d / 4, SimDuration::from_ns(25));
        assert_eq!(d + d, SimDuration::from_ns(200));
        assert_eq!((d - SimDuration::from_ns(40)).as_ns(), 60);
        let total: SimDuration = vec![d, d, d].into_iter().sum();
        assert_eq!(total.as_ns(), 300);
    }

    #[test]
    fn float_conversions_round_trip() {
        let d = SimDuration::from_us_f64(1.5);
        assert_eq!(d.as_ns(), 1_500);
        assert_eq!(d.as_us_f64(), 1.5);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(2e-9).as_ns(), 2);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimTime::from_ns(12).to_string(), "12ns");
        assert_eq!(SimTime::from_us(12).to_string(), "12.000us");
        assert_eq!(SimTime::from_ms(12).to_string(), "12.000ms");
        assert_eq!(SimTime::from_secs(12).to_string(), "12.000s");
        assert_eq!(
            format!("{:?}", SimDuration::from_us(1)),
            "SimDuration(1.000us)"
        );
    }

    #[test]
    fn min_max_helpers() {
        let a = SimTime::from_ns(1);
        let b = SimTime::from_ns(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let x = SimDuration::from_ns(1);
        let y = SimDuration::from_ns(2);
        assert_eq!(x.max(y), y);
        assert_eq!(x.min(y), x);
    }
}
