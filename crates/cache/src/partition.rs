//! Profile-guided static partitioning of hot embedding rows.
//!
//! §4.2 of the paper: "we implement a static partitioning technique
//! utilizing input data profiling which can partition embedding tables such
//! that frequently accessed embeddings are stored in host DRAM, while
//! infrequently used embeddings are stored on the SSD."

use std::collections::{HashMap, HashSet};

/// Accumulates access frequencies from a profiling trace.
///
/// # Example
///
/// ```
/// use recssd_cache::StaticPartitionBuilder;
/// let mut b = StaticPartitionBuilder::new();
/// for id in [1u64, 1, 1, 2, 2, 3] {
///     b.observe(id);
/// }
/// let p = b.build(2);
/// assert!(p.is_hot(1) && p.is_hot(2) && !p.is_hot(3));
/// ```
#[derive(Debug, Clone, Default)]
pub struct StaticPartitionBuilder {
    counts: HashMap<u64, u64>,
}

impl StaticPartitionBuilder {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        StaticPartitionBuilder::default()
    }

    /// Records one access to `id`.
    pub fn observe(&mut self, id: u64) {
        *self.counts.entry(id).or_insert(0) += 1;
    }

    /// Records every access produced by `ids`.
    pub fn observe_all<I: IntoIterator<Item = u64>>(&mut self, ids: I) {
        for id in ids {
            self.observe(id);
        }
    }

    /// Records `n` accesses to `id` at once — the bulk entry point for
    /// callers that already hold aggregated frequency counts (e.g. the
    /// placement profiler), avoiding an O(accesses) replay.
    pub fn observe_count(&mut self, id: u64, n: u64) {
        if n > 0 {
            *self.counts.entry(id).or_insert(0) += n;
        }
    }

    /// Number of distinct ids observed.
    pub fn distinct_ids(&self) -> usize {
        self.counts.len()
    }

    /// Selects the `capacity` most frequently accessed ids as the hot
    /// (host-DRAM) partition. Ties break toward smaller ids so the
    /// partition is deterministic.
    pub fn build(&self, capacity: usize) -> StaticPartition {
        let mut freq: Vec<(u64, u64)> = self.counts.iter().map(|(&id, &n)| (id, n)).collect();
        freq.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let hot: HashSet<u64> = freq.into_iter().take(capacity).map(|(id, _)| id).collect();
        StaticPartition {
            hot,
            profiled_ids: self.counts.len(),
        }
    }
}

/// The built partition: a membership test for "resident in host DRAM".
///
/// Unlike a cache, the partition never changes at inference time — the hot
/// set is fixed by the profiling pass, which is what makes it cheap enough
/// to combine with the NDP path (the host knows *before issuing a command*
/// which ids it can serve locally).
#[derive(Debug, Clone, Default)]
pub struct StaticPartition {
    hot: HashSet<u64>,
    profiled_ids: usize,
}

impl StaticPartition {
    /// An empty partition (everything cold): useful as the "no host cache"
    /// configuration.
    pub fn empty() -> Self {
        StaticPartition::default()
    }

    /// Builds a partition from an explicit hot set — for callers that
    /// already ranked their profile (e.g. the placement planner), so one
    /// selection is the single source of truth. `profiled_ids` is the
    /// size of the profiled id universe (feeds
    /// [`StaticPartition::hot_fraction`]).
    pub fn from_hot_ids<I: IntoIterator<Item = u64>>(hot: I, profiled_ids: usize) -> Self {
        StaticPartition {
            hot: hot.into_iter().collect(),
            profiled_ids,
        }
    }

    /// `true` if `id` lives in host DRAM.
    pub fn is_hot(&self, id: u64) -> bool {
        self.hot.contains(&id)
    }

    /// Number of hot ids.
    pub fn len(&self) -> usize {
        self.hot.len()
    }

    /// `true` if no ids are hot.
    pub fn is_empty(&self) -> bool {
        self.hot.is_empty()
    }

    /// Fraction of the *profiled* id space that is hot — the paper notes
    /// the partition hit rate asymptotically approaches this value ("the
    /// size of the static partition relative to the used ID space").
    pub fn hot_fraction(&self) -> f64 {
        if self.profiled_ids == 0 {
            0.0
        } else {
            self.hot.len() as f64 / self.profiled_ids as f64
        }
    }

    /// Iterates the hot ids in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.hot.iter().copied()
    }

    /// Replaces the hot set in place, reusing the existing allocation —
    /// the plan-refresh path, where a new epoch's hot set supersedes the
    /// old one without rebuilding the partition object.
    pub fn replace_hot_ids<I: IntoIterator<Item = u64>>(&mut self, hot: I, profiled_ids: usize) {
        self.hot.clear();
        self.hot.extend(hot);
        self.profiled_ids = profiled_ids;
    }

    /// Applies a promote/demote delta in place: `promote` ids become hot,
    /// `demote` ids become cold. Promoting an already-hot id or demoting
    /// an already-cold id is a no-op, so a delta computed between two
    /// plans can be replayed safely. The profiled-id universe (the
    /// [`StaticPartition::hot_fraction`] denominator) is deliberately
    /// unchanged: moving rows between tiers does not alter which ids the
    /// profile covered.
    pub fn apply_delta<P, D>(&mut self, promote: P, demote: D)
    where
        P: IntoIterator<Item = u64>,
        D: IntoIterator<Item = u64>,
    {
        for id in demote {
            self.hot.remove(&id);
        }
        self.hot.extend(promote);
    }

    /// Drops every hot id failing `keep` (in-place demotion sweep).
    pub fn retain<F: FnMut(u64) -> bool>(&mut self, mut keep: F) {
        self.hot.retain(|&id| keep(id));
    }

    /// Splits `ids` into `(hot, cold)` sublists preserving order — the
    /// exact operation the RecSSD host runtime performs when it sends the
    /// cold ids to the SSD and gathers the hot ids from DRAM.
    pub fn split(&self, ids: &[u64]) -> (Vec<u64>, Vec<u64>) {
        let mut hot = Vec::new();
        let mut cold = Vec::new();
        for &id in ids {
            if self.is_hot(id) {
                hot.push(id);
            } else {
                cold.push(id);
            }
        }
        (hot, cold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recssd_sim::rng::Xoshiro256;

    #[test]
    fn picks_most_frequent_ids() {
        let mut b = StaticPartitionBuilder::new();
        for _ in 0..10 {
            b.observe(7);
        }
        for _ in 0..5 {
            b.observe(3);
        }
        b.observe(1);
        let p = b.build(2);
        assert!(p.is_hot(7));
        assert!(p.is_hot(3));
        assert!(!p.is_hot(1));
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn observe_count_matches_repeated_observe() {
        let mut a = StaticPartitionBuilder::new();
        let mut b = StaticPartitionBuilder::new();
        for _ in 0..7 {
            a.observe(3);
        }
        a.observe(9);
        b.observe_count(3, 7);
        b.observe_count(9, 1);
        b.observe_count(4, 0); // zero-count ids are not recorded
        assert_eq!(b.distinct_ids(), 2);
        let (pa, pb) = (a.build(1), b.build(1));
        assert!(pa.is_hot(3) && pb.is_hot(3));
        assert!(!pb.is_hot(9) && !pb.is_hot(4));
    }

    #[test]
    fn capacity_larger_than_ids_takes_all() {
        let mut b = StaticPartitionBuilder::new();
        b.observe_all([1, 2, 3]);
        let p = b.build(100);
        assert_eq!(p.len(), 3);
        assert!((p.hot_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ties_break_deterministically() {
        let mut b = StaticPartitionBuilder::new();
        b.observe_all([5, 4, 3, 2, 1]); // all frequency 1
        let p = b.build(2);
        assert!(p.is_hot(1) && p.is_hot(2), "smaller ids win ties");
    }

    #[test]
    fn split_preserves_order_and_partitions() {
        let mut b = StaticPartitionBuilder::new();
        b.observe_all([10, 10, 20]);
        let p = b.build(1);
        let (hot, cold) = p.split(&[20, 10, 30, 10]);
        assert_eq!(hot, vec![10, 10]);
        assert_eq!(cold, vec![20, 30]);
    }

    #[test]
    fn from_hot_ids_builds_the_given_membership() {
        let p = StaticPartition::from_hot_ids([4, 9], 8);
        assert!(p.is_hot(4) && p.is_hot(9) && !p.is_hot(1));
        assert_eq!(p.len(), 2);
        assert!((p.hot_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_partition() {
        let p = StaticPartition::empty();
        assert!(p.is_empty());
        assert!(!p.is_hot(0));
        assert_eq!(p.hot_fraction(), 0.0);
        let (hot, cold) = p.split(&[1, 2]);
        assert!(hot.is_empty());
        assert_eq!(cold, vec![1, 2]);
    }

    #[test]
    fn delta_application_matches_from_hot_ids_on_random_sequences() {
        // Random promote/demote sequences applied in place must land on
        // exactly the membership a fresh `from_hot_ids` build would give.
        let mut rng = Xoshiro256::seed_from(42);
        for _ in 0..50 {
            let universe = 1 + rng.gen_range(0..200);
            let mut reference: std::collections::HashSet<u64> =
                (0..universe).filter(|_| rng.gen_bool(0.3)).collect();
            let mut p = StaticPartition::from_hot_ids(reference.iter().copied(), universe as usize);
            for _ in 0..rng.gen_range(1..20) {
                let promote: Vec<u64> = (0..rng.gen_range(0..10))
                    .map(|_| rng.gen_range(0..universe))
                    .collect();
                let demote: Vec<u64> = (0..rng.gen_range(0..10))
                    .map(|_| rng.gen_range(0..universe))
                    .collect();
                for &id in &demote {
                    reference.remove(&id);
                }
                reference.extend(promote.iter().copied());
                p.apply_delta(promote.iter().copied(), demote.iter().copied());
                let rebuilt =
                    StaticPartition::from_hot_ids(reference.iter().copied(), universe as usize);
                assert_eq!(p.len(), rebuilt.len());
                for id in 0..universe {
                    assert_eq!(p.is_hot(id), rebuilt.is_hot(id), "id {id} diverged");
                }
            }
        }
    }

    #[test]
    fn replace_hot_ids_swaps_membership_in_place() {
        let mut p = StaticPartition::from_hot_ids([1, 2, 3], 10);
        p.replace_hot_ids([7, 8], 4);
        assert!(!p.is_hot(1) && p.is_hot(7) && p.is_hot(8));
        assert_eq!(p.len(), 2);
        assert!((p.hot_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn retain_demotes_in_place() {
        let mut p = StaticPartition::from_hot_ids([1, 2, 3, 4], 8);
        p.retain(|id| id % 2 == 0);
        assert!(p.is_hot(2) && p.is_hot(4) && !p.is_hot(1) && !p.is_hot(3));
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn hot_fraction_matches_quarter_partition() {
        // The paper: "the hit rate asymptotically approaches 25%, the size
        // of the static partition relative to the used ID space." Profile a
        // uniform trace, keep 1/4 of the ids, and check the steady-state
        // hit rate of membership tests on fresh uniform draws.
        let ids: u64 = 4096;
        let mut b = StaticPartitionBuilder::new();
        let mut rng = Xoshiro256::seed_from(1);
        for _ in 0..200_000 {
            b.observe(rng.gen_range(0..ids));
        }
        let p = b.build((ids / 4) as usize);
        let mut hits = 0u64;
        let n = 100_000;
        for _ in 0..n {
            if p.is_hot(rng.gen_range(0..ids)) {
                hits += 1;
            }
        }
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "hit rate was {rate}");
    }

    #[test]
    fn skewed_profile_gives_high_hit_rate_with_small_partition() {
        // With a hot working set, a small partition captures most accesses
        // — the effect that makes static partitioning viable at all (§3.1).
        let mut rng = Xoshiro256::seed_from(2);
        let mut b = StaticPartitionBuilder::new();
        let draw = |rng: &mut Xoshiro256| -> u64 {
            if rng.gen_bool(0.8) {
                rng.gen_range(0..64) // hot region
            } else {
                rng.gen_range(64..100_000)
            }
        };
        for _ in 0..100_000 {
            b.observe(draw(&mut rng));
        }
        let p = b.build(64);
        let mut hits = 0;
        let n = 50_000;
        for _ in 0..n {
            if p.is_hot(draw(&mut rng)) {
                hits += 1;
            }
        }
        let rate = hits as f64 / n as f64;
        assert!(rate > 0.75, "hot-set hit rate was {rate}");
    }
}
