//! Cache building blocks for the RecSSD reproduction.
//!
//! The paper leans on four caching structures, all implemented here:
//!
//! * [`LruCache`] — a fully associative LRU cache. The baseline system
//!   keeps a "fully associative LRU software cache" of embedding vectors in
//!   host DRAM (§4.2), and the FTL's internal page cache uses the same
//!   structure.
//! * [`SetAssocCache`] — an N-way set-associative LRU cache, used for the
//!   16-way 4 KB page-cache characterisation of Figure 4.
//! * [`DirectMappedCache`] — the SSD-side embedding cache. §4.2 explains
//!   why: the FTL runs on a weak embedded CPU without dynamic memory
//!   allocation, so RecSSD implements "a direct-mapped SSD-side DRAM
//!   cache" rather than paying LRU bookkeeping on every access.
//! * [`StaticPartition`] — the profile-guided host-DRAM partition of hot
//!   embedding rows (§4.2 "static partitioning technique utilizing input
//!   data profiling").
//!
//! All caches record [`HitStats`] so experiments can report the hit rates
//! the paper annotates above its bars.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod direct;
mod lru;
mod partition;
mod set_assoc;

pub use direct::DirectMappedCache;
pub use lru::LruCache;
pub use partition::{StaticPartition, StaticPartitionBuilder};
pub use recssd_sim::stats::HitStats;
pub use set_assoc::SetAssocCache;
