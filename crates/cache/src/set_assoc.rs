//! N-way set-associative LRU cache keyed by `u64`.

use recssd_sim::rng::mix64;
use recssd_sim::stats::HitStats;

#[derive(Debug, Clone)]
struct Way<V> {
    key: u64,
    value: V,
    last_used: u64,
}

/// An N-way set-associative cache with per-set LRU replacement.
///
/// This is the structure behind the Figure 4 characterisation: "a 16-way,
/// LRU, 4KB page cache of varying cache capacities". Keys are hashed
/// (SplitMix64) into sets; within a set, replacement is exact LRU over at
/// most `ways` entries.
///
/// # Example
///
/// ```
/// use recssd_cache::SetAssocCache;
/// // 64 entries total, 16-way => 4 sets.
/// let mut c: SetAssocCache<u32> = SetAssocCache::new(64, 16);
/// assert_eq!(c.sets(), 4);
/// c.insert(1, 100);
/// assert_eq!(c.get(1), Some(&100));
/// assert_eq!(c.get(2), None);
/// assert_eq!(c.stats().hit_rate(), 0.5);
/// ```
#[derive(Debug)]
pub struct SetAssocCache<V> {
    sets: Vec<Vec<Way<V>>>,
    ways: usize,
    tick: u64,
    stats: HitStats,
}

impl<V> SetAssocCache<V> {
    /// Creates a cache with `capacity` total entries organised as
    /// `capacity / ways` sets of `ways` entries. `capacity` is rounded up
    /// to a whole number of sets (at least one).
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero.
    pub fn new(capacity: usize, ways: usize) -> Self {
        assert!(ways > 0, "set-associative cache needs at least one way");
        let n_sets = capacity.div_ceil(ways).max(1);
        SetAssocCache {
            sets: (0..n_sets).map(|_| Vec::with_capacity(ways)).collect(),
            ways,
            tick: 0,
            stats: HitStats::new(),
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets.len()
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Total entry capacity.
    pub fn capacity(&self) -> usize {
        self.sets.len() * self.ways
    }

    /// Current number of resident entries.
    pub fn len(&self) -> usize {
        self.sets.iter().map(|s| s.len()).sum()
    }

    /// `true` if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.sets.iter().all(|s| s.is_empty())
    }

    /// Accumulated hit/miss statistics (updated by [`SetAssocCache::get`]
    /// and [`SetAssocCache::access`]).
    pub fn stats(&self) -> HitStats {
        self.stats
    }

    /// Resident fraction: `len / capacity`, in `[0, 1]`.
    pub fn occupancy(&self) -> f64 {
        self.len() as f64 / self.capacity() as f64
    }

    /// Resets statistics without touching contents.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    fn set_of(&self, key: u64) -> usize {
        (mix64(key) % self.sets.len() as u64) as usize
    }

    /// Looks up `key`, refreshing its LRU position and recording hit/miss.
    pub fn get(&mut self, key: u64) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_of(key);
        match self.sets[set].iter_mut().find(|w| w.key == key) {
            Some(way) => {
                way.last_used = tick;
                self.stats.hit();
                Some(&way.value)
            }
            None => {
                self.stats.miss();
                None
            }
        }
    }

    /// Inserts `key → value`, evicting the set's LRU way if the set is
    /// full. Returns the evicted `(key, value)` if any.
    pub fn insert(&mut self, key: u64, value: V) -> Option<(u64, V)> {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_of(key);
        let ways = &mut self.sets[set];
        if let Some(way) = ways.iter_mut().find(|w| w.key == key) {
            let old = std::mem::replace(&mut way.value, value);
            way.last_used = tick;
            return Some((key, old));
        }
        let evicted = if ways.len() == self.ways {
            let lru = ways
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.last_used)
                .map(|(i, _)| i)
                .expect("full set is non-empty");
            let victim = ways.swap_remove(lru);
            Some((victim.key, victim.value))
        } else {
            None
        };
        ways.push(Way {
            key,
            value,
            last_used: tick,
        });
        evicted
    }

    /// Cache-simulation convenience: a `get` that, on miss, inserts
    /// `fill()`. Returns `true` on hit. This is the access pattern of the
    /// Figure 4 sweep.
    pub fn access(&mut self, key: u64, fill: impl FnOnce() -> V) -> bool {
        if self.get(key).is_some() {
            true
        } else {
            self.insert(key, fill());
            false
        }
    }

    /// `true` if `key` is resident (no side effects).
    pub fn contains(&self, key: u64) -> bool {
        self.sets[self.set_of(key)].iter().any(|w| w.key == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_insert_get() {
        let mut c: SetAssocCache<u64> = SetAssocCache::new(32, 4);
        c.insert(10, 100);
        assert_eq!(c.get(10), Some(&100));
        assert!(c.contains(10));
        assert!(!c.contains(11));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn rounds_capacity_up_to_whole_sets() {
        let c: SetAssocCache<()> = SetAssocCache::new(100, 16);
        assert_eq!(c.sets(), 7);
        assert_eq!(c.capacity(), 112);
        let tiny: SetAssocCache<()> = SetAssocCache::new(1, 16);
        assert_eq!(tiny.sets(), 1);
    }

    #[test]
    fn evicts_lru_within_set() {
        // One set => behaves as fully associative LRU of `ways` entries.
        let mut c: SetAssocCache<u64> = SetAssocCache::new(2, 2);
        assert_eq!(c.sets(), 1);
        c.insert(1, 1);
        c.insert(2, 2);
        c.get(1);
        let evicted = c.insert(3, 3);
        assert_eq!(evicted, Some((2, 2)));
        assert!(c.contains(1) && c.contains(3));
    }

    #[test]
    fn reinsert_replaces_value() {
        let mut c: SetAssocCache<&str> = SetAssocCache::new(4, 2);
        c.insert(5, "a");
        let old = c.insert(5, "b");
        assert_eq!(old, Some((5, "a")));
        assert_eq!(c.get(5), Some(&"b"));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn access_fills_on_miss() {
        let mut c: SetAssocCache<u8> = SetAssocCache::new(16, 4);
        assert!(!c.access(7, || 70));
        assert!(c.access(7, || unreachable!("must not refill on hit")));
        assert_eq!(c.stats().hits(), 1);
        assert_eq!(c.stats().misses(), 1);
    }

    #[test]
    fn conflict_misses_appear_with_low_associativity() {
        // Direct-mapped-like behaviour with 1 way: keys mapping to the same
        // set evict each other even though the cache is mostly empty.
        let mut c: SetAssocCache<u64> = SetAssocCache::new(4, 1);
        // Find two keys that collide in the same set.
        let base = 0u64;
        let collide = (1..10_000u64)
            .find(|&k| mix64(k) % c.sets() as u64 == mix64(base) % c.sets() as u64)
            .expect("collision exists");
        c.insert(base, 1);
        c.insert(collide, 2);
        assert!(
            !c.contains(base),
            "1-way set must have evicted the first key"
        );
        assert!(c.contains(collide));
    }

    #[test]
    fn higher_associativity_improves_looping_hit_rate() {
        // A classic LRU-thrashing loop: N+1 distinct keys looped through an
        // N-entry structure. More ways shift where misses land; a
        // fully-associative LRU gets zero hits while a set-associative one
        // retains some.
        let total = 16;
        let keys: Vec<u64> = (0..(total + 1) as u64).collect();
        let mut full: SetAssocCache<()> = SetAssocCache::new(total, total);
        let mut set4: SetAssocCache<()> = SetAssocCache::new(total, 4);
        for _ in 0..50 {
            for &k in &keys {
                full.access(k, || ());
                set4.access(k, || ());
            }
        }
        assert_eq!(
            full.stats().hits(),
            0,
            "fully associative LRU thrashes on loop of capacity+1"
        );
        assert!(
            set4.stats().hits() > 0,
            "set-associative cache escapes whole-loop thrash"
        );
    }

    #[test]
    fn occupancy_tracks_resident_fraction() {
        let mut c: SetAssocCache<u8> = SetAssocCache::new(8, 2);
        assert_eq!(c.occupancy(), 0.0);
        c.insert(1, 0);
        c.insert(2, 0);
        assert_eq!(c.occupancy(), 0.25);
    }

    #[test]
    fn stats_reset() {
        let mut c: SetAssocCache<()> = SetAssocCache::new(4, 2);
        c.get(1);
        assert_eq!(c.stats().misses(), 1);
        c.reset_stats();
        assert_eq!(c.stats().accesses(), 0);
        assert!(c.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one way")]
    fn zero_ways_panics() {
        let _: SetAssocCache<()> = SetAssocCache::new(16, 0);
    }
}
